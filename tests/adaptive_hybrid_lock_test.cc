// AdaptiveHybridLock mode-transition tests (ISSUE 6 tentpole (a)).
//
// The escalation arithmetic is deterministic single-threaded: a failed
// TryAcquireEx penalizes kWaitWeight (4), a failed validation penalizes
// kRestartWeight (2), a drained gate release credits exactly 1. The tests
// walk the state machine along exact scores:
//
//   optimistic ──≥16──► pessimistic-read ──≥48──► queued
//   optimistic ◄──≤8── pessimistic-read ◄──≤24── queued
//
// and then stress the mixed-mode writer/reader interleavings (racy by
// design: the suite name matches the *Hybrid* TSan exclusion glob).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "locks/hybrid_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {
namespace {

using Mode = AdaptiveHybridLock::Mode;

TEST(AdaptiveHybridLockTest, OptimisticFastPathStaysOptimistic) {
  AdaptiveHybridLock lock;
  uint64_t value = 41;
  uint64_t got = 0;
  // false = served optimistically.
  EXPECT_FALSE(lock.ReadCritical([&] { got = value; }));
  EXPECT_EQ(got, 41u);

  QNodeGuard guard;
  // false = no gate: an uncontended writer never touches the MCS queue.
  EXPECT_FALSE(lock.AcquireEx(guard.node()));
  value = 42;
  lock.ReleaseEx(guard.node(), /*via_gate=*/false);

  EXPECT_FALSE(lock.ReadCritical([&] { got = value; }));
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(lock.CurrentMode(), Mode::kOptimistic);
  EXPECT_EQ(lock.ContentionScore(), 0u);
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(AdaptiveHybridLockTest, WriterCollisionsEscalateDeterministically) {
  AdaptiveHybridLock lock;
  ASSERT_TRUE(lock.TryAcquireEx());  // Hold the word so probes collide.

  // 4 collisions x kWaitWeight(4) = 16 = kPromotePessimistic.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(lock.TryAcquireEx());
  EXPECT_EQ(lock.CurrentMode(), Mode::kPessimisticRead);
  EXPECT_EQ(lock.ContentionScore(), AdaptiveHybridLock::kPromotePessimistic);

  // 8 more -> 48 = kPromoteQueued.
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(lock.TryAcquireEx());
  EXPECT_EQ(lock.CurrentMode(), Mode::kQueued);
  EXPECT_EQ(lock.ContentionScore(), AdaptiveHybridLock::kPromoteQueued);

  lock.ReleaseEx();
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(AdaptiveHybridLockTest, RestartStormEscalatesReadsToPessimistic) {
  AdaptiveHybridLock lock;
  uint64_t value = 0;
  int calls = 0;
  // The read body bumps the version itself while the node is optimistic,
  // so every optimistic attempt fails validation (+kRestartWeight each).
  // 8 failed validations x 2 = 16 crosses kPromotePessimistic; with 4
  // attempts per ReadCritical that is exactly 2 calls.
  while (lock.CurrentMode() == Mode::kOptimistic && calls < 64) {
    ++calls;
    lock.ReadCritical([&] {
      if (lock.CurrentMode() == Mode::kOptimistic && lock.TryAcquireEx()) {
        ++value;
        lock.ReleaseEx();
      }
    });
  }
  EXPECT_EQ(lock.CurrentMode(), Mode::kPessimisticRead);
  EXPECT_LE(calls, 3);

  // Pessimistic reads now succeed first try (true = fallback path) and no
  // longer pay restart storms.
  uint64_t got = 0;
  value = 7;
  EXPECT_TRUE(lock.ReadCritical([&] { got = value; }));
  EXPECT_EQ(got, 7u);
  EXPECT_EQ(lock.SharedCount(), 0u);
}

TEST(AdaptiveHybridLockTest, DrainDemotesWithHysteresis) {
  AdaptiveHybridLock lock;
  ASSERT_TRUE(lock.TryAcquireEx());
  for (int i = 0; i < 12; ++i) EXPECT_FALSE(lock.TryAcquireEx());
  lock.ReleaseEx();
  ASSERT_EQ(lock.CurrentMode(), Mode::kQueued);
  ASSERT_EQ(lock.ContentionScore(), 48u);

  QNodeGuard guard;
  // Hysteresis window: each drained gate release credits exactly 1, and
  // the node must STAY queued while 24 < score < 48 — the demote point
  // sits far below the promote point so a borderline node does not flap.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(lock.AcquireEx(guard.node()));  // true = via the gate.
    lock.ReleaseEx(guard.node(), /*via_gate=*/true);
  }
  EXPECT_EQ(lock.CurrentMode(), Mode::kQueued);
  EXPECT_EQ(lock.ContentionScore(), 38u);

  // 14 more clean gate writes reach kDemoteQueued(24): one level down.
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(lock.AcquireEx(guard.node()));
    lock.ReleaseEx(guard.node(), /*via_gate=*/true);
  }
  EXPECT_EQ(lock.CurrentMode(), Mode::kPessimisticRead);
  EXPECT_EQ(lock.ContentionScore(), AdaptiveHybridLock::kDemoteQueued);

  // Clean reads (credits sampled 1-in-8) drain the rest: the node must
  // convert back to optimistic once the score reaches kDemoteOptimistic.
  uint64_t value = 9;
  uint64_t got = 0;
  for (int i = 0; i < 2000 && lock.CurrentMode() != Mode::kOptimistic;
       ++i) {
    lock.ReadCritical([&] { got = value; });
  }
  EXPECT_EQ(lock.CurrentMode(), Mode::kOptimistic);
  EXPECT_EQ(lock.ContentionScore(), AdaptiveHybridLock::kDemoteOptimistic);
  EXPECT_EQ(got, 9u);

  // Contention drained: reads are optimistic again end to end.
  EXPECT_FALSE(lock.ReadCritical([&] { got = value; }));
  EXPECT_FALSE(lock.IsLockedEx());
  EXPECT_EQ(lock.SharedCount(), 0u);
}

TEST(AdaptiveHybridLockTest, MixedModeStressInvariant) {
  AdaptiveHybridLock lock;
  uint64_t x = 0;
  uint64_t y = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t a = 0;
        uint64_t b = 0;
        lock.ReadCritical([&] {
          a = x;
          b = y;
        });
        // x and y only ever change together under the exclusive lock, so
        // a validated (or pessimistic) read must never see them apart —
        // regardless of which mode the lock was in when the read ran.
        if (a != b) torn.store(true, std::memory_order_release);
      }
    });
  }

  constexpr int kWriters = 2;
  constexpr int kWritesPerWriter = 4000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      QNodeGuard guard;
      for (int i = 0; i < kWritesPerWriter; ++i) {
        const bool via_gate = lock.AcquireEx(guard.node());
        ++x;
        for (int spin = 0; spin < 32; ++spin) {
          asm volatile("" ::: "memory");
        }
        ++y;
        lock.ReleaseEx(guard.node(), via_gate);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn.load(std::memory_order_acquire));
  EXPECT_EQ(x, static_cast<uint64_t>(kWriters) * kWritesPerWriter);
  EXPECT_EQ(y, static_cast<uint64_t>(kWriters) * kWritesPerWriter);
  EXPECT_FALSE(lock.IsLockedEx());
  EXPECT_EQ(lock.SharedCount(), 0u);
}

}  // namespace
}  // namespace optiql
