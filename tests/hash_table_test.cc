// Hash table (per-bucket locks) correctness, typed over both sync
// policies: CRUD, chaining collisions, oracle fuzz, and concurrent stress
// with hot buckets.
#include "index/hash_table.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/random.h"

namespace optiql {
namespace {

using OlcHash = HashTable<HashOlcPolicy>;
using OptiQlHash = HashTable<HashOptiQlPolicy<OptiQL>>;
using OptiQlNorHash = HashTable<HashOptiQlPolicy<OptiQLNor>>;

template <class Table>
class HashTableTest : public ::testing::Test {};

// Protocol names (HashTableTest/Olc, ...) so the TSan exclusion list in
// tests/CMakeLists.txt can filter the optimistic variants by name.
struct HashNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcHash>) return "Olc";
    if (std::is_same_v<T, OptiQlHash>) return "OptiQl";
    if (std::is_same_v<T, OptiQlNorHash>) return "OptiQlNor";
    return "Unknown";
  }
};

using HashTypes = ::testing::Types<OlcHash, OptiQlHash, OptiQlNorHash>;
TYPED_TEST_SUITE(HashTableTest, HashTypes, HashNames);

TYPED_TEST(HashTableTest, EmptyLookupMisses) {
  TypeParam table(64);
  uint64_t out = 0;
  EXPECT_FALSE(table.Lookup(1, out));
  EXPECT_EQ(table.Size(), 0u);
  EXPECT_EQ(table.BucketCount(), 64u);
}

TYPED_TEST(HashTableTest, BucketCountRoundsToPowerOfTwo) {
  TypeParam table(100);
  EXPECT_EQ(table.BucketCount(), 128u);
}

TYPED_TEST(HashTableTest, BasicCrud) {
  TypeParam table(64);
  EXPECT_TRUE(table.Insert(1, 10));
  EXPECT_FALSE(table.Insert(1, 11));  // Duplicate.
  uint64_t out = 0;
  ASSERT_TRUE(table.Lookup(1, out));
  EXPECT_EQ(out, 10u);
  EXPECT_TRUE(table.Update(1, 12));
  ASSERT_TRUE(table.Lookup(1, out));
  EXPECT_EQ(out, 12u);
  EXPECT_FALSE(table.Update(2, 1));
  table.Upsert(2, 20);
  ASSERT_TRUE(table.Lookup(2, out));
  EXPECT_EQ(out, 20u);
  table.Upsert(2, 21);
  ASSERT_TRUE(table.Lookup(2, out));
  EXPECT_EQ(out, 21u);
  EXPECT_TRUE(table.Remove(1));
  EXPECT_FALSE(table.Remove(1));
  EXPECT_FALSE(table.Lookup(1, out));
  EXPECT_EQ(table.Size(), 1u);
  table.CheckInvariants();
}

TYPED_TEST(HashTableTest, CollisionChains) {
  // 4 buckets, many keys: every bucket develops a chain.
  TypeParam table(4);
  constexpr uint64_t kKeys = 200;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(table.Insert(k, k * 2));
  }
  EXPECT_EQ(table.Size(), kKeys);
  table.CheckInvariants();
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(table.Lookup(k, out)) << k;
    EXPECT_EQ(out, k * 2);
  }
  // Remove from the middle of chains.
  for (uint64_t k = 0; k < kKeys; k += 3) {
    ASSERT_TRUE(table.Remove(k));
  }
  table.CheckInvariants();
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(table.Lookup(k, out), k % 3 != 0);
  }
}

TYPED_TEST(HashTableTest, OracleFuzz) {
  TypeParam table(256);
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(4242);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng.NextBounded(500);
    const uint64_t value = rng.Next();
    switch (rng.NextBounded(4)) {
      case 0:
        ASSERT_EQ(table.Insert(key, value),
                  oracle.emplace(key, value).second);
        break;
      case 1: {
        auto it = oracle.find(key);
        ASSERT_EQ(table.Update(key, value), it != oracle.end());
        if (it != oracle.end()) it->second = value;
        break;
      }
      case 2:
        ASSERT_EQ(table.Remove(key), oracle.erase(key) == 1);
        break;
      case 3: {
        uint64_t out = 0;
        auto it = oracle.find(key);
        ASSERT_EQ(table.Lookup(key, out), it != oracle.end());
        if (it != oracle.end()) {
          ASSERT_EQ(out, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(table.Size(), oracle.size());
  table.CheckInvariants();
}

TYPED_TEST(HashTableTest, ConcurrentDisjointInserts) {
  TypeParam table(1024);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(table.Insert(key, key));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.Size(), kThreads * kPerThread);
  table.CheckInvariants();
}

TYPED_TEST(HashTableTest, HotBucketStress) {
  // Tiny table: every operation contends on a handful of bucket locks —
  // the OptiQL-vs-OptLock scenario in miniature. Readers must never see a
  // value outside the writer encoding.
  TypeParam table(2);
  constexpr uint64_t kKeys = 16;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(table.Insert(k, k << 32));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.NextBounded(kKeys);
        uint64_t out = 0;
        if (!table.Lookup(key, out) || (out >> 32) != key) {
          bad.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256 rng(static_cast<uint64_t>(w) + 99);
      for (int i = 0; i < 5000; ++i) {
        const uint64_t key = rng.NextBounded(kKeys);
        ASSERT_TRUE(
            table.Update(key, (key << 32) | (rng.Next() & 0xFFFFFFFF)));
      }
    });
  }
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads[0].join();
  threads[1].join();
  EXPECT_FALSE(bad.load());
  table.CheckInvariants();
}

TYPED_TEST(HashTableTest, InsertRemoveChurnWithConcurrentReaders) {
  TypeParam table(64);
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  // Stable keys that never leave; churn keys come and go.
  for (uint64_t k = 0; k < 32; ++k) ASSERT_TRUE(table.Insert(k, k));

  std::thread reader([&] {
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t key = rng.NextBounded(32);
      uint64_t out = 0;
      if (!table.Lookup(key, out) || out != key) {
        bad.store(true, std::memory_order_release);
      }
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&, t] {
      std::set<uint64_t> mine;
      const uint64_t base = 1000 + static_cast<uint64_t>(t) * 1000;
      Xoshiro256 rng(static_cast<uint64_t>(t) + 7);
      for (int i = 0; i < 6000; ++i) {
        const uint64_t key = base + rng.NextBounded(100);
        if (rng.NextBounded(2) == 0) {
          ASSERT_EQ(table.Insert(key, key), mine.insert(key).second);
        } else {
          ASSERT_EQ(table.Remove(key), mine.erase(key) == 1);
        }
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(bad.load());
  table.CheckInvariants();
}

}  // namespace
}  // namespace optiql
