// Concurrent B+-tree stress across all synchronization policies: disjoint
// writers, racing updaters, reader/writer consistency, insert/remove churn,
// and skewed-hotspot mixes. All tests finish with a structural check.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "index/btree.h"

namespace optiql {
namespace {

using OlcTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using OptiQlTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using OptiQlNorTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>>;
using OptiQlAorTree =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;
using McsRwTree = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;
using PthreadTree =
    BTree<uint64_t, uint64_t, BTreeCouplingPolicy<SharedMutexLock>>;

template <class Tree>
class BTreeConcurrentTest : public ::testing::Test {};

// Protocol names in test ids (BTreeConcurrentTest/McsRw....) so sanitizer
// CI jobs can filter the pessimistic trees by name.
struct TreeNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcTree>) return "Olc";
    if (std::is_same_v<T, OptiQlTree>) return "OptiQl";
    if (std::is_same_v<T, OptiQlNorTree>) return "OptiQlNor";
    if (std::is_same_v<T, OptiQlAorTree>) return "OptiQlAor";
    if (std::is_same_v<T, McsRwTree>) return "McsRw";
    if (std::is_same_v<T, PthreadTree>) return "Pthread";
    return "Unknown";
  }
};

using TreeTypes = ::testing::Types<OlcTree, OptiQlTree, OptiQlNorTree,
                                   OptiQlAorTree, McsRwTree, PthreadTree>;
TYPED_TEST_SUITE(BTreeConcurrentTest, TreeTypes, TreeNames);

TYPED_TEST(BTreeConcurrentTest, DisjointConcurrentInserts) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(tree.Insert(key, key + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.Size(), kThreads * kPerThread);
  tree.CheckInvariants();
  for (uint64_t key = 0; key < kThreads * kPerThread; ++key) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(key, out)) << key;
    ASSERT_EQ(out, key + 1);
  }
}

TYPED_TEST(BTreeConcurrentTest, RacingInsertsOfSameKeysExactlyOneWins) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 2000;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      uint64_t local_wins = 0;
      for (uint64_t key = 0; key < kKeys; ++key) {
        if (tree.Insert(key, key)) ++local_wins;
      }
      wins.fetch_add(local_wins, std::memory_order_acq_rel);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), kKeys);  // Each key inserted exactly once.
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
}

TYPED_TEST(BTreeConcurrentTest, ReadersSeeConsistentValuesUnderUpdates) {
  // Values are encoded so a reader can detect mixed/teared states:
  // value = key * kStamp + generation. Readers check value % kStamp-ness.
  TypeParam tree;
  constexpr uint64_t kKeys = 256;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 1000));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.NextBounded(kKeys);
        uint64_t out = 0;
        if (tree.Lookup(key, out)) {
          // Every write keeps value ≡ key*1000 (mod 1000 == generation
          // bumps of +kKeys*1000 preserve divisibility relation below).
          if (out % 1000 != 0 || out / 1000 % kKeys != key % kKeys) {
            torn.store(true, std::memory_order_release);
          }
        } else {
          torn.store(true, std::memory_order_release);  // Keys never vanish.
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(static_cast<uint64_t>(w) + 100);
      for (int i = 0; i < 8000; ++i) {
        const uint64_t key = rng.NextBounded(kKeys);
        // New value stays in the valid encoding:
        // value/1000 ≡ key (mod kKeys) and value % 1000 == 0.
        ASSERT_TRUE(
            tree.Update(key, (key + kKeys * rng.NextBounded(1000)) * 1000));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  tree.CheckInvariants();
}

TYPED_TEST(BTreeConcurrentTest, InsertRemoveChurn) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kSpacePerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      // Each thread churns its own key range (deterministic counts),
      // while splits interleave across ranges in shared leaves.
      const uint64_t base = static_cast<uint64_t>(t) * kSpacePerThread;
      Xoshiro256 rng(static_cast<uint64_t>(t) + 7);
      std::set<uint64_t> mine;
      for (int i = 0; i < 6000; ++i) {
        const uint64_t key = base + rng.NextBounded(kSpacePerThread);
        if (rng.NextBounded(2) == 0) {
          ASSERT_EQ(tree.Insert(key, key), mine.insert(key).second);
        } else {
          ASSERT_EQ(tree.Remove(key), mine.erase(key) == 1);
        }
      }
      // Final per-thread verification.
      for (uint64_t k = base; k < base + kSpacePerThread; ++k) {
        uint64_t out = 0;
        ASSERT_EQ(tree.Lookup(k, out), mine.count(k) == 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  tree.CheckInvariants();
}

TYPED_TEST(BTreeConcurrentTest, SkewedHotspotMixedWorkload) {
  // 80/20-style hotspot: all threads hammer a few hot leaves with a mix of
  // lookups and updates — the scenario where OptiQL matters most.
  TypeParam tree;
  constexpr uint64_t kKeys = 512;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<bool> wrong{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) * 31 + 5);
      for (int i = 0; i < 5000; ++i) {
        // 80% of ops target the first 16 keys.
        const uint64_t key = rng.NextBounded(10) < 8
                                 ? rng.NextBounded(16)
                                 : rng.NextBounded(kKeys);
        if (rng.NextBounded(2) == 0) {
          ASSERT_TRUE(tree.Update(key, key + (i << 16)));
        } else {
          uint64_t out = 0;
          if (!tree.Lookup(key, out) || (out & 0xFFFF) != key) {
            wrong.store(true, std::memory_order_release);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(wrong.load());
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
}

TYPED_TEST(BTreeConcurrentTest, ConcurrentScansDuringInserts) {
  TypeParam tree;
  for (uint64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(tree.Insert(k, k));
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};

  std::thread scanner([&] {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    while (!stop.load(std::memory_order_acquire)) {
      tree.Scan(100, 50, out);
      uint64_t prev = 0;
      bool first = true;
      for (const auto& [k, v] : out) {
        if (!first && k <= prev) bad.store(true, std::memory_order_release);
        if (v != k) bad.store(true, std::memory_order_release);
        prev = k;
        first = false;
      }
    }
  });

  std::thread inserter([&] {
    for (uint64_t k = 1; k < 1000; k += 2) {
      ASSERT_TRUE(tree.Insert(k, k));
    }
  });
  inserter.join();
  stop.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(tree.Size(), 1000u);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace optiql
