// ART correctness, typed across synchronization policies: CRUD, node
// growth through all four node types, path compression and prefix splits,
// lazy expansion, long-key chains, and an oracle fuzz against std::map.
#include "index/art.h"
#include "index/art_coupling.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"

namespace optiql {
namespace {

using OlcArt = ArtTree<ArtOlcPolicy>;
using OptiQlArt = ArtTree<ArtOptiQlPolicy<OptiQL>>;
using OptiQlNorArt = ArtTree<ArtOptiQlPolicy<OptiQLNor>>;
using McsRwArt = ArtCouplingTree<McsRwLock>;
using PthreadArt = ArtCouplingTree<SharedMutexLock>;

template <class Tree>
class ArtTest : public ::testing::Test {};

// Names the typed instantiations after their protocol (ArtTest/Olc, ...)
// so --gtest_filter can select protocols, e.g. the TSan exclusion list in
// tests/CMakeLists.txt filtering out the optimistic variants by name.
struct ArtNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcArt>) return "Olc";
    if (std::is_same_v<T, OptiQlArt>) return "OptiQl";
    if (std::is_same_v<T, OptiQlNorArt>) return "OptiQlNor";
    if (std::is_same_v<T, McsRwArt>) return "McsRw";
    if (std::is_same_v<T, PthreadArt>) return "Pthread";
    return "Unknown";
  }
};

using ArtTypes = ::testing::Types<OlcArt, OptiQlArt, OptiQlNorArt, McsRwArt,
                                  PthreadArt>;
TYPED_TEST_SUITE(ArtTest, ArtTypes, ArtNames);

TYPED_TEST(ArtTest, EmptyTreeLookupMisses) {
  TypeParam tree;
  uint64_t out = 0;
  EXPECT_FALSE(tree.LookupInt(42, out));
  EXPECT_EQ(tree.Size(), 0u);
}

TYPED_TEST(ArtTest, SingleIntKey) {
  TypeParam tree;
  EXPECT_TRUE(tree.InsertInt(42, 4200));
  uint64_t out = 0;
  ASSERT_TRUE(tree.LookupInt(42, out));
  EXPECT_EQ(out, 4200u);
  EXPECT_FALSE(tree.LookupInt(43, out));
  EXPECT_FALSE(tree.LookupInt(42ULL << 32, out));
  EXPECT_EQ(tree.Size(), 1u);
  tree.CheckInvariants();
}

TYPED_TEST(ArtTest, DuplicateInsertRejected) {
  TypeParam tree;
  EXPECT_TRUE(tree.InsertInt(7, 1));
  EXPECT_FALSE(tree.InsertInt(7, 2));
  uint64_t out = 0;
  ASSERT_TRUE(tree.LookupInt(7, out));
  EXPECT_EQ(out, 1u);
}

TYPED_TEST(ArtTest, UpdateSemantics) {
  TypeParam tree;
  EXPECT_FALSE(tree.UpdateInt(5, 1));  // Absent.
  ASSERT_TRUE(tree.InsertInt(5, 1));
  EXPECT_TRUE(tree.UpdateInt(5, 99));
  uint64_t out = 0;
  ASSERT_TRUE(tree.LookupInt(5, out));
  EXPECT_EQ(out, 99u);
  EXPECT_FALSE(tree.UpdateInt(6, 1));
}

TYPED_TEST(ArtTest, RemoveSemantics) {
  TypeParam tree;
  EXPECT_FALSE(tree.RemoveInt(9));
  ASSERT_TRUE(tree.InsertInt(9, 90));
  EXPECT_TRUE(tree.RemoveInt(9));
  uint64_t out = 0;
  EXPECT_FALSE(tree.LookupInt(9, out));
  EXPECT_FALSE(tree.RemoveInt(9));
  EXPECT_TRUE(tree.InsertInt(9, 91));
  ASSERT_TRUE(tree.LookupInt(9, out));
  EXPECT_EQ(out, 91u);
  tree.CheckInvariants();
}

TYPED_TEST(ArtTest, DenseKeysGrowThroughAllNodeTypes) {
  TypeParam tree;
  // Keys 0..999 share 6 leading zero bytes; the 7th byte fans out to 4
  // values and the last byte to 256, forcing Node4→16→48→256 growth.
  constexpr uint64_t kKeys = 1000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree.InsertInt(k, k * 3)) << k;
  }
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(k, out)) << k;
    ASSERT_EQ(out, k * 3);
  }
  uint64_t out = 0;
  EXPECT_FALSE(tree.LookupInt(kKeys, out));
}

TYPED_TEST(ArtTest, SparseKeysUseLazyExpansion) {
  TypeParam tree;
  constexpr uint64_t kKeys = 2000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(tree.InsertInt(ScrambleKey(i), i));
  }
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
  for (uint64_t i = 0; i < kKeys; ++i) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(ScrambleKey(i), out)) << i;
    ASSERT_EQ(out, i);
  }
  // Near-misses of sparse keys must not match lazily expanded leaves.
  uint64_t out = 0;
  EXPECT_FALSE(tree.LookupInt(ScrambleKey(0) ^ 1, out));
  EXPECT_FALSE(tree.LookupInt(ScrambleKey(1) + 1, out));
}

TYPED_TEST(ArtTest, ByteStringKeys) {
  TypeParam tree;
  // Prefix-free set (fixed length).
  const std::vector<std::string> keys = {"apple--", "apric--", "banana-",
                                         "bandan-", "cherry-", "cherrz-"};
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.Insert(keys[i], i)) << keys[i];
  }
  EXPECT_EQ(tree.Size(), keys.size());
  tree.CheckInvariants();
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(keys[i], out)) << keys[i];
    EXPECT_EQ(out, i);
  }
  uint64_t out = 0;
  EXPECT_FALSE(tree.Lookup("apples-", out));
  EXPECT_FALSE(tree.Lookup("axxxxxx", out));
}

TYPED_TEST(ArtTest, LongKeysBuildPrefixChains) {
  TypeParam tree;
  // 40-byte keys sharing a 32-byte prefix: exceeds kMaxPrefix, so prefix
  // splits must chain nodes.
  std::string base(32, 'x');
  const std::string k1 = base + "AAAA-one";
  const std::string k2 = base + "AAAA-two";
  const std::string k3 = base + "BBBB-thr";
  ASSERT_TRUE(tree.Insert(k1, 1));
  ASSERT_TRUE(tree.Insert(k2, 2));
  ASSERT_TRUE(tree.Insert(k3, 3));
  tree.CheckInvariants();
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(k1, out));
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(tree.Lookup(k2, out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(tree.Lookup(k3, out));
  EXPECT_EQ(out, 3u);
  EXPECT_FALSE(tree.Lookup(base + "AAAA-xxx", out));
  // A different long prefix diverges early.
  const std::string k4 = std::string(32, 'y') + "AAAA-fou";
  ASSERT_TRUE(tree.Insert(k4, 4));
  ASSERT_TRUE(tree.Lookup(k4, out));
  EXPECT_EQ(out, 4u);
  ASSERT_TRUE(tree.Lookup(k1, out));
  EXPECT_EQ(out, 1u);
  tree.CheckInvariants();
}

TYPED_TEST(ArtTest, PrefixSplitKeepsExistingSubtreeReachable) {
  TypeParam tree;
  // Build a compressed path, then insert a key diverging mid-prefix.
  ASSERT_TRUE(tree.Insert("aaaaaaa1", 1));
  ASSERT_TRUE(tree.Insert("aaaaaaa2", 2));  // Fork at byte 7.
  ASSERT_TRUE(tree.Insert("aaab0001", 3));  // Diverges at byte 3.
  tree.CheckInvariants();
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup("aaaaaaa1", out));
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(tree.Lookup("aaaaaaa2", out));
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(tree.Lookup("aaab0001", out));
  EXPECT_EQ(out, 3u);
  EXPECT_FALSE(tree.Lookup("aaac0001", out));
}

TYPED_TEST(ArtTest, PrefixViolatingKeysRejected) {
  TypeParam tree;
  ASSERT_TRUE(tree.Insert("abcdef", 1));
  // "abc" is a proper prefix of "abcdef" — unsupported, must not corrupt.
  EXPECT_FALSE(tree.Insert("abc", 2));
  uint64_t sink = 0;
  EXPECT_FALSE(tree.Lookup("abc", sink));
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup("abcdef", out));
  EXPECT_EQ(out, 1u);
  tree.CheckInvariants();
}

TYPED_TEST(ArtTest, RemoveAcrossNodeTypes) {
  TypeParam tree;
  constexpr uint64_t kKeys = 600;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.InsertInt(k, k));
  // Remove every other key.
  for (uint64_t k = 0; k < kKeys; k += 2) ASSERT_TRUE(tree.RemoveInt(k));
  EXPECT_EQ(tree.Size(), kKeys / 2);
  tree.CheckInvariants();
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_EQ(tree.LookupInt(k, out), k % 2 == 1) << k;
  }
  // Remove the rest.
  for (uint64_t k = 1; k < kKeys; k += 2) ASSERT_TRUE(tree.RemoveInt(k));
  EXPECT_EQ(tree.Size(), 0u);
}

TYPED_TEST(ArtTest, OracleFuzzAgainstStdMap) {
  TypeParam tree;
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(555);
  constexpr int kOps = 10000;
  // Mix dense and sparse keys.
  auto pick_key = [&rng]() {
    const uint64_t i = rng.NextBounded(400);
    return rng.NextBounded(2) == 0 ? i : ScrambleKey(i);
  };
  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = pick_key();
    const uint64_t value = rng.Next();
    switch (rng.NextBounded(4)) {
      case 0:
        ASSERT_EQ(tree.InsertInt(key, value),
                  oracle.emplace(key, value).second);
        break;
      case 1: {
        auto it = oracle.find(key);
        ASSERT_EQ(tree.UpdateInt(key, value), it != oracle.end());
        if (it != oracle.end()) it->second = value;
        break;
      }
      case 2:
        ASSERT_EQ(tree.RemoveInt(key), oracle.erase(key) == 1);
        break;
      case 3: {
        uint64_t out = 0;
        auto it = oracle.find(key);
        ASSERT_EQ(tree.LookupInt(key, out), it != oracle.end());
        if (it != oracle.end()) {
          ASSERT_EQ(out, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(tree.Size(), oracle.size());
  tree.CheckInvariants();
  for (const auto& [key, value] : oracle) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(key, out));
    ASSERT_EQ(out, value);
  }
}

TEST(ArtContentionExpansionTest, ExpansionTriggersUnderRepeatedUpgrades) {
  // Low threshold so the test triggers quickly. Sparse keys => the hot leaf
  // is lazily expanded; repeated updates must materialize the path.
  OptiQlArt tree(/*contention_threshold=*/4);
  const uint64_t hot = ScrambleKey(12345);
  ASSERT_TRUE(tree.InsertInt(hot, 1));
  // Add a second key sharing little prefix so `hot` stays lazy but is not
  // directly under the root... (root slot still counts: upgrades happen on
  // the node holding the leaf pointer.)
  ASSERT_TRUE(tree.InsertInt(ScrambleKey(54321), 2));
  EXPECT_EQ(tree.ContentionExpansions(), 0u);
  for (int i = 0; i < 2000 && tree.ContentionExpansions() == 0; ++i) {
    ASSERT_TRUE(tree.UpdateInt(hot, static_cast<uint64_t>(i)));
  }
  EXPECT_GT(tree.ContentionExpansions(), 0u);
  tree.CheckInvariants();
  // The key remains fully readable and updatable after expansion (updates
  // now go through the direct queue-based path).
  uint64_t out = 0;
  ASSERT_TRUE(tree.LookupInt(hot, out));
  ASSERT_TRUE(tree.UpdateInt(hot, 777));
  ASSERT_TRUE(tree.LookupInt(hot, out));
  EXPECT_EQ(out, 777u);
}

TEST(ArtContentionExpansionTest, OlcPolicyNeverExpands) {
  OlcArt tree(/*contention_threshold=*/1);
  const uint64_t hot = ScrambleKey(42);
  ASSERT_TRUE(tree.InsertInt(hot, 1));
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.UpdateInt(hot, static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(tree.ContentionExpansions(), 0u);
}

}  // namespace
}  // namespace optiql
