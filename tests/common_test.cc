// Unit tests for the common substrate: spin policy, backoff, and the
// platform constants the lock layouts rely on.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/backoff.h"
#include "common/platform.h"
#include "common/random.h"

namespace optiql {
namespace {

TEST(SpinWaitTest, CountsIterations) {
  SpinWait wait;
  EXPECT_EQ(wait.count(), 0u);
  for (int i = 0; i < 10; ++i) wait.Spin();
  EXPECT_EQ(wait.count(), 10u);
  wait.Reset();
  EXPECT_EQ(wait.count(), 0u);
}

TEST(SpinWaitTest, CrossesYieldThresholdWithoutIncident) {
  SpinWait wait;
  for (uint32_t i = 0; i < 2 * SpinWait::kSpinsBeforeYield; ++i) {
    wait.Spin();  // Past the threshold this calls sched_yield.
  }
  EXPECT_EQ(wait.count(), 2 * SpinWait::kSpinsBeforeYield);
}

TEST(BackoffTest, ExponentialBackoffTerminatesAndResets) {
  ExponentialBackoff backoff;
  for (int i = 0; i < 20; ++i) backoff.Pause();  // Reaches the cap.
  backoff.Reset();
  backoff.Pause();  // Restarts from the minimum.
}

TEST(BackoffTest, NoBackoffIsAThinSpinWait) {
  NoBackoff backoff;
  for (int i = 0; i < 5; ++i) backoff.Pause();
  backoff.Reset();
}

TEST(PlatformTest, CachelineConstants) {
  EXPECT_EQ(kCachelineSize, 64u);
  struct OPTIQL_CACHELINE_ALIGNED Padded {
    char c;
  };
  EXPECT_EQ(alignof(Padded), kCachelineSize);
  EXPECT_EQ(sizeof(Padded), kCachelineSize);
}

TEST(PlatformTest, PauseAndYieldAreCallable) {
  CpuPause();
  CpuYield();
}

TEST(RandomTest, DistinctSeedsGiveDistinctStreams) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, NextBoundedOfOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

}  // namespace
}  // namespace optiql
