#include "qnode/qnode_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace optiql {
namespace {

TEST(QNodePoolTest, CapacityAndInitialState) {
  QNodePool pool(16);
  EXPECT_EQ(pool.capacity(), 16u);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QNodePoolTest, AcquireReturnsResetNodes) {
  QNodePool pool(8);
  QNode* node = pool.Acquire();
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->next.load(), nullptr);
  EXPECT_EQ(node->version.load(), QNode::kInvalidVersion);
  EXPECT_EQ(node->aux.load(), 0u);
  pool.Release(node);
}

TEST(QNodePoolTest, AcquireResetsRecycledNodeState) {
  QNodePool pool(8);
  QNode* node = pool.Acquire();
  ASSERT_NE(node, nullptr);
  node->next.store(node);
  node->version.store(123);
  node->aux.store(7);
  pool.Release(node);
  QNode* again = pool.Acquire();
  // LIFO free list: same node comes back, reset.
  ASSERT_EQ(again, node);
  EXPECT_EQ(again->next.load(), nullptr);
  EXPECT_EQ(again->version.load(), QNode::kInvalidVersion);
  EXPECT_EQ(again->aux.load(), 0u);
  pool.Release(again);
}

TEST(QNodePoolTest, IdTranslationRoundTrip) {
  QNodePool pool(64);
  std::vector<QNode*> nodes;
  for (int i = 0; i < 63; ++i) {
    QNode* node = pool.Acquire();
    ASSERT_NE(node, nullptr);
    const uint32_t id = pool.ToId(node);
    EXPECT_NE(id, QNodePool::kNullId);
    EXPECT_LT(id, pool.capacity());
    EXPECT_EQ(pool.ToPtr(id), node);
    nodes.push_back(node);
  }
  for (QNode* node : nodes) pool.Release(node);
}

TEST(QNodePoolTest, IdsAreUnique) {
  QNodePool pool(32);
  std::set<uint32_t> ids;
  std::vector<QNode*> nodes;
  while (QNode* node = pool.Acquire()) {
    EXPECT_TRUE(ids.insert(pool.ToId(node)).second);
    nodes.push_back(node);
  }
  EXPECT_EQ(ids.size(), 31u);  // ID 0 is reserved.
  for (QNode* node : nodes) pool.Release(node);
}

TEST(QNodePoolTest, ExhaustionReturnsNull) {
  QNodePool pool(4);
  QNode* a = pool.Acquire();
  QNode* b = pool.Acquire();
  QNode* c = pool.Acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(pool.Acquire(), nullptr);
  pool.Release(b);
  QNode* again = pool.Acquire();
  EXPECT_EQ(again, b);
  pool.Release(a);
  pool.Release(c);
  pool.Release(again);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QNodePoolTest, InUseTracksOutstandingNodes) {
  QNodePool pool(16);
  QNode* a = pool.Acquire();
  QNode* b = pool.Acquire();
  EXPECT_EQ(pool.in_use(), 2u);
  pool.Release(a);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.Release(b);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(QNodePoolTest, NodesAreCachelineAligned) {
  QNodePool pool(8);
  QNode* a = pool.Acquire();
  QNode* b = pool.Acquire();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % kCachelineSize, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % kCachelineSize, 0u);
  pool.Release(a);
  pool.Release(b);
}

TEST(QNodePoolTest, ConcurrentAcquireReleaseIsConsistent) {
  QNodePool pool(128);
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        QNode* node = pool.Acquire();
        ASSERT_NE(node, nullptr);
        node->aux.store(1);
        pool.Release(node);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(ThreadQNodesTest, ReturnsStableDistinctNodes) {
  QNode* n0 = ThreadQNodes::Get(0);
  QNode* n1 = ThreadQNodes::Get(1);
  ASSERT_NE(n0, nullptr);
  ASSERT_NE(n1, nullptr);
  EXPECT_NE(n0, n1);
  EXPECT_EQ(ThreadQNodes::Get(0), n0);  // Stable per thread.
  EXPECT_EQ(ThreadQNodes::Get(1), n1);
}

TEST(ThreadQNodesTest, DifferentThreadsGetDifferentNodes) {
  QNode* mine = ThreadQNodes::Get(0);
  QNode* theirs = nullptr;
  std::thread t([&theirs] { theirs = ThreadQNodes::Get(0); });
  t.join();
  EXPECT_NE(mine, theirs);
}

TEST(ThreadQNodesTest, NodesRecycledAfterThreadExit) {
  const uint32_t before = QNodePool::Instance().in_use();
  std::thread t([] { ThreadQNodes::Get(0); });
  t.join();
  // The thread's cache destructor returned the node.
  EXPECT_EQ(QNodePool::Instance().in_use(), before);
}

}  // namespace
}  // namespace optiql
