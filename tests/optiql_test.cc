// OptiQL-specific protocol tests (paper §4–§5): word layout, version
// handover along the queue, the opportunistic-read window (Figure 4), AOR,
// the §5.3 ABA scenario, and the upgrade path used by ART.
#include "core/optiql.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "qnode/qnode_pool.h"

namespace optiql {
namespace {

// Spins until `cond()` holds or a generous deadline passes.
template <class Cond>
bool WaitFor(Cond cond, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(OptiQlWordTest, LayoutConstants) {
  EXPECT_EQ(OptiQL::kLockedBit, 1ULL << 63);
  EXPECT_EQ(OptiQL::kOpReadBit, 1ULL << 62);
  EXPECT_EQ(OptiQL::kIdShift, 52);
  // 10 ID bits directly below the status bits; 52 version bits below that.
  EXPECT_EQ(OptiQL::kIdMask, 0x3FFULL << 52);
  EXPECT_EQ(OptiQL::kVersionMask, (1ULL << 52) - 1);
  EXPECT_EQ(OptiQL::kStatusMask & OptiQL::kIdMask, 0u);
  EXPECT_EQ(OptiQL::kIdMask & OptiQL::kVersionMask, 0u);
}

TEST(OptiQlTest, FreshLockIsFreeAtVersionZero) {
  OptiQL lock;
  EXPECT_EQ(lock.LoadWord(), 0u);
  EXPECT_FALSE(lock.IsLockedEx());
  EXPECT_FALSE(lock.IsOpReadWindowOpen());
}

TEST(OptiQlTest, UncontendedAcquirePublishesIdAndClearsVersion) {
  OptiQL lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  const uint64_t word = lock.LoadWord();
  EXPECT_TRUE(lock.IsLockedEx());
  EXPECT_FALSE(lock.IsOpReadWindowOpen());
  EXPECT_EQ((word & OptiQL::kIdMask) >> OptiQL::kIdShift,
            QNodePool::Instance().ToId(guard.node()));
  EXPECT_EQ(OptiQL::VersionOf(word), 0u);
  lock.ReleaseEx(guard.node());
  EXPECT_EQ(lock.LoadWord(), 1u);  // Free, version 1.
}

TEST(OptiQlTest, VersionIncrementsOncePerCriticalSection) {
  OptiQL lock;
  QNodeGuard guard;
  for (uint64_t i = 0; i < 10; ++i) {
    lock.AcquireEx(guard.node());
    lock.ReleaseEx(guard.node());
    EXPECT_EQ(OptiQL::VersionOf(lock.LoadWord()), i + 1);
  }
}

TEST(OptiQlTest, HandoverPassesIncrementedVersionsFifo) {
  // Holder + N queued writers: each grant must carry version+1, and grants
  // must follow queue order.
  OptiQL lock;
  QNodeGuard holder;
  lock.AcquireEx(holder.node());

  constexpr int kWaiters = 4;
  std::vector<int> grant_order;
  std::atomic<int> started{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      QNodeGuard guard;
      started.fetch_add(1, std::memory_order_acq_rel);
      lock.AcquireEx(guard.node());
      grant_order.push_back(i);
      lock.ReleaseEx(guard.node());
    });
    // Let thread i enqueue before starting i+1 so queue order is known.
    ASSERT_TRUE(WaitFor([&] { return started.load() == i + 1; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lock.ReleaseEx(holder.node());
  for (auto& t : waiters) t.join();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3}));
  // 5 critical sections total => version 5.
  EXPECT_EQ(OptiQL::VersionOf(lock.LoadWord()), 5u);
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(OptiQlTest, OpportunisticReadWindowAdmitsReaders) {
  // Use AOR to freeze the handover window open: W1 holds, W2 queues with
  // AcquireExDeferred; when W1 releases, the window opens and stays open
  // until W2 calls FinishAcquireEx.
  OptiQL lock;
  QNodeGuard w1, w2;
  lock.AcquireEx(w1.node());

  // Readers are locked out while W1 holds.
  uint64_t v = 0;
  EXPECT_FALSE(lock.AcquireSh(v));

  std::atomic<bool> w2_granted{false};
  std::thread t2([&] {
    lock.AcquireExDeferred(w2.node());
    // Window intentionally left open: FinishAcquireEx comes later, from the
    // main thread (AOR contract: no data is modified until then).
    w2_granted.store(true, std::memory_order_release);
  });
  // Wait until W2 is enqueued (the lock word records W2 as latest).
  ASSERT_TRUE(WaitFor([&] {
    return ((lock.LoadWord() & OptiQL::kIdMask) >> OptiQL::kIdShift) ==
           QNodePool::Instance().ToId(w2.node());
  }));

  lock.ReleaseEx(w1.node());
  ASSERT_TRUE(WaitFor([&] { return w2_granted.load(); }));
  t2.join();

  // W2 now owns the lock but the opportunistic window is open: readers are
  // admitted and validate successfully while nothing is modified.
  EXPECT_TRUE(lock.IsOpReadWindowOpen());
  ASSERT_TRUE(lock.AcquireSh(v));
  EXPECT_EQ(v & OptiQL::kStatusMask, OptiQL::kStatusMask);
  EXPECT_EQ(OptiQL::VersionOf(v), 1u);  // W1's version.
  EXPECT_TRUE(lock.ReleaseSh(v));

  // Closing the window invalidates readers that started inside it.
  uint64_t v_stale = 0;
  ASSERT_TRUE(lock.AcquireSh(v_stale));
  lock.FinishAcquireEx(w2.node());
  EXPECT_FALSE(lock.IsOpReadWindowOpen());
  EXPECT_FALSE(lock.ReleaseSh(v_stale));
  EXPECT_FALSE(lock.AcquireSh(v));  // Plain locked state now.

  lock.ReleaseEx(w2.node());
  EXPECT_EQ(OptiQL::VersionOf(lock.LoadWord()), 2u);
}

TEST(OptiQlTest, NorVariantNeverOpensWindow) {
  OptiQLNor lock;
  QNodeGuard w1, w2;
  lock.AcquireEx(w1.node());

  std::atomic<bool> w2_granted{false};
  std::thread t2([&] {
    lock.AcquireEx(w2.node());
    w2_granted.store(true, std::memory_order_release);
    // Hold briefly so the main thread can probe the word.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    lock.ReleaseEx(w2.node());
  });
  ASSERT_TRUE(WaitFor([&] {
    return ((lock.LoadWord() & OptiQLNor::kIdMask) >> OptiQLNor::kIdShift) ==
           QNodePool::Instance().ToId(w2.node());
  }));
  lock.ReleaseEx(w1.node());
  ASSERT_TRUE(WaitFor([&] { return w2_granted.load(); }));
  // During W2's tenure (handover happened), no opportunistic window exists.
  uint64_t v = 0;
  EXPECT_FALSE(lock.IsOpReadWindowOpen());
  EXPECT_FALSE(lock.AcquireSh(v));
  t2.join();
  EXPECT_EQ(OptiQLNor::VersionOf(lock.LoadWord()), 2u);
}

TEST(OptiQlTest, AbaScenarioFromPaperSection53) {
  // Writer W repeatedly increments a counter; reader R snapshots during the
  // first handover window and validates during a *later* window. Because
  // the word carries the version (not just status bits), validation fails.
  OptiQL lock;
  volatile int64_t counter = 0;

  auto run_critical_section_with_open_window =
      [&](QNode* self, QNode* successor, std::thread& successor_thread,
          std::atomic<bool>& successor_granted) {
        lock.AcquireEx(self);
        counter = counter + 1;
        // Queue the successor so release opens a window.
        successor_thread = std::thread([&lock, successor, &successor_granted] {
          lock.AcquireExDeferred(successor);
          successor_granted.store(true, std::memory_order_release);
        });
        EXPECT_TRUE(WaitFor([&] {
          return ((lock.LoadWord() & OptiQL::kIdMask) >> OptiQL::kIdShift) ==
                 QNodePool::Instance().ToId(successor);
        }));
        lock.ReleaseEx(self);
        EXPECT_TRUE(
            WaitFor([&] { return successor_granted.load(); }));
      };

  // Round 1: W1 increments counter to 1, W2 queued; window open at v1.
  QNodeGuard w1, w2, w3;
  std::thread t2;
  std::atomic<bool> w2_granted{false};
  run_critical_section_with_open_window(w1.node(), w2.node(), t2, w2_granted);
  t2.join();

  // Reader snapshots during window 1 and reads counter == 1.
  uint64_t reader_snapshot = 0;
  ASSERT_TRUE(lock.AcquireSh(reader_snapshot));
  EXPECT_EQ(counter, 1);

  // Round 2: W2 (already granted, window still open via AOR) closes the
  // window, increments the counter to 2, and releases with W3 queued,
  // opening a *new* window.
  lock.FinishAcquireEx(w2.node());
  counter = counter + 1;
  std::thread t3;
  std::atomic<bool> w3_granted{false};
  t3 = std::thread([&] {
    lock.AcquireExDeferred(w3.node());
    w3_granted.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(WaitFor([&] {
    return ((lock.LoadWord() & OptiQL::kIdMask) >> OptiQL::kIdShift) ==
           QNodePool::Instance().ToId(w3.node());
  }));
  lock.ReleaseEx(w2.node());
  ASSERT_TRUE(WaitFor([&] { return w3_granted.load(); }));
  t3.join();

  // Both snapshots have LOCKED|OPREAD set; only the version distinguishes
  // them. The reader's validation must fail: the counter changed.
  EXPECT_TRUE(lock.IsOpReadWindowOpen());
  uint64_t fresh_snapshot = 0;
  ASSERT_TRUE(lock.AcquireSh(fresh_snapshot));
  EXPECT_EQ(fresh_snapshot & OptiQL::kStatusMask,
            reader_snapshot & OptiQL::kStatusMask);
  EXPECT_NE(OptiQL::VersionOf(fresh_snapshot),
            OptiQL::VersionOf(reader_snapshot));
  EXPECT_FALSE(lock.ReleaseSh(reader_snapshot));  // ABA averted.
  EXPECT_TRUE(lock.ReleaseSh(fresh_snapshot));

  lock.FinishAcquireEx(w3.node());
  lock.ReleaseEx(w3.node());
}

TEST(OptiQlTest, TryUpgradeFromFreeSnapshot) {
  OptiQL lock;
  QNodeGuard guard;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  EXPECT_TRUE(lock.TryUpgrade(v, guard.node()));
  EXPECT_TRUE(lock.IsLockedEx());
  // A second upgrade attempt with the stale snapshot fails.
  QNodeGuard other;
  EXPECT_FALSE(lock.TryUpgrade(v, other.node()));
  lock.ReleaseEx(guard.node());
  EXPECT_EQ(OptiQL::VersionOf(lock.LoadWord()), OptiQL::VersionOf(v) + 1);
}

TEST(OptiQlTest, TryUpgradeFailsAfterInterveningWriter) {
  OptiQL lock;
  QNodeGuard a, b;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  lock.AcquireEx(a.node());
  lock.ReleaseEx(a.node());
  EXPECT_FALSE(lock.TryUpgrade(v, b.node()));
}

TEST(OptiQlTest, TryUpgradeRejectsOpReadSnapshots) {
  // Snapshots taken during a handover window must not be upgradable: the
  // grantee already owns the lock.
  OptiQL lock;
  QNodeGuard w1, w2, up;
  lock.AcquireEx(w1.node());
  std::atomic<bool> w2_granted{false};
  std::thread t2([&] {
    lock.AcquireExDeferred(w2.node());
    w2_granted.store(true, std::memory_order_release);
  });
  ASSERT_TRUE(WaitFor([&] {
    return ((lock.LoadWord() & OptiQL::kIdMask) >> OptiQL::kIdShift) ==
           QNodePool::Instance().ToId(w2.node());
  }));
  lock.ReleaseEx(w1.node());
  ASSERT_TRUE(WaitFor([&] { return w2_granted.load(); }));
  t2.join();

  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));  // Opportunistic snapshot.
  EXPECT_FALSE(lock.TryUpgrade(v, up.node()));

  lock.FinishAcquireEx(w2.node());
  lock.ReleaseEx(w2.node());
}

TEST(OptiQlTest, TryAcquireExSemantics) {
  OptiQL lock;
  QNodeGuard a, b;
  EXPECT_TRUE(lock.TryAcquireEx(a.node()));
  EXPECT_FALSE(lock.TryAcquireEx(b.node()));
  lock.ReleaseEx(a.node());
  EXPECT_TRUE(lock.TryAcquireEx(b.node()));
  lock.ReleaseEx(b.node());
}

TEST(OptiQlTest, WritersQueueBehindUpgradedHolder) {
  // After TryUpgrade, the word carries the upgrader's queue node, so a
  // subsequent AcquireEx must line up and be granted on release.
  OptiQL lock;
  QNodeGuard up;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  ASSERT_TRUE(lock.TryUpgrade(v, up.node()));

  std::atomic<bool> granted{false};
  std::thread t([&] {
    QNodeGuard guard;
    lock.AcquireEx(guard.node());
    granted.store(true, std::memory_order_release);
    lock.ReleaseEx(guard.node());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(granted.load());
  lock.ReleaseEx(up.node());
  t.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(OptiQL::VersionOf(lock.LoadWord()), OptiQL::VersionOf(v) + 2);
}

TEST(OptiQlTest, VersionWrapsWithinMask) {
  // NextVersion masking: versions stay within 52 bits.
  OptiQL lock;
  QNodeGuard guard;
  for (int i = 0; i < 3; ++i) {
    lock.AcquireEx(guard.node());
    lock.ReleaseEx(guard.node());
  }
  EXPECT_EQ(lock.LoadWord() & ~OptiQL::kVersionMask, 0u);
}

}  // namespace
}  // namespace optiql
