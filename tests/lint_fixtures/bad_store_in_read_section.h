// Known-bad fixture: mutation through a pointer while an optimistic read
// section is open. An unvalidated snapshot must never be used to write:
// the node may already be mid-rewrite (or retired) under a concurrent
// exclusive holder.
// EXPECT-FAIL: no-store-in-read-section
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_STORE_IN_READ_SECTION_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_STORE_IN_READ_SECTION_H_

#include <cstdint>

struct Node {
  uint64_t value;
  uint64_t hits;
  Lock lock;
};

// BUG: bumps a counter on the node under a *read* snapshot — racing every
// concurrent writer — then validates as if the section were read-only.
inline bool LookupAndCount(Node* node, uint64_t* out) {
  uint64_t v;
  if (!node->lock.AcquireSh(v)) return false;
  node->hits++;
  *out = node->value;
  return node->lock.ReleaseSh(v);
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_STORE_IN_READ_SECTION_H_
