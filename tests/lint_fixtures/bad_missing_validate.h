// Known-bad fixture: optimistic read sections that escape without
// validation. Each function models a real bug class: returning data from
// an unvalidated snapshot (torn read served to the caller).
// EXPECT-FAIL: validate-on-exit
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_MISSING_VALIDATE_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_MISSING_VALIDATE_H_

#include <cstdint>

struct Node {
  uint64_t value;
  Lock lock;
};

// BUG: returns the read value without ReleaseSh(v) — a concurrent writer
// may have been mid-modification; the caller gets a torn read.
inline uint64_t LookupNoValidate(Node& node) {
  uint64_t v;
  if (!node.lock.AcquireSh(v)) return 0;
  return node.value;
}

// BUG: validates the parent but falls off the end with the child's
// section still open.
inline void DescendHalfValidated(Node& parent, Node& child, uint64_t* out) {
  uint64_t pv = 0;
  uint64_t cv = 0;
  ReadLockOrRestart(parent.lock, pv);
  Validate(parent.lock, pv);
  ReadLockNode(&child, cv);
  *out = child.value;
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_MISSING_VALIDATE_H_
