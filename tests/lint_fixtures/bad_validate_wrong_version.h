// Known-bad fixture: validations fed a version word no acquire filled.
// Each function models the bug class R5 exists for — the section *looks*
// balanced (open then close, so R1 stays quiet) but the close compares
// against a stale or never-written variable, so it validates garbage and
// the torn-read window is wide open.
// EXPECT-FAIL: version-dataflow
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_VALIDATE_WRONG_VERSION_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_VALIDATE_WRONG_VERSION_H_

#include <cstdint>

struct Node {
  uint64_t value;
  Lock lock;
};

// BUG: AcquireSh fills `va`, but the exit validates `vb`, which still
// holds its initializer. ReleaseSh(vb) "succeeds" or "fails" against a
// constant — either way the snapshot of `a.value` is never checked.
inline uint64_t LookupCrossedVersions(Node& a, uint64_t fallback) {
  uint64_t va;
  uint64_t vb = 0;
  if (!a.lock.AcquireSh(va)) return fallback;
  const uint64_t value = a.value;
  if (!a.lock.ReleaseSh(vb)) return fallback;
  return value;
}

// BUG: the upgrade consumes `stale`, a variable no acquire ever wrote.
// The CAS from a garbage expected word spuriously fails (livelock) or —
// worse — spuriously succeeds against a recycled version.
inline bool UpgradeUnfilledSnapshot(Node& node, uint64_t value) {
  uint64_t v;
  uint64_t stale;
  if (!node.lock.AcquireSh(v)) return false;
  if (!node.lock.TryUpgrade(stale)) return false;
  Node* locked = &node;
  locked->value = value;
  node.lock.ReleaseEx();
  return true;
}

// BUG: descent that validates the child with the *parent's* version word
// twice; `cv` is filled but never checked before the read is returned.
inline bool DescendValidatesWrongNode(Node& parent, Node& child,
                                      uint64_t* out) {
  uint64_t pv = 0;
  uint64_t cv = 0;
  uint64_t typo = 0;
  if (!ReadLockOrRestart(parent.lock, pv)) return false;
  if (!ReadLockNode(&child, cv)) return false;
  if (!Validate(parent.lock, pv)) return false;
  *out = child.value;
  return Validate(child.lock, typo);
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_VALIDATE_WRONG_VERSION_H_
