// Known-good fixture: every optimistic-read idiom the linter must accept.
// Mirrors the real patterns in src/ (btree descent, hash-table probe,
// harness adapters). The self-test requires zero findings on this file.
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_OPTIMISTIC_READ_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_OPTIMISTIC_READ_H_

#include <cstdint>

struct Node {
  uint64_t key;
  uint64_t value;
  Lock lock;
};

// Bail block: a failed AcquireSh abandons the snapshot immediately — no
// validation needed on that path; the success path validates on return.
inline bool LookupOnce(Node& node, uint64_t* out) {
  uint64_t v;
  if (!node.lock.AcquireSh(v)) return false;
  *out = node.value;
  return node.lock.ReleaseSh(v);
}

// Retry loop: `continue` restarts with a fresh snapshot (exempt edge);
// the only `return` follows a validation.
inline uint64_t LookupRetry(Node& node) {
  while (true) {
    uint64_t v;
    if (!node.lock.AcquireSh(v)) continue;
    const uint64_t value = node.value;
    if (!node.lock.ReleaseSh(v)) continue;
    return value;
  }
}

// Upgrade path: TryUpgrade consumes (and thereby validates) the snapshot;
// writes after it are under the exclusive lock, which R2 must not flag.
inline bool UpdateViaUpgrade(Node& node, uint64_t value) {
  uint64_t v;
  if (!node.lock.AcquireSh(v)) return false;
  if (!node.lock.TryUpgrade(v)) return false;
  Node* locked = &node;
  locked->value = value;
  node.lock.ReleaseEx();
  return true;
}

// Descent: helper-style open/validate pairs interleaved across two nodes,
// as in the B+-tree traversal.
inline bool DescendOnce(Node& parent, Node& child, uint64_t* out) {
  uint64_t pv = 0;
  uint64_t cv = 0;
  if (!ReadLockOrRestart(parent.lock, pv)) return false;
  if (!ReadLockNode(&child, cv)) return false;
  if (!Validate(parent.lock, pv)) return false;
  *out = child.value;
  return Validate(child.lock, cv);
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_OPTIMISTIC_READ_H_
