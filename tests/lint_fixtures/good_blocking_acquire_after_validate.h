// Known-good fixture for R7: the legal ways to combine an optimistic
// read with a blocking acquire. The self-test requires zero findings.
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_BLOCKING_ACQUIRE_AFTER_VALIDATE_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_BLOCKING_ACQUIRE_AFTER_VALIDATE_H_

#include <cstdint>

struct Node {
  uint64_t value;
  Node* sibling;
  Lock lock;
};

// Validate first, then block: once ReleaseSh confirmed the snapshot the
// section is closed, and queueing on the sibling is plain lock usage.
inline bool CopyToSiblingValidated(Node* node, QNode* qnode) {
  uint64_t v;
  if (!node->lock.AcquireSh(v)) return false;
  const uint64_t snapshot = node->value;
  if (!node->lock.ReleaseSh(v)) return false;
  node->sibling->lock.AcquireEx(qnode);
  Node* locked = node->sibling;
  locked->value = snapshot;
  node->sibling->lock.ReleaseEx(qnode);
  return true;
}

// Same-lock upgrade: TryUpgrade consumes the snapshot without blocking —
// the sanctioned alternative to AcquireEx under an open section.
inline bool UpdateInPlace(Node* node, uint64_t value) {
  uint64_t v;
  if (!node->lock.AcquireSh(v)) return false;
  if (!node->lock.TryUpgrade(v)) return false;
  Node* locked = node;
  locked->value = value;
  node->lock.ReleaseEx();
  return true;
}

// Escape hatch: the paper's direct-lock leaf update (Algorithm 4) blocks
// on the leaf while the *parent* snapshot stays open, then validates the
// parent after the queue wait — safe because a failed validation releases
// and restarts rather than using the snapshot.
inline bool DirectLeafLock(Node* parent, Node* leaf, uint64_t value,
                           QNode* qnode) {
  uint64_t pv;
  if (!parent->lock.AcquireSh(pv)) return false;
  // LINT-ALLOW(blocking-acquire-in-read-section): OptiQL direct leaf
  // locking; the parent snapshot is validated right after the wait and a
  // mismatch restarts without touching the leaf contents.
  leaf->lock.AcquireEx(qnode);
  if (!parent->lock.ReleaseSh(pv)) {
    leaf->lock.ReleaseEx(qnode);
    return false;
  }
  Node* locked = leaf;
  locked->value = value;
  leaf->lock.ReleaseEx(qnode);
  return true;
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_BLOCKING_ACQUIRE_AFTER_VALIDATE_H_
