// Known-bad fixture: a public index operation that descends without an
// EpochGuard anywhere in its call chain. A concurrent Remove can Retire a
// node and — with no guard pinning the epoch — the reclaimer may free it
// while this traversal still dereferences it. (The `index` in the file
// name opts the fixture into the epoch-guard rule, which otherwise only
// applies under src/index/.)
// EXPECT-FAIL: epoch-guard
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_INDEX_MISSING_EPOCH_GUARD_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_INDEX_MISSING_EPOCH_GUARD_H_

#include <cstdint>

class UnguardedIndex {
 public:
  // BUG: no EpochGuard — uses DescendTo, which has none either.
  bool Lookup(uint64_t key, uint64_t* out) const {
    Node* leaf = DescendTo(key);
    *out = leaf->value;
    return true;
  }

 private:
  struct Node {
    uint64_t value;
  };

  Node* DescendTo(uint64_t key) const;
  Node* root_;
};

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_INDEX_MISSING_EPOCH_GUARD_H_
