// Known-good fixture: every legitimate way a version word travels from
// its acquire to its validation under a different name. R5 must accept
// all of these — copies, the btree descent handover, version parameters
// filled by the caller's acquire — with zero findings.
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_VERSION_HANDOVER_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_VERSION_HANDOVER_H_

#include <cstdint>

struct Node {
  uint64_t value;
  Node* child;
  Lock lock;
};

// Plain copy: `pv` is a renamed snapshot of the filled `v`.
inline bool LookupViaCopy(Node& node, uint64_t* out) {
  uint64_t v;
  if (!node.lock.AcquireSh(v)) return false;
  uint64_t pv = v;
  *out = node.value;
  return node.lock.ReleaseSh(pv);
}

// Descent handover, as in the real B+-tree traversal: the parent's
// version moves to `pv`, the child's becomes the current `v`, and both
// names reach a validation. A copy-of-a-copy must also stay tracked.
inline bool DescendHandover(Node& root, uint64_t* out) {
  uint64_t v = 0;
  uint64_t cv = 0;
  if (!ReadLockOrRestart(root.lock, v)) return false;
  Node* node = root.child;
  if (!ReadLockNode(node, cv)) return false;
  uint64_t pv = v;
  v = cv;
  if (!Validate(root.lock, pv)) return false;
  *out = node->value;
  return Validate(node->lock, v);
}

// Version parameter: the caller's acquire filled `version`; helpers that
// continue an open section must not be flagged for trusting it.
inline bool FinishRead(Node& node, uint64_t version, uint64_t* out) {
  *out = node.value;
  return node.lock.ReleaseSh(version);
}

// Upgrade consuming a copied snapshot, with a queue-node second argument
// (the OptiQL form): the first argument is still dataflow-checked.
inline bool UpgradeViaCopy(Node& node, uint64_t value) {
  uint64_t v;
  if (!node.lock.AcquireSh(v)) return false;
  uint64_t snapshot = v;
  if (!node.lock.TryUpgrade(snapshot, GetQNode(0))) return false;
  Node* locked = &node;
  locked->value = value;
  node.lock.ReleaseEx();
  return true;
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_VERSION_HANDOVER_H_
