// Known-good fixture for the epoch-guard rule: public ops reach an
// EpochGuard directly, via a same-file callee, or receive one from the
// caller. Also exercises the sanctioned reclamation path (delete inside a
// Retire deleter) and teardown-named frees, which raw-delete must accept.
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_INDEX_EPOCH_GUARD_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_INDEX_EPOCH_GUARD_H_

#include <cstdint>

class GuardedIndex {
 public:
  ~GuardedIndex() { FreeSubtree(root_); }

  // Direct guard.
  bool Lookup(uint64_t key, uint64_t* out) const {
    EpochGuard guard;
    return LookupImpl(key, out);
  }

  // Transitive: Write() holds the guard for all three mutating ops.
  bool Insert(uint64_t key, uint64_t value) { return Write(key, &value); }
  bool Update(uint64_t key, uint64_t value) { return Write(key, &value); }

  // Caller-provided guard (the ART pattern).
  bool Remove(uint64_t key, EpochGuard& guard) {
    Node* victim = Detach(key);
    // Sanctioned reclamation: the delete runs inside the epoch layer.
    EpochManager::Instance().Retire(
        victim, [](void* p) { delete static_cast<Node*>(p); });
    return victim != nullptr;
  }

 private:
  struct Node {
    uint64_t value;
  };

  bool Write(uint64_t key, const uint64_t* value) {
    EpochGuard guard;
    return true;
  }

  // Teardown helper: single-threaded by contract, frees are legal.
  void FreeSubtree(Node* node) {
    delete node;
  }

  bool LookupImpl(uint64_t key, uint64_t* out) const;
  Node* Detach(uint64_t key);
  Node* root_;
};

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_INDEX_EPOCH_GUARD_H_
