// Known-good fixture: the escape hatches. Each suppression carries its
// reason; the self-test requires zero *errors* on this file (the
// LINT-TODO is reported as an open item, not an error).
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_ALLOW_DIRECTIVE_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_ALLOW_DIRECTIVE_H_

#include <cstdint>

struct Node {
  Node* next;
  uint64_t value;
  Lock lock;
};

// Line-level allow with a multi-line reason comment: applies to the first
// code line after the comment block.
inline void SingleThreadedCompact(Node* prev, Node* victim) {
  prev->next = victim->next;
  // LINT-ALLOW(raw-delete): only called from the single-threaded repair
  // tool; no concurrent readers can exist by construction.
  delete victim;
}

// A deliberate protocol deviation parked as an open item.
inline uint64_t PeekUnvalidated(Node& node) {
  uint64_t v;
  node.lock.AcquireSh(v);
  // LINT-TODO(validate-on-exit): diagnostic peek tolerates torn reads;
  // replace with a validated read once the stats sampler retries.
  return node.value;
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_ALLOW_DIRECTIVE_H_
