// Known-bad fixture: freeing an index node outside the epoch layer from a
// non-teardown function. Concurrent optimistic readers may still be
// scanning the node — only EpochManager::Retire (or single-threaded
// teardown) may reclaim it.
// EXPECT-FAIL: raw-delete
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_RAW_DELETE_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_RAW_DELETE_H_

struct Node {
  Node* next;
};

// BUG: unlinks and immediately deletes while readers may hold a snapshot
// of the predecessor pointing at `victim`.
inline void UnlinkAndFree(Node* prev, Node* victim) {
  prev->next = victim->next;
  delete victim;
}

// BUG: same through the node-helper spelling.
inline void ReplaceChild(Node* parent, Node* grown) {
  Node* old = parent->next;
  parent->next = grown;
  Nodes::DeleteNode(old);
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_RAW_DELETE_H_
