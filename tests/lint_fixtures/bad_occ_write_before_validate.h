// Known-bad fixture: a value published inside an OCC read section before
// the snapshot validates. The read under `v` may already be inconsistent
// (a writer can be mid-install), so feeding it into a store is a dirty
// write — OCC requires ValidateVersion() first, then an exclusive lock.
// EXPECT-FAIL: occ-write-before-validate
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_OCC_WRITE_BEFORE_VALIDATE_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_OCC_WRITE_BEFORE_VALIDATE_H_

#include <atomic>
#include <cstdint>

struct Record {
  std::atomic<uint64_t> value;
  Lock lock;
};

// BUG: bumps the record under an unvalidated snapshot, then validates as
// if the section had been read-only. Any spelling of the contract names
// must be seen — this one is `TxnOps<Lock>::`-qualified.
inline bool BumpUnderSnapshot(Record* rec) {
  uint64_t v;
  if (!TxnOps<Lock>::StableVersion(rec->lock, v)) return false;
  const uint64_t seen = rec->value.load(std::memory_order_relaxed);
  rec->value.store(seen + 1, std::memory_order_relaxed);
  return TxnOps<Lock>::ValidateVersion(rec->lock, v);
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_OCC_WRITE_BEFORE_VALIDATE_H_
