// Known-good fixture: the OCC read-validate-lock-install order the
// transaction layer uses. Reads happen under the snapshot, the snapshot
// validates, and only then — under the exclusive lock — is the new value
// published. The self-test requires zero findings on this file.
#ifndef OPTIQL_TESTS_LINT_FIXTURES_GOOD_OCC_VALIDATE_THEN_INSTALL_H_
#define OPTIQL_TESTS_LINT_FIXTURES_GOOD_OCC_VALIDATE_THEN_INSTALL_H_

#include <atomic>
#include <cstdint>

struct Record {
  std::atomic<uint64_t> value;
  Lock lock;
};

// Read-modify-write done right: the store is outside the read section,
// after validation, under LockEx. Loads inside the section are fine —
// OCC reads under the snapshot by design.
inline bool BumpValidated(Record* rec) {
  uint64_t v;
  if (!Ops::StableVersion(rec->lock, v)) return false;
  const uint64_t seen = rec->value.load(std::memory_order_relaxed);
  if (!Ops::ValidateVersion(rec->lock, v)) return false;
  const auto handle = Ops::LockEx(rec->lock, 0);
  rec->value.store(seen + 1, std::memory_order_relaxed);
  Ops::UnlockEx(rec->lock, handle);
  return true;
}

// Bail leg: a failed snapshot abandons the section immediately; the
// retry loop's only return follows a validation.
inline uint64_t ReadValidated(const Record* rec) {
  while (true) {
    uint64_t v;
    if (!Ops::StableVersion(rec->lock, v)) continue;
    const uint64_t seen = rec->value.load(std::memory_order_relaxed);
    if (!Ops::ValidateVersion(rec->lock, v)) continue;
    return seen;
  }
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_GOOD_OCC_VALIDATE_THEN_INSTALL_H_
