// Known-bad fixture: a blocking exclusive acquire issued while an
// optimistic read section is still open. The writer this thread queues
// behind will bump the very version the open snapshot validates against,
// so the pattern restarts at best; with any lock order across two nodes
// it is the ABBA deadlock the model checker's demo scenario exhibits.
// EXPECT-FAIL: blocking-acquire-in-read-section
#ifndef OPTIQL_TESTS_LINT_FIXTURES_BAD_BLOCKING_ACQUIRE_IN_READ_SECTION_H_
#define OPTIQL_TESTS_LINT_FIXTURES_BAD_BLOCKING_ACQUIRE_IN_READ_SECTION_H_

#include <cstdint>

struct Node {
  uint64_t value;
  Node* sibling;
  Lock lock;
};

// BUG: still holds the unvalidated snapshot of `node` while blocking on
// the sibling's queue. Validate (or abandon) the snapshot first, then
// lock; same-lock upgrades go through TryUpgrade instead.
inline bool CopyToSibling(Node* node, QNode* qnode) {
  uint64_t v;
  if (!node->lock.AcquireSh(v)) return false;
  const uint64_t snapshot = node->value;
  node->sibling->lock.AcquireEx(qnode);
  if (!node->lock.ReleaseSh(v)) {
    node->sibling->lock.ReleaseEx(qnode);
    return false;
  }
  Node* locked = node->sibling;
  locked->value = snapshot;
  node->sibling->lock.ReleaseEx(qnode);
  return true;
}

#endif  // OPTIQL_TESTS_LINT_FIXTURES_BAD_BLOCKING_ACQUIRE_IN_READ_SECTION_H_
