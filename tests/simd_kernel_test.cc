// Differential tests for the SIMD search kernels (src/common/simd.h):
// randomized equivalence against std::lower_bound/std::upper_bound and the
// scalar reference kernels for every count 0..kMaxCount, with duplicate
// keys and boundary probes; exhaustive FindByte16/FindByte4 sweeps; and a
// concurrent torn-read smoke test that hammers the kernels through the
// optimistic index protocols while writers churn the node arrays.
//
// Buffers are exact-size heap allocations so ASan turns any read past the
// clamped count — the one thing the kernels promise never to do — into a
// hard failure. The SimdKernelTorn* suite races by design (seqlock-style
// optimistic reads) and is excluded under TSan, like the other optimistic
// protocol tests.
#include "common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "index/art.h"
#include "index/btree.h"

namespace optiql {
namespace {

constexpr int kMaxCount = 64;  // Covers every leaf/inner fill level that
                               // fits the vector-block + tail structure.

template <class T>
T DrawKey(std::mt19937_64& rng, int domain) {
  // Small domains force duplicate keys; signed types get negatives.
  const auto raw = static_cast<int64_t>(rng() % domain);
  if constexpr (std::is_signed_v<T>) {
    return static_cast<T>(raw - domain / 2);
  } else {
    return static_cast<T>(raw);
  }
}

template <class T>
class SimdKernelTest : public ::testing::Test {};

// double has no LaneTraits specialization, so it exercises the generic
// dispatcher's scalar fallback path for non-SIMD key types.
using KeyTypes =
    ::testing::Types<uint64_t, uint32_t, int64_t, int32_t, double>;
TYPED_TEST_SUITE(SimdKernelTest, KeyTypes);

TYPED_TEST(SimdKernelTest, MatchesStdAndScalarOnEveryCount) {
  using T = TypeParam;
  std::mt19937_64 rng(20230517);
  for (int n = 0; n <= kMaxCount; ++n) {
    for (int domain : {2, 7, 1000}) {
      // Exact-size heap buffer: any overread is an ASan error, not slack.
      auto keys = std::make_unique<T[]>(std::max(n, 1));
      for (int i = 0; i < n; ++i) keys[i] = DrawKey<T>(rng, domain);
      std::sort(keys.get(), keys.get() + n);

      std::vector<T> probes = {DrawKey<T>(rng, domain),
                               std::numeric_limits<T>::lowest(),
                               std::numeric_limits<T>::max()};
      for (int i = 0; i < n; ++i) {
        probes.push_back(keys[i]);  // Exact hits (incl. duplicates).
        probes.push_back(static_cast<T>(keys[i] + 1));
        probes.push_back(static_cast<T>(keys[i] - 1));
      }

      for (const T& probe : probes) {
        const auto count = static_cast<uint16_t>(n);
        const auto want_lo = static_cast<uint16_t>(
            std::lower_bound(keys.get(), keys.get() + n, probe) - keys.get());
        const auto want_up = static_cast<uint16_t>(
            std::upper_bound(keys.get(), keys.get() + n, probe) - keys.get());
        EXPECT_EQ(simd::LowerBound(keys.get(), count, probe), want_lo)
            << "n=" << n << " probe=" << probe;
        EXPECT_EQ(simd::UpperBound(keys.get(), count, probe), want_up)
            << "n=" << n << " probe=" << probe;
        EXPECT_EQ(simd::ScalarLowerBound(keys.get(), count, probe), want_lo);
        EXPECT_EQ(simd::ScalarUpperBound(keys.get(), count, probe), want_up);
      }
    }
  }
}

TEST(SimdKernelByteTest, FindByte16ExhaustiveCountsAndBytes) {
  std::mt19937_64 rng(16);
  for (int round = 0; round < 64; ++round) {
    uint8_t keys[16];  // The contract requires a full 16-byte array.
    for (auto& k : keys) k = static_cast<uint8_t>(rng() % 32);  // Dups.
    for (int count = 0; count <= 16; ++count) {
      for (int b = 0; b < 256; ++b) {
        const auto byte = static_cast<uint8_t>(b);
        const int want =
            simd::ScalarFindByte(keys, static_cast<uint16_t>(count), byte);
        EXPECT_EQ(simd::FindByte16(keys, static_cast<uint16_t>(count), byte),
                  want)
            << "count=" << count << " byte=" << b;
      }
    }
  }
}

TEST(SimdKernelByteTest, FindByte16ClampsOversizedCount) {
  uint8_t keys[16];
  for (int i = 0; i < 16; ++i) keys[i] = static_cast<uint8_t>(i);
  // A torn count can exceed the physical fanout; the probe must clamp.
  EXPECT_EQ(simd::FindByte16(keys, 1000, 7), 7);
  EXPECT_EQ(simd::FindByte16(keys, 1000, 200), -1);
}

TEST(SimdKernelByteTest, FindByte4ExhaustiveCountsAndBytes) {
  std::mt19937_64 rng(4);
  for (int round = 0; round < 256; ++round) {
    uint8_t keys[4];
    for (auto& k : keys) k = static_cast<uint8_t>(rng() % 6);
    for (int count = 0; count <= 4; ++count) {
      for (int b = 0; b < 256; ++b) {
        const auto byte = static_cast<uint8_t>(b);
        const int want =
            simd::ScalarFindByte(keys, static_cast<uint16_t>(count), byte);
        EXPECT_EQ(simd::FindByte4(keys, static_cast<uint16_t>(count), byte),
                  want)
            << "count=" << count << " byte=" << b;
      }
    }
  }
}

TEST(SimdKernelByteTest, FindByte4ClampsOversizedCount) {
  const uint8_t keys[4] = {9, 8, 7, 9};
  EXPECT_EQ(simd::FindByte4(keys, 77, 9), 0);  // First match wins.
  EXPECT_EQ(simd::FindByte4(keys, 77, 3), -1);
}

TEST(SimdKernelByteTest, BackendSelectionIsCoherent) {
  ASSERT_NE(simd::kBackendName, nullptr);
#if defined(OPTIQL_FORCE_SCALAR)
  EXPECT_STREQ(simd::kBackendName, "scalar(forced)");
#else
  EXPECT_STRNE(simd::kBackendName, "scalar(forced)");
#endif
}

// --- Concurrent torn-read smoke ---
//
// The kernels run inside optimistic reads: writers rewrite key arrays and
// counts under the readers' feet, and only version validation decides
// whether a result is kept. These tests assert the memory-safety half of
// the contract (no fault, no overread — ASan-checked) and end-to-end
// correctness of retained results. Racy by design; excluded under TSan.

TEST(SimdKernelTornTest, BTreeOptimisticLookupAndScanUnderChurn) {
  using Tree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>, 512>;
  Tree tree;
  constexpr uint64_t kSpace = 8192;
  for (uint64_t k = 0; k < kSpace; k += 2) tree.Insert(k, k + 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&tree, &stop, w] {
      std::mt19937_64 rng(w);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng() % kSpace;
        if (rng() % 2 == 0) {
          tree.Insert(k, k + 1);
        } else {
          tree.Remove(k);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&tree, &stop, &found, r] {
      std::mt19937_64 rng(100 + r);
      std::vector<std::pair<uint64_t, uint64_t>> out;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng() % kSpace;
        uint64_t value = 0;
        if (tree.Lookup(k, value)) {
          ASSERT_EQ(value, k + 1);  // Validated reads are never torn.
          found.fetch_add(1, std::memory_order_relaxed);
        }
        const size_t n = tree.Scan(k, 16, out);
        uint64_t prev = 0;
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i].second, out[i].first + 1);
          if (i > 0) {
            ASSERT_GT(out[i].first, prev);
          }
          prev = out[i].first;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_GT(found.load(), 0u);
  tree.CheckInvariants();
}

TEST(SimdKernelTornTest, ArtOptimisticFindChildUnderChurn) {
  ArtTree<ArtOptiQlPolicy<OptiQL>> tree;
  constexpr uint64_t kSpace = 4096;
  for (uint64_t k = 0; k < kSpace; k += 2) tree.InsertInt(k, k + 1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> found{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&tree, &stop, w] {
      std::mt19937_64 rng(w);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng() % kSpace;
        if (rng() % 2 == 0) {
          tree.InsertInt(k, k + 1);
        } else {
          tree.RemoveInt(k);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&tree, &stop, &found, r] {
      std::mt19937_64 rng(100 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng() % kSpace;
        uint64_t value = 0;
        if (tree.LookupInt(k, value)) {
          ASSERT_EQ(value, k + 1);
          found.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  EXPECT_GT(found.load(), 0u);
}

}  // namespace
}  // namespace optiql
