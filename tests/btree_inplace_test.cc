// Latch-free in-place leaf updates (ISSUE 6 tentpole (b)): differential
// coverage of BTree*InPlacePolicy against std::map, against the locked
// update path, and under concurrent readers. The suites are named to
// match the TSan exclusion globs (*Olc* / *OptiQl*): the optimistic read
// side races by design and discards torn snapshots via validation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "index/btree.h"

namespace optiql {
namespace {

using OlcIpTree = BTree<uint64_t, uint64_t, BTreeOlcInPlacePolicy>;
using OptiQlIpTree = BTree<uint64_t, uint64_t, BTreeOptiQlInPlacePolicy<OptiQL>>;
using OlcBaseTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using OptiQlBaseTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;

// Mixed single-threaded workload mirrored into std::map: every operation's
// result must agree, and the final contents must match pair for pair. The
// in-place path handles the update/upsert-hit cases; inserts, removes and
// upsert-misses route through the locked structural path — the mix keeps
// crossing between the two.
template <class Tree>
void DifferentialVsStdMap() {
  Tree tree;
  std::map<uint64_t, uint64_t> model;
  Xoshiro256 rng(42);
  constexpr uint64_t kKeySpace = 4096;
  constexpr int kOps = 20000;

  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.NextBounded(kKeySpace);
    const uint64_t value = rng.Next();
    switch (rng.NextBounded(5)) {
      case 0: {  // Insert: wins only if absent.
        const bool inserted = tree.Insert(key, value);
        EXPECT_EQ(inserted, model.emplace(key, value).second);
        break;
      }
      case 1: {  // Update: succeeds only if present (in-place when it does).
        const bool updated = tree.Update(key, value);
        const auto it = model.find(key);
        EXPECT_EQ(updated, it != model.end());
        if (it != model.end()) {
          it->second = value;
        }
        break;
      }
      case 2: {  // Upsert: in-place on a hit, locked insert on a miss.
        tree.Upsert(key, value);
        model[key] = value;
        break;
      }
      case 3: {  // Remove.
        EXPECT_EQ(tree.Remove(key), model.erase(key) != 0);
        break;
      }
      default: {  // Lookup.
        uint64_t out = 0;
        const bool found = tree.Lookup(key, out);
        const auto it = model.find(key);
        ASSERT_EQ(found, it != model.end());
        if (found) {
          EXPECT_EQ(out, it->second);
        }
        break;
      }
    }
  }

  EXPECT_EQ(tree.Size(), model.size());
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  EXPECT_EQ(tree.Scan(0, model.size() + 1, scanned), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : scanned) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
  EXPECT_EQ(it, model.end());
  tree.CheckInvariants();
}

TEST(BTreeInPlaceOlcTest, DifferentialVsStdMap) {
  DifferentialVsStdMap<OlcIpTree>();
}
TEST(BTreeInPlaceOptiQlTest, DifferentialVsStdMap) {
  DifferentialVsStdMap<OptiQlIpTree>();
}

// The concurrent differential against the locked path: run the same
// deterministic-final workload — per-thread disjoint key ranges updated
// round by round, with readers hammering the hot keys throughout — on the
// in-place tree and on its locked-update baseline, then require identical
// final contents. Readers check the value encoding on every hit: an
// in-place store that landed in the wrong slot or tore would break
// `value / kStride == key`.
template <class IpTree, class BaseTree>
void ConcurrentDifferentialVsLockedPath() {
  constexpr uint64_t kKeys = 1024;
  constexpr uint64_t kStride = 1ull << 20;
  constexpr uint64_t kRounds = 60;
  constexpr int kUpdaters = 2;

  auto run = [&](auto& tree) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(tree.Insert(k, k * kStride));
    }
    std::atomic<bool> stop{false};
    std::atomic<bool> bad{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&, r] {
        Xoshiro256 rng(static_cast<uint64_t>(r) + 99);
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t key = rng.NextBounded(kKeys);
          uint64_t out = 0;
          if (!tree.Lookup(key, out) || out / kStride != key ||
              out % kStride > kRounds) {
            bad.store(true, std::memory_order_release);
          }
        }
      });
    }
    std::vector<std::thread> updaters;
    for (int u = 0; u < kUpdaters; ++u) {
      updaters.emplace_back([&, u] {
        const uint64_t begin = kKeys / kUpdaters * static_cast<uint64_t>(u);
        const uint64_t end = begin + kKeys / kUpdaters;
        for (uint64_t round = 1; round <= kRounds; ++round) {
          for (uint64_t k = begin; k < end; ++k) {
            ASSERT_TRUE(tree.Update(k, k * kStride + round));
          }
        }
      });
    }
    for (auto& t : updaters) t.join();
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    EXPECT_FALSE(bad.load(std::memory_order_acquire));
    tree.CheckInvariants();
  };

  IpTree inplace;
  BaseTree locked;
  run(inplace);
  run(locked);

  // Same deterministic final state on both paths.
  std::vector<std::pair<uint64_t, uint64_t>> a;
  std::vector<std::pair<uint64_t, uint64_t>> b;
  EXPECT_EQ(inplace.Scan(0, kKeys + 1, a), kKeys);
  EXPECT_EQ(locked.Scan(0, kKeys + 1, b), kKeys);
  EXPECT_EQ(a, b);
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(a[k].second, k * kStride + kRounds);
  }
}

TEST(BTreeInPlaceOlcTest, ConcurrentDifferentialVsLockedPath) {
  ConcurrentDifferentialVsLockedPath<OlcIpTree, OlcBaseTree>();
}
TEST(BTreeInPlaceOptiQlTest, ConcurrentDifferentialVsLockedPath) {
  ConcurrentDifferentialVsLockedPath<OptiQlIpTree, OptiQlBaseTree>();
}

// Upserts of missing keys must fall back to the locked insert path (an
// insertion is structural); upserts of present keys go in place. Both
// must leave the tree consistent.
template <class Tree>
void UpsertMissRoutesToLockedInsert() {
  Tree tree;
  constexpr uint64_t kKeys = 2000;
  for (uint64_t k = 0; k < kKeys; k += 2) tree.Upsert(k, k);  // Misses.
  EXPECT_EQ(tree.Size(), kKeys / 2);
  for (uint64_t k = 0; k < kKeys; k += 2) tree.Upsert(k, k + 1);  // Hits.
  EXPECT_EQ(tree.Size(), kKeys / 2);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    if (k % 2 == 0) {
      ASSERT_TRUE(tree.Lookup(k, out));
      EXPECT_EQ(out, k + 1);
    } else {
      EXPECT_FALSE(tree.Lookup(k, out));
    }
  }
  tree.CheckInvariants();
}

TEST(BTreeInPlaceOlcTest, UpsertMissRoutesToLockedInsert) {
  UpsertMissRoutesToLockedInsert<OlcIpTree>();
}
TEST(BTreeInPlaceOptiQlTest, UpsertMissRoutesToLockedInsert) {
  UpsertMissRoutesToLockedInsert<OptiQlIpTree>();
}

// Updates racing inserts/removes on neighboring keys: slot positions keep
// shifting under the in-place attempt, exercising the validation +
// TryUpgrade fallback edges rather than the happy path.
template <class Tree>
void UpdatesRaceStructuralChanges() {
  Tree tree;
  constexpr uint64_t kStable = 512;
  constexpr uint64_t kChurn = 512;
  constexpr uint64_t kStride = 1ull << 20;
  for (uint64_t k = 0; k < kStable; ++k) {
    ASSERT_TRUE(tree.Insert(2 * k, 2 * k * kStride));  // Even keys stay.
  }
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Odd keys interleave with the stable ones, forcing slot shifts and
    // splits/merges in the same leaves the updater is writing in place.
    while (!stop.load(std::memory_order_acquire)) {
      for (uint64_t k = 0; k < kChurn; ++k) tree.Upsert(2 * k + 1, k);
      for (uint64_t k = 0; k < kChurn; ++k) tree.Remove(2 * k + 1);
    }
  });
  constexpr uint64_t kRounds = 40;
  for (uint64_t round = 1; round <= kRounds; ++round) {
    for (uint64_t k = 0; k < kStable; ++k) {
      ASSERT_TRUE(tree.Update(2 * k, 2 * k * kStride + round));
    }
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  for (uint64_t k = 0; k < kStable; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(2 * k, out));
    EXPECT_EQ(out, 2 * k * kStride + kRounds);
  }
  tree.CheckInvariants();
}

TEST(BTreeInPlaceOlcTest, UpdatesRaceStructuralChanges) {
  UpdatesRaceStructuralChanges<OlcIpTree>();
}
TEST(BTreeInPlaceOptiQlTest, UpdatesRaceStructuralChanges) {
  UpdatesRaceStructuralChanges<OptiQlIpTree>();
}

}  // namespace
}  // namespace optiql
