// ThreadRegistry: stable dense IDs, reuse after exit, reverse-order exit
// hooks, and liveness accounting. The registry is the single registration
// point for the epoch manager's slots and the qnode caches, so these
// properties underpin both.
#include "sync/thread_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace optiql {
namespace {

TEST(ThreadRegistryTest, IdIsStableWithinThread) {
  const uint32_t first = ThreadRegistry::CurrentThreadId();
  const uint32_t second = ThreadRegistry::CurrentThreadId();
  EXPECT_EQ(first, second);
  EXPECT_LT(first, ThreadRegistry::kMaxThreads);
}

TEST(ThreadRegistryTest, ConcurrentThreadsGetDistinctIds) {
  constexpr int kThreads = 16;
  std::vector<uint32_t> ids(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[static_cast<size_t>(i)] = ThreadRegistry::CurrentThreadId();
      // Hold the registration until every thread has one, so the IDs must
      // all be simultaneously live (no reuse can make them collide).
      arrived.fetch_add(1, std::memory_order_acq_rel);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (arrived.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::yield();
  }
  release.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::set<uint32_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kThreads));
  for (uint32_t id : ids) EXPECT_LT(id, ThreadRegistry::kMaxThreads);
}

TEST(ThreadRegistryTest, IdsAreReusedAfterThreadExit) {
  uint32_t first_id = ThreadRegistry::kInvalidId;
  std::thread a([&] { first_id = ThreadRegistry::CurrentThreadId(); });
  a.join();
  const uint32_t watermark = ThreadRegistry::Instance().high_watermark();

  // The freed ID is the lowest available, so a successor (with no other
  // registrations racing) gets the same one and the watermark holds.
  uint32_t second_id = ThreadRegistry::kInvalidId;
  std::thread b([&] { second_id = ThreadRegistry::CurrentThreadId(); });
  b.join();
  EXPECT_EQ(first_id, second_id);
  EXPECT_EQ(ThreadRegistry::Instance().high_watermark(), watermark);
}

TEST(ThreadRegistryTest, ExitHooksRunInReverseRegistrationOrder) {
  static std::vector<int> order;
  order.clear();
  std::thread t([] {
    ThreadRegistry::AtThreadExit([](void*) { order.push_back(1); }, nullptr);
    ThreadRegistry::AtThreadExit([](void*) { order.push_back(2); }, nullptr);
    ThreadRegistry::AtThreadExit([](void*) { order.push_back(3); }, nullptr);
  });
  t.join();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(ThreadRegistryTest, ExitHookReceivesItsArgument) {
  static std::atomic<int> value{0};
  value = 0;
  static int payload = 42;
  std::thread t([] {
    ThreadRegistry::AtThreadExit(
        [](void* arg) {
          value.store(*static_cast<int*>(arg), std::memory_order_release);
        },
        &payload);
  });
  t.join();
  EXPECT_EQ(value.load(std::memory_order_acquire), 42);
}

TEST(ThreadRegistryTest, LiveThreadCountTracksRegistrations) {
  const uint32_t before = ThreadRegistry::Instance().live_threads();
  std::atomic<bool> registered{false};
  std::atomic<bool> release{false};
  std::thread t([&] {
    ThreadRegistry::CurrentThreadId();
    registered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!registered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ThreadRegistry::Instance().live_threads(), before + 1);
  release.store(true, std::memory_order_release);
  t.join();
  EXPECT_EQ(ThreadRegistry::Instance().live_threads(), before);
}

}  // namespace
}  // namespace optiql
