// Statistical property tests for the workload generators: the self-similar
// 80/20 law (paper §7.3), Zipf skew ordering, uniform coverage, PRNG stream
// independence, and key-space encodings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "common/random.h"
#include "workload/distributions.h"
#include "workload/key_generator.h"

namespace optiql {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).Next(), c.Next());
}

TEST(Xoshiro256Test, DoubleIsInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, BoundedStaysInBounds) {
  Xoshiro256 rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(UniformDistributionTest, CoversTheWholeRange) {
  Xoshiro256 rng(3);
  UniformDistribution dist(50);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(dist.Next(rng));
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(SelfSimilarDistributionTest, EightyTwentyLaw) {
  // Paper §7.3: with skew 0.2, 80% of accesses target the first 20% of the
  // key space (recursively).
  Xoshiro256 rng(17);
  constexpr uint64_t kN = 100000;
  SelfSimilarDistribution dist(kN, 0.2);
  constexpr int kSamples = 200000;
  int hot = 0;
  int hot_of_hot = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = dist.Next(rng);
    ASSERT_LT(v, kN);
    if (v < kN / 5) ++hot;
    if (v < kN / 25) ++hot_of_hot;
  }
  const double hot_fraction = static_cast<double>(hot) / kSamples;
  EXPECT_NEAR(hot_fraction, 0.8, 0.02);
  // Recursion: 64% of accesses hit the first 4% of keys.
  const double hot2_fraction = static_cast<double>(hot_of_hot) / kSamples;
  EXPECT_NEAR(hot2_fraction, 0.64, 0.02);
}

TEST(SelfSimilarDistributionTest, DenseHotHead) {
  // The paper notes the first 256 keys of a dense 100M keyspace absorb
  // ~16% of accesses under skew 0.2.
  Xoshiro256 rng(19);
  constexpr uint64_t kN = 100000000;
  SelfSimilarDistribution dist(kN, 0.2);
  constexpr int kSamples = 400000;
  int head = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (dist.Next(rng) < 256) ++head;
  }
  const double head_fraction = static_cast<double>(head) / kSamples;
  EXPECT_NEAR(head_fraction, 0.16, 0.02);
}

TEST(SelfSimilarDistributionTest, HigherSkewConcentratesMore) {
  Xoshiro256 rng(23);
  constexpr uint64_t kN = 10000;
  SelfSimilarDistribution mild(kN, 0.4);
  SelfSimilarDistribution strong(kN, 0.1);
  int mild_hot = 0, strong_hot = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Next(rng) < kN / 10) ++mild_hot;
    if (strong.Next(rng) < kN / 10) ++strong_hot;
  }
  EXPECT_GT(strong_hot, mild_hot);
}

TEST(ZipfianDistributionTest, RankFrequencyIsMonotone) {
  Xoshiro256 rng(29);
  ZipfianDistribution dist(1000, 0.9);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 300000; ++i) {
    const uint64_t v = dist.Next(rng);
    ASSERT_LT(v, 1000u);
    ++counts[v];
  }
  // Head ranks dominate and decrease (allowing sampling noise by comparing
  // well-separated ranks).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  EXPECT_GT(counts[100], counts[900]);
  // Rank 0 of a theta=0.9 Zipf over 1000 items draws a large share
  // (~1/zeta(n,theta) plus inversion rounding): well above 6%.
  EXPECT_GT(counts[0], 20000);
}

TEST(ZipfianDistributionTest, LowThetaApproachesUniform) {
  Xoshiro256 rng(31);
  ZipfianDistribution dist(100, 0.01);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[dist.Next(rng)];
  // No bucket should dominate under near-zero skew.
  EXPECT_LT(*std::max_element(counts.begin(), counts.end()), 3000);
}

TEST(KeyGeneratorTest, ScrambleIsInjectiveOnSample) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(ScrambleKey(i)).second);
  }
}

TEST(KeyGeneratorTest, DenseAndSparseSpaces) {
  EXPECT_EQ(MakeKey(5, KeySpace::kDense), 5u);
  EXPECT_EQ(MakeKey(5, KeySpace::kSparse), ScrambleKey(5));
  EXPECT_NE(MakeKey(5, KeySpace::kSparse), 5u);
}

TEST(KeyGeneratorTest, BigEndianPreservesOrderBytewise) {
  // Byte-wise comparison of big-endian encodings must match integer order.
  const uint64_t values[] = {0, 1, 255, 256, 65535, 1ULL << 32,
                             (1ULL << 32) + 1, ~0ULL};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    const uint64_t a = ToBigEndian(values[i]);
    const uint64_t b = ToBigEndian(values[i + 1]);
    EXPECT_LT(std::memcmp(&a, &b, 8), 0)
        << values[i] << " vs " << values[i + 1];
  }
  EXPECT_EQ(FromBigEndian(ToBigEndian(0x1234567890ABCDEFULL)),
            0x1234567890ABCDEFULL);
}

}  // namespace
}  // namespace optiql
