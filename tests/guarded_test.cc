// Guarded<T, Lock> closure API: read/write semantics, retry-on-invalidation
// behaviour, void and value-returning closures, and concurrent consistency.
#include "core/guarded.h"

#include "locks/optlock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace optiql {
namespace {

TEST(GuardedTest, LoadStoreRoundTrip) {
  Guarded<int> guarded(41);
  EXPECT_EQ(guarded.Load(), 41);
  guarded.Store(42);
  EXPECT_EQ(guarded.Load(), 42);
}

TEST(GuardedTest, DefaultConstructedValue) {
  Guarded<int> guarded;
  EXPECT_EQ(guarded.Load(), 0);
}

TEST(GuardedTest, WithReadReturnsComputedValue) {
  struct Point {
    int x = 3;
    int y = 4;
  };
  Guarded<Point> guarded;
  const int manhattan =
      guarded.WithRead([](const Point& p) { return p.x + p.y; });
  EXPECT_EQ(manhattan, 7);
}

TEST(GuardedTest, VoidClosures) {
  Guarded<std::string> guarded(std::string("abc"));
  std::string copy;
  guarded.WithRead([&](const std::string& s) { copy = s; });
  EXPECT_EQ(copy, "abc");
  guarded.WithWrite([](std::string& s) { s += "def"; });
  EXPECT_EQ(guarded.Load(), "abcdef");
}

TEST(GuardedTest, WithWriteReturnsResult) {
  Guarded<int> guarded(10);
  const int doubled = guarded.WithWrite([](int& v) {
    v *= 2;
    return v;
  });
  EXPECT_EQ(doubled, 20);
  EXPECT_EQ(guarded.Load(), 20);
}

TEST(GuardedTest, WorksWithOptLockToo) {
  Guarded<int, OptLock> guarded(5);
  guarded.WithWrite([](int& v) { v = 6; });
  EXPECT_EQ(guarded.Load(), 6);
}

TEST(GuardedTest, ConcurrentReadersNeverSeeTornPair) {
  struct Pair {
    int64_t a = 0;
    int64_t b = 0;
  };
  Guarded<Pair> guarded;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Pair snapshot = guarded.Load();
        if (snapshot.a != snapshot.b) {
          torn.store(true, std::memory_order_release);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  constexpr int kWriters = 2;
  constexpr int kWrites = 5000;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        guarded.WithWrite([](Pair& p) {
          p.a += 1;
          for (int spin = 0; spin < 8; ++spin) {
            asm volatile("" ::: "memory");
          }
          p.b += 1;
        });
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  const Pair final = guarded.Load();
  EXPECT_EQ(final.a, kWriters * kWrites);
  EXPECT_EQ(final.b, kWriters * kWrites);
}

TEST(GuardedTest, ReadClosureMayRunMultipleTimes) {
  // Self-invalidate: the first read attempt overlaps a write performed from
  // inside the closure body via a separate thread trigger. Demonstrates the
  // documented at-least-once contract.
  Guarded<int> guarded(1);
  std::atomic<int> runs{0};
  std::atomic<bool> triggered{false};
  const int result = guarded.WithRead([&](const int& v) {
    runs.fetch_add(1, std::memory_order_acq_rel);
    if (!triggered.exchange(true, std::memory_order_acq_rel)) {
      // Invalidate the first attempt from another thread (a writer from
      // this thread would deadlock the read loop only for pessimistic
      // locks; for optimistic ones it would succeed, but using a separate
      // thread keeps the contract honest).
      std::thread([&] { guarded.Store(2); }).join();
    }
    return v;
  });
  EXPECT_GE(runs.load(), 2);
  EXPECT_EQ(result, 2);
}

}  // namespace
}  // namespace optiql
