// Typed suite for the optimistic-reader interface shared by OptLock and
// OptiQL (paper Algorithm 2 / Figure 2b): snapshot semantics, validation,
// version monotonicity, and a seqlock-style reader/writer stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/lock_adapters.h"

namespace optiql {
namespace {

template <class Lock>
class OptimisticLockTest : public ::testing::Test {};

using OptimisticTypes = ::testing::Types<OptLock, OptBackoffLock, OptiQL,
                                         OptiQLNor, OptiCLH>;
TYPED_TEST_SUITE(OptimisticLockTest, OptimisticTypes);

TYPED_TEST(OptimisticLockTest, FreeLockAdmitsAndValidatesReader) {
  TypeParam lock;
  uint64_t v = 0;
  EXPECT_TRUE(lock.AcquireSh(v));
  EXPECT_TRUE(lock.ReleaseSh(v));
}

TYPED_TEST(OptimisticLockTest, ReaderFailsWhileWriterHolds) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  typename Ops::Ctx ctx;
  Ops::AcquireEx(lock, ctx);
  uint64_t v = 0;
  EXPECT_FALSE(lock.AcquireSh(v));
  Ops::ReleaseEx(lock, ctx);
  EXPECT_TRUE(lock.AcquireSh(v));
  EXPECT_TRUE(lock.ReleaseSh(v));
}

TYPED_TEST(OptimisticLockTest, ValidationFailsAfterInterveningWriter) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  typename Ops::Ctx ctx;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  Ops::AcquireEx(lock, ctx);
  Ops::ReleaseEx(lock, ctx);
  EXPECT_FALSE(lock.ReleaseSh(v));
}

TYPED_TEST(OptimisticLockTest, ValidationFailsWhileWriterActive) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  typename Ops::Ctx ctx;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  Ops::AcquireEx(lock, ctx);
  EXPECT_FALSE(lock.ReleaseSh(v));
  Ops::ReleaseEx(lock, ctx);
}

TYPED_TEST(OptimisticLockTest, SnapshotChangesAcrossCriticalSections) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  typename Ops::Ctx ctx;
  uint64_t v1 = 0, v2 = 0;
  ASSERT_TRUE(lock.AcquireSh(v1));
  Ops::AcquireEx(lock, ctx);
  Ops::ReleaseEx(lock, ctx);
  ASSERT_TRUE(lock.AcquireSh(v2));
  EXPECT_NE(v1, v2);
  // Each subsequent writer changes the snapshot again.
  Ops::AcquireEx(lock, ctx);
  Ops::ReleaseEx(lock, ctx);
  uint64_t v3 = 0;
  ASSERT_TRUE(lock.AcquireSh(v3));
  EXPECT_NE(v2, v3);
  EXPECT_NE(v1, v3);
}

TYPED_TEST(OptimisticLockTest, ReadersDoNotDisturbEachOther) {
  TypeParam lock;
  uint64_t v1 = 0, v2 = 0;
  ASSERT_TRUE(lock.AcquireSh(v1));
  ASSERT_TRUE(lock.AcquireSh(v2));
  EXPECT_EQ(v1, v2);
  EXPECT_TRUE(lock.ReleaseSh(v1));
  EXPECT_TRUE(lock.ReleaseSh(v2));
  EXPECT_TRUE(lock.ReleaseSh(v1));  // Validation is idempotent.
}

TYPED_TEST(OptimisticLockTest, SeqlockStressNoTornReads) {
  // Writers keep two mirrored counters in sync; readers either observe a
  // consistent pair or fail validation. Any torn read that validates is a
  // correctness bug.
  using Ops = LockOps<TypeParam>;
  struct Shared {
    TypeParam lock;
    volatile int64_t a = 0;
    volatile int64_t b = 0;
  };
  Shared shared;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> validated_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      typename Ops::Ctx ctx;
      while (!stop.load(std::memory_order_acquire)) {
        int64_t a = 0, b = 0;
        const bool ok = Ops::ReadCritical(shared.lock, ctx, [&] {
          a = shared.a;
          b = shared.b;
        });
        if (ok) {
          ASSERT_EQ(a, b);
          validated_reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  constexpr int kWriters = 2;
  constexpr int kWrites = 4000;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      typename Ops::Ctx ctx;
      for (int i = 0; i < kWrites; ++i) {
        Ops::AcquireEx(shared.lock, ctx);
        shared.a = shared.a + 1;
        // Widen the window between the two stores.
        for (int spin = 0; spin < 8; ++spin) {
          asm volatile("" ::: "memory");
        }
        shared.b = shared.b + 1;
        Ops::ReleaseEx(shared.lock, ctx);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(shared.a, kWriters * kWrites);
  EXPECT_EQ(shared.b, kWriters * kWrites);
}

TYPED_TEST(OptimisticLockTest, ReadersEventuallySucceedUnderWriters) {
  // Liveness: with intermittent writers, optimistic readers must complete
  // some successful reads (for OptiQL this also exercises validation
  // against opportunistic-read snapshots).
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  std::atomic<bool> stop{false};
  uint64_t successes = 0;

  std::thread writer([&] {
    typename Ops::Ctx ctx;
    while (!stop.load(std::memory_order_acquire)) {
      Ops::AcquireEx(lock, ctx);
      Ops::ReleaseEx(lock, ctx);
      std::this_thread::yield();
    }
  });

  typename Ops::Ctx ctx;
  for (int i = 0; i < 20000 || successes == 0; ++i) {
    if (Ops::ReadCritical(lock, ctx, [] {})) ++successes;
    if (i > 2000000) break;  // Safety valve.
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(successes, 0u);
}

}  // namespace
}  // namespace optiql
