// Benchmark-harness tests: histogram quantile accuracy, merge semantics,
// the fixed-duration runner, fairness metric, environment parsing, and a
// smoke run of the micro/index bench frameworks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "harness/bench_runner.h"
#include "harness/histogram.h"
#include "harness/index_bench.h"
#include "harness/micro_bench.h"
#include "index/btree.h"

namespace optiql {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 31u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 16u);
}

TEST(HistogramTest, QuantilesWithinRelativeErrorBound) {
  Histogram h;
  // Uniform 1..100000.
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto expected = static_cast<double>(q * 100000);
    const auto got = static_cast<double>(h.ValueAtQuantile(q));
    EXPECT_NEAR(got, expected, expected * 0.05) << "q=" << q;
  }
}

TEST(HistogramTest, MeanAndExtremes) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(90);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 90u);
  EXPECT_DOUBLE_EQ(h.Mean(), 40.0);
}

TEST(HistogramTest, MergeCombinesPopulations) {
  Histogram a, b;
  for (uint64_t v = 0; v < 1000; ++v) a.Record(v);
  for (uint64_t v = 10000; v < 11000; ++v) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_GE(a.ValueAtQuantile(0.75), 10000u);
  EXPECT_LT(a.ValueAtQuantile(0.25), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);
}

TEST(HistogramTest, LargeValuesBucketedWithBoundedError) {
  Histogram h;
  const uint64_t big = 123456789012ULL;
  h.Record(big);
  const uint64_t got = h.ValueAtQuantile(1.0);
  EXPECT_GE(got, big);
  EXPECT_LE(static_cast<double>(got - big), static_cast<double>(big) / 32);
}

TEST(BenchRunnerTest, RunsAllThreadsForDuration) {
  RunOptions options;
  options.threads = 3;
  options.duration_ms = 60;
  options.pin_threads = false;
  RunResult result =
      RunFixedDuration(options, [](int, const std::atomic<bool>& stop,
                                   WorkerStats& stats) {
        while (!stop.load(std::memory_order_acquire)) ++stats.ops;
      });
  EXPECT_EQ(result.per_thread.size(), 3u);
  for (const auto& s : result.per_thread) EXPECT_GT(s.ops, 0u);
  EXPECT_GE(result.seconds, 0.05);
  EXPECT_GT(result.MopsPerSec(), 0.0);
  EXPECT_EQ(result.TotalOps(), result.per_thread[0].ops +
                                   result.per_thread[1].ops +
                                   result.per_thread[2].ops);
}

TEST(BenchRunnerTest, JainFairnessIndex) {
  RunResult result;
  result.per_thread.resize(4);
  for (auto& s : result.per_thread) s.ops = 100;
  EXPECT_DOUBLE_EQ(result.JainFairness(), 1.0);
  // One thread hogging: index = (sum^2)/(n*sumsq) = 400^2/(4*160000)=0.25.
  result.per_thread[0].ops = 400;
  result.per_thread[1].ops = 0;
  result.per_thread[2].ops = 0;
  result.per_thread[3].ops = 0;
  EXPECT_DOUBLE_EQ(result.JainFairness(), 0.25);
}

TEST(BenchRunnerTest, EnvIntParsing) {
  unsetenv("OPTIQL_TEST_ENVINT");
  EXPECT_EQ(EnvInt("OPTIQL_TEST_ENVINT", 7), 7);
  setenv("OPTIQL_TEST_ENVINT", "123", 1);
  EXPECT_EQ(EnvInt("OPTIQL_TEST_ENVINT", 7), 123);
  setenv("OPTIQL_TEST_ENVINT", "junk", 1);
  EXPECT_EQ(EnvInt("OPTIQL_TEST_ENVINT", 7), 7);
  unsetenv("OPTIQL_TEST_ENVINT");
}

TEST(BenchRunnerTest, ThreadCountsFromEnvironment) {
  setenv("OPTIQL_BENCH_THREADS", "1,3,9", 1);
  EXPECT_EQ(BenchThreadCounts(), (std::vector<int>{1, 3, 9}));
  unsetenv("OPTIQL_BENCH_THREADS");
  const auto counts = BenchThreadCounts();
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front(), 1);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], counts[i - 1] * 2);
  }
}

TEST(RepeatedResultTest, Statistics) {
  RepeatedResult r;
  r.mops = {10, 12, 14};
  EXPECT_DOUBLE_EQ(r.Mean(), 12.0);
  EXPECT_NEAR(r.StdDev(), 2.0, 1e-9);
  EXPECT_NEAR(r.Ci95(), 1.96 * 2.0 / std::sqrt(3.0), 1e-9);
  RepeatedResult single;
  single.mops = {5};
  EXPECT_DOUBLE_EQ(single.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(single.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(single.Ci95(), 0.0);
}

TEST(RepeatedResultTest, RunRepeatedCollectsAllRuns) {
  RunOptions options;
  options.threads = 2;
  options.duration_ms = 20;
  options.pin_threads = false;
  const RepeatedResult result = RunRepeated(
      options,
      [](int, const std::atomic<bool>& stop, WorkerStats& stats) {
        while (!stop.load(std::memory_order_acquire)) ++stats.ops;
      },
      /*repeats=*/3);
  ASSERT_EQ(result.mops.size(), 3u);
  for (double m : result.mops) EXPECT_GT(m, 0.0);
  EXPECT_GT(result.Mean(), 0.0);
}

TEST(MicroBenchTest, ExclusiveOnlySmoke) {
  MicroBenchConfig config;
  config.num_locks = 4;
  config.read_pct = 0;
  config.threads = 3;
  config.duration_ms = 50;
  const RunResult result = RunLockMicroBench<OptiQL>(config);
  EXPECT_GT(result.TotalOps(), 0u);
  EXPECT_EQ(result.TotalReadsAttempted(), 0u);
}

TEST(MicroBenchTest, MixedReadsRecordSuccessRates) {
  MicroBenchConfig config;
  config.num_locks = 1;  // Extreme contention.
  config.read_pct = 50;
  config.threads = 4;
  config.duration_ms = 80;
  const RunResult result = RunLockMicroBench<OptiQL>(config);
  EXPECT_GT(result.TotalOps(), 0u);
  EXPECT_GT(result.TotalReadsAttempted(), 0u);
  EXPECT_GT(result.TotalReadsOk(), 0u);
  EXPECT_LE(result.TotalReadsOk(), result.TotalReadsAttempted());
}

TEST(MicroBenchTest, PerThreadLockMeansNoContention) {
  MicroBenchConfig config;
  config.num_locks = 0;  // One lock per thread.
  config.read_pct = 0;
  config.threads = 2;
  config.duration_ms = 50;
  const RunResult result = RunLockMicroBench<TtsLock>(config);
  EXPECT_GT(result.TotalOps(), 0u);
  // Perfectly partitioned: fairness should be high.
  EXPECT_GT(result.JainFairness(), 0.5);
}

TEST(IndexBenchTest, PreloadAndMixedRunSmoke) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  IndexWorkload workload;
  workload.records = 5000;
  workload.lookup_pct = 50;
  workload.update_pct = 30;
  workload.insert_pct = 15;
  workload.remove_pct = 5;
  workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
  workload.threads = 3;
  workload.duration_ms = 80;
  PreloadIndex(tree, workload);
  EXPECT_EQ(tree.Size(), workload.records);
  const RunResult result = RunIndexBench(tree, workload);
  EXPECT_GT(result.TotalOps(), 0u);
  tree.CheckInvariants();
  // Lookups of the preloaded range still work.
  uint64_t out = 0;
  EXPECT_TRUE(tree.Lookup(0, out));
}

TEST(IndexBenchTest, LatencySamplingPopulatesHistogram) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  IndexWorkload workload;
  workload.records = 2000;
  workload.lookup_pct = 100;
  workload.threads = 2;
  workload.duration_ms = 60;
  workload.latency_sampling = 16;
  PreloadIndex(tree, workload);
  const RunResult result = RunIndexBench(tree, workload);
  const Histogram merged = result.MergedLatency();
  EXPECT_GT(merged.count(), 0u);
  EXPECT_GT(merged.ValueAtQuantile(0.99), 0u);
}

}  // namespace
}  // namespace optiql
