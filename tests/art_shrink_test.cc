// ART node shrinking on remove (adaptivity in both directions): node types
// step back down as children leave, the tree stays correct through
// grow/shrink cycles, and concurrent readers survive shrink replacements.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "index/art.h"

namespace optiql {
namespace {

using OlcArt = ArtTree<ArtOlcPolicy>;
using OptiQlArt = ArtTree<ArtOptiQlPolicy<OptiQL>>;

template <class Tree>
class ArtShrinkTest : public ::testing::Test {};

// Protocol names (ArtShrinkTest/Olc, ...) so the TSan exclusion list in
// tests/CMakeLists.txt can filter the optimistic variants by name.
struct ShrinkNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcArt>) return "Olc";
    if (std::is_same_v<T, OptiQlArt>) return "OptiQl";
    return "Unknown";
  }
};

using ShrinkTypes = ::testing::Types<OlcArt, OptiQlArt>;
TYPED_TEST_SUITE(ArtShrinkTest, ShrinkTypes, ShrinkNames);

TYPED_TEST(ArtShrinkTest, NodeTypesStepDownAsKeysLeave) {
  TypeParam tree;
  // 200 keys under one last-level node: forces a Node256 there.
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(tree.InsertInt(k, k));
  }
  auto census = tree.NodeTypeCensus();
  ASSERT_GE(census[3], 2u);  // Fixed root + the grown last-level node.

  // Remove down to 20 keys: the last-level Node256 must shrink (≤40
  // children triggers 256→48; ≤12 triggers 48→16).
  for (uint64_t k = 20; k < 200; ++k) {
    ASSERT_TRUE(tree.RemoveInt(k));
  }
  census = tree.NodeTypeCensus();
  EXPECT_EQ(census[3], 1u);  // Only the fixed root remains a Node256.
  tree.CheckInvariants();

  // Down to 2 keys: ends as a Node4.
  for (uint64_t k = 2; k < 20; ++k) {
    ASSERT_TRUE(tree.RemoveInt(k));
  }
  census = tree.NodeTypeCensus();
  EXPECT_EQ(census[0] + census[1], census[0] + census[1]);  // Sanity.
  EXPECT_EQ(census[3], 1u);
  EXPECT_EQ(census[2], 0u);  // No Node48 left.
  uint64_t out = 0;
  ASSERT_TRUE(tree.LookupInt(0, out));
  ASSERT_TRUE(tree.LookupInt(1, out));
  tree.CheckInvariants();
}

TYPED_TEST(ArtShrinkTest, GrowShrinkCyclesStayCorrect) {
  TypeParam tree;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(tree.InsertInt(k, k + static_cast<uint64_t>(cycle)));
    }
    tree.CheckInvariants();
    for (uint64_t k = 0; k < 300; ++k) {
      ASSERT_TRUE(tree.RemoveInt(k));
    }
    EXPECT_EQ(tree.Size(), 0u);
    tree.CheckInvariants();
  }
}

TYPED_TEST(ArtShrinkTest, ReadersSurviveConcurrentShrinks) {
  TypeParam tree;
  constexpr uint64_t kStable = 8;  // Low keys that never leave.
  for (uint64_t k = 0; k < kStable; ++k) {
    ASSERT_TRUE(tree.InsertInt(k, k * 7));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.NextBounded(kStable);
        uint64_t out = 0;
        if (!tree.LookupInt(key, out) || out != key * 7) {
          bad.store(true, std::memory_order_release);
        }
      }
    });
  }
  // Churners repeatedly fill and drain the same node range, driving
  // grow→shrink→grow transitions around the stable keys.
  std::vector<std::thread> churners;
  for (int c = 0; c < 2; ++c) {
    churners.emplace_back([&, c] {
      for (int cycle = 0; cycle < 60; ++cycle) {
        const uint64_t base =
            kStable + static_cast<uint64_t>(c) * 128;
        for (uint64_t k = 0; k < 100; ++k) tree.InsertInt(base + k, k);
        for (uint64_t k = 0; k < 100; ++k) tree.RemoveInt(base + k);
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(tree.Size(), kStable);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace optiql
