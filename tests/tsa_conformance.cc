// Thread-safety-analysis conformance TU.
//
// This file exercises every annotated lock with *correct* protocol usage
// and implicitly instantiates the coupling index templates, giving Clang's
// -Wthread-safety pass (CI job `thread-safety`) concrete instantiations to
// analyze. Templates are only analyzed at instantiation, so without this
// TU the annotations could rot silently. Implicit instantiation is
// deliberate: explicit `template class` instantiation would compile every
// member — including the optimistic helpers that TSA cannot model — while
// calling only the public ops instantiates exactly the annotated surface.
//
// It is also compiled by the regular (GCC) build as an object library so
// signature drift breaks the build locally, not just in CI.
//
// Nothing here runs; functions below only need to compile warning-free.

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "index/art_coupling.h"
#include "index/btree.h"
#include "locks/clh_lock.h"
#include "locks/mcs_lock.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/shared_mutex_lock.h"
#include "locks/ticket_lock.h"
#include "locks/tts_lock.h"
#include "qnode/qnode_pool.h"
#include "sync/txn_ops.h"

namespace optiql {
namespace tsa_conformance {

// --- Guarded data: proves ACQUIRE/RELEASE annotations actually convey the
// capability to the analysis (a GUARDED_BY access compiles only while the
// lock is held). ---

class GuardedCounter {
 public:
  void Bump() {
    lock_.AcquireEx();
    ++value_;
    lock_.ReleaseEx();
  }

  bool TryBump() {
    if (!lock_.TryAcquireEx()) return false;
    ++value_;
    lock_.ReleaseEx();
    return true;
  }

 private:
  TtsLock lock_;
  uint64_t value_ OPTIQL_GUARDED_BY(lock_) = 0;
};

void UseGuardedCounter() {
  GuardedCounter counter;
  counter.Bump();
  counter.TryBump();
}

// --- Plain exclusive locks ---

void TtsCorrect() {
  TtsLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  if (lock.TryAcquireEx()) lock.ReleaseEx();
}

void TicketCorrect() {
  TicketLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  if (lock.TryAcquireEx()) lock.ReleaseEx();
}

void SharedMutexCorrect() {
  SharedMutexLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  lock.AcquireSh();
  lock.ReleaseSh();
  if (lock.TryAcquireEx()) lock.ReleaseEx();
  if (lock.TryAcquireSh()) lock.ReleaseSh();
}

// --- Queue-based locks: the qnode is plumbing, the capability is the lock ---

void McsCorrect() {
  McsLock lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  lock.ReleaseEx(guard.node());
  if (lock.TryAcquireEx(guard.node())) lock.ReleaseEx(guard.node());
}

void ClhCorrect() {
  ClhLock lock;
  QNode* handle = lock.AcquireEx();
  lock.ReleaseEx(handle);
}

void McsRwCorrect() {
  McsRwLock lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  lock.ReleaseEx(guard.node());
  lock.AcquireSh(guard.node());
  lock.ReleaseSh(guard.node());
}

// --- OptLock: only the exclusive (writer) side is annotated; the
// optimistic read side is speculative and opts out by design. ---

void OptLockCorrect() {
  OptLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  if (lock.TryAcquireEx()) lock.ReleaseExNoBump();
  const uint64_t v = lock.LoadWord();
  if (lock.TryUpgrade(v)) lock.ReleaseEx();
}

// --- TxnOps facade (shared-mode families): forwards the capability through
// the template specializations, so callers are checked exactly like direct
// users — including the no-wait surface the transaction layer relies on. ---

void TxnOpsCorrect() {
  McsRwLock rw;
  using ROps = TxnOps<McsRwLock>;
  ROps::LockSh(rw, 0);
  ROps::UnlockSh(rw, 0);
  ROps::LockEx(rw, 0);
  ROps::UnlockEx(rw, 0);
  ROps::ExHandle rh{};
  if (ROps::TryLockEx(rw, 0, rh)) ROps::UnlockEx(rw, rh);
  if (ROps::TryLockSh(rw)) ROps::UnlockShNoQueue(rw);

  SharedMutexLock sm;
  using SOps = TxnOps<SharedMutexLock>;
  SOps::LockSh(sm, 0);
  SOps::UnlockSh(sm, 0);
  SOps::LockEx(sm, 0);
  SOps::UnlockEx(sm, 0);
  SOps::ExHandle sh{};
  if (SOps::TryLockEx(sm, 0, sh)) SOps::UnlockEx(sm, sh);
  if (SOps::TryLockSh(sm)) SOps::UnlockShNoQueue(sm);
}

// Shared→exclusive upgrade: TSA cannot express a conditional mode
// conversion (the failure branch still holds shared, the success branch
// turned it exclusive without a visible acquire), so the exercise opts
// out — the point here is instantiating the real API, which stays honest
// against the annotated UnlockEx/UnlockShNoQueue it pairs with.
void TxnOpsUpgradeCorrect() OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
  McsRwLock rw;
  using ROps = TxnOps<McsRwLock>;
  if (ROps::TryLockSh(rw)) {
    ROps::ExHandle handle{};
    if (ROps::TryUpgradeSh(rw, 0, /*my_holds=*/1, handle)) {
      ROps::UnlockEx(rw, handle);
    } else {
      ROps::UnlockShNoQueue(rw);
    }
  }
}

// --- Coupling index instantiations: calling the public ops instantiates
// the hand-over-hand bodies, which must carry their
// OPTIQL_NO_THREAD_SAFETY_ANALYSIS opt-outs to compile under -Werror. ---

// Keys arrive as parameters of the never-called entry point below so the
// optimizer cannot const-fold the tree ops (folding literal keys trips a
// GCC -Wstringop-overflow false positive inside the ART node copy loops).

template <class Tree>
void DriveBTree(uint64_t key, uint64_t value) {
  Tree tree;
  uint64_t out = 0;
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  tree.Insert(key, value);
  tree.Update(key, value + 1);
  tree.Lookup(key, out);
  tree.Scan(key, 4, scanned);
  tree.Remove(key);
}

template <class Tree>
void DriveArt(std::string_view key, uint64_t value) {
  Tree tree;
  uint64_t out = 0;
  tree.Insert(key, value);
  tree.Update(key, value + 1);
  tree.Lookup(key, out);
  tree.Remove(key);
}

void InstantiateCouplingIndexes(uint64_t key, std::string_view skey,
                                uint64_t value) {
  DriveBTree<BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>>(key,
                                                                        value);
  DriveBTree<BTree<uint64_t, uint64_t, BTreeCouplingPolicy<SharedMutexLock>>>(
      key, value);
  DriveArt<ArtCouplingTree<McsRwLock>>(skey, value);
  DriveArt<ArtCouplingTree<SharedMutexLock>>(skey, value);
}

}  // namespace tsa_conformance
}  // namespace optiql
