// Additional B+-tree coverage: AOR-specific behaviour, alternative
// key/value types, boundary geometries, long scans across many leaves,
// upsert sweeps, and concurrent AOR readers-vs-writers consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/btree.h"

namespace optiql {
namespace {

using AorTree =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;

TEST(BTreeAorTest, SingleThreadedSemanticsUnchanged) {
  AorTree tree;
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Insert(k, k));
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Update(k, k * 2));
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
    ASSERT_EQ(out, k * 2);
  }
  for (uint64_t k = 0; k < 1000; k += 2) ASSERT_TRUE(tree.Remove(k));
  EXPECT_EQ(tree.Size(), 500u);
  tree.CheckInvariants();
}

TEST(BTreeAorTest, ReadersStayConsistentUnderAorUpdates) {
  // AOR keeps the opportunistic window open through the in-leaf search;
  // readers must still never validate a half-applied update.
  AorTree tree;
  constexpr uint64_t kKeys = 128;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k << 20));
  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.NextBounded(kKeys);
        uint64_t out = 0;
        if (!tree.Lookup(key, out) || (out >> 20) != key) {
          bad.store(true, std::memory_order_release);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(static_cast<uint64_t>(w) + 50);
      for (int i = 0; i < 8000; ++i) {
        const uint64_t key = rng.NextBounded(kKeys);
        ASSERT_TRUE(tree.Update(key, (key << 20) | (i & 0xFFFFF)));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(bad.load());
  tree.CheckInvariants();
}

TEST(BTreeTypesTest, SignedKeysAndStructValues) {
  struct Payload {
    int64_t a;
    int64_t b;
    bool operator==(const Payload& other) const {
      return a == other.a && b == other.b;
    }
  };
  BTree<int64_t, Payload, BTreeOptiQlPolicy<OptiQL>> tree;
  for (int64_t k = -500; k < 500; ++k) {
    ASSERT_TRUE(tree.Insert(k, Payload{k, -k}));
  }
  tree.CheckInvariants();
  for (int64_t k = -500; k < 500; ++k) {
    Payload out{};
    ASSERT_TRUE(tree.Lookup(k, out));
    EXPECT_EQ(out, (Payload{k, -k}));
  }
  Payload out{};
  EXPECT_FALSE(tree.Lookup(-501, out));
  EXPECT_FALSE(tree.Lookup(500, out));
}

TEST(BTreeTypesTest, NarrowKeysWithWidePayloadGeometry) {
  // 32-bit keys + 32-byte payloads change the node geometry completely.
  struct Wide {
    uint64_t words[4];
  };
  using Tree = BTree<uint32_t, Wide, BTreeOlcPolicy, 512>;
  Tree tree;
  EXPECT_GE(Tree::LeafCapacity(), 2u);
  for (uint32_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Insert(k, Wide{{k, k + 1, k + 2, k + 3}}));
  }
  tree.CheckInvariants();
  for (uint32_t k = 0; k < 2000; ++k) {
    Wide out{};
    ASSERT_TRUE(tree.Lookup(k, out));
    ASSERT_EQ(out.words[3], k + 3);
  }
}

TEST(BTreeGeometryTest, MinimumViableNodeSizeStillWorks) {
  // A node size too small for the header forces the floor capacity of 2:
  // splits on nearly every insert; the tree degenerates but stays correct.
  using TinyTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy, 64>;
  EXPECT_EQ(TinyTree::LeafCapacity(), 2u);
  TinyTree tree;
  for (uint64_t k = 0; k < 300; ++k) ASSERT_TRUE(tree.Insert(k, k));
  tree.CheckInvariants();
  EXPECT_EQ(tree.Size(), 300u);
  for (uint64_t k = 0; k < 300; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
  }
}

TEST(BTreeScanTest, ScanSpansManyLeavesExactly) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  constexpr uint64_t kKeys = 5000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k + 7));
  std::vector<std::pair<uint64_t, uint64_t>> out;
  // A scan crossing hundreds of leaves (capacity 14 per leaf).
  EXPECT_EQ(tree.Scan(100, 3000, out), 3000u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].first, 100 + i);
    ASSERT_EQ(out[i].second, 100 + i + 7);
  }
  // Full-table scan clips at the end.
  EXPECT_EQ(tree.Scan(0, kKeys + 100, out), kKeys);
}

TEST(BTreeScanTest, ScanAfterRemovesSkipsDeletedKeys) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(tree.Insert(k, k));
  for (uint64_t k = 50; k < 150; ++k) ASSERT_TRUE(tree.Remove(k));
  std::vector<std::pair<uint64_t, uint64_t>> out;
  EXPECT_EQ(tree.Scan(40, 20, out), 20u);
  // 40..49 then 150..159.
  for (int i = 0; i < 10; ++i) ASSERT_EQ(out[static_cast<size_t>(i)].first, 40u + i);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(out[static_cast<size_t>(10 + i)].first, 150u + i);
  }
  tree.CheckInvariants();
}

TEST(BTreeUpsertTest, MixedUpsertSweep) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>> tree;
  Xoshiro256 rng(31337);
  std::map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 8000; ++i) {
    const uint64_t key = rng.NextBounded(600);
    const uint64_t value = rng.Next();
    tree.Upsert(key, value);
    oracle[key] = value;
  }
  EXPECT_EQ(tree.Size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(key, out));
    ASSERT_EQ(out, value);
  }
  tree.CheckInvariants();
}

TEST(BTreeStatsTest, SplitCountersTrackStructuralChanges) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  auto stats = tree.GetStats();
  EXPECT_EQ(stats.leaf_splits, 0u);
  EXPECT_EQ(stats.inner_splits, 0u);
  for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(tree.Insert(k, k));
  stats = tree.GetStats();
  // 3000 keys at 7-14 per leaf (half-full after splits) => hundreds of
  // leaf splits and at least a few inner splits.
  EXPECT_GT(stats.leaf_splits, 100u);
  EXPECT_GT(stats.inner_splits, 2u);
  tree.ResetStats();
  stats = tree.GetStats();
  EXPECT_EQ(stats.leaf_splits, 0u);
  EXPECT_EQ(stats.read_restarts, 0u);
}

TEST(BTreeStatsTest, CouplingPolicyCountsSplitsToo) {
  BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>> tree;
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(tree.Insert(k, k));
  EXPECT_GT(tree.GetStats().leaf_splits, 30u);
}

TEST(BTreeBulkLoadTest, LoadsSortedPairsAndStaysQueryable) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (uint64_t k = 0; k < 10000; ++k) pairs.emplace_back(k * 3, k);
  tree.BulkLoad(pairs);
  EXPECT_EQ(tree.Size(), pairs.size());
  tree.CheckInvariants();
  uint64_t out = 0;
  for (uint64_t k = 0; k < 10000; k += 97) {
    ASSERT_TRUE(tree.Lookup(k * 3, out));
    ASSERT_EQ(out, k);
  }
  EXPECT_FALSE(tree.Lookup(1, out));
  // The tree is fully mutable afterwards.
  ASSERT_TRUE(tree.Insert(1, 111));
  ASSERT_TRUE(tree.Remove(0));
  ASSERT_TRUE(tree.Update(3, 999));
  tree.CheckInvariants();
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  EXPECT_EQ(tree.Scan(0, 3, scanned), 3u);
  EXPECT_EQ(scanned[0].first, 1u);
}

TEST(BTreeBulkLoadTest, TinyAndEmptyLoads) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  tree.BulkLoad({});  // No-op.
  EXPECT_EQ(tree.Size(), 0u);
  tree.BulkLoad({{5, 50}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(5, out));
  EXPECT_EQ(out, 50u);
  tree.CheckInvariants();
}

TEST(BTreeBulkLoadTest, AwkwardSizesNeverOrphanChildren) {
  // Sizes chosen to hit the tail-adjustment path at each inner level.
  for (uint64_t n : {1u, 2u, 12u, 13u, 14u, 15u, 168u, 169u, 170u, 2367u}) {
    BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (uint64_t k = 0; k < n; ++k) pairs.emplace_back(k, k);
    tree.BulkLoad(pairs);
    ASSERT_EQ(tree.Size(), n);
    tree.CheckInvariants();
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(n - 1, out));
  }
}

TEST(BTreeHeightTest, RootLeafThenGrowth) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  EXPECT_EQ(tree.Height(), 1);  // Single root leaf.
  for (uint64_t k = 0; k < 14; ++k) ASSERT_TRUE(tree.Insert(k, k));
  EXPECT_EQ(tree.Height(), 1);  // Still fits.
  ASSERT_TRUE(tree.Insert(14, 14));  // Root leaf splits.
  EXPECT_EQ(tree.Height(), 2);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace optiql
