// TablePrinter formatting behaviour (column alignment, numeric formatting).
#include "harness/table_printer.h"

#include <gtest/gtest.h>

namespace optiql {
namespace {

TEST(TablePrinterTest, FmtFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 3), "3.142");
  EXPECT_EQ(TablePrinter::Fmt(0.0, 1), "0.0");
  EXPECT_EQ(TablePrinter::Fmt(-2.5, 0), "-2");
}

TEST(TablePrinterTest, PrintsWithoutCrashingOnRaggedRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});                    // Short row.
  table.AddRow({"1", "2", "3", "4"});     // Long row (extra cell ignored).
  table.AddRow({"wide-cell-content", "x", "y"});
  testing::internal::CaptureStdout();
  table.Print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  // Separator rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlignToWidestCell) {
  TablePrinter table({"col"});
  table.AddRow({"abcdef"});
  testing::internal::CaptureStdout();
  table.Print();
  const std::string out = testing::internal::GetCapturedStdout();
  // Header padded to the widest cell: "col" followed by at least 3 spaces
  // before the trailing column gap.
  EXPECT_NE(out.find("col   "), std::string::npos);
}

}  // namespace
}  // namespace optiql
