// Trace generation, (de)serialization round-trips, and multithreaded
// replay against the B+-tree and ART (with a single-threaded oracle).
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "index/art.h"
#include "index/btree.h"
#include "workload/trace_replay.h"

namespace optiql {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, GenerateRespectsSizeAndKeySpace) {
  TraceConfig config;
  config.operations = 5000;
  config.key_space = 128;
  const Trace trace = Trace::Generate(config);
  ASSERT_EQ(trace.size(), 5000u);
  for (const TraceOp& op : trace.ops()) {
    EXPECT_LT(op.key, 128u);
  }
}

TEST(TraceTest, GenerateIsDeterministicPerSeed) {
  TraceConfig config;
  config.operations = 1000;
  EXPECT_EQ(Trace::Generate(config), Trace::Generate(config));
  TraceConfig other = config;
  other.seed = 43;
  EXPECT_FALSE(Trace::Generate(config) == Trace::Generate(other));
}

TEST(TraceTest, MixProportionsApproximatelyHold) {
  TraceConfig config;
  config.operations = 50000;
  config.lookup_pct = 60;
  config.insert_pct = 20;
  config.update_pct = 10;
  config.remove_pct = 5;  // Remaining 5% scans.
  const Trace trace = Trace::Generate(config);
  uint64_t counts[5] = {};
  for (const TraceOp& op : trace.ops()) {
    ++counts[static_cast<int>(op.kind)];
  }
  EXPECT_NEAR(counts[0] / 50000.0, 0.60, 0.02);  // Lookup.
  EXPECT_NEAR(counts[1] / 50000.0, 0.20, 0.02);  // Insert.
  EXPECT_NEAR(counts[2] / 50000.0, 0.10, 0.02);  // Update.
  EXPECT_NEAR(counts[3] / 50000.0, 0.05, 0.02);  // Remove.
  EXPECT_NEAR(counts[4] / 50000.0, 0.05, 0.02);  // Scan.
}

TEST(TraceTest, SkewedTraceConcentratesKeys) {
  TraceConfig config;
  config.operations = 20000;
  config.key_space = 10000;
  config.skew = 0.2;
  const Trace trace = Trace::Generate(config);
  uint64_t hot = 0;
  for (const TraceOp& op : trace.ops()) {
    if (op.key < 2000) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / 20000.0, 0.8, 0.03);
}

TEST(TraceTest, SaveLoadRoundTrip) {
  TraceConfig config;
  config.operations = 2000;
  config.max_scan_len = 50;
  const Trace original = Trace::Generate(config);
  const std::string path = TempPath("roundtrip.trace");
  ASSERT_TRUE(original.SaveTo(path));
  Trace loaded;
  ASSERT_TRUE(Trace::LoadFrom(path, &loaded));
  EXPECT_EQ(original, loaded);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadRejectsMissingFileAndGarbage) {
  Trace out;
  EXPECT_FALSE(Trace::LoadFrom("/nonexistent/path.trace", &out));
  const std::string path = TempPath("garbage.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# header ok\nX 12 34\n", f);
  std::fclose(f);
  EXPECT_FALSE(Trace::LoadFrom(path, &out));
  std::remove(path.c_str());
}

TEST(TraceTest, LoadSkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.trace");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment\n\nL 7\nI 8 9\n# trailing\n", f);
  std::fclose(f);
  Trace out;
  ASSERT_TRUE(Trace::LoadFrom(path, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.ops()[0].kind, TraceOp::Kind::kLookup);
  EXPECT_EQ(out.ops()[1].value, 9u);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, SingleThreadReplayMatchesOracle) {
  TraceConfig config;
  config.operations = 8000;
  config.key_space = 300;
  config.insert_pct = 25;
  config.remove_pct = 15;
  config.lookup_pct = 40;
  config.update_pct = 15;
  const Trace trace = Trace::Generate(config);

  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  std::map<uint64_t, uint64_t> oracle;
  // Oracle replay.
  uint64_t oracle_hits = 0, oracle_inserts = 0, oracle_removes = 0;
  for (const TraceOp& op : trace.ops()) {
    switch (op.kind) {
      case TraceOp::Kind::kLookup:
        if (oracle.count(op.key)) ++oracle_hits;
        break;
      case TraceOp::Kind::kInsert:
        if (oracle.emplace(op.key, op.value).second) ++oracle_inserts;
        break;
      case TraceOp::Kind::kUpdate: {
        auto it = oracle.find(op.key);
        if (it != oracle.end()) it->second = op.value;
        break;
      }
      case TraceOp::Kind::kRemove:
        if (oracle.erase(op.key)) ++oracle_removes;
        break;
      case TraceOp::Kind::kScan:
        break;
    }
  }
  const ReplayResult result = ReplayTrace(tree, trace, /*threads=*/1);
  EXPECT_EQ(result.lookup_hits, oracle_hits);
  EXPECT_EQ(result.insert_ok, oracle_inserts);
  EXPECT_EQ(result.remove_ok, oracle_removes);
  EXPECT_EQ(tree.Size(), oracle.size());
  tree.CheckInvariants();
}

TEST(TraceReplayTest, MultithreadedReplayPreservesTotals) {
  TraceConfig config;
  config.operations = 10000;
  config.key_space = 100000;  // Wide space: inserts rarely collide.
  config.lookup_pct = 50;
  config.insert_pct = 50;
  config.update_pct = 0;
  config.remove_pct = 0;
  config.max_scan_len = 1;
  const Trace trace = Trace::Generate(config);

  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  const ReplayResult result = ReplayTrace(tree, trace, /*threads=*/4);
  EXPECT_EQ(result.TotalOps(), trace.size());
  // Every distinct inserted key must be present exactly once.
  EXPECT_EQ(tree.Size(), result.insert_ok);
  tree.CheckInvariants();
}

// Key-hash partitioning must preserve per-key program order: each key is
// owned by exactly one thread, which walks the trace in order. A trace of
// insert-then-updates per key therefore ends with the LAST update's value
// for every key — a guarantee round-robin replay cannot make. Runs over
// the pessimistic coupling tree, so (unlike the Multithreaded* suites
// above) it stays IN the TSan run and validates the partitioning's own
// thread handoff.
TEST(TraceReplayTest, KeyPartitionPreservesPerKeyOrderConcurrent) {
  constexpr uint64_t kKeys = 400;
  constexpr uint64_t kUpdateWaves = 5;
  std::vector<TraceOp> ops;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ops.push_back({TraceOp::Kind::kInsert, k, 0});
  }
  for (uint64_t wave = 1; wave <= kUpdateWaves; ++wave) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      ops.push_back({TraceOp::Kind::kUpdate, k, wave});
    }
  }
  const Trace trace(std::move(ops));

  BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>> tree;
  ReplayOptions options;
  options.threads = 4;
  options.partition_by_key = true;
  const ReplayResult result = ReplayTrace(tree, trace, options);
  EXPECT_EQ(result.TotalOps(), trace.size());
  EXPECT_EQ(result.insert_ok, kKeys);
  EXPECT_EQ(result.update_ok, kKeys * kUpdateWaves);
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
    ASSERT_EQ(out, kUpdateWaves) << "key " << k;
  }
  tree.CheckInvariants();
}

// Every op is replayed exactly once under key partitioning — no op is
// dropped or double-counted when the per-thread hash filters tile the
// keyspace.
TEST(TraceReplayTest, KeyPartitionCoversEveryOpOnceConcurrent) {
  TraceConfig config;
  config.operations = 10000;
  config.key_space = 100000;
  config.lookup_pct = 50;
  config.insert_pct = 50;
  config.update_pct = 0;
  config.remove_pct = 0;
  const Trace trace = Trace::Generate(config);

  BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>> tree;
  ReplayOptions options;
  options.threads = 3;  // Not a power of two: catches modulo slips.
  options.partition_by_key = true;
  const ReplayResult result = ReplayTrace(tree, trace, options);
  EXPECT_EQ(result.TotalOps(), trace.size());
  EXPECT_EQ(tree.Size(), result.insert_ok);

  // Both partitionings agree with the single-threaded result on the
  // deterministic totals (wide keyspace: insert successes don't race).
  BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>> serial;
  const ReplayResult expect = ReplayTrace(serial, trace, /*threads=*/1);
  EXPECT_EQ(result.insert_ok, expect.insert_ok);
  EXPECT_EQ(result.lookups, expect.lookups);
  tree.CheckInvariants();
}

TEST(TraceReplayTest, MultithreadedArtReplayTreatsScansAsLookups) {
  TraceConfig config;
  config.operations = 4000;
  config.key_space = 500;
  config.lookup_pct = 30;
  config.insert_pct = 40;
  config.update_pct = 10;
  config.remove_pct = 10;  // 10% scans.
  const Trace trace = Trace::Generate(config);
  ArtTree<ArtOptiQlPolicy<OptiQL>> tree;
  const ReplayResult result = ReplayTrace(tree, trace, /*threads=*/2);
  EXPECT_EQ(result.TotalOps(), trace.size());
  EXPECT_GT(result.scans, 0u);
  EXPECT_EQ(result.scanned_pairs, 0u);  // No range support.
  tree.CheckInvariants();
}

}  // namespace
}  // namespace optiql
