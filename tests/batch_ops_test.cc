// Batched operation surface (index/index_ops.h + the native interleaved
// paths): batched results must be indistinguishable from executing the
// same ops one at a time, in batch order — including misses, duplicate
// keys inside one batch, and every dispatch arm (B+-tree/ART lane
// machines, hash-table group prefetch, ShardedStore partition + scatter,
// and the generic fallback used by the coupling tree).
//
// Instantiations exercising optimistic reads are named to match the TSan
// exclusion globs (Olc / OptiQl) in tests/CMakeLists.txt; the coupling
// instantiation deliberately is not, so the generic batched fallback stays
// under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/art.h"
#include "index/btree.h"
#include "index/hash_table.h"
#include "index/index_ops.h"
#include "store/sharded_store.h"

namespace optiql {
namespace {

using BTreeOlcT = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using BTreeOptiQlT = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using BTreeCouplingT = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;
using ArtOlcT = ArtTree<ArtOlcPolicy>;
using ArtOptiQlT = ArtTree<ArtOptiQlPolicy<OptiQL>>;
using HashOlcT = HashTable<HashOlcPolicy>;
using ShardedOlcT = ShardedStore<BTreeOlcT>;

using BatchCases = ::testing::Types<BTreeOlcT, BTreeOptiQlT, ArtOlcT,
                                    ArtOptiQlT, HashOlcT, ShardedOlcT,
                                    BTreeCouplingT>;

struct BatchCaseNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, BTreeOlcT>) return "BTreeOlc";
    if (std::is_same_v<T, BTreeOptiQlT>) return "BTreeOptiQl";
    if (std::is_same_v<T, ArtOlcT>) return "ArtOlc";
    if (std::is_same_v<T, ArtOptiQlT>) return "ArtOptiQl";
    if (std::is_same_v<T, HashOlcT>) return "HashTableOlc";
    if (std::is_same_v<T, ShardedOlcT>) return "ShardedBTreeOlc";
    if (std::is_same_v<T, BTreeCouplingT>) return "BTreeCouplingMcsRw";
    return "Unknown";
  }
};

template <class T>
class BatchOpsTest : public ::testing::Test {};
TYPED_TEST_SUITE(BatchOpsTest, BatchCases, BatchCaseNames);

// Batch capability bookkeeping: each arm of IndexLookupBatch must stay
// wired to the type it was built for (a concept silently un-matching
// would quietly demote a native path to the loop fallback).
TYPED_TEST(BatchOpsTest, BatchCapabilityProfile) {
  using Index = TypeParam;
  if constexpr (std::is_same_v<Index, ArtOlcT> ||
                std::is_same_v<Index, ArtOptiQlT>) {
    static_assert(HasLookupBatchIntOp<Index>);
  } else if constexpr (std::is_same_v<Index, BTreeCouplingT>) {
    static_assert(!HasLookupBatchOp<Index> && !HasLookupBatchIntOp<Index>);
  } else {
    static_assert(HasLookupBatchOp<Index>);
  }
  static_assert(HasInsertBatchOp<Index> == std::is_same_v<Index, ShardedOlcT>);
  static_assert(HasUpsertBatchOp<Index> == std::is_same_v<Index, ShardedOlcT>);
}

// Batched lookups vs a loop-of-singles oracle: hits, misses and duplicate
// keys inside one batch, across batch sizes from empty through several
// interleave groups' worth.
TYPED_TEST(BatchOpsTest, DifferentialLookupBatch) {
  TypeParam index;
  constexpr uint64_t kSpace = 900;
  for (uint64_t k = 0; k < kSpace; k += 3) {  // Every 3rd key present.
    ASSERT_TRUE(IndexInsert(index, k, k + 1));
  }

  Xoshiro256 rng(0xBA7C41ULL);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{64},
                         size_t{257}}) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) {
      // ~1/8 duplicates of an earlier position in the same batch.
      if (i > 0 && rng.NextBounded(8) == 0) {
        keys[i] = keys[rng.NextBounded(i)];
      } else {
        keys[i] = rng.NextBounded(kSpace);  // Mix of hits and misses.
      }
    }
    std::vector<uint64_t> values(n, ~uint64_t{0});
    std::vector<uint8_t> found(n, 2);
    const size_t hits = IndexLookupBatch(
        index, keys.data(), n, values.data(),
        reinterpret_cast<bool*>(found.data()));
    size_t oracle_hits = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t out = 0;
      const bool hit = IndexLookup(index, keys[i], out);
      ASSERT_EQ(static_cast<bool>(found[i]), hit) << "key " << keys[i];
      if (hit) {
        ASSERT_EQ(values[i], out) << "key " << keys[i];
        ++oracle_hits;
      }
    }
    ASSERT_EQ(hits, oracle_hits);
  }
}

// The native lane paths must agree with the oracle at every interleave
// factor, including degenerate (1) and clamped (> kMaxBatchLanes) ones.
TYPED_TEST(BatchOpsTest, LookupBatchInterleaveSweep) {
  TypeParam index;
  constexpr uint64_t kSpace = 2048;
  for (uint64_t k = 0; k < kSpace; k += 2) {
    ASSERT_TRUE(IndexInsert(index, k, k + 1));
  }
  constexpr size_t kN = 333;
  std::vector<uint64_t> keys(kN);
  Xoshiro256 rng(0x5EEDULL);
  for (size_t i = 0; i < kN; ++i) keys[i] = rng.NextBounded(kSpace);

  for (const size_t lanes : {size_t{1}, size_t{2}, size_t{3}, size_t{8},
                             size_t{32}, size_t{100}}) {
    std::vector<uint64_t> values(kN, 0);
    std::vector<uint8_t> found(kN, 2);
    size_t hits = 0;
    bool* found_ptr = reinterpret_cast<bool*>(found.data());
    if constexpr (requires {
                    index.LookupBatchInt(keys.data(), kN, values.data(),
                                         found_ptr, lanes);
                  }) {
      hits = index.LookupBatchInt(keys.data(), kN, values.data(), found_ptr,
                                  lanes);
    } else if constexpr (requires {
                           index.LookupBatch(keys.data(), kN, values.data(),
                                             found_ptr, lanes);
                         }) {
      hits = index.LookupBatch(keys.data(), kN, values.data(), found_ptr,
                               lanes);
    } else {
      hits = IndexLookupBatch(index, keys.data(), kN, values.data(),
                              found_ptr);
    }
    size_t oracle_hits = 0;
    for (size_t i = 0; i < kN; ++i) {
      uint64_t out = 0;
      const bool hit = IndexLookup(index, keys[i], out);
      ASSERT_EQ(static_cast<bool>(found[i]), hit)
          << "lanes " << lanes << " key " << keys[i];
      if (hit) {
        ASSERT_EQ(values[i], out);
        ++oracle_hits;
      }
    }
    ASSERT_EQ(hits, oracle_hits) << "lanes " << lanes;
  }
}

// Batched inserts vs sequential singles on a twin index: same ok[] verdicts
// (first occurrence of a duplicate wins, pre-existing keys rejected) and
// identical final content.
TYPED_TEST(BatchOpsTest, DifferentialInsertBatch) {
  TypeParam batched;
  TypeParam oracle;
  constexpr uint64_t kSpace = 400;
  for (uint64_t k = 0; k < kSpace; k += 4) {  // Pre-existing keys.
    ASSERT_TRUE(IndexInsert(batched, k, k + 1));
    ASSERT_TRUE(IndexInsert(oracle, k, k + 1));
  }

  constexpr size_t kN = 257;
  std::vector<uint64_t> keys(kN);
  std::vector<uint64_t> values(kN);
  Xoshiro256 rng(0x1235813ULL);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = (i > 0 && rng.NextBounded(8) == 0) ? keys[rng.NextBounded(i)]
                                                 : rng.NextBounded(kSpace);
    values[i] = keys[i] * 10 + i;  // Distinct per position.
  }

  std::vector<uint8_t> ok(kN, 2);
  const size_t applied =
      IndexInsertBatch(batched, keys.data(), values.data(), kN,
                       reinterpret_cast<bool*>(ok.data()));
  size_t oracle_applied = 0;
  for (size_t i = 0; i < kN; ++i) {
    const bool r = IndexInsert(oracle, keys[i], values[i]);
    ASSERT_EQ(static_cast<bool>(ok[i]), r) << "position " << i;
    if (r) ++oracle_applied;
  }
  ASSERT_EQ(applied, oracle_applied);
  for (uint64_t k = 0; k < kSpace; ++k) {
    uint64_t a = 0;
    uint64_t b = 0;
    const bool fa = IndexLookup(batched, k, a);
    const bool fb = IndexLookup(oracle, k, b);
    ASSERT_EQ(fa, fb) << "key " << k;
    if (fa) ASSERT_EQ(a, b) << "key " << k;
  }
}

// Batched upserts vs sequential singles: the LAST occurrence of a
// duplicate key in a batch must win, exactly as sequential execution.
TYPED_TEST(BatchOpsTest, DifferentialUpsertBatch) {
  TypeParam batched;
  TypeParam oracle;
  constexpr uint64_t kSpace = 300;
  for (uint64_t k = 0; k < kSpace; k += 5) {
    ASSERT_TRUE(IndexInsert(batched, k, k + 1));
    ASSERT_TRUE(IndexInsert(oracle, k, k + 1));
  }

  constexpr size_t kN = 200;
  std::vector<uint64_t> keys(kN);
  std::vector<uint64_t> values(kN);
  Xoshiro256 rng(0xFACEULL);
  for (size_t i = 0; i < kN; ++i) {
    keys[i] = (i > 0 && rng.NextBounded(4) == 0) ? keys[rng.NextBounded(i)]
                                                 : rng.NextBounded(kSpace);
    values[i] = 1000 + i;
  }

  IndexUpsertBatch(batched, keys.data(), values.data(), kN);
  for (size_t i = 0; i < kN; ++i) {
    IndexUpsert(oracle, keys[i], values[i]);
  }
  for (uint64_t k = 0; k < kSpace; ++k) {
    uint64_t a = 0;
    uint64_t b = 0;
    const bool fa = IndexLookup(batched, k, a);
    const bool fb = IndexLookup(oracle, k, b);
    ASSERT_EQ(fa, fb) << "key " << k;
    if (fa) ASSERT_EQ(a, b) << "key " << k;
  }
}

// Batched readers against single-op writer churn under epoch reclamation:
// every hit must carry the one value ever written for its key (key + 1),
// and keys outside the churn range must never go missing. Lane restarts,
// node splits/merges/retirements and guard nesting all get exercised.
TYPED_TEST(BatchOpsTest, ConcurrentBatchedReadersVsChurn) {
  TypeParam index;
  constexpr uint64_t kStable = 4096;   // Never touched by writers.
  constexpr uint64_t kChurn = 4096;    // Inserted/removed continuously.
  for (uint64_t k = 0; k < kStable; ++k) {
    ASSERT_TRUE(IndexInsert(index, k, k + 1));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&index, &stop, w] {
      Xoshiro256 rng(0xBEEF0ULL + static_cast<uint64_t>(w));
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = kStable + rng.NextBounded(kChurn);
        if (rng.NextBounded(2) == 0) {
          IndexInsert(index, key, key + 1);
        } else {
          IndexRemove(index, key);
        }
      }
    });
  }

  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&index, &stop, &violations, r] {
      Xoshiro256 rng(0xD00D0ULL + static_cast<uint64_t>(r));
      constexpr size_t kBatch = 64;
      std::vector<uint64_t> keys(kBatch);
      std::vector<uint64_t> values(kBatch);
      const std::unique_ptr<bool[]> found(new bool[kBatch]);
      for (int iter = 0; iter < 400 && !stop.load(std::memory_order_acquire);
           ++iter) {
        for (size_t i = 0; i < kBatch; ++i) {
          // Half stable (must be found, exact value), half churning
          // (value must be exact when found).
          keys[i] = i % 2 == 0 ? rng.NextBounded(kStable)
                               : kStable + rng.NextBounded(kChurn);
        }
        IndexLookupBatch(index, keys.data(), kBatch, values.data(),
                         found.get());
        for (size_t i = 0; i < kBatch; ++i) {
          if (i % 2 == 0 && !found[i]) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          if (found[i] && values[i] != keys[i] + 1) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }

  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

}  // namespace
}  // namespace optiql
