// B+-tree correctness, typed across every synchronization policy: basic
// CRUD, split cascades, scans, an oracle fuzz against std::map, and
// structural invariants.
#include "index/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"

namespace optiql {
namespace {

using OlcTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using OptiQlTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using OptiQlNorTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>>;
using OptiQlAorTree =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;
using McsRwTree = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;
using PthreadTree =
    BTree<uint64_t, uint64_t, BTreeCouplingPolicy<SharedMutexLock>>;

template <class Tree>
class BTreeTest : public ::testing::Test {};

// Names the typed instantiations after their protocol (BTreeTest/Olc....)
// so ctest output is readable and --gtest_filter can select protocols,
// e.g. the TSan CI job running only the pessimistic trees.
struct TreeNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcTree>) return "Olc";
    if (std::is_same_v<T, OptiQlTree>) return "OptiQl";
    if (std::is_same_v<T, OptiQlNorTree>) return "OptiQlNor";
    if (std::is_same_v<T, OptiQlAorTree>) return "OptiQlAor";
    if (std::is_same_v<T, McsRwTree>) return "McsRw";
    if (std::is_same_v<T, PthreadTree>) return "Pthread";
    return "Unknown";
  }
};

using TreeTypes = ::testing::Types<OlcTree, OptiQlTree, OptiQlNorTree,
                                   OptiQlAorTree, McsRwTree, PthreadTree>;
TYPED_TEST_SUITE(BTreeTest, TreeTypes, TreeNames);

TYPED_TEST(BTreeTest, EmptyTreeLookupMisses) {
  TypeParam tree;
  uint64_t out = 0;
  EXPECT_FALSE(tree.Lookup(42, out));
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 1);
}

TYPED_TEST(BTreeTest, SingleInsertLookup) {
  TypeParam tree;
  EXPECT_TRUE(tree.Insert(42, 4200));
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(42, out));
  EXPECT_EQ(out, 4200u);
  EXPECT_FALSE(tree.Lookup(41, out));
  EXPECT_FALSE(tree.Lookup(43, out));
  EXPECT_EQ(tree.Size(), 1u);
}

TYPED_TEST(BTreeTest, DuplicateInsertRejected) {
  TypeParam tree;
  EXPECT_TRUE(tree.Insert(7, 1));
  EXPECT_FALSE(tree.Insert(7, 2));
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(7, out));
  EXPECT_EQ(out, 1u);  // Original value retained.
  EXPECT_EQ(tree.Size(), 1u);
}

TYPED_TEST(BTreeTest, UpdateExistingKey) {
  TypeParam tree;
  ASSERT_TRUE(tree.Insert(7, 1));
  EXPECT_TRUE(tree.Update(7, 99));
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(7, out));
  EXPECT_EQ(out, 99u);
}

TYPED_TEST(BTreeTest, UpdateMissingKeyFails) {
  TypeParam tree;
  EXPECT_FALSE(tree.Update(7, 99));
  ASSERT_TRUE(tree.Insert(7, 1));
  EXPECT_FALSE(tree.Update(8, 99));
}

TYPED_TEST(BTreeTest, UpsertInsertsThenOverwrites) {
  TypeParam tree;
  tree.Upsert(5, 50);
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(5, out));
  EXPECT_EQ(out, 50u);
  tree.Upsert(5, 51);
  ASSERT_TRUE(tree.Lookup(5, out));
  EXPECT_EQ(out, 51u);
  EXPECT_EQ(tree.Size(), 1u);
}

TYPED_TEST(BTreeTest, RemoveSemantics) {
  TypeParam tree;
  EXPECT_FALSE(tree.Remove(3));
  ASSERT_TRUE(tree.Insert(3, 30));
  EXPECT_TRUE(tree.Remove(3));
  uint64_t out = 0;
  EXPECT_FALSE(tree.Lookup(3, out));
  EXPECT_FALSE(tree.Remove(3));
  EXPECT_EQ(tree.Size(), 0u);
  // Reinsertion works after removal.
  EXPECT_TRUE(tree.Insert(3, 31));
  ASSERT_TRUE(tree.Lookup(3, out));
  EXPECT_EQ(out, 31u);
}

TYPED_TEST(BTreeTest, SequentialInsertCausesSplits) {
  TypeParam tree;
  constexpr uint64_t kKeys = 2000;  // >> leaf capacity: multi-level tree.
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree.Insert(k, k * 10));
  }
  EXPECT_GT(tree.Height(), 2);
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out)) << "key " << k;
    EXPECT_EQ(out, k * 10);
  }
}

TYPED_TEST(BTreeTest, ReverseInsertOrder) {
  TypeParam tree;
  constexpr uint64_t kKeys = 1500;
  for (uint64_t k = kKeys; k > 0; --k) {
    ASSERT_TRUE(tree.Insert(k, k));
  }
  tree.CheckInvariants();
  for (uint64_t k = 1; k <= kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
    EXPECT_EQ(out, k);
  }
}

TYPED_TEST(BTreeTest, RandomInsertOrder) {
  TypeParam tree;
  std::vector<uint64_t> keys(3000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 7 + 1;
  std::mt19937_64 shuffle_rng(12345);
  std::shuffle(keys.begin(), keys.end(), shuffle_rng);
  for (uint64_t k : keys) ASSERT_TRUE(tree.Insert(k, ~k));
  tree.CheckInvariants();
  for (uint64_t k : keys) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
    EXPECT_EQ(out, ~k);
  }
  uint64_t out = 0;
  EXPECT_FALSE(tree.Lookup(0, out));
  EXPECT_FALSE(tree.Lookup(2, out));  // Not a multiple-of-7-plus-1.
}

TYPED_TEST(BTreeTest, ScanAscendingFromKey) {
  TypeParam tree;
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Insert(k * 2, k));  // Even keys only.
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  // Start between keys: 101 -> first key is 102.
  EXPECT_EQ(tree.Scan(101, 10, out), 10u);
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 102 + 2 * i);
    EXPECT_EQ(out[i].second, (102 + 2 * i) / 2);
  }
  // Scan past the end clips.
  EXPECT_EQ(tree.Scan(990, 100, out), 5u);
  // Scan from before the first key.
  EXPECT_EQ(tree.Scan(0, 3, out), 3u);
  EXPECT_EQ(out[0].first, 0u);
}

TYPED_TEST(BTreeTest, ScanEmptyAndZeroLimit) {
  TypeParam tree;
  std::vector<std::pair<uint64_t, uint64_t>> out;
  EXPECT_EQ(tree.Scan(0, 10, out), 0u);
  ASSERT_TRUE(tree.Insert(1, 1));
  EXPECT_EQ(tree.Scan(0, 0, out), 0u);
}

TYPED_TEST(BTreeTest, OracleFuzzAgainstStdMap) {
  TypeParam tree;
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(987654321);
  constexpr int kOps = 12000;
  constexpr uint64_t kKeySpace = 700;  // Dense => plenty of collisions.

  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.NextBounded(kKeySpace);
    const uint64_t value = rng.Next();
    switch (rng.NextBounded(5)) {
      case 0: {  // Insert
        const bool inserted = tree.Insert(key, value);
        const bool expected = oracle.emplace(key, value).second;
        ASSERT_EQ(inserted, expected) << "insert " << key;
        break;
      }
      case 1: {  // Update
        const bool updated = tree.Update(key, value);
        auto it = oracle.find(key);
        ASSERT_EQ(updated, it != oracle.end()) << "update " << key;
        if (it != oracle.end()) it->second = value;
        break;
      }
      case 2: {  // Remove
        const bool removed = tree.Remove(key);
        ASSERT_EQ(removed, oracle.erase(key) == 1) << "remove " << key;
        break;
      }
      case 3: {  // Lookup
        uint64_t out = 0;
        const bool found = tree.Lookup(key, out);
        auto it = oracle.find(key);
        ASSERT_EQ(found, it != oracle.end()) << "lookup " << key;
        if (found) {
          ASSERT_EQ(out, it->second);
        }
        break;
      }
      case 4: {  // Short scan
        std::vector<std::pair<uint64_t, uint64_t>> got;
        tree.Scan(key, 5, got);
        auto it = oracle.lower_bound(key);
        for (const auto& kv : got) {
          ASSERT_NE(it, oracle.end());
          ASSERT_EQ(kv.first, it->first);
          ASSERT_EQ(kv.second, it->second);
          ++it;
        }
        // The scan must return min(5, remaining).
        const size_t remaining = static_cast<size_t>(
            std::distance(oracle.lower_bound(key), oracle.end()));
        ASSERT_EQ(got.size(), std::min<size_t>(5, remaining));
        break;
      }
    }
  }
  EXPECT_EQ(tree.Size(), oracle.size());
  tree.CheckInvariants();
  for (const auto& [key, value] : oracle) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(key, out));
    ASSERT_EQ(out, value);
  }
}

TYPED_TEST(BTreeTest, HeightGrowsLogarithmically) {
  TypeParam tree;
  for (uint64_t k = 0; k < 5000; ++k) ASSERT_TRUE(tree.Insert(k, k));
  // Fanout ~14 on 256-byte nodes: 5000 keys fit within height 5.
  EXPECT_LE(tree.Height(), 6);
  EXPECT_GE(tree.Height(), 3);
}

TEST(BTreeLayoutTest, NodeCapacitiesMatchPaperFanout) {
  // Paper §7.3: 256-byte nodes lead to a fanout of 14.
  EXPECT_EQ(OlcTree::LeafCapacity(), 14u);
  EXPECT_EQ(OlcTree::InnerCapacity(), 14u);
  // OptiQL leaves carry the same 8-byte lock word => same capacity.
  EXPECT_EQ(OptiQlTree::LeafCapacity(), 14u);
}

TEST(BTreeLayoutTest, LargerNodesIncreaseFanout) {
  using Tree1K = BTree<uint64_t, uint64_t, BTreeOlcPolicy, 1024>;
  using Tree4K = BTree<uint64_t, uint64_t, BTreeOlcPolicy, 4096>;
  EXPECT_GT(Tree1K::LeafCapacity(), OlcTree::LeafCapacity());
  EXPECT_GT(Tree4K::LeafCapacity(), Tree1K::LeafCapacity());
}

// Node-size sweep: the same fuzz on several node geometries (exercises
// different split frequencies and fanouts).
template <size_t kNodeBytes>
void RunNodeSizeFuzz() {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>, kNodeBytes> tree;
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(kNodeBytes);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t key = rng.NextBounded(400);
    if (rng.NextBounded(2) == 0) {
      ASSERT_EQ(tree.Insert(key, key), oracle.emplace(key, key).second);
    } else {
      ASSERT_EQ(tree.Remove(key), oracle.erase(key) == 1);
    }
  }
  ASSERT_EQ(tree.Size(), oracle.size());
  tree.CheckInvariants();
}

TEST(BTreeNodeSizeTest, Fuzz256) { RunNodeSizeFuzz<256>(); }
TEST(BTreeNodeSizeTest, Fuzz512) { RunNodeSizeFuzz<512>(); }
TEST(BTreeNodeSizeTest, Fuzz1024) { RunNodeSizeFuzz<1024>(); }
TEST(BTreeNodeSizeTest, Fuzz4096) { RunNodeSizeFuzz<4096>(); }

}  // namespace
}  // namespace optiql
