// OptiCLH (the paper's §8 future-work extension) and classic CLH protocol
// tests: node migration/adoption, version handover through predecessor
// nodes, the opportunistic-read window, and upgrade semantics.
#include "core/opticlh.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "locks/clh_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {
namespace {

template <class Cond>
bool WaitFor(Cond cond, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(ClhLockTest, UncontendedReusesTheSameNode) {
  ClhLock lock;
  QNode* first = lock.AcquireEx();
  lock.ReleaseEx(first);
  // The CAS-out release path recycles the node through the thread stack,
  // so the next acquisition pops the very same node.
  QNode* second = lock.AcquireEx();
  EXPECT_EQ(first, second);
  lock.ReleaseEx(second);
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(ClhLockTest, NodesMigrateAcrossThreadsUnderContention) {
  // Holder H + waiter W: W must adopt H's node. Verified indirectly: the
  // pool's outstanding-node count stays balanced after heavy churn.
  ClhLock lock;
  const uint32_t before = QNodePool::Instance().in_use();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&lock] {
        for (int i = 0; i < 2000; ++i) {
          QNode* handle = lock.AcquireEx();
          lock.ReleaseEx(handle);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_FALSE(lock.IsLockedEx());
  // Threads exited; their caches drained back to the pool.
  EXPECT_EQ(QNodePool::Instance().in_use(), before);
}

TEST(OptiClhTest, FreshLockIsFreeAtVersionZero) {
  OptiCLH lock;
  EXPECT_EQ(lock.LoadWord(), 0u);
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(OptiClhTest, VersionIncrementsOncePerCriticalSection) {
  OptiCLH lock;
  for (uint64_t i = 0; i < 10; ++i) {
    QNode* handle = lock.AcquireEx();
    lock.ReleaseEx(handle);
    EXPECT_EQ(OptiCLH::VersionOf(lock.LoadWord()), i + 1);
  }
}

TEST(OptiClhTest, ReaderValidationSemantics) {
  OptiCLH lock;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  EXPECT_TRUE(lock.ReleaseSh(v));
  QNode* handle = lock.AcquireEx();
  uint64_t v2 = 0;
  EXPECT_FALSE(lock.AcquireSh(v2));  // Locked, no window.
  EXPECT_FALSE(lock.ReleaseSh(v));   // Writer active.
  lock.ReleaseEx(handle);
  EXPECT_FALSE(lock.ReleaseSh(v));  // Version moved on.
  ASSERT_TRUE(lock.AcquireSh(v2));
  EXPECT_NE(v, v2);
}

TEST(OptiClhTest, HandoverPassesVersionsThroughPredecessorNodes) {
  OptiCLH lock;
  QNode* holder = lock.AcquireEx();

  constexpr int kWaiters = 3;
  std::vector<int> grant_order;
  std::atomic<int> started{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      started.fetch_add(1, std::memory_order_acq_rel);
      QNode* handle = lock.AcquireEx();
      grant_order.push_back(i);
      lock.ReleaseEx(handle);
    });
    ASSERT_TRUE(WaitFor([&] { return started.load() == i + 1; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lock.ReleaseEx(holder);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(OptiCLH::VersionOf(lock.LoadWord()), 4u);
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(OptiClhTest, OpportunisticWindowOpensDuringHandover) {
  // W1 holds; W2 queues. When W1 releases, the window opens (FETCH_OR)
  // until W2's grant closes it (FETCH_AND). With a single-step release
  // there is no way to freeze the window from outside (no AOR in OptiCLH),
  // so verify the effects: a reader snapshot taken *before* W1's release
  // must fail validation, and the version accounting must match OptiQL's.
  OptiCLH lock;
  QNode* w1 = lock.AcquireEx();
  std::atomic<bool> w2_granted{false};
  std::atomic<bool> release_w2{false};
  std::thread t2([&] {
    QNode* w2 = lock.AcquireEx();
    w2_granted.store(true, std::memory_order_release);
    while (!release_w2.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.ReleaseEx(w2);
  });
  // Wait until W2 is enqueued (word records a different requester node).
  ASSERT_TRUE(WaitFor([&] {
    return ((lock.LoadWord() & OptiCLH::kIdMask) >> OptiCLH::kIdShift) !=
           QNodePool::Instance().ToId(w1);
  }));
  lock.ReleaseEx(w1);
  ASSERT_TRUE(WaitFor([&] { return w2_granted.load(); }));
  // W2 now holds with the window closed.
  uint64_t v = 0;
  EXPECT_FALSE(lock.IsOpReadWindowOpen());
  EXPECT_FALSE(lock.AcquireSh(v));
  release_w2.store(true, std::memory_order_release);
  t2.join();
  EXPECT_EQ(OptiCLH::VersionOf(lock.LoadWord()), 2u);
}

TEST(OptiClhTest, TryUpgradeSemantics) {
  OptiCLH lock;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  QNode* handle = lock.TryUpgrade(v);
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(lock.IsLockedEx());
  EXPECT_EQ(lock.TryUpgrade(v), nullptr);  // Stale snapshot.
  lock.ReleaseEx(handle);
  EXPECT_EQ(OptiCLH::VersionOf(lock.LoadWord()), OptiCLH::VersionOf(v) + 1);
  // Upgrade fails from a locked snapshot.
  QNode* h2 = lock.AcquireEx();
  uint64_t locked_word = lock.LoadWord();
  EXPECT_EQ(lock.TryUpgrade(locked_word), nullptr);
  lock.ReleaseEx(h2);
}

TEST(OptiClhTest, TryAcquireExSemantics) {
  OptiCLH lock;
  QNode* a = lock.TryAcquireEx();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(lock.TryAcquireEx(), nullptr);
  lock.ReleaseEx(a);
  QNode* b = lock.TryAcquireEx();
  ASSERT_NE(b, nullptr);
  lock.ReleaseEx(b);
}

TEST(OptiClhTest, SeqlockStressMirrorsOptiQl) {
  OptiCLH lock;
  volatile int64_t a = 0;
  volatile int64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t v;
        if (!lock.AcquireSh(v)) continue;
        const int64_t x = a;
        const int64_t y = b;
        if (lock.ReleaseSh(v) && x != y) {
          torn.store(true, std::memory_order_release);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  constexpr int kWriters = 3;
  constexpr int kWrites = 3000;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        QNode* handle = lock.AcquireEx();
        a = a + 1;
        for (int spin = 0; spin < 8; ++spin) {
          asm volatile("" ::: "memory");
        }
        b = b + 1;
        lock.ReleaseEx(handle);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, kWriters * kWrites);
  EXPECT_EQ(b, kWriters * kWrites);
  EXPECT_EQ(OptiCLH::VersionOf(lock.LoadWord()),
            static_cast<uint64_t>(kWriters * kWrites));
}

}  // namespace
}  // namespace optiql
