// Negative misuse tests for the checked-invariant build
// (-DOPTIQL_CHECK_INVARIANTS=ON): each test deliberately breaks a lock's
// protocol — double release, upgrade from a stale snapshot, freeing a
// queue node that is still enqueued — and passes only when the
// corresponding OPTIQL_INVARIANT fires. In a release build the tests are
// skipped: the misuse would be silent corruption there, which is exactly
// the point of the checked build.
//
// Death tests fork per EXPECT_DEATH, so the deliberately corrupted lock
// state never leaks into other tests.

#include <cstdint>

#include "core/opticlh.h"
#include "core/optiql.h"
#include "gtest/gtest.h"
#include "index/btree.h"
#include "index/hash_table.h"
#include "locks/clh_lock.h"
#include "locks/hybrid_lock.h"
#include "locks/mcs_lock.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/ticket_lock.h"
#include "locks/tts_lock.h"
#include "qnode/qnode_pool.h"
#include "sync/txn_ops.h"
#include "txn/txn.h"

namespace optiql {

// Friended by BTree (outside the anonymous namespace so the friend
// declaration matches): drives PublishSplit with deliberately wrong lock
// states to prove the SMO-ordering invariants fire. Only ever called
// inside EXPECT_DEATH children, so the bogus split never lands in a tree
// another test can see.
struct BTreeTestPeer {
  template <class Tree>
  static void PublishSplitWithUnlockedParent(Tree& tree) {
    auto* parent = Tree::AsInner(tree.root_.load(std::memory_order_acquire));
    typename Tree::NodeBase* left = parent->children[0];
    auto* right = new typename Tree::Leaf();
    tree.PublishSplit(parent, left, right, /*separator=*/0);
  }

  template <class Tree>
  static void PublishSplitWithUnlockedLeft(Tree& tree) {
    auto* parent = Tree::AsInner(tree.root_.load(std::memory_order_acquire));
    parent->lock.AcquireEx();  // Parent held, left half deliberately not.
    typename Tree::NodeBase* left = parent->children[0];
    auto* right = new typename Tree::Leaf();
    tree.PublishSplit(parent, left, right, /*separator=*/0);
  }
};

namespace {

#if defined(OPTIQL_CHECK_INVARIANTS) && OPTIQL_CHECK_INVARIANTS

constexpr const char* kDeathMessage = "OPTIQL_INVARIANT failed";

class InvariantDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fork-after-threads is unsafe with the "fast" style once the epoch /
    // registry singletons have spun up.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(InvariantDeathTest, OptLockDoubleRelease) {
  OptLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  EXPECT_DEATH(lock.ReleaseEx(), kDeathMessage);
}

TEST_F(InvariantDeathTest, OptLockReleaseWithoutAcquire) {
  OptLock lock;
  EXPECT_DEATH(lock.ReleaseExNoBump(), kDeathMessage);
}

TEST_F(InvariantDeathTest, OptLockObsoleteWithoutLock) {
  OptLock lock;
  EXPECT_DEATH(lock.ReleaseExObsolete(), kDeathMessage);
}

// The real footgun: TryUpgrade with a snapshot taken while the lock was
// held. If the word is unchanged the CAS *succeeds* (v | locked == v) and
// two writers both believe they own the lock.
TEST_F(InvariantDeathTest, OptLockUpgradeFromLockedSnapshot) {
  OptLock lock;
  lock.AcquireEx();
  const uint64_t stale = lock.LoadWord();  // LOCKED bit set.
  EXPECT_DEATH(lock.TryUpgrade(stale), kDeathMessage);
}

TEST_F(InvariantDeathTest, TtsDoubleRelease) {
  TtsLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  EXPECT_DEATH(lock.ReleaseEx(), kDeathMessage);
}

TEST_F(InvariantDeathTest, TicketDoubleRelease) {
  TicketLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  EXPECT_DEATH(lock.ReleaseEx(), kDeathMessage);
}

TEST_F(InvariantDeathTest, McsDoubleRelease) {
  McsLock lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  lock.ReleaseEx(guard.node());
  EXPECT_DEATH(lock.ReleaseEx(guard.node()), kDeathMessage);
}

TEST_F(InvariantDeathTest, McsAcquireWithEnqueuedNode) {
  McsLock a;
  McsLock b;
  QNodeGuard guard;
  a.AcquireEx(guard.node());
  EXPECT_DEATH(b.AcquireEx(guard.node()), kDeathMessage);
  a.ReleaseEx(guard.node());  // So the guard returns an idle node.
}

TEST_F(InvariantDeathTest, McsRwDoubleReleaseEx) {
  McsRwLock lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  lock.ReleaseEx(guard.node());
  EXPECT_DEATH(lock.ReleaseEx(guard.node()), kDeathMessage);
}

// Without the invariant this would HANG in WaitForSuccessorOrLeave (the
// queue never contained the node), not fail cleanly.
TEST_F(InvariantDeathTest, McsRwReleaseShWithoutAcquire) {
  McsRwLock lock;
  QNodeGuard guard;
  EXPECT_DEATH(lock.ReleaseSh(guard.node()), kDeathMessage);
}

TEST_F(InvariantDeathTest, ClhDoubleRelease) {
  ClhLock lock;
  QNode* handle = lock.AcquireEx();
  lock.ReleaseEx(handle);
  EXPECT_DEATH(lock.ReleaseEx(handle), kDeathMessage);
}

TEST_F(InvariantDeathTest, OptiQlDoubleRelease) {
  OptiQL lock;
  QNodeGuard guard;
  lock.AcquireEx(guard.node());
  lock.ReleaseEx(guard.node());
  EXPECT_DEATH(lock.ReleaseEx(guard.node()), kDeathMessage);
}

TEST_F(InvariantDeathTest, OptiQlReleaseWithoutAcquire) {
  OptiQL lock;
  QNodeGuard guard;
  EXPECT_DEATH(lock.ReleaseEx(guard.node()), kDeathMessage);
}

// Returning a queue node to the pool while it still sits in a lock's
// queue: the classic validate-after-free setup — the next Acquire would
// hand the same node to another thread while the queue still links it.
TEST_F(InvariantDeathTest, OptiQlFreeEnqueuedQNode) {
  OptiQL lock;
  QNodePool& pool = QNodePool::Instance();
  QNode* node = pool.Acquire();
  ASSERT_NE(node, nullptr);
  lock.AcquireEx(node);
  EXPECT_DEATH(pool.Release(node), kDeathMessage);
  lock.ReleaseEx(node);
  pool.Release(node);
}

TEST_F(InvariantDeathTest, QNodePoolDoubleRelease) {
  QNodePool& pool = QNodePool::Instance();
  QNode* node = pool.Acquire();
  ASSERT_NE(node, nullptr);
  pool.Release(node);
  EXPECT_DEATH(pool.Release(node), kDeathMessage);
  // Leave the node in the pool (released exactly once in this process).
}

TEST_F(InvariantDeathTest, OptiClhDoubleRelease) {
  OptiCLH lock;
  QNode* handle = lock.AcquireEx();
  lock.ReleaseEx(handle);
  EXPECT_DEATH(lock.ReleaseEx(handle), kDeathMessage);
}

// --- Hybrid lock mode-transition legality ---

TEST_F(InvariantDeathTest, HybridReleaseExWithoutAcquire) {
  HybridLock lock;
  EXPECT_DEATH(lock.ReleaseEx(), kDeathMessage);
}

TEST_F(InvariantDeathTest, HybridDoubleReleaseEx) {
  HybridLock lock;
  lock.AcquireEx();
  lock.ReleaseEx();
  EXPECT_DEATH(lock.ReleaseEx(), kDeathMessage);
}

// Underflows the shared count into the version field, which would silently
// invalidate every optimistic snapshot on the lock.
TEST_F(InvariantDeathTest, HybridReleaseShPessimisticWithoutAcquire) {
  HybridLock lock;
  EXPECT_DEATH(lock.ReleaseShPessimistic(), kDeathMessage);
}

// The 15-bit shared count saturates at 2^15-1 readers; one more increment
// would carry into the exclusive bit and fabricate a writer. Registration
// is a CAS, so one thread can legally stack up all 32767 registrations.
TEST_F(InvariantDeathTest, HybridPessimisticReaderOverflow) {
  HybridLock lock;
  const uint32_t max_readers =
      static_cast<uint32_t>(HybridLock::kSharedMask >>
                            HybridLock::kSharedShift);
  for (uint32_t i = 0; i < max_readers; ++i) lock.AcquireShPessimistic();
  ASSERT_EQ(lock.SharedCount(), max_readers);
  EXPECT_DEATH(lock.AcquireShPessimistic(), kDeathMessage);
  for (uint32_t i = 0; i < max_readers; ++i) lock.ReleaseShPessimistic();
}

// --- B+-tree SMO ordering ---
//
// A split becomes visible the instant the separator lands in the parent;
// publishing with the parent (or the half-emptied left node) unlocked
// would expose a torn split to optimistic readers.

TEST_F(InvariantDeathTest, BTreeSplitPublishedIntoUnlockedParent) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  for (uint64_t k = 0; k < 4096; ++k) ASSERT_TRUE(tree.Insert(k, k));
  ASSERT_GE(tree.Height(), 2);  // The root must be an inner node.
  EXPECT_DEATH(BTreeTestPeer::PublishSplitWithUnlockedParent(tree),
               kDeathMessage);
}

TEST_F(InvariantDeathTest, BTreeSplitPublishedWithUnlockedLeftHalf) {
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  for (uint64_t k = 0; k < 4096; ++k) ASSERT_TRUE(tree.Insert(k, k));
  ASSERT_GE(tree.Height(), 2);
  EXPECT_DEATH(BTreeTestPeer::PublishSplitWithUnlockedLeft(tree),
               kDeathMessage);
}

// --- Transaction-layer misuse (src/txn/ + the TxnOps facade) ---
//
// The transaction protocols have their own lifecycle invariants on top of
// the lock state machines: a finished transaction is dead, a guard that
// never locked a record cannot install, and releasing through TxnOps
// still trips the underlying lock's double-release check.

TEST_F(InvariantDeathTest, TxnCommitTwice) {
  HashTable<HashOlcPolicy> table;
  ASSERT_TRUE(table.Insert(1, 10));
  OccTxn<HashTable<HashOlcPolicy>> txn(table);
  uint64_t out = 0;
  ASSERT_EQ(txn.Get(1, out), TxnResult::kOk);
  ASSERT_TRUE(txn.Commit());
  EXPECT_DEATH(txn.Commit(), kDeathMessage);
}

TEST_F(InvariantDeathTest, TxnPutAfterAbort) {
  HashTable<HashOlcPolicy> table;
  ASSERT_TRUE(table.Insert(1, 10));
  TwoPlTxn<HashTable<HashOlcPolicy>> txn(table);
  uint64_t out = 0;
  ASSERT_EQ(txn.Get(1, out), TxnResult::kOk);
  txn.Abort();
  EXPECT_DEATH(txn.Put(1, 11), kDeathMessage);
}

TEST_F(InvariantDeathTest, TxnGuardInstallWithoutLockedRecord) {
  HashTable<HashOlcPolicy>::TxnWriteGuard guard;
  EXPECT_DEATH(guard.Install(1), kDeathMessage);
}

TEST_F(InvariantDeathTest, TxnOpsDoubleUnlockEx) {
  OptLock lock;
  const TxnOps<OptLock>::ExHandle handle =
      TxnOps<OptLock>::LockEx(lock, /*slot=*/0);
  TxnOps<OptLock>::UnlockEx(lock, handle);
  EXPECT_DEATH(TxnOps<OptLock>::UnlockEx(lock, handle), kDeathMessage);
}

#else  // !OPTIQL_CHECK_INVARIANTS

TEST(InvariantDeathTest, SkippedInReleaseBuild) {
  GTEST_SKIP() << "invariant checks compiled out; configure with "
                  "-DOPTIQL_CHECK_INVARIANTS=ON";
}

#endif  // OPTIQL_CHECK_INVARIANTS

}  // namespace
}  // namespace optiql
