// Transaction-layer tests (src/txn/txn.h): OCC and no-wait 2PL over every
// transaction-hosting index family.
//
//  * Serial differential: randomized multi-key transactions against a
//    single-threaded std::map reference — read-your-writes, repeatable
//    reads, found/not-found parity, and zero aborts when uncontended.
//  * Concurrent conservation: bank-transfer transactions move value
//    between accounts; the total is invariant under any interleaving iff
//    isolation holds. Checked for both protocols on every host.
//  * Retry accounting: RunTxn must deliver exactly one commit per call,
//    with aborts attributed to the protocol's losing phase.
//  * ShardedStore forwarding: the store is a transaction host whenever
//    its shards are, with shard-major lock ranks.
//
// Suite naming feeds the TSan exclusion globs in tests/CMakeLists.txt:
// the concurrent typed suites are TxnOcc*/TxnTwoPl* with instance names
// carrying the lock family (Olc/OptiQl/OptiClh), so versioned-host
// instances are filtered under TSan while the pessimistic MCS-RW host
// instance still runs there.

#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "core/opticlh.h"
#include "core/optiql.h"
#include "gtest/gtest.h"
#include "index/btree.h"
#include "index/hash_table.h"
#include "index/index_ops.h"
#include "locks/mcs_rw_lock.h"
#include "store/sharded_store.h"
#include "txn/txn.h"

namespace optiql {
namespace {

using OlcTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using OptiQlTree =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/false>>;
using OlcHash = HashTable<HashOlcPolicy>;
using OptiQlHash = HashTable<HashOptiQlPolicy<>>;
using OptiClhHash = HashTable<HashLockPolicy<OptiCLH>>;
using McsRwHash = HashTable<HashLockPolicy<McsRwLock>>;
using ShardedOptiQlTree = ShardedStore<OptiQlTree>;
using ShardedOlcHash = ShardedStore<OlcHash>;

static_assert(TxnVersionedHost<OlcTree>);
static_assert(TxnVersionedHost<OptiQlTree>);
static_assert(TxnVersionedHost<OlcHash>);
static_assert(TxnVersionedHost<OptiQlHash>);
static_assert(TxnVersionedHost<OptiClhHash>);
static_assert(TxnVersionedHost<ShardedOptiQlTree>);
static_assert(TxnVersionedHost<ShardedOlcHash>);
static_assert(!TxnVersionedHost<McsRwHash>);
static_assert(TxnSharedReadHost<McsRwHash>);
static_assert(!TxnHostIndex<BTree<uint64_t, uint64_t,
                                  BTreeCouplingPolicy<McsRwLock>>>);

constexpr uint64_t kKeys = 512;

template <class Index>
void Populate(Index& index) {
  for (uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(IndexInsert(index, k, k * 10));
  }
}

// --- Serial differential ---------------------------------------------------

// Randomized multi-key transactions vs a std::map oracle. Single-threaded,
// so neither protocol may ever abort; Gets must see committed state plus
// the transaction's own pending writes.
template <class Index, class Txn>
void SerialDifferential() {
  Index index;
  Populate(index);
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t k = 1; k <= kKeys; ++k) ref[k] = k * 10;

  std::mt19937_64 rng(42);
  struct Op {
    bool put;
    uint64_t key;
    uint64_t value;
  };
  for (int round = 0; round < 500; ++round) {
    const size_t size = 1 + rng() % 6;
    std::vector<Op> ops;
    for (size_t i = 0; i < size; ++i) {
      const bool put = rng() % 2 == 0;
      // Reads sometimes target absent keys; writes never do (the workload
      // model updates existing keys only).
      const uint64_t key =
          put ? 1 + rng() % kKeys
              : (rng() % 8 == 0 ? kKeys + 1 + rng() % 16 : 1 + rng() % kKeys);
      ops.push_back(Op{put, key, rng()});
    }

    TxnStats stats;
    RunTxn<Txn>(index, stats, [&](Txn& txn) {
      std::map<uint64_t, uint64_t> pending;
      for (const Op& op : ops) {
        if (op.put) {
          if (txn.Put(op.key, op.value) != TxnResult::kOk) return false;
          pending[op.key] = op.value;
        } else {
          uint64_t out = 0;
          const TxnResult result = txn.Get(op.key, out);
          if (result == TxnResult::kAbort) return false;
          const bool exists =
              pending.count(op.key) != 0 || ref.count(op.key) != 0;
          EXPECT_EQ(result == TxnResult::kOk, exists);
          if (result == TxnResult::kOk) {
            const uint64_t expected = pending.count(op.key) != 0
                                          ? pending[op.key]
                                          : ref[op.key];
            EXPECT_EQ(out, expected);
          }
        }
      }
      return true;
    });
    EXPECT_EQ(stats.commits, 1u);
    EXPECT_EQ(stats.aborts, 0u);
    for (const Op& op : ops) {
      if (op.put) ref[op.key] = op.value;
    }
  }

  for (const auto& [key, value] : ref) {
    uint64_t out = 0;
    ASSERT_TRUE(IndexLookup(index, key, out));
    EXPECT_EQ(out, value);
  }
  IndexCheckInvariants(index);
}

TEST(TxnSerialTest, OccOlcTree) { SerialDifferential<OlcTree, OccTxn<OlcTree>>(); }
TEST(TxnSerialTest, OccOptiQlTree) {
  SerialDifferential<OptiQlTree, OccTxn<OptiQlTree>>();
}
TEST(TxnSerialTest, OccOlcHash) { SerialDifferential<OlcHash, OccTxn<OlcHash>>(); }
TEST(TxnSerialTest, OccOptiQlHash) {
  SerialDifferential<OptiQlHash, OccTxn<OptiQlHash>>();
}
TEST(TxnSerialTest, OccOptiClhHash) {
  SerialDifferential<OptiClhHash, OccTxn<OptiClhHash>>();
}
TEST(TxnSerialTest, OccShardedOptiQlTree) {
  SerialDifferential<ShardedOptiQlTree, OccTxn<ShardedOptiQlTree>>();
}
TEST(TxnSerialTest, TwoPlOlcTree) {
  SerialDifferential<OlcTree, TwoPlTxn<OlcTree>>();
}
TEST(TxnSerialTest, TwoPlOptiQlTree) {
  SerialDifferential<OptiQlTree, TwoPlTxn<OptiQlTree>>();
}
TEST(TxnSerialTest, TwoPlOlcHash) {
  SerialDifferential<OlcHash, TwoPlTxn<OlcHash>>();
}
TEST(TxnSerialTest, TwoPlOptiQlHash) {
  SerialDifferential<OptiQlHash, TwoPlTxn<OptiQlHash>>();
}
TEST(TxnSerialTest, TwoPlOptiClhHash) {
  SerialDifferential<OptiClhHash, TwoPlTxn<OptiClhHash>>();
}
TEST(TxnSerialTest, TwoPlMcsRwHash) {
  SerialDifferential<McsRwHash, TwoPlTxn<McsRwHash>>();
}
TEST(TxnSerialTest, TwoPlShardedOlcHash) {
  SerialDifferential<ShardedOlcHash, TwoPlTxn<ShardedOlcHash>>();
}

// --- Concurrent conservation ----------------------------------------------

// Bank transfers: every committed transaction moves `amount` from one
// account to another, so the sum over all accounts is invariant iff the
// protocol serializes correctly. Each thread commits exactly `kTransfers`
// transactions (RunTxn retries aborts), so the final stats must balance.
template <class Index, class Txn>
void ConcurrentTransfers(int threads) {
  constexpr uint64_t kAccounts = 64;  // Small: force real contention.
  constexpr uint64_t kInitial = 1000;
  constexpr int kTransfers = 2000;
  Index index;
  for (uint64_t k = 1; k <= kAccounts; ++k) {
    ASSERT_TRUE(IndexInsert(index, k, kInitial));
  }

  std::vector<TxnStats> stats(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&index, &stats, t] {
      std::mt19937_64 rng(0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t));
      for (int i = 0; i < kTransfers; ++i) {
        const uint64_t from = 1 + rng() % kAccounts;
        uint64_t to = 1 + rng() % kAccounts;
        if (to == from) to = from % kAccounts + 1;
        const uint64_t amount = rng() % 5;
        RunTxn<Txn>(index, stats[static_cast<size_t>(t)], [&](Txn& txn) {
          uint64_t from_balance = 0;
          uint64_t to_balance = 0;
          if (txn.Get(from, from_balance) != TxnResult::kOk) return false;
          if (txn.Get(to, to_balance) != TxnResult::kOk) return false;
          if (from_balance < amount) return true;  // Commit empty.
          if (txn.Put(from, from_balance - amount) != TxnResult::kOk) {
            return false;
          }
          if (txn.Put(to, to_balance + amount) != TxnResult::kOk) {
            return false;
          }
          return true;
        });
      }
    });
  }
  for (auto& worker : workers) worker.join();

  TxnStats total;
  for (const TxnStats& s : stats) total += s;
  EXPECT_EQ(total.commits,
            static_cast<uint64_t>(threads) * static_cast<uint64_t>(kTransfers));
  EXPECT_EQ(total.aborts, total.busy_aborts + total.validation_aborts);

  uint64_t sum = 0;
  for (uint64_t k = 1; k <= kAccounts; ++k) {
    uint64_t balance = 0;
    ASSERT_TRUE(IndexLookup(index, k, balance));
    sum += balance;
  }
  EXPECT_EQ(sum, kAccounts * kInitial);
  IndexCheckInvariants(index);
}

// 2PL Gets on versioned hosts take exclusive locks, so a Get can return
// kAbort; the transfer body above handles every access uniformly.

TEST(TxnOccConcurrentTest, OlcTree) {
  ConcurrentTransfers<OlcTree, OccTxn<OlcTree>>(4);
}
TEST(TxnOccConcurrentTest, OptiQlTree) {
  ConcurrentTransfers<OptiQlTree, OccTxn<OptiQlTree>>(4);
}
TEST(TxnOccConcurrentTest, OlcHash) {
  ConcurrentTransfers<OlcHash, OccTxn<OlcHash>>(4);
}
TEST(TxnOccConcurrentTest, OptiQlHash) {
  ConcurrentTransfers<OptiQlHash, OccTxn<OptiQlHash>>(4);
}
TEST(TxnOccConcurrentTest, OptiClhHash) {
  ConcurrentTransfers<OptiClhHash, OccTxn<OptiClhHash>>(4);
}
TEST(TxnOccConcurrentTest, ShardedOptiQlTree) {
  ConcurrentTransfers<ShardedOptiQlTree, OccTxn<ShardedOptiQlTree>>(4);
}

TEST(TxnTwoPlConcurrentTest, OlcTree) {
  ConcurrentTransfers<OlcTree, TwoPlTxn<OlcTree>>(4);
}
TEST(TxnTwoPlConcurrentTest, OptiQlTree) {
  ConcurrentTransfers<OptiQlTree, TwoPlTxn<OptiQlTree>>(4);
}
TEST(TxnTwoPlConcurrentTest, OptiQlHash) {
  ConcurrentTransfers<OptiQlHash, TwoPlTxn<OptiQlHash>>(4);
}
// The MCS-RW host has no optimistic read anywhere in its transaction
// paths, so this instance deliberately avoids the TSan exclusion globs
// and keeps the 2PL machinery under TSan in CI.
TEST(TxnTwoPlConcurrentTest, McsRwHashSharedReads) {
  ConcurrentTransfers<McsRwHash, TwoPlTxn<McsRwHash>>(4);
}

// --- Abort/retry accounting ------------------------------------------------

// Two threads hammer the same two records in opposite orders: no-wait 2PL
// must abort (never deadlock) and RunTxn must retry each transaction to
// exactly one commit, attributing every abort to a busy lock.
TEST(TxnTwoPlConcurrentTest, NoWaitRetriesResolveOpposingOrders) {
  OptiQlHash index;
  ASSERT_TRUE(index.Insert(1, 0));
  ASSERT_TRUE(index.Insert(2, 0));
  constexpr int kRounds = 4000;
  TxnStats stats_a, stats_b;
  std::thread a([&] {
    for (int i = 0; i < kRounds; ++i) {
      RunTxn<TwoPlTxn<OptiQlHash>>(index, stats_a, [&](auto& txn) {
        uint64_t v = 0;
        if (txn.Get(1, v) != TxnResult::kOk) return false;
        if (txn.Put(2, v + 1) != TxnResult::kOk) return false;
        return true;
      });
    }
  });
  std::thread b([&] {
    for (int i = 0; i < kRounds; ++i) {
      RunTxn<TwoPlTxn<OptiQlHash>>(index, stats_b, [&](auto& txn) {
        uint64_t v = 0;
        if (txn.Get(2, v) != TxnResult::kOk) return false;
        if (txn.Put(1, v + 1) != TxnResult::kOk) return false;
        return true;
      });
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(stats_a.commits, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(stats_b.commits, static_cast<uint64_t>(kRounds));
  EXPECT_EQ(stats_a.validation_aborts, 0u);
  EXPECT_EQ(stats_b.validation_aborts, 0u);
}

// OCC under heavy read-write overlap on one record: every commit is a
// lost-update hazard that validation must have rejected. The counter ends
// exactly at the number of committed increments.
TEST(TxnOccConcurrentTest, ValidationPreventsLostUpdates) {
  OlcHash index;
  ASSERT_TRUE(index.Insert(7, 0));
  constexpr int kIncrements = 5000;
  constexpr int kThreads = 4;
  std::vector<TxnStats> stats(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&index, &stats, t] {
      for (int i = 0; i < kIncrements; ++i) {
        RunTxn<OccTxn<OlcHash>>(index, stats[static_cast<size_t>(t)],
                                [&](auto& txn) {
                                  uint64_t v = 0;
                                  if (txn.Get(7, v) != TxnResult::kOk) {
                                    return false;
                                  }
                                  return txn.Put(7, v + 1) == TxnResult::kOk;
                                });
      }
    });
  }
  for (auto& worker : workers) worker.join();
  uint64_t final_value = 0;
  ASSERT_TRUE(index.Lookup(7, final_value));
  EXPECT_EQ(final_value,
            static_cast<uint64_t>(kThreads) *
                static_cast<uint64_t>(kIncrements));
}

// --- Sharded store forwarding ----------------------------------------------

TEST(TxnShardedTest, RanksAreShardMajor) {
  ShardedOlcHash store(4);
  for (uint64_t k = 1; k <= 64; ++k) {
    ASSERT_TRUE(store.Insert(k, k));
  }
  for (uint64_t k = 1; k <= 64; ++k) {
    EXPECT_EQ(store.TxnLockRank(k).first, store.ShardIndexOf(k));
  }
}

TEST(TxnShardedTest, CrossShardTransfersConserve) {
  ConcurrentTransfers<ShardedOlcHash, TwoPlTxn<ShardedOlcHash>>(4);
}

}  // namespace
}  // namespace optiql
