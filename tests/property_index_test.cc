// Parameterized property sweeps over the indexes (TEST_P): the same
// randomized oracle fuzz runs across a grid of (seed, key-space size,
// key-space shape, operation mix), for the OptiQL B+-tree and both ART
// variants. Every run must agree with std::map exactly and end with intact
// structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "index/art.h"
#include "index/art_coupling.h"
#include "index/btree.h"

namespace optiql {
namespace {

struct FuzzParam {
  uint64_t seed;
  uint64_t key_space;
  bool sparse;
  int insert_weight;  // Out of 10; remainder split between remove/lookup.
  int ops;
};

std::string FuzzName(const ::testing::TestParamInfo<FuzzParam>& info) {
  return "s" + std::to_string(info.param.seed) + "_k" +
         std::to_string(info.param.key_space) +
         (info.param.sparse ? "_sparse" : "_dense") + "_w" +
         std::to_string(info.param.insert_weight);
}

class IndexFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

template <class Tree, class InsertFn, class RemoveFn, class LookupFn,
          class UpdateFn>
void RunFuzz(const FuzzParam& param, Tree& tree, const InsertFn& do_insert,
             const RemoveFn& do_remove, const LookupFn& do_lookup,
             const UpdateFn& do_update) {
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(param.seed);
  for (int i = 0; i < param.ops; ++i) {
    uint64_t key = rng.NextBounded(param.key_space);
    if (param.sparse) key = ScrambleKey(key);
    const uint64_t value = rng.Next() | 1;
    const int roll = static_cast<int>(rng.NextBounded(10));
    if (roll < param.insert_weight) {
      ASSERT_EQ(do_insert(tree, key, value),
                oracle.emplace(key, value).second);
    } else if (roll < param.insert_weight + 2) {
      ASSERT_EQ(do_remove(tree, key), oracle.erase(key) == 1);
    } else if (roll < param.insert_weight + 4) {
      auto it = oracle.find(key);
      ASSERT_EQ(do_update(tree, key, value), it != oracle.end());
      if (it != oracle.end()) it->second = value;
    } else {
      uint64_t out = 0;
      auto it = oracle.find(key);
      ASSERT_EQ(do_lookup(tree, key, out), it != oracle.end());
      if (it != oracle.end()) {
        ASSERT_EQ(out, it->second);
      }
    }
  }
  ASSERT_EQ(tree.Size(), oracle.size());
  tree.CheckInvariants();
  for (const auto& [key, value] : oracle) {
    uint64_t out = 0;
    ASSERT_TRUE(do_lookup(tree, key, out));
    ASSERT_EQ(out, value);
  }
}

TEST_P(IndexFuzzTest, BTreeOptiQlMatchesOracle) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  RunFuzz(
      GetParam(), tree,
      [](auto& t, uint64_t k, uint64_t v) { return t.Insert(k, v); },
      [](auto& t, uint64_t k) { return t.Remove(k); },
      [](auto& t, uint64_t k, uint64_t& out) { return t.Lookup(k, out); },
      [](auto& t, uint64_t k, uint64_t v) { return t.Update(k, v); });
}

TEST_P(IndexFuzzTest, BTreeCouplingMatchesOracle) {
  BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>> tree;
  RunFuzz(
      GetParam(), tree,
      [](auto& t, uint64_t k, uint64_t v) { return t.Insert(k, v); },
      [](auto& t, uint64_t k) { return t.Remove(k); },
      [](auto& t, uint64_t k, uint64_t& out) { return t.Lookup(k, out); },
      [](auto& t, uint64_t k, uint64_t v) { return t.Update(k, v); });
}

TEST_P(IndexFuzzTest, ArtOptiQlMatchesOracle) {
  ArtTree<ArtOptiQlPolicy<OptiQL>> tree;
  RunFuzz(
      GetParam(), tree,
      [](auto& t, uint64_t k, uint64_t v) { return t.InsertInt(k, v); },
      [](auto& t, uint64_t k) { return t.RemoveInt(k); },
      [](auto& t, uint64_t k, uint64_t& out) { return t.LookupInt(k, out); },
      [](auto& t, uint64_t k, uint64_t v) { return t.UpdateInt(k, v); });
}

TEST_P(IndexFuzzTest, ArtCouplingMatchesOracle) {
  ArtCouplingTree<McsRwLock> tree;
  RunFuzz(
      GetParam(), tree,
      [](auto& t, uint64_t k, uint64_t v) { return t.InsertInt(k, v); },
      [](auto& t, uint64_t k) { return t.RemoveInt(k); },
      [](auto& t, uint64_t k, uint64_t& out) { return t.LookupInt(k, out); },
      [](auto& t, uint64_t k, uint64_t v) { return t.UpdateInt(k, v); });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IndexFuzzTest,
    ::testing::Values(
        FuzzParam{1, 100, false, 5, 6000},    // Tiny hot space, dense.
        FuzzParam{2, 100, true, 5, 6000},     // Tiny hot space, sparse.
        FuzzParam{3, 5000, false, 6, 8000},   // Mid, insert-leaning.
        FuzzParam{4, 5000, true, 6, 8000},
        FuzzParam{5, 100000, false, 8, 8000},  // Wide, growth-heavy.
        FuzzParam{6, 100000, true, 8, 8000},
        FuzzParam{7, 64, false, 2, 6000},      // Churn-heavy on few keys.
        FuzzParam{8, 64, true, 2, 6000}),
    FuzzName);

}  // namespace
}  // namespace optiql
