// Telemetry counter exactness (ISSUE 6 tentpole plumbing). Every counting
// site fires once per *event*, not per spin iteration, so a replayed
// single-threaded scenario has an exact expected count — these tests pin
// those contracts. In default builds (OPTIQL_LOCK_TELEMETRY off) the
// counting is compiled out; the suite then verifies the counters stay
// zero and skips the exactness checks. The telemetry CI job re-runs it
// with -DOPTIQL_LOCK_TELEMETRY=ON where the exact counts are enforced.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "index/btree.h"
#include "locks/hybrid_lock.h"
#include "locks/optlock.h"
#include "sync/lock_telemetry.h"

namespace optiql {
namespace {

#define SKIP_UNLESS_TELEMETRY()                                       \
  if constexpr (!LockTelemetry::kEnabled) {                           \
    GTEST_SKIP() << "telemetry compiled out; configure with "         \
                    "-DOPTIQL_LOCK_TELEMETRY=ON";                     \
  }

TEST(LockTelemetryTest, DisabledBuildCountsNothing) {
  if constexpr (LockTelemetry::kEnabled) {
    GTEST_SKIP() << "counting is live in this build";
  }
  LockTelemetry::Reset();
  OptLock lock;
  lock.AcquireEx();
  uint64_t v = 0;
  EXPECT_FALSE(lock.AcquireSh(v));  // Would count a restart if enabled.
  lock.ReleaseEx();
  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  for (uint32_t c = 0; c < LockTelemetry::kNumCounters; ++c) {
    EXPECT_EQ(s.counts[c], 0u);
  }
}

TEST(LockTelemetryTest, NamesAreStable) {
  // The bench layer keys JSON fields off these; renames break consumers.
  EXPECT_STREQ(LockTelemetry::Name(LockTelemetry::kOptimisticRestart),
               "optimistic_restarts");
  EXPECT_STREQ(LockTelemetry::Name(LockTelemetry::kPessimisticFallback),
               "pessimistic_fallbacks");
  EXPECT_STREQ(LockTelemetry::Name(LockTelemetry::kExclusiveWait),
               "exclusive_waits");
  EXPECT_STREQ(LockTelemetry::Name(LockTelemetry::kInPlaceUpdate),
               "inplace_updates");
}

TEST(LockTelemetryTest, OptLockRestartExactness) {
  SKIP_UNLESS_TELEMETRY();
  LockTelemetry::Reset();
  OptLock lock;

  // Failed AcquireSh (word locked): exactly one restart.
  lock.AcquireEx();
  uint64_t v = 0;
  EXPECT_FALSE(lock.AcquireSh(v));
  lock.ReleaseEx();

  // Failed ReleaseSh (version moved under the snapshot): one more.
  ASSERT_TRUE(lock.AcquireSh(v));
  lock.AcquireEx();  // Uncontended: must NOT count a wait.
  lock.ReleaseEx();
  EXPECT_FALSE(lock.ReleaseSh(v));

  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  EXPECT_EQ(s.restarts(), 2u);
  EXPECT_EQ(s.fallbacks(), 0u);
  EXPECT_EQ(s.waits(), 0u);
}

TEST(LockTelemetryTest, HybridFallbackExactness) {
  SKIP_UNLESS_TELEMETRY();
  LockTelemetry::Reset();
  HybridLock lock;

  // Self-invalidate the first kOptimisticAttempts validations, then let
  // the pessimistic leg run clean: exactly kOptimisticAttempts restarts
  // and exactly one fallback, with zero waits (every AcquireEx below is
  // uncontended).
  int calls = 0;
  const bool fell_back = lock.ReadCriticalHybrid([&] {
    if (calls < HybridLock::kOptimisticAttempts) {
      lock.AcquireEx();
      lock.ReleaseEx();
    }
    ++calls;
  });
  EXPECT_TRUE(fell_back);
  EXPECT_EQ(calls, HybridLock::kOptimisticAttempts + 1);

  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  EXPECT_EQ(s.restarts(),
            static_cast<uint64_t>(HybridLock::kOptimisticAttempts));
  EXPECT_EQ(s.fallbacks(), 1u);
  EXPECT_EQ(s.waits(), 0u);
}

TEST(LockTelemetryTest, ExclusiveWaitCountedOncePerContendedAcquire) {
  SKIP_UNLESS_TELEMETRY();
  LockTelemetry::Reset();
  HybridLock lock;
  lock.AcquireEx();  // Uncontended: 0 waits.
  std::thread contender([&] {
    lock.AcquireEx();  // Contended: exactly 1 wait, however long it spins.
    lock.ReleaseEx();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.ReleaseEx();
  contender.join();  // Thread exit folds its slot into the retired totals.

  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  EXPECT_EQ(s.waits(), 1u);
  EXPECT_EQ(s.restarts(), 0u);
}

TEST(LockTelemetryTest, AdaptiveEscalationExactness) {
  SKIP_UNLESS_TELEMETRY();
  LockTelemetry::Reset();
  AdaptiveHybridLock lock;
  ASSERT_TRUE(lock.TryAcquireEx());
  // 12 probe collisions: 12 waits, and exactly 2 escalations (optimistic
  // -> pessimistic-read at score 16, -> queued at 48).
  for (int i = 0; i < 12; ++i) EXPECT_FALSE(lock.TryAcquireEx());
  lock.ReleaseEx();
  ASSERT_EQ(lock.CurrentMode(), AdaptiveHybridLock::Mode::kQueued);

  LockTelemetry::Snapshot s = LockTelemetry::Take();
  EXPECT_EQ(s.waits(), 12u);
  EXPECT_EQ(s[LockTelemetry::kModeEscalation], 2u);
  EXPECT_EQ(s[LockTelemetry::kModeDeescalation], 0u);

  // Drain all the way back: exactly 2 de-escalations, however many
  // sampled credits it takes.
  QNodeGuard guard;
  for (int i = 0;
       i < 64 && lock.CurrentMode() == AdaptiveHybridLock::Mode::kQueued;
       ++i) {
    ASSERT_TRUE(lock.AcquireEx(guard.node()));
    lock.ReleaseEx(guard.node(), /*via_gate=*/true);
  }
  uint64_t value = 0;
  for (int i = 0; i < 2000 && lock.CurrentMode() !=
                                  AdaptiveHybridLock::Mode::kOptimistic;
       ++i) {
    lock.ReadCritical([&] { ++value; });
  }
  ASSERT_EQ(lock.CurrentMode(), AdaptiveHybridLock::Mode::kOptimistic);
  s = LockTelemetry::Take();
  EXPECT_EQ(s[LockTelemetry::kModeDeescalation], 2u);
}

// Single-threaded replay: every Update of an existing key must take the
// in-place path exactly once — no fallbacks, no restarts.
template <class Tree>
void InPlaceReplayExactness() {
  LockTelemetry::Reset();
  Tree tree;
  constexpr uint64_t kKeys = 512;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree.Insert(k, k));
  }
  LockTelemetry::Reset();  // Preload splits are not part of the replay.

  for (int round = 1; round <= 2; ++round) {
    for (uint64_t k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(tree.Update(k, k + static_cast<uint64_t>(round)));
    }
  }
  // A miss and an upsert-of-a-missing-key must NOT count as in-place
  // events (the miss is a validated no-op; the upsert takes the locked
  // insert path before any upgrade is attempted).
  EXPECT_FALSE(tree.Update(kKeys + 7, 0));
  tree.Upsert(kKeys + 7, 7);

  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  EXPECT_EQ(s[LockTelemetry::kInPlaceUpdate], 2 * kKeys);
  EXPECT_EQ(s[LockTelemetry::kInPlaceFallback], 0u);
  EXPECT_EQ(s.restarts(), 0u);

  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(3, out));
  EXPECT_EQ(out, 5u);  // 3 + round 2.
  tree.CheckInvariants();
}

TEST(LockTelemetryTest, InPlaceReplayExactnessOlc) {
  SKIP_UNLESS_TELEMETRY();
  InPlaceReplayExactness<BTree<uint64_t, uint64_t, BTreeOlcInPlacePolicy>>();
}

TEST(LockTelemetryTest, InPlaceReplayExactnessOptiQl) {
  SKIP_UNLESS_TELEMETRY();
  InPlaceReplayExactness<
      BTree<uint64_t, uint64_t, BTreeOptiQlInPlacePolicy<OptiQL>>>();
}

TEST(LockTelemetryTest, ResetZeroesEverything) {
  SKIP_UNLESS_TELEMETRY();
  OptLock lock;
  lock.AcquireEx();
  uint64_t v = 0;
  EXPECT_FALSE(lock.AcquireSh(v));
  lock.ReleaseEx();
  EXPECT_GE(LockTelemetry::Take().restarts(), 1u);
  LockTelemetry::Reset();
  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  for (uint32_t c = 0; c < LockTelemetry::kNumCounters; ++c) {
    EXPECT_EQ(s.counts[c], 0u);
  }
}

}  // namespace
}  // namespace optiql
