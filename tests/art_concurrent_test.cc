// Concurrent ART stress across synchronization policies: disjoint inserts,
// racing same-key inserts, reader consistency under updates and node
// growth, churn with removes, and contention-expansion under load.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "index/art.h"
#include "index/art_coupling.h"

namespace optiql {
namespace {

using OlcArt = ArtTree<ArtOlcPolicy>;
using OptiQlArt = ArtTree<ArtOptiQlPolicy<OptiQL>>;
using OptiQlNorArt = ArtTree<ArtOptiQlPolicy<OptiQLNor>>;
using McsRwArt = ArtCouplingTree<McsRwLock>;
using PthreadArt = ArtCouplingTree<SharedMutexLock>;

template <class Tree>
class ArtConcurrentTest : public ::testing::Test {};

// Protocol names (ArtConcurrentTest/Olc, ...) so the TSan exclusion list
// in tests/CMakeLists.txt can filter the optimistic variants by name.
struct ArtNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcArt>) return "Olc";
    if (std::is_same_v<T, OptiQlArt>) return "OptiQl";
    if (std::is_same_v<T, OptiQlNorArt>) return "OptiQlNor";
    if (std::is_same_v<T, McsRwArt>) return "McsRw";
    if (std::is_same_v<T, PthreadArt>) return "Pthread";
    return "Unknown";
  }
};

using ArtTypes = ::testing::Types<OlcArt, OptiQlArt, OptiQlNorArt, McsRwArt,
                                  PthreadArt>;
TYPED_TEST_SUITE(ArtConcurrentTest, ArtTypes, ArtNames);

TYPED_TEST(ArtConcurrentTest, DisjointConcurrentInserts) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(tree.InsertInt(key, key + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.Size(), kThreads * kPerThread);
  tree.CheckInvariants();
  for (uint64_t key = 0; key < kThreads * kPerThread; ++key) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(key, out)) << key;
    ASSERT_EQ(out, key + 1);
  }
}

TYPED_TEST(ArtConcurrentTest, DisjointConcurrentSparseInserts) {
  // Sparse keys: concurrent leaf forks and prefix splits everywhere.
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key =
            ScrambleKey(static_cast<uint64_t>(t) * kPerThread + i);
        ASSERT_TRUE(tree.InsertInt(key, key));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tree.Size(), kThreads * kPerThread);
  tree.CheckInvariants();
  for (uint64_t i = 0; i < kThreads * kPerThread; ++i) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(ScrambleKey(i), out)) << i;
    ASSERT_EQ(out, ScrambleKey(i));
  }
}

TYPED_TEST(ArtConcurrentTest, RacingInsertsOfSameKeysExactlyOneWins) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kKeys = 1500;
  std::atomic<uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      uint64_t local = 0;
      for (uint64_t key = 0; key < kKeys; ++key) {
        if (tree.InsertInt(ScrambleKey(key), key)) ++local;
      }
      wins.fetch_add(local, std::memory_order_acq_rel);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), kKeys);
  EXPECT_EQ(tree.Size(), kKeys);
  tree.CheckInvariants();
}

TYPED_TEST(ArtConcurrentTest, ReadersConsistentDuringGrowthAndUpdates) {
  TypeParam tree;
  constexpr uint64_t kKeys = 300;
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(tree.InsertInt(k, k * 1000));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> wrong{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t key = rng.NextBounded(kKeys);
        uint64_t out = 0;
        if (!tree.LookupInt(key, out) || out % 1000 != 0 ||
            (out / 1000) % kKeys != key) {
          wrong.store(true, std::memory_order_release);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Xoshiro256 rng(static_cast<uint64_t>(w) + 50);
      for (int i = 0; i < 6000; ++i) {
        const uint64_t key = rng.NextBounded(kKeys);
        ASSERT_TRUE(
            tree.UpdateInt(key, (key + kKeys * rng.NextBounded(500)) * 1000));
      }
    });
  }
  // A third writer grows the tree with new keys to force node replacement
  // while readers are active.
  std::thread grower([&] {
    for (uint64_t k = kKeys; k < kKeys + 3000; ++k) {
      ASSERT_TRUE(tree.InsertInt(ScrambleKey(k), 1000 * kKeys));
    }
  });

  for (auto& t : writers) t.join();
  grower.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(wrong.load());
  tree.CheckInvariants();
}

TYPED_TEST(ArtConcurrentTest, InsertRemoveChurn) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kSpacePerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, t] {
      const uint64_t base = static_cast<uint64_t>(t) * kSpacePerThread;
      Xoshiro256 rng(static_cast<uint64_t>(t) + 3);
      std::set<uint64_t> mine;
      for (int i = 0; i < 5000; ++i) {
        const uint64_t key =
            ScrambleKey(base + rng.NextBounded(kSpacePerThread));
        if (rng.NextBounded(2) == 0) {
          ASSERT_EQ(tree.InsertInt(key, key), mine.insert(key).second);
        } else {
          ASSERT_EQ(tree.RemoveInt(key), mine.erase(key) == 1);
        }
      }
      for (uint64_t i = base; i < base + kSpacePerThread; ++i) {
        uint64_t out = 0;
        ASSERT_EQ(tree.LookupInt(ScrambleKey(i), out),
                  mine.count(ScrambleKey(i)) == 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  tree.CheckInvariants();
}

TEST(ArtConcurrentExpansionTest, HotKeyUpdatesUnderContentionExpand) {
  OptiQlArt tree(/*contention_threshold=*/8);
  // Sparse keys: hot leaves are lazily expanded.
  constexpr uint64_t kHotKeys = 4;
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.InsertInt(ScrambleKey(i), i));
  }
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) + 9);
      for (int i = 0; i < 4000; ++i) {
        const uint64_t key = ScrambleKey(rng.NextBounded(kHotKeys));
        ASSERT_TRUE(tree.UpdateInt(key, static_cast<uint64_t>(i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(tree.ContentionExpansions(), 0u);
  tree.CheckInvariants();
  for (uint64_t i = 0; i < 64; ++i) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.LookupInt(ScrambleKey(i), out));
  }
}

}  // namespace
}  // namespace optiql
