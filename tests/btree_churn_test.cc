// Delete-time rebalancing: node counts shrink with removals, a fully
// drained tree collapses back to a single leaf, concurrent churn keeps the
// node count bounded without losing keys, and unlinked nodes flow through
// the epoch layer. Exercised across all three synchronization protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "sync/epoch.h"

namespace optiql {
namespace {

using OlcTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using OptiQlTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using OptiQlAorTree =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;
using McsRwTree = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;

template <class Tree>
class BTreeChurnTest : public ::testing::Test {};

// Protocol names in test ids (BTreeChurnTest/McsRw....) so sanitizer CI
// jobs can filter the pessimistic trees by name.
struct ChurnTreeNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, OlcTree>) return "Olc";
    if (std::is_same_v<T, OptiQlTree>) return "OptiQl";
    if (std::is_same_v<T, OptiQlAorTree>) return "OptiQlAor";
    if (std::is_same_v<T, McsRwTree>) return "McsRw";
    return "Unknown";
  }
};

using ChurnTreeTypes =
    ::testing::Types<OlcTree, OptiQlTree, OptiQlAorTree, McsRwTree>;
TYPED_TEST_SUITE(BTreeChurnTest, ChurnTreeTypes, ChurnTreeNames);

TYPED_TEST(BTreeChurnTest, RemoveShrinksNodeCount) {
  TypeParam tree;
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k + 1));
  const size_t full_nodes = tree.NodeCount();

  // Drop 90% of the population; merges must shed a matching share of the
  // nodes instead of leaving a husk of near-empty leaves.
  for (uint64_t k = 0; k < kKeys; ++k) {
    if (k % 10 != 0) ASSERT_TRUE(tree.Remove(k));
  }
  tree.CheckInvariants();
  EXPECT_LT(tree.NodeCount(), full_nodes / 2);

  const auto stats = tree.GetStats();
  EXPECT_GT(stats.leaf_merges, 0u);
  EXPECT_GT(stats.nodes_retired, 0u);
  for (uint64_t k = 0; k < kKeys; k += 10) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out)) << k;
    ASSERT_EQ(out, k + 1);
  }
}

TYPED_TEST(BTreeChurnTest, RemovingEverythingCollapsesToSingleLeaf) {
  TypeParam tree;
  constexpr uint64_t kKeys = 5000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));
  EXPECT_GT(tree.Height(), 1);
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Remove(k));

  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  tree.CheckInvariants();
  EXPECT_GT(tree.GetStats().root_collapses, 0u);
}

TYPED_TEST(BTreeChurnTest, ConcurrentChurnBoundedNodesNoLostKeys) {
  TypeParam tree;
  constexpr int kThreads = 4;
  constexpr uint64_t kRange = 4000;  // Disjoint per-thread key ranges.
  constexpr int kOpsPerThread = 30000;

  std::vector<std::set<uint64_t>> oracle(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tree, &oracle, t] {
      Xoshiro256 rng(0x9E3779B9ULL + static_cast<uint64_t>(t));
      std::set<uint64_t>& mine = oracle[static_cast<size_t>(t)];
      const uint64_t base = static_cast<uint64_t>(t) * kRange;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = base + rng.NextBounded(kRange);
        if (rng.NextBounded(2) == 0) {
          if (tree.Insert(key, key * 2 + 1)) {
            ASSERT_TRUE(mine.insert(key).second);
          } else {
            ASSERT_TRUE(mine.count(key) == 1);
          }
        } else {
          if (tree.Remove(key)) {
            ASSERT_EQ(mine.erase(key), 1u);
          } else {
            ASSERT_TRUE(mine.count(key) == 0);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  tree.CheckInvariants();

  size_t live_keys = 0;
  for (int t = 0; t < kThreads; ++t) {
    live_keys += oracle[static_cast<size_t>(t)].size();
    const uint64_t base = static_cast<uint64_t>(t) * kRange;
    for (uint64_t k = base; k < base + kRange; ++k) {
      uint64_t out = 0;
      const bool found = tree.Lookup(k, out);
      ASSERT_EQ(found, oracle[static_cast<size_t>(t)].count(k) == 1) << k;
      if (found) ASSERT_EQ(out, k * 2 + 1);
    }
  }
  EXPECT_EQ(tree.Size(), live_keys);

  // With merges active, leaves sit near or above quarter occupancy, so the
  // node count is within a small factor of the minimum; without them the
  // churn above strands far more near-empty nodes.
  const size_t quarter = std::max<size_t>(1, TypeParam::LeafCapacity() / 4);
  const size_t bound = 2 * (kThreads * kRange / quarter + 16);
  EXPECT_LE(tree.NodeCount(), bound);
}

TYPED_TEST(BTreeChurnTest, SecondChurnWindowReachesSteadyState) {
  // Two identical single-threaded churn windows over a fixed population:
  // the node count after the second must not drift past the first by more
  // than a small slack — the "steady state" the merges exist to provide.
  TypeParam tree;
  constexpr uint64_t kKeys = 8000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));

  auto churn = [&tree](uint64_t seed) {
    Xoshiro256 rng(seed);
    for (int i = 0; i < 60000; ++i) {
      const uint64_t key = rng.NextBounded(kKeys);
      if (rng.NextBounded(2) == 0) {
        tree.Insert(key, key);
      } else {
        tree.Remove(key);
      }
    }
  };
  churn(1);
  const size_t after_first = tree.NodeCount();
  churn(2);
  const size_t after_second = tree.NodeCount();
  tree.CheckInvariants();
  EXPECT_LE(after_second, after_first + after_first / 4 + 16);
}

TYPED_TEST(BTreeChurnTest, ScansUnderChurnSeeStableKeysExactlyOnce) {
  // Regression test for the scan/rotation race: delete-time rotations move
  // keys between adjacent leaves with only version bumps (no obsolete
  // marker), so a scan that hands over to the next leaf without
  // re-validating the current one can miss a rotated key or return it
  // twice. A skeleton of untouched keys must appear in every scan exactly
  // once, in order, no matter how the volatile keys around it churn.
  // A small tree keeps every scan revisiting the same few leaf boundaries
  // while contiguous remove/reinsert waves drive rotations across them (a
  // drained leaf next to a still-full one, where a merge cannot fit), so a
  // handover racing a rotation is actually reachable within test time.
  TypeParam tree;
  constexpr uint64_t kKeys = 256;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));

  std::atomic<bool> stop{false};
  constexpr int kChurners = 3;
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurners; ++t) {
    churners.emplace_back([&tree, &stop, t] {
      Xoshiro256 rng(0xC0FFEEULL + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t base = rng.NextBounded(kKeys - 16);
        for (uint64_t k = base; k < base + 16; ++k) {
          if (k % 4 != 0) tree.Remove(k);  // Never touch the skeleton.
        }
        for (uint64_t k = base; k < base + 16; ++k) {
          if (k % 4 != 0) tree.Insert(k, k);
        }
      }
    });
  }

  // Native builds finish all rounds in about a second; the deadline keeps
  // sanitizer jobs bounded at the cost of running fewer rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (int round = 0; round < 400000; ++round) {
    if ((round & 1023) == 0 && std::chrono::steady_clock::now() > deadline) {
      break;
    }
    tree.Scan(0, kKeys + 16, out);
    for (size_t i = 1; i < out.size(); ++i) {
      ASSERT_LT(out[i - 1].first, out[i].first);  // Sorted, no duplicates.
    }
    size_t stable_seen = 0;
    for (const auto& kv : out) {
      if (kv.first % 4 == 0) ++stable_seen;
    }
    ASSERT_EQ(stable_seen, kKeys / 4);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : churners) t.join();
  tree.CheckInvariants();
}

TYPED_TEST(BTreeChurnTest, RetiredNodesFlowThroughEpochReclamation) {
  EpochManager& epochs = EpochManager::Instance();
  const uint64_t retired_before = epochs.TotalRetired();
  {
    TypeParam tree;
    constexpr uint64_t kKeys = 5000;
    for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Insert(k, k));
    for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(tree.Remove(k));
    const auto stats = tree.GetStats();
    EXPECT_GT(stats.nodes_retired, 0u);
    EXPECT_EQ(epochs.TotalRetired() - retired_before, stats.nodes_retired);
  }
  // Single-threaded here, so the full drain is safe; afterwards nothing
  // this thread retired may remain pending.
  epochs.ReclaimAllUnsafe();
  EXPECT_GT(epochs.TotalRetired() - retired_before, 0u);
  EXPECT_EQ(epochs.RetiredCount(), 0u);
}

}  // namespace
}  // namespace optiql
