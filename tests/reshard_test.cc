// Elastic sharding (DESIGN.md §14): range routing, epoch-published table
// versions, and online shard split/merge.
//
// Four layers:
//  * Scan routing: a scan fully contained in one shard's span visits
//    EXACTLY one shard (the ISSUE acceptance criterion), proven with a
//    scan-counting shard wrapper — no scatter-gather under range routing.
//  * Serial split/merge: content preservation, span bookkeeping, routing
//    version protocol (even steady / odd window), boundary rejection.
//  * Reshard storms: randomized online split/merge against a full op mix,
//    differential vs per-thread oracles — zero lost or duplicated keys.
//    The coupling-tree storm stays under TSan; the OptiQl-named variant is
//    excluded by the naming contract in tests/CMakeLists.txt.
//  * Txn routing fence: OCC and 2PL transactions that straddle a reshard
//    must abort at commit; post-reshard transactions commit normally.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "index/btree.h"
#include "store/sharded_store.h"
#include "sync/epoch.h"
#include "txn/txn.h"

namespace optiql {
namespace {

using OptiQlTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using OlcTree = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using CouplingTree = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;

// Shard wrapper that counts Scan invocations: the probe that proves range
// routing touches only the shards a scan's range intersects.
class ScanCountingTree {
 public:
  bool Insert(uint64_t k, uint64_t v) { return tree_.Insert(k, v); }
  bool Update(uint64_t k, uint64_t v) { return tree_.Update(k, v); }
  bool Lookup(uint64_t k, uint64_t& out) const { return tree_.Lookup(k, out); }
  bool Remove(uint64_t k) { return tree_.Remove(k); }
  void Upsert(uint64_t k, uint64_t v) { tree_.Upsert(k, v); }
  size_t Scan(uint64_t start, size_t limit,
              std::vector<std::pair<uint64_t, uint64_t>>& out) const {
    scan_calls_.fetch_add(1, std::memory_order_relaxed);
    return tree_.Scan(start, limit, out);
  }
  size_t Size() const { return tree_.Size(); }
  void CheckInvariants() const { tree_.CheckInvariants(); }
  uint64_t scan_calls() const {
    return scan_calls_.load(std::memory_order_relaxed);
  }

 private:
  CouplingTree tree_;
  mutable std::atomic<uint64_t> scan_calls_{0};
};

using CountingStore = ShardedStore<ScanCountingTree, RangeShardRouter>;

std::vector<uint64_t> ScanCallsPerSlot(const CountingStore& store) {
  std::vector<uint64_t> calls;
  for (const auto& span : store.SpanSnapshot()) {
    while (calls.size() <= span.shard) calls.push_back(0);
    calls[span.shard] = store.ShardAt(span.shard).scan_calls();
  }
  return calls;
}

TEST(RangeReshardTest, SingleSpanScanVisitsExactlyOneShard) {
  CountingStore store(4, RangeShardRouter::EvenOver(4000, 4));
  for (uint64_t k = 0; k < 4000; ++k) ASSERT_TRUE(store.Insert(k, k * 3));

  // Spans: [0,1000) [1000,2000) [2000,3000) [3000,~]. A 50-key scan from
  // 1100 is wholly inside span 1.
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const std::vector<uint64_t> before = ScanCallsPerSlot(store);
  ASSERT_EQ(store.Scan(1100, 50, out), 50u);
  const std::vector<uint64_t> after = ScanCallsPerSlot(store);

  const auto spans = store.SpanSnapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (const auto& span : spans) {
    const uint64_t delta = after[span.shard] - before[span.shard];
    if (span.begin == 1000) {
      EXPECT_EQ(delta, 1u) << "owning shard must be visited exactly once";
    } else {
      EXPECT_EQ(delta, 0u) << "span at " << span.begin
                           << " does not intersect [1100,1149]";
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 1100 + i);
    EXPECT_EQ(out[i].second, (1100 + i) * 3);
  }
}

TEST(RangeReshardTest, BoundaryScanVisitsExactlyTheIntersectingShards) {
  CountingStore store(4, RangeShardRouter::EvenOver(4000, 4));
  for (uint64_t k = 0; k < 4000; ++k) ASSERT_TRUE(store.Insert(k, k));

  // 20 keys from 1990 straddle the [1000,2000)/[2000,3000) boundary.
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const std::vector<uint64_t> before = ScanCallsPerSlot(store);
  ASSERT_EQ(store.Scan(1990, 20, out), 20u);
  const std::vector<uint64_t> after = ScanCallsPerSlot(store);

  for (const auto& span : store.SpanSnapshot()) {
    const uint64_t delta = after[span.shard] - before[span.shard];
    const bool intersects = span.begin == 1000 || span.begin == 2000;
    EXPECT_EQ(delta, intersects ? 1u : 0u) << "span at " << span.begin;
  }
}

TEST(RangeReshardTest, SplitMovesSpanAndPreservesContent) {
  CountingStore store(2, RangeShardRouter::EvenOver(2000, 2));
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(store.Insert(k, k + 7));
  const uint64_t version_before = store.RoutingVersion();
  ASSERT_EQ(version_before % 2, 0u) << "steady versions are even";

  ASSERT_TRUE(store.Split(500));  // [0,1000) -> [0,500) + [500,1000).
  EXPECT_EQ(store.RoutingVersion(), version_before + 2);
  EXPECT_EQ(store.ShardCount(), 3u);
  EXPECT_EQ(store.Size(), 2000u);

  const auto spans = store.SpanSnapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].begin, 0u);
  EXPECT_EQ(spans[1].begin, 500u);
  EXPECT_EQ(spans[2].begin, 1000u);
  // The moved range lives in the fresh shard and ONLY there: the source
  // was cleaned after the handover.
  EXPECT_EQ(spans[0].size, 500u);
  EXPECT_EQ(spans[1].size, 500u);
  EXPECT_EQ(spans[2].size, 1000u);

  for (uint64_t k = 0; k < 2000; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(store.Lookup(k, out)) << k;
    ASSERT_EQ(out, k + 7);
  }
  // A scan inside the carved-out span touches only the fresh shard.
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const std::vector<uint64_t> before = ScanCallsPerSlot(store);
  ASSERT_EQ(store.Scan(600, 32, out), 32u);
  const std::vector<uint64_t> after = ScanCallsPerSlot(store);
  EXPECT_EQ(after[spans[1].shard] - before[spans[1].shard], 1u);
  EXPECT_EQ(after[spans[0].shard] - before[spans[0].shard], 0u);
  EXPECT_EQ(after[spans[2].shard] - before[spans[2].shard], 0u);
  store.CheckInvariants();
}

TEST(RangeReshardTest, MergeDissolvesSpanAndRetiresShard) {
  CountingStore store(2, RangeShardRouter::EvenOver(2000, 2));
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(store.Insert(k, k));
  const uint64_t version_before = store.RoutingVersion();

  ASSERT_TRUE(store.Merge(1000));  // [1000,~] dissolves into [0,1000).
  EXPECT_EQ(store.RoutingVersion(), version_before + 2);
  EXPECT_EQ(store.ShardCount(), 1u);
  EXPECT_EQ(store.Size(), 2000u);
  const auto spans = store.SpanSnapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].size, 2000u);

  for (uint64_t k = 0; k < 2000; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(store.Lookup(k, out)) << k;
    ASSERT_EQ(out, k);
  }
  // Split can re-use the freed slot afterwards.
  ASSERT_TRUE(store.Split(700));
  EXPECT_EQ(store.ShardCount(), 2u);
  EXPECT_EQ(store.Size(), 2000u);
  store.CheckInvariants();
}

TEST(RangeReshardTest, RejectsInvalidBoundaries) {
  CountingStore store(2, RangeShardRouter::EvenOver(2000, 2));
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(store.Insert(k, k));
  const uint64_t version = store.RoutingVersion();

  EXPECT_FALSE(store.Split(1000)) << "existing boundary: nothing to split";
  EXPECT_FALSE(store.Split(0)) << "span start is already a boundary";
  EXPECT_FALSE(store.Merge(0)) << "first span has no left neighbor";
  EXPECT_FALSE(store.Merge(999)) << "not a span boundary";
  EXPECT_EQ(store.RoutingVersion(), version) << "rejections publish nothing";
  EXPECT_EQ(store.ShardCount(), 2u);
}

TEST(RangeReshardTest, EvenOverDegenerateSpaceFallsBackToEvenU64) {
  // Fewer distinct non-zero boundaries than shards (space_end < shards):
  // EvenOver falls back to the even-over-u64 default instead of emitting
  // stride-0 duplicate split points that crash the table constructor.
  CountingStore store(8, RangeShardRouter::EvenOver(3, 8));
  EXPECT_EQ(store.ShardCount(), 8u);
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(store.Insert(k, k * 2));
  EXPECT_EQ(store.Size(), 100u);
  uint64_t out = 0;
  ASSERT_TRUE(store.Lookup(42, out));
  EXPECT_EQ(out, 84u);
}

TEST(RangeReshardTest, SplitMergeUnderEpochGuardFailGracefully) {
  CountingStore store(2, RangeShardRouter::EvenOver(2000, 2));
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(store.Insert(k, k));
  const uint64_t version = store.RoutingVersion();
  {
    // A caller already inside a guard (e.g. mid-transaction) must get a
    // clean false, not the Synchronize() self-deadlock CHECK.
    EpochGuard guard;
    EXPECT_FALSE(store.Split(500));
    EXPECT_FALSE(store.Merge(1000));
  }
  EXPECT_EQ(store.RoutingVersion(), version) << "rejections publish nothing";
  EXPECT_EQ(store.ShardCount(), 2u);
  ASSERT_TRUE(store.Split(500)) << "same call succeeds outside the guard";
  EXPECT_EQ(store.ShardCount(), 3u);
}

TEST(RangeReshardTest, SplitOfSparseAndEmptySpansWorks) {
  CountingStore store(1, RangeShardRouter{});
  // Only three keys, huge gaps; split boundaries fall in empty territory.
  ASSERT_TRUE(store.Insert(10, 1));
  ASSERT_TRUE(store.Insert(1000000, 2));
  ASSERT_TRUE(store.Insert(UINT64_MAX, 3));
  ASSERT_TRUE(store.Split(500));
  ASSERT_TRUE(store.Split(2000000));
  ASSERT_TRUE(store.Merge(500));
  EXPECT_EQ(store.Size(), 3u);
  uint64_t out = 0;
  EXPECT_TRUE(store.Lookup(10, out));
  EXPECT_TRUE(store.Lookup(1000000, out));
  EXPECT_TRUE(store.Lookup(UINT64_MAX, out));
  EXPECT_EQ(out, 3u);
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  EXPECT_EQ(store.Scan(0, 16, scanned), 3u);
}

// --- Reshard storms ---------------------------------------------------------

// Full op mix over disjoint per-thread key stripes while a dedicated
// thread splits and merges continuously. Stripes make every thread's final
// expectation exact (a per-thread map oracle); the post-join differential
// proves zero lost and zero duplicated keys across all the handovers.
template <class Shard>
void ReshardStorm(int workers, int ops_per_worker, int reshard_attempts) {
  using Store = ShardedStore<Shard, RangeShardRouter>;
  const uint64_t key_space = 40000;
  Store store(4, RangeShardRouter::EvenOver(key_space, 4));
  const int W = workers;

  std::vector<std::map<uint64_t, uint64_t>> expect(
      static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  for (int w = 0; w < W; ++w) {
    threads.emplace_back([&, w] {
      Xoshiro256 rng(0xBEEF + static_cast<uint64_t>(w));
      auto& ex = expect[static_cast<size_t>(w)];
      std::vector<std::pair<uint64_t, uint64_t>> scanned;
      for (int i = 0; i < ops_per_worker; ++i) {
        const uint64_t key =
            rng.NextBounded(key_space / static_cast<uint64_t>(W)) *
                static_cast<uint64_t>(W) +
            static_cast<uint64_t>(w);
        const uint64_t value = rng.Next();
        switch (rng.NextBounded(10)) {
          case 0:
          case 1:
            if (store.Insert(key, value)) ex.emplace(key, value);
            break;
          case 2:
            if (store.Remove(key)) ex.erase(key);
            break;
          case 3:
            store.Upsert(key, value);
            ex[key] = value;
            break;
          case 4: {
            // Concurrent scans cannot be checked against the oracle, but
            // span concatenation must keep them strictly ascending (a
            // doubly-routed key showing up twice would break this).
            store.Scan(rng.NextBounded(key_space), 24, scanned);
            for (size_t j = 1; j < scanned.size(); ++j) {
              ASSERT_LT(scanned[j - 1].first, scanned[j].first);
            }
            break;
          }
          case 5: {
            // Batched lookups: the batch is partitioned against a pinned
            // table while the copier advances the watermark underneath —
            // the regression surface for BatchPlan's one-evaluation-per-key
            // contract. Stripes are disjoint, so own-stripe results are
            // exact against the per-thread oracle.
            uint64_t batch_keys[16];
            uint64_t batch_values[16];
            bool batch_found[16];
            for (size_t j = 0; j < 16; ++j) {
              batch_keys[j] =
                  rng.NextBounded(key_space / static_cast<uint64_t>(W)) *
                      static_cast<uint64_t>(W) +
                  static_cast<uint64_t>(w);
            }
            store.LookupBatch(batch_keys, 16, batch_values, batch_found);
            for (size_t j = 0; j < 16; ++j) {
              const auto it = ex.find(batch_keys[j]);
              ASSERT_EQ(batch_found[j], it != ex.end())
                  << "batch lookup of key " << batch_keys[j];
              if (batch_found[j]) ASSERT_EQ(batch_values[j], it->second);
            }
            break;
          }
          case 6: {
            // Batched upserts: migrating-span keys overflow into the
            // double-applying point path mid-window.
            uint64_t batch_keys[8];
            uint64_t batch_values[8];
            for (size_t j = 0; j < 8; ++j) {
              batch_keys[j] =
                  rng.NextBounded(key_space / static_cast<uint64_t>(W)) *
                      static_cast<uint64_t>(W) +
                  static_cast<uint64_t>(w);
              batch_values[j] = rng.Next();
            }
            store.UpsertBatch(batch_keys, batch_values, 8);
            for (size_t j = 0; j < 8; ++j) {
              ex[batch_keys[j]] = batch_values[j];
            }
            break;
          }
          default: {
            uint64_t out = 0;
            store.Lookup(key, out);
            break;
          }
        }
      }
    });
  }
  std::thread resharder([&] {
    Xoshiro256 rng(0x5EED);
    for (int i = 0; i < reshard_attempts; ++i) {
      const uint64_t key = rng.NextBounded(key_space);
      if (!store.Split(key)) {
        const auto spans = store.SpanSnapshot();
        if (spans.size() > 1) {
          store.Merge(spans[1 + rng.NextBounded(spans.size() - 1)].begin);
        }
      }
    }
  });
  for (auto& t : threads) t.join();
  resharder.join();

  // Exact differential: zero lost keys, zero duplicated keys.
  size_t expected_total = 0;
  for (const auto& ex : expect) expected_total += ex.size();
  EXPECT_EQ(store.Size(), expected_total);
  for (const auto& ex : expect) {
    for (const auto& [key, value] : ex) {
      uint64_t out = 0;
      ASSERT_TRUE(store.Lookup(key, out)) << "lost key " << key;
      ASSERT_EQ(out, value) << "stale value for key " << key;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> all;
  store.Scan(0, expected_total + 16, all);
  EXPECT_EQ(all.size(), expected_total)
      << "full scan disagrees with Size(): duplicated or dropped span";
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LT(all[i - 1].first, all[i].first) << "duplicate key in scan";
  }
  // Span sizes also sum to the store size (cleanup left no orphans).
  size_t span_sum = 0;
  for (const auto& span : store.SpanSnapshot()) span_sum += span.size;
  EXPECT_EQ(span_sum, expected_total);
  EXPECT_EQ(store.RoutingVersion() % 2, 0u) << "no window left open";
  store.CheckInvariants();
}

// Coupling tree: pessimistic latches, runs under TSan (naming contract).
TEST(RangeReshardStormTest, CouplingFullMixDifferential) {
  ReshardStorm<CouplingTree>(4, 20000, 16);
}

// Same storm over the optimistic OptiQL tree (TSan-excluded by name).
TEST(RangeReshardOptiQlStormTest, OptimisticFullMixDifferential) {
  ReshardStorm<OptiQlTree>(4, 30000, 24);
}

// --- Transaction routing fence ----------------------------------------------

// A transaction that began before a reshard resolves keys through a table
// that no longer routes them; its commit must abort. The split runs on its
// own thread — exactly like a real reshard controller — because a txn pins
// an epoch for its whole lifetime and Split's grace periods wait for every
// pinned epoch to drain (calling it from under the txn would self-deadlock,
// and Synchronize checks for that). (Named Occ/OptiQl: TSan-excluded with
// the other optimistic suites.)
TEST(ReshardTxnFenceTest, OccCommitAbortsAcrossSplit) {
  using Store = ShardedStore<OptiQlTree, RangeShardRouter>;
  Store store(2, RangeShardRouter::EvenOver(1000, 2));
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(store.Insert(k, k));

  std::atomic<bool> split_ok{false};
  std::thread splitter;
  {
    OccTxn<Store> txn(store);
    uint64_t out = 0;
    ASSERT_EQ(txn.Get(5, out), TxnResult::kOk);
    ASSERT_EQ(txn.Put(5, 999), TxnResult::kOk);
    // Reshard a span the transaction never touched: the fence is on the
    // routing VERSION, not on overlap — a moved span invalidates the
    // rank/home assignment of every in-flight transaction. The new table
    // is published before the first grace period, so the open txn sees the
    // bumped version at commit even while Split is still waiting it out.
    splitter = std::thread([&] { split_ok = store.Split(750); });
    while (store.RoutingVersion() % 2 == 0) std::this_thread::yield();
    EXPECT_FALSE(txn.Commit()) << "commit must abort across a routing change";
    ASSERT_TRUE(store.Lookup(5, out));
    EXPECT_EQ(out, 5u) << "aborted txn must not have installed its write";
  }  // Txn dies, its pinned epoch drains, the split can finish.
  splitter.join();
  EXPECT_TRUE(split_ok.load());

  // A transaction born under the new table commits normally.
  uint64_t out = 0;
  OccTxn<Store> fresh(store);
  ASSERT_EQ(fresh.Put(5, 1234), TxnResult::kOk);
  EXPECT_TRUE(fresh.Commit());
  ASSERT_TRUE(store.Lookup(5, out));
  EXPECT_EQ(out, 1234u);
}

TEST(ReshardTxnFenceTest, OccTwoPlCommitAbortsAcrossSplit) {
  using Store = ShardedStore<OlcTree, RangeShardRouter>;
  Store store(2, RangeShardRouter::EvenOver(1000, 2));
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(store.Insert(k, k));

  std::atomic<bool> split_ok{false};
  std::thread splitter;
  {
    TwoPlTxn<Store> txn(store);
    ASSERT_EQ(txn.Put(5, 999), TxnResult::kOk);
    // Reshard the OTHER span: the held record lock never meets the copier,
    // but the version fence still kills the commit.
    splitter = std::thread([&] { split_ok = store.Split(750); });
    while (store.RoutingVersion() % 2 == 0) std::this_thread::yield();
    EXPECT_FALSE(txn.Commit());
    uint64_t out = 0;
    ASSERT_TRUE(store.Lookup(5, out));
    EXPECT_EQ(out, 5u);
  }
  splitter.join();
  EXPECT_TRUE(split_ok.load());

  uint64_t out = 0;
  TwoPlTxn<Store> fresh(store);
  ASSERT_EQ(fresh.Put(5, 4321), TxnResult::kOk);
  EXPECT_TRUE(fresh.Commit());
  ASSERT_TRUE(store.Lookup(5, out));
  EXPECT_EQ(out, 4321u);
}

}  // namespace
}  // namespace optiql
