// Tests for the exhaustive interleaving model checker (DESIGN.md §13).
//
// Three layers:
//  1. Exhaustive passes: every registry scenario explores its FULL
//     interleaving space (DPOR, no preemption bound) and must end clean —
//     except the *_demo entries, which must be caught.
//  2. Seeded bugs: re-introducing a known protocol mistake (model builds
//     carry them behind model::bugs() flags) must produce a violation with
//     a minimized, replayable schedule; the same schedule must pass clean
//     once the bug is switched off again.
//  3. Replay corpus: checked-in minimized schedules from (2) re-run as
//     deterministic regression cases (tools/modelcheck/replay_corpus.h).
#include <string>

#include <gtest/gtest.h>

#include "analysis/model_explorer.h"
#include "tools/modelcheck/replay_corpus.h"
#include "tools/modelcheck/scenarios.h"

namespace optiql::model {
namespace {

// Restores the seeded-bug flags (process-global) on scope exit.
struct BugGuard {
  BugGuard() { bugs() = SeededBugs{}; }
  ~BugGuard() { bugs() = SeededBugs{}; }
};

bool EnableBug(const std::string& name) {
  if (name == "optiql_drop_obsolete_on_handover") {
    bugs().optiql_drop_obsolete_on_handover = true;
    return true;
  }
  if (name == "mcsrw_upgrade_ignores_readers") {
    bugs().mcsrw_upgrade_ignores_readers = true;
    return true;
  }
  if (name == "reshard_copy_skips_gate") {
    bugs().reshard_copy_skips_gate = true;
    return true;
  }
  return false;
}

TEST(ModelSchedule, FormatParseRoundtrip) {
  const std::vector<int> schedule = {0, 1, 1, 0, 2, 10};
  EXPECT_EQ(FormatSchedule(schedule), "0.1.1.0.2.10");
  EXPECT_EQ(ParseSchedule("0.1.1.0.2.10"), schedule);
  EXPECT_TRUE(ParseSchedule("").empty());
  EXPECT_EQ(ParseSchedule("3"), (std::vector<int>{3}));
}

// ---------------------------------------------------------------------------
// Layer 1: full-DPOR exhaustive pass per scenario.

class ModelCheckExhaustive
    : public ::testing::TestWithParam<const ScenarioInfo*> {};

TEST_P(ModelCheckExhaustive, ExploresClean) {
  const ScenarioInfo& info = *GetParam();
  BugGuard guard;
  auto scenario = info.make();
  ExploreOptions opt;  // no preemption bound, no budget: the full space
  const ExploreResult r = Explore(*scenario, opt);
  SCOPED_TRACE("scenario: " + std::string(info.name) +
               ", executions: " + std::to_string(r.executions) +
               ", steps: " + std::to_string(r.steps));
  if (info.expect_violation) {
    EXPECT_TRUE(r.found_violation) << "demo scenario not caught";
    EXPECT_FALSE(r.schedule.empty());
    EXPECT_FALSE(r.trace.empty());
  } else {
    EXPECT_FALSE(r.found_violation) << r.message << "\nschedule: "
                                    << FormatSchedule(r.schedule) << "\n"
                                    << r.trace;
    EXPECT_TRUE(r.complete) << "exploration was truncated";
    EXPECT_GT(r.executions, 1u) << "suspiciously trivial state space";
  }
}

std::string ScenarioName(
    const ::testing::TestParamInfo<const ScenarioInfo*>& p) {
  return p.param->name;
}

std::vector<const ScenarioInfo*> AllScenarioParams() {
  std::vector<const ScenarioInfo*> out;
  for (const ScenarioInfo& info : AllScenarios()) out.push_back(&info);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Registry, ModelCheckExhaustive,
                         ::testing::ValuesIn(AllScenarioParams()),
                         ScenarioName);

// ---------------------------------------------------------------------------
// Layer 2: the checker must catch deliberately seeded protocol bugs and
// hand back a schedule that deterministically reproduces them.

void ExpectBugCaught(const char* scenario_name, const char* bug,
                     const char* message_substr) {
  const ScenarioInfo* info = FindScenario(scenario_name);
  ASSERT_NE(info, nullptr);

  BugGuard guard;
  ASSERT_TRUE(EnableBug(bug));
  auto scenario = info->make();
  const ExploreResult found = FindMinimal(*scenario);
  ASSERT_TRUE(found.found_violation)
      << "seeded bug " << bug << " not caught in " << scenario_name;
  EXPECT_NE(found.message.find(message_substr), std::string::npos)
      << found.message;
  ASSERT_FALSE(found.schedule.empty());
  EXPECT_FALSE(found.trace.empty());

  // The minimized schedule replays to the same violation...
  auto replay_scenario = info->make();
  const ExploreResult replayed = Replay(*replay_scenario, found.schedule);
  EXPECT_TRUE(replayed.found_violation)
      << "schedule " << FormatSchedule(found.schedule) << " did not replay";

  // ...and passes clean once the bug is gone.
  bugs() = SeededBugs{};
  auto fixed_scenario = info->make();
  const ExploreResult fixed = Replay(*fixed_scenario, found.schedule);
  EXPECT_FALSE(fixed.found_violation) << fixed.message;
}

TEST(ModelCheckSeededBug, OptiQlObsoleteDroppedOnHandoverIsCaught) {
  ExpectBugCaught("optiql_handover_obsolete_2",
                  "optiql_drop_obsolete_on_handover", "obsolete");
}

TEST(ModelCheckSeededBug, OptiQlObsoleteDroppedThreeThreadsIsCaught) {
  ExpectBugCaught("optiql_handover_obsolete_3",
                  "optiql_drop_obsolete_on_handover", "obsolete");
}

TEST(ModelCheckSeededBug, McsRwUpgradeIgnoresReadersIsCaught) {
  ExpectBugCaught("mcsrw_upgrade_2", "mcsrw_upgrade_ignores_readers",
                  "reader");
}

TEST(ModelCheckSeededBug, ReshardCopySkipsGateIsCaught) {
  ExpectBugCaught("reshard_handover_2", "reshard_copy_skips_gate",
                  "resurrected");
}

TEST(ModelCheckDeadlock, AbbaIsReportedWithSchedule) {
  const ScenarioInfo* info = FindScenario("deadlock_demo_2");
  ASSERT_NE(info, nullptr);
  auto scenario = info->make();
  const ExploreResult r = Explore(*scenario);
  ASSERT_TRUE(r.found_violation);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
  ASSERT_FALSE(r.schedule.empty());

  // The deadlock schedule replays: the same cycle, the same report.
  auto replay_scenario = info->make();
  const ExploreResult replayed = Replay(*replay_scenario, r.schedule);
  EXPECT_TRUE(replayed.found_violation);
  EXPECT_NE(replayed.message.find("deadlock"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Layer 3: checked-in minimized counterexamples.

TEST(ModelCheckReplayCorpus, EntriesReproduceAndStayFixed) {
  for (const ReplayCase& c : kReplayCorpus) {
    SCOPED_TRACE(std::string(c.scenario) + " / " + c.bug);
    const ScenarioInfo* info = FindScenario(c.scenario);
    ASSERT_NE(info, nullptr);
    const std::vector<int> schedule = ParseSchedule(c.schedule);
    ASSERT_FALSE(schedule.empty());

    BugGuard guard;
    ASSERT_TRUE(EnableBug(c.bug));
    auto broken = info->make();
    const ExploreResult r = Replay(*broken, schedule);
    EXPECT_TRUE(r.found_violation)
        << "corpus schedule no longer reaches the seeded violation";
    if (r.found_violation) {
      EXPECT_NE(r.message.find(c.expect), std::string::npos) << r.message;
    }

    bugs() = SeededBugs{};
    auto fixed = info->make();
    const ExploreResult clean = Replay(*fixed, schedule);
    EXPECT_FALSE(clean.found_violation) << clean.message;
  }
}

}  // namespace
}  // namespace optiql::model
