// Epoch-based reclamation: guard nesting, deferred deletion, safety against
// active readers, and concurrent churn.
#include "sync/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace optiql {
namespace {

struct TrackedObject {
  explicit TrackedObject(std::atomic<int>& counter) : deleted(counter) {}
  ~TrackedObject() { deleted.fetch_add(1, std::memory_order_acq_rel); }
  std::atomic<int>& deleted;
};

// Each test runs in its own thread so it gets a fresh slot against a fresh
// private manager (a thread binds to one manager for its lifetime).
void RunInFreshThread(void (*body)(EpochManager&)) {
  EpochManager manager;
  std::thread t([&] { body(manager); });
  t.join();
}

TEST(EpochTest, EnterExitNesting) {
  RunInFreshThread(+[](EpochManager& manager) {
    manager.Enter();
    manager.Enter();
    manager.Exit();
    manager.Exit();
  });
}

TEST(EpochTest, RetireRunsDeleterOnceWhenQuiescent) {
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    {
      EpochGuard guard(manager);
      manager.Retire(new TrackedObject(deleted));
    }
    // Force enough epoch advancement, then reclaim with no active readers.
    for (int i = 0; i < 3; ++i) {
      EpochGuard guard(manager);
      manager.Retire(new TrackedObject(deleted));
    }
    manager.ReclaimIfPossible();
    manager.ReclaimAllUnsafe();
  });
  EXPECT_EQ(deleted.load(), 4);
}

TEST(EpochTest, NotReclaimedWhileReaderActive) {
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    std::atomic<bool> reader_in{false};
    std::atomic<bool> release_reader{false};
    std::thread reader([&] {
      EpochGuard guard(manager);
      reader_in.store(true, std::memory_order_release);
      while (!release_reader.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (!reader_in.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }

    {
      EpochGuard guard(manager);
      manager.Retire(new TrackedObject(deleted));
    }
    {
      EpochGuard guard(manager);
      EXPECT_EQ(manager.ReclaimIfPossible(), 0u);
    }
    EXPECT_EQ(deleted.load(), 0);  // Reader pins the epoch.

    release_reader.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(manager.ReclaimAllUnsafe(), 1u);
  });
  EXPECT_EQ(deleted.load(), 1);
}

TEST(EpochTest, EpochAdvancesWithRetirementVolume) {
  RunInFreshThread(+[](EpochManager& manager) {
    const uint64_t before = manager.CurrentEpoch();
    EpochGuard guard(manager);
    static std::atomic<int> sink{0};
    for (uint32_t i = 0; i < 3 * EpochManager::kRetiresPerEpochAdvance; ++i) {
      manager.Retire(new TrackedObject(sink));
    }
    EXPECT_GE(manager.CurrentEpoch(), before + 2);
    manager.ReclaimAllUnsafe();
  });
}

TEST(EpochTest, ConcurrentChurnReclaimsEverythingEventually) {
  static std::atomic<int> deleted{0};
  static std::atomic<int> created{0};
  deleted = 0;
  created = 0;
  {
    EpochManager manager;
    constexpr int kThreads = 4;
    constexpr int kRounds = 800;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&manager] {
        for (int i = 0; i < kRounds; ++i) {
          EpochGuard guard(manager);
          manager.Retire(new TrackedObject(deleted));
          created.fetch_add(1, std::memory_order_relaxed);
        }
        manager.ReclaimIfPossible();
        // Whatever remains pinned is drained below.
        manager.ReclaimAllUnsafe();
      });
    }
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(created.load(), 4 * 800);
  EXPECT_EQ(deleted.load(), created.load());
}

TEST(EpochTest, RetireBucketsTrackPerTagCounts) {
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    {
      EpochGuard guard(manager);
      {
        RetireBucketScope tag(7);
        EXPECT_EQ(RetireBucketScope::Current(), 7u);
        manager.Retire(new TrackedObject(deleted));
        manager.Retire(new TrackedObject(deleted));
        {
          RetireBucketScope nested(9);  // Scopes nest and restore.
          manager.Retire(new TrackedObject(deleted));
        }
        EXPECT_EQ(RetireBucketScope::Current(), 7u);
      }
      EXPECT_EQ(RetireBucketScope::Current(), EpochManager::kDefaultBucket);
      manager.Retire(new TrackedObject(deleted));  // Default bucket.
      // Counts are checked while the guard is still open: leaving the last
      // guard triggers an automatic reclaim pass that drains the buckets.
      EXPECT_EQ(manager.RetiredCountInBucket(7), 2u);
      EXPECT_EQ(manager.RetiredCountInBucket(9), 1u);
      EXPECT_EQ(manager.RetiredCountInBucket(EpochManager::kDefaultBucket),
                1u);
      EXPECT_EQ(manager.RetiredCountInBucket(12345), 0u);
      EXPECT_EQ(manager.RetiredCount(), 4u);
    }
    // No reader pinned the epoch, so the exit-time reclaim freed everything.
    EXPECT_EQ(manager.RetiredCount(), 0u);
    EXPECT_EQ(manager.RetiredCountInBucket(7), 0u);
    EXPECT_EQ(deleted.load(), 4);
  });
  EXPECT_EQ(deleted.load(), 4);
}

TEST(EpochTest, SynchronizeWaitsForActiveGuard) {
  RunInFreshThread(+[](EpochManager& manager) {
    std::atomic<bool> reader_in{false};
    std::atomic<bool> release_reader{false};
    std::atomic<bool> reader_exited{false};
    std::thread reader([&] {
      {
        EpochGuard guard(manager);
        reader_in.store(true, std::memory_order_release);
        while (!release_reader.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      }
      reader_exited.store(true, std::memory_order_release);
    });
    while (!reader_in.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // Release the reader from a helper so the Synchronize below genuinely
    // overlaps the guard: by the time it returns, the guard MUST be gone.
    std::thread releaser([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      release_reader.store(true, std::memory_order_release);
    });
    manager.Synchronize();
    EXPECT_TRUE(reader_exited.load(std::memory_order_acquire));
    reader.join();
    releaser.join();
  });
}

TEST(EpochTest, SynchronizeMakesPriorRetirementsReclaimable) {
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    // A concurrent reader pins the epoch so the retirer's exit-time reclaim
    // pass cannot free the object.
    std::atomic<bool> reader_in{false};
    std::atomic<bool> release_reader{false};
    std::thread reader([&] {
      EpochGuard guard(manager);
      reader_in.store(true, std::memory_order_release);
      while (!release_reader.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
    while (!reader_in.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    {
      EpochGuard guard(manager);
      manager.Retire(new TrackedObject(deleted));
    }
    EXPECT_EQ(deleted.load(), 0);  // Pinned by the reader.
    std::thread releaser([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      release_reader.store(true, std::memory_order_release);
    });
    // Synchronize waits out the reader's guard; after the grace period a
    // plain (safe) reclaim pass must free it, without ReclaimAllUnsafe.
    manager.Synchronize();
    EXPECT_EQ(manager.ReclaimIfPossible(), 1u);
    reader.join();
    releaser.join();
  });
  EXPECT_EQ(deleted.load(), 1);
}

// Regression: a retired object whose destructor itself triggers a reclaim
// pass (a retired container draining the epoch layer on teardown) must not
// re-enter the in-progress drain and double-free.
TEST(EpochTest, ReclaimSurvivesReentrantDeleter) {
  struct ReentrantObject {
    EpochManager* manager;
    std::atomic<int>* counter;
    ~ReentrantObject() {
      counter->fetch_add(1, std::memory_order_acq_rel);
      manager->ReclaimIfPossible();
    }
  };
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    {
      EpochGuard guard(manager);
      for (int i = 0; i < 4; ++i) {
        manager.Retire(new ReentrantObject{&manager, &deleted});
      }
      EXPECT_EQ(manager.RetiredCount(), 4u);
    }
    // The exit-time reclaim pass ran the four deleters, each of which
    // re-entered ReclaimIfPossible mid-drain. Without the re-entrancy latch
    // this double-frees (caught by ASan) instead of counting to exactly 4.
    EXPECT_EQ(deleted.load(), 4);
    EXPECT_EQ(manager.RetiredCount(), 0u);
    EXPECT_EQ(manager.ReclaimIfPossible(), 0u);
  });
  EXPECT_EQ(deleted.load(), 4);
}

TEST(EpochTest, GuardIsReentrantAndRetireWorksNested) {
  static std::atomic<int> deleted{0};
  deleted = 0;
  RunInFreshThread(+[](EpochManager& manager) {
    EpochGuard outer(manager);
    {
      EpochGuard inner(manager);
      manager.Retire(new TrackedObject(deleted));
    }
    // Outer guard still active: nothing reclaimed by Exit of inner.
    EXPECT_EQ(deleted.load(), 0);
    manager.ReclaimAllUnsafe();
  });
  EXPECT_EQ(deleted.load(), 1);
}

}  // namespace
}  // namespace optiql
