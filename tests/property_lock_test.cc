// Parameterized property sweeps over the lock protocols (TEST_P):
//
//  * Conservation: after T threads each complete N exclusive critical
//    sections over L locks, the per-lock counters sum to T*N and every
//    lock ends free.
//  * Version accounting: an OptiQL/OptiCLH lock's final version equals the
//    number of exclusive critical sections executed on it, regardless of
//    interleaving, handover pattern, or upgrade usage.
//  * Reader soundness: concurrent optimistic readers never validate a torn
//    snapshot, across the whole parameter grid.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "harness/lock_adapters.h"

namespace optiql {
namespace {

struct GridParam {
  int threads;
  int num_locks;
  int ops_per_thread;
};

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  return "t" + std::to_string(info.param.threads) + "_l" +
         std::to_string(info.param.num_locks) + "_n" +
         std::to_string(info.param.ops_per_thread);
}

class LockGridTest : public ::testing::TestWithParam<GridParam> {};

template <class Lock>
void RunConservationSweep(const GridParam& param) {
  using Ops = LockOps<Lock>;
  struct Slot {
    Lock lock;
    int64_t counter = 0;
  };
  std::vector<Slot> slots(static_cast<size_t>(param.num_locks));
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) * 1000003 + 17);
      typename Ops::Ctx ctx;
      for (int i = 0; i < param.ops_per_thread; ++i) {
        Slot& slot =
            slots[rng.NextBounded(static_cast<uint64_t>(param.num_locks))];
        Ops::AcquireEx(slot.lock, ctx);
        ++slot.counter;
        Ops::ReleaseEx(slot.lock, ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (const auto& slot : slots) total += slot.counter;
  EXPECT_EQ(total, static_cast<int64_t>(param.threads) *
                       param.ops_per_thread);
}

TEST_P(LockGridTest, ConservationAcrossLockTypes) {
  const GridParam param = GetParam();
  RunConservationSweep<TtsLock>(param);
  RunConservationSweep<TicketLock>(param);
  RunConservationSweep<OptLock>(param);
  RunConservationSweep<McsLock>(param);
  RunConservationSweep<ClhLock>(param);
  RunConservationSweep<McsRwLock>(param);
  RunConservationSweep<OptiQL>(param);
  RunConservationSweep<OptiQLNor>(param);
  RunConservationSweep<OptiCLH>(param);
}

TEST_P(LockGridTest, OptiQlVersionCountsCriticalSections) {
  const GridParam param = GetParam();
  struct Slot {
    OptiQL lock;
    std::atomic<uint64_t> acquisitions{0};
  };
  std::vector<Slot> slots(static_cast<size_t>(param.num_locks));
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) * 7919 + 3);
      QNode* qnode = ThreadQNodes::Get(0);
      for (int i = 0; i < param.ops_per_thread; ++i) {
        Slot& slot =
            slots[rng.NextBounded(static_cast<uint64_t>(param.num_locks))];
        // Mix plain acquires with upgrade-based ones.
        if (rng.NextBounded(4) == 0) {
          uint64_t v;
          if (slot.lock.AcquireSh(v) && slot.lock.TryUpgrade(v, qnode)) {
            slot.acquisitions.fetch_add(1, std::memory_order_relaxed);
            slot.lock.ReleaseEx(qnode);
          }
          continue;  // Failed upgrades don't count.
        }
        slot.lock.AcquireEx(qnode);
        slot.acquisitions.fetch_add(1, std::memory_order_relaxed);
        slot.lock.ReleaseEx(qnode);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& slot : slots) {
    EXPECT_FALSE(slot.lock.IsLockedEx());
    EXPECT_EQ(OptiQL::VersionOf(slot.lock.LoadWord()),
              slot.acquisitions.load());
  }
}

TEST_P(LockGridTest, OptiClhVersionCountsCriticalSections) {
  const GridParam param = GetParam();
  struct Slot {
    OptiCLH lock;
    std::atomic<uint64_t> acquisitions{0};
  };
  std::vector<Slot> slots(static_cast<size_t>(param.num_locks));
  std::vector<std::thread> threads;
  for (int t = 0; t < param.threads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) * 104729 + 11);
      for (int i = 0; i < param.ops_per_thread; ++i) {
        Slot& slot =
            slots[rng.NextBounded(static_cast<uint64_t>(param.num_locks))];
        QNode* handle = slot.lock.AcquireEx();
        slot.acquisitions.fetch_add(1, std::memory_order_relaxed);
        slot.lock.ReleaseEx(handle);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& slot : slots) {
    EXPECT_FALSE(slot.lock.IsLockedEx());
    EXPECT_EQ(OptiCLH::VersionOf(slot.lock.LoadWord()),
              slot.acquisitions.load());
  }
}

TEST_P(LockGridTest, OptimisticReadersNeverValidateTornState) {
  const GridParam param = GetParam();
  struct Slot {
    OptiQL lock;
    volatile int64_t a = 0;
    volatile int64_t b = 0;
  };
  std::vector<Slot> slots(static_cast<size_t>(param.num_locks));
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_acquire)) {
        Slot& slot =
            slots[rng.NextBounded(static_cast<uint64_t>(param.num_locks))];
        uint64_t v;
        if (!slot.lock.AcquireSh(v)) continue;
        const int64_t x = slot.a;
        const int64_t y = slot.b;
        if (slot.lock.ReleaseSh(v) && x != y) {
          torn.store(true, std::memory_order_release);
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < param.threads; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t) * 31 + 7);
      QNode* qnode = ThreadQNodes::Get(0);
      for (int i = 0; i < param.ops_per_thread; ++i) {
        Slot& slot =
            slots[rng.NextBounded(static_cast<uint64_t>(param.num_locks))];
        slot.lock.AcquireEx(qnode);
        slot.a = slot.a + 1;
        slot.b = slot.b + 1;
        slot.lock.ReleaseEx(qnode);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LockGridTest,
    ::testing::Values(GridParam{1, 1, 2000},    // Single thread.
                      GridParam{4, 1, 1500},    // Extreme contention.
                      GridParam{4, 3, 1500},    // High contention.
                      GridParam{8, 2, 800},     // Oversubscribed.
                      GridParam{4, 64, 1500},   // Low contention.
                      GridParam{2, 1, 4000}),   // Long handover chains.
    GridName);

}  // namespace
}  // namespace optiql
