// MCS-RW (fair queue-based reader-writer lock) semantics: reader
// concurrency, writer exclusion, reader-count accounting in the packed
// 8-byte word, and reader/writer invariant stress.
#include "locks/mcs_rw_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "qnode/qnode_pool.h"

namespace optiql {
namespace {

TEST(McsRwLockTest, SequentialWriter) {
  McsRwLock lock;
  QNodeGuard guard;
  for (int i = 0; i < 50; ++i) {
    lock.AcquireEx(guard.node());
    EXPECT_EQ(lock.ActiveReaders(), 0u);
    lock.ReleaseEx(guard.node());
  }
  EXPECT_FALSE(lock.HasQueue());
}

TEST(McsRwLockTest, SequentialReader) {
  McsRwLock lock;
  QNodeGuard guard;
  for (int i = 0; i < 50; ++i) {
    lock.AcquireSh(guard.node());
    EXPECT_EQ(lock.ActiveReaders(), 1u);
    lock.ReleaseSh(guard.node());
    EXPECT_EQ(lock.ActiveReaders(), 0u);
  }
}

TEST(McsRwLockTest, ReadersShareTheLock) {
  McsRwLock lock;
  constexpr int kReaders = 4;
  std::atomic<int> holding{0};
  std::atomic<bool> release{false};
  int max_concurrent = 0;
  std::atomic<int> observed_max{0};

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      QNodeGuard guard;
      lock.AcquireSh(guard.node());
      int now = holding.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = observed_max.load(std::memory_order_relaxed);
      while (now > seen &&
             !observed_max.compare_exchange_weak(seen, now)) {
      }
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      holding.fetch_sub(1, std::memory_order_acq_rel);
      lock.ReleaseSh(guard.node());
    });
  }
  // All readers must be able to hold the lock simultaneously.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (holding.load(std::memory_order_acquire) != kReaders &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  max_concurrent = holding.load(std::memory_order_acquire);
  EXPECT_EQ(max_concurrent, kReaders);
  EXPECT_EQ(lock.ActiveReaders(), static_cast<uint32_t>(kReaders));
  release.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(lock.ActiveReaders(), 0u);
  EXPECT_EQ(observed_max.load(), kReaders);
}

TEST(McsRwLockTest, WriterExcludesReaders) {
  McsRwLock lock;
  QNodeGuard writer_node;
  lock.AcquireEx(writer_node.node());

  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    QNodeGuard guard;
    lock.AcquireSh(guard.node());
    reader_done.store(true, std::memory_order_release);
    lock.ReleaseSh(guard.node());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load());
  lock.ReleaseEx(writer_node.node());
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(McsRwLockTest, ReadersExcludeWriter) {
  McsRwLock lock;
  QNodeGuard reader_node;
  lock.AcquireSh(reader_node.node());

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    QNodeGuard guard;
    lock.AcquireEx(guard.node());
    writer_done.store(true, std::memory_order_release);
    lock.ReleaseEx(guard.node());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_done.load());
  lock.ReleaseSh(reader_node.node());
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(McsRwLockTest, WriterWokenByLastReader) {
  McsRwLock lock;
  QNodeGuard r1, r2;
  lock.AcquireSh(r1.node());
  lock.AcquireSh(r2.node());
  ASSERT_EQ(lock.ActiveReaders(), 2u);

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    QNodeGuard guard;
    lock.AcquireEx(guard.node());
    writer_done.store(true, std::memory_order_release);
    lock.ReleaseEx(guard.node());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  lock.ReleaseSh(r1.node());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(writer_done.load());  // One reader still active.
  lock.ReleaseSh(r2.node());
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(McsRwLockTest, ReadersQueuedBehindWriterJoinTogether) {
  // Queue: [writer holds] <- R1 <- R2. When the writer leaves, both readers
  // must become active simultaneously (reader-group chaining).
  McsRwLock lock;
  QNodeGuard writer_node;
  lock.AcquireEx(writer_node.node());

  std::atomic<int> active_readers{0};
  std::atomic<bool> release_readers{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      QNodeGuard guard;
      lock.AcquireSh(guard.node());
      active_readers.fetch_add(1, std::memory_order_acq_rel);
      while (!release_readers.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      lock.ReleaseSh(guard.node());
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(active_readers.load(), 0);
  lock.ReleaseEx(writer_node.node());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (active_readers.load(std::memory_order_acquire) != 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(active_readers.load(), 2);
  release_readers.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

TEST(McsRwLockTest, MixedStressInvariant) {
  // Writers mutate two mirrored plain counters; readers assert equality.
  // Any reader admitted concurrently with a writer would observe a tear.
  McsRwLock lock;
  volatile int64_t a = 0;
  volatile int64_t b = 0;
  std::atomic<bool> failed{false};
  constexpr int kWriters = 2;
  constexpr int kReaders = 3;
  constexpr int kWrites = 3000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      QNodeGuard guard;
      for (int i = 0; i < kWrites; ++i) {
        lock.AcquireEx(guard.node());
        a = a + 1;
        for (int spin = 0; spin < 8; ++spin) {
          asm volatile("" ::: "memory");
        }
        b = b + 1;
        lock.ReleaseEx(guard.node());
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      QNodeGuard guard;
      while (!stop.load(std::memory_order_acquire)) {
        lock.AcquireSh(guard.node());
        if (a != b) failed.store(true, std::memory_order_release);
        lock.ReleaseSh(guard.node());
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(a, kWriters * kWrites);
  EXPECT_EQ(b, kWriters * kWrites);
  EXPECT_EQ(lock.ActiveReaders(), 0u);
  EXPECT_FALSE(lock.HasQueue());
}

TEST(McsRwLockTest, UpgradeConvertsSoleHolderToWriter) {
  McsRwLock lock;
  QNodeGuard guard;
  ASSERT_TRUE(lock.TryAcquireSh());
  ASSERT_TRUE(lock.TryAcquireSh());  // Duplicate hold, same caller.
  EXPECT_EQ(lock.ActiveReaders(), 2u);
  ASSERT_TRUE(lock.TryUpgradeShNoQueue(guard.node(), 2));
  // Both shared holds were consumed; we are now the queued writer.
  EXPECT_EQ(lock.ActiveReaders(), 0u);
  EXPECT_TRUE(lock.HasQueue());
  EXPECT_FALSE(lock.TryAcquireSh());
  lock.ReleaseEx(guard.node());
  EXPECT_FALSE(lock.HasQueue());
}

TEST(McsRwLockTest, UpgradeFailsAgainstOtherReaders) {
  McsRwLock lock;
  QNodeGuard guard;
  ASSERT_TRUE(lock.TryAcquireSh());  // Ours.
  ASSERT_TRUE(lock.TryAcquireSh());  // "Someone else's" hold.
  // Claiming fewer holds than the reader count must fail and change
  // nothing (the foreign reader is still active).
  EXPECT_FALSE(lock.TryUpgradeShNoQueue(guard.node(), 1));
  EXPECT_EQ(lock.ActiveReaders(), 2u);
  EXPECT_FALSE(lock.HasQueue());
  lock.ReleaseShNoQueue();
  lock.ReleaseShNoQueue();
}

TEST(McsRwLockTest, UpgradeFailsWhenWriterQueued) {
  McsRwLock lock;
  QNodeGuard reader_node, writer_node;
  ASSERT_TRUE(lock.TryAcquireSh());
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    lock.AcquireEx(writer_node.node());  // Blocks behind the reader.
    lock.ReleaseEx(writer_node.node());
    writer_done.store(true, std::memory_order_release);
  });
  // Wait until the writer has registered (queue tail or next_writer set),
  // at which point the upgrade CAS must refuse.
  while (!lock.HasQueue() && lock.ActiveReaders() == 1 &&
         !writer_done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  if (!writer_done.load(std::memory_order_acquire)) {
    EXPECT_FALSE(lock.TryUpgradeShNoQueue(reader_node.node(), 1));
  }
  lock.ReleaseShNoQueue();  // Unblocks the writer.
  writer.join();
}

}  // namespace
}  // namespace optiql
