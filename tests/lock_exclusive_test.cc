// Typed correctness suite for exclusive (writer) mode, instantiated for
// every lock in the repository: mutual exclusion under contention,
// sequential reacquisition, and multi-lock independence.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "harness/lock_adapters.h"

namespace optiql {
namespace {

template <class Lock>
class ExclusiveLockTest : public ::testing::Test {};

using AllLockTypes =
    ::testing::Types<TtsLock, TtsBackoffLock, TicketLock, OptLock,
                     OptBackoffLock, McsLock, McsRwLock, SharedMutexLock,
                     OptiQL, OptiQLNor, ClhLock, OptiCLH, HybridLock>;
TYPED_TEST_SUITE(ExclusiveLockTest, AllLockTypes);

TYPED_TEST(ExclusiveLockTest, SequentialAcquireRelease) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  typename Ops::Ctx ctx;
  for (int i = 0; i < 100; ++i) {
    Ops::AcquireEx(lock, ctx);
    Ops::ReleaseEx(lock, ctx);
  }
}

TYPED_TEST(ExclusiveLockTest, MutualExclusionCounter) {
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  // Two mirrored plain counters: torn/racy increments would desynchronize
  // them or lose updates.
  int64_t counter_a = 0;
  int64_t counter_b = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename Ops::Ctx ctx;
      for (int i = 0; i < kIncrements; ++i) {
        Ops::AcquireEx(lock, ctx);
        const int64_t a = counter_a;
        const int64_t b = counter_b;
        ASSERT_EQ(a, b);
        counter_a = a + 1;
        counter_b = b + 1;
        Ops::ReleaseEx(lock, ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter_a, kThreads * kIncrements);
  EXPECT_EQ(counter_b, kThreads * kIncrements);
}

TYPED_TEST(ExclusiveLockTest, IndependentLocksDoNotInterfere) {
  using Ops = LockOps<TypeParam>;
  constexpr int kLocks = 8;
  struct Protected {
    TypeParam lock;
    int64_t value = 0;
  };
  std::vector<Protected> slots(kLocks);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      typename Ops::Ctx ctx;
      for (int i = 0; i < kIncrements; ++i) {
        auto& slot = slots[static_cast<size_t>((i + t) % kLocks)];
        Ops::AcquireEx(slot.lock, ctx);
        ++slot.value;
        Ops::ReleaseEx(slot.lock, ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
  int64_t total = 0;
  for (const auto& slot : slots) total += slot.value;
  EXPECT_EQ(total, kThreads * kIncrements);
}

TYPED_TEST(ExclusiveLockTest, HandoverUnderOversubscription) {
  // Many short critical sections with more threads than cores: exercises
  // the spin-then-yield path and (for queue locks) long handover chains.
  using Ops = LockOps<TypeParam>;
  TypeParam lock;
  std::atomic<int> active{0};
  constexpr int kThreads = 8;
  constexpr int kRounds = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      typename Ops::Ctx ctx;
      for (int i = 0; i < kRounds; ++i) {
        Ops::AcquireEx(lock, ctx);
        ASSERT_EQ(active.fetch_add(1, std::memory_order_acq_rel), 0);
        active.fetch_sub(1, std::memory_order_acq_rel);
        Ops::ReleaseEx(lock, ctx);
      }
    });
  }
  for (auto& t : threads) t.join();
}

// --- Non-typed, lock-specific behaviours ---

TEST(TtsLockTest, TryAcquireSemantics) {
  TtsLock lock;
  EXPECT_TRUE(lock.TryAcquireEx());
  EXPECT_TRUE(lock.IsLockedEx());
  EXPECT_FALSE(lock.TryAcquireEx());
  lock.ReleaseEx();
  EXPECT_FALSE(lock.IsLockedEx());
  EXPECT_TRUE(lock.TryAcquireEx());
  lock.ReleaseEx();
}

TEST(TicketLockTest, TryAcquireFailsWhenHeld) {
  TicketLock lock;
  EXPECT_TRUE(lock.TryAcquireEx());
  EXPECT_TRUE(lock.IsLockedEx());
  EXPECT_FALSE(lock.TryAcquireEx());
  lock.ReleaseEx();
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(TicketLockTest, FifoOrderAmongWaiters) {
  // A held ticket lock grants strictly in ticket order. Start the holder,
  // queue N waiters with known ticket order, and record the grant order.
  TicketLock lock;
  lock.AcquireEx();
  std::vector<int> grant_order;
  std::atomic<int> queued{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      // Serialize ticket acquisition: thread i draws ticket i+1.
      while (queued.load(std::memory_order_acquire) != i) {
        std::this_thread::yield();
      }
      // AcquireEx draws the ticket immediately then spins.
      // There is no way to split it, so signal *before* the call and rely
      // on the holder still owning the lock.
      queued.fetch_add(1, std::memory_order_acq_rel);
      lock.AcquireEx();
      grant_order.push_back(i);
      lock.ReleaseEx();
    });
  }
  while (queued.load(std::memory_order_acquire) != 4) {
    std::this_thread::yield();
  }
  // Give every waiter a moment to actually draw its ticket after signaling.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lock.ReleaseEx();
  for (auto& t : waiters) t.join();
  ASSERT_EQ(grant_order.size(), 4u);
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(McsLockTest, TryAcquireOnlySucceedsOnEmptyQueue) {
  McsLock lock;
  QNodeGuard g1, g2;
  EXPECT_TRUE(lock.TryAcquireEx(g1.node()));
  EXPECT_TRUE(lock.IsLockedEx());
  EXPECT_FALSE(lock.TryAcquireEx(g2.node()));
  lock.ReleaseEx(g1.node());
  EXPECT_FALSE(lock.IsLockedEx());
}

TEST(McsLockTest, FifoGrantOrder) {
  McsLock lock;
  QNodeGuard holder;
  lock.AcquireEx(holder.node());
  std::vector<int> grant_order;
  std::atomic<int> queued{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      while (queued.load(std::memory_order_acquire) != i) {
        std::this_thread::yield();
      }
      QNodeGuard guard;
      // XCHG into the queue happens inside AcquireEx; serialize arrivals by
      // only signaling after we are provably enqueued. TryAcquireEx must
      // fail (lock held), so enqueue via AcquireEx in a helper thread is
      // the only option: signal first, then enqueue, then re-check below.
      queued.fetch_add(1, std::memory_order_acq_rel);
      lock.AcquireEx(guard.node());
      grant_order.push_back(i);
      lock.ReleaseEx(guard.node());
    });
    // Wait until thread i is *likely* enqueued before releasing thread i+1.
    while (queued.load(std::memory_order_acquire) != i + 1) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  lock.ReleaseEx(holder.node());
  for (auto& t : waiters) t.join();
  ASSERT_EQ(grant_order.size(), 4u);
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace optiql
