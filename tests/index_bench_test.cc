// Index benchmark framework behaviour: preload (incl. bulk-load fast
// path), insert/remove arms, latency sampling, and the named paper mixes.
#include <gtest/gtest.h>

#include "harness/index_bench.h"
#include "index/art.h"
#include "index/btree.h"

namespace optiql {
namespace {

TEST(IndexBenchPreloadTest, BulkLoadFastPathMatchesInsertPath) {
  IndexWorkload workload;
  workload.records = 5000;
  // B+-tree takes the bulk-load path...
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  PreloadIndex(tree, workload);
  EXPECT_EQ(tree.Size(), workload.records);
  tree.CheckInvariants();
  // ...ART takes the per-insert path; contents must agree.
  ArtTree<ArtOlcPolicy> art;
  PreloadIndex(art, workload);
  EXPECT_EQ(art.Size(), workload.records);
  for (uint64_t i = 0; i < workload.records; i += 97) {
    uint64_t a = 0, b = 0;
    ASSERT_TRUE(tree.Lookup(i, a));
    ASSERT_TRUE(art.LookupInt(i, b));
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, i + 1);
  }
}

TEST(IndexBenchPreloadTest, SparseKeySpacePreloads) {
  IndexWorkload workload;
  workload.records = 3000;
  workload.key_space = KeySpace::kSparse;
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  PreloadIndex(tree, workload);
  EXPECT_EQ(tree.Size(), workload.records);
  tree.CheckInvariants();
  uint64_t out = 0;
  ASSERT_TRUE(tree.Lookup(ScrambleKey(0), out));
  EXPECT_EQ(out, ScrambleKey(0) + 1);
}

TEST(IndexBenchRunTest, InsertAndRemoveArmsKeepTreeHealthy) {
  BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>> tree;
  IndexWorkload workload;
  workload.records = 2000;
  workload.lookup_pct = 20;
  workload.update_pct = 20;
  workload.insert_pct = 40;
  workload.remove_pct = 20;
  workload.threads = 3;
  workload.duration_ms = 80;
  PreloadIndex(tree, workload);
  const RunResult result = RunIndexBench(tree, workload);
  EXPECT_GT(result.TotalOps(), 0u);
  // Inserts outnumber removes 2:1 in expectation, so the tree grew.
  EXPECT_GT(tree.Size(), workload.records);
  tree.CheckInvariants();
}

TEST(IndexBenchRunTest, PaperMixesAreWellFormed) {
  int seen = 0;
  for (const OpMix& mix : kPaperOpMixes) {
    EXPECT_EQ(mix.lookup_pct + mix.update_pct, 100) << mix.name;
    ++seen;
  }
  EXPECT_EQ(seen, 5);  // Read-only .. Update-only (§7.3).
}

TEST(IndexBenchRunTest, SelfSimilarWorkloadHitsHotKeys) {
  // With skew 0.2, the run should touch low keys far more than high ones.
  // Verified indirectly: updates with distinctive values land mostly on
  // the hot range.
  BTree<uint64_t, uint64_t, BTreeOlcPolicy> tree;
  IndexWorkload workload;
  workload.records = 300000;  // Far more keys than the run can touch.
  workload.lookup_pct = 0;
  workload.update_pct = 100;
  workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
  workload.skew = 0.2;
  workload.threads = 1;
  workload.duration_ms = 30;
  PreloadIndex(tree, workload);
  RunIndexBench(tree, workload);
  // Preloaded values were key+1 (even for even keys); updates write odd
  // values (rng.Next() | 1). Count updated keys per half.
  int updated_low = 0, updated_high = 0;
  for (uint64_t k = 0; k < workload.records; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(tree.Lookup(k, out));
    if (out != k + 1) {
      (k < workload.records / 2 ? updated_low : updated_high) += 1;
    }
  }
  EXPECT_GT(updated_low, updated_high * 2);
}

}  // namespace
}  // namespace optiql
