// IndexOps conformance: every index type in the repo — all B+-tree sync
// policies, both ART families, the hash table, and ShardedStore composites
// — satisfies IndexLike and behaves identically through the uniform
// IndexInsert/IndexUpdate/IndexLookup/IndexRemove/IndexUpsert/IndexScan
// surface. Each type also declares its expected capability profile, so a
// capability silently appearing or disappearing (e.g. a concept no longer
// matching after a signature change) fails here rather than in a bench.
//
// All tests are single-threaded; no TSan exclusion naming is needed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "index/art.h"
#include "index/art_coupling.h"
#include "index/btree.h"
#include "index/hash_table.h"
#include "index/index_ops.h"
#include "store/sharded_store.h"

namespace optiql {
namespace {

// One conformance case: the index type plus its expected capabilities.
template <class IndexT, bool kScan, bool kBulkLoad, bool kUpsert,
          bool kNodeCount>
struct Profile {
  using Index = IndexT;
  static constexpr bool kExpectScan = kScan;
  static constexpr bool kExpectBulkLoad = kBulkLoad;
  static constexpr bool kExpectUpsert = kUpsert;
  static constexpr bool kExpectNodeCount = kNodeCount;
};

template <class Policy>
using U64BTree = BTree<uint64_t, uint64_t, Policy>;

// B+-trees: full capability set under every sync policy.
using BTreeOlcCase = Profile<U64BTree<BTreeOlcPolicy>, 1, 1, 1, 1>;
using BTreeOptiQlCase =
    Profile<U64BTree<BTreeOptiQlPolicy<OptiQL>>, 1, 1, 1, 1>;
using BTreeOptiQlNorCase =
    Profile<U64BTree<BTreeOptiQlPolicy<OptiQLNor>>, 1, 1, 1, 1>;
using BTreeOptiQlAorCase =
    Profile<U64BTree<BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>, 1, 1, 1, 1>;
using BTreePthreadCase =
    Profile<U64BTree<BTreeCouplingPolicy<SharedMutexLock>>, 1, 1, 1, 1>;
using BTreeMcsRwCase =
    Profile<U64BTree<BTreeCouplingPolicy<McsRwLock>>, 1, 1, 1, 1>;
// ART: point ops only (via the *Int suffix), no range/bulk/upsert/count.
using ArtOlcCase = Profile<ArtTree<ArtOlcPolicy>, 0, 0, 0, 0>;
using ArtOptiQlCase = Profile<ArtTree<ArtOptiQlPolicy<OptiQL>>, 0, 0, 0, 0>;
using ArtCouplingCase = Profile<ArtCouplingTree<McsRwLock>, 0, 0, 0, 0>;
// Hash table: unordered, so no scan/bulk-load; native upsert.
using HashTableCase = Profile<HashTable<>, 0, 0, 1, 0>;
// Sharded composites inherit Scan/NodeCount from their shard type;
// Upsert and BulkLoad are always present (the store routes through
// IndexUpsert's loop / a checked-insert load when the shard lacks them).
using ShardedBTreeCase =
    Profile<ShardedStore<U64BTree<BTreeOptiQlPolicy<OptiQL>>>, 1, 1, 1, 1>;
using ShardedArtCase = Profile<ShardedStore<ArtTree<ArtOlcPolicy>>, 0, 1, 1, 0>;
// Range-routed store: identical capability surface to the hash-routed one
// (the routing table is invisible to IndexOps consumers).
using ShardedRangeBTreeCase =
    Profile<ShardedStore<U64BTree<BTreeOptiQlPolicy<OptiQL>>,
                         RangeShardRouter>,
            1, 1, 1, 1>;

using ConformanceCases =
    ::testing::Types<BTreeOlcCase, BTreeOptiQlCase, BTreeOptiQlNorCase,
                     BTreeOptiQlAorCase, BTreePthreadCase, BTreeMcsRwCase,
                     ArtOlcCase, ArtOptiQlCase, ArtCouplingCase,
                     HashTableCase, ShardedBTreeCase, ShardedArtCase,
                     ShardedRangeBTreeCase>;

struct ProfileNames {
  template <class T>
  static std::string GetName(int) {
    if (std::is_same_v<T, BTreeOlcCase>) return "BTreeOptLock";
    if (std::is_same_v<T, BTreeOptiQlCase>) return "BTreeOptiQl";
    if (std::is_same_v<T, BTreeOptiQlNorCase>) return "BTreeOptiQlNor";
    if (std::is_same_v<T, BTreeOptiQlAorCase>) return "BTreeOptiQlAor";
    if (std::is_same_v<T, BTreePthreadCase>) return "BTreePthread";
    if (std::is_same_v<T, BTreeMcsRwCase>) return "BTreeMcsRw";
    if (std::is_same_v<T, ArtOlcCase>) return "ArtOptLock";
    if (std::is_same_v<T, ArtOptiQlCase>) return "ArtOptiQl";
    if (std::is_same_v<T, ArtCouplingCase>) return "ArtCouplingMcsRw";
    if (std::is_same_v<T, HashTableCase>) return "HashTable";
    if (std::is_same_v<T, ShardedBTreeCase>) return "ShardedBTreeOptiQl";
    if (std::is_same_v<T, ShardedArtCase>) return "ShardedArtOptLock";
    if (std::is_same_v<T, ShardedRangeBTreeCase>) {
      return "ShardedRangeBTreeOptiQl";
    }
    return "Unknown";
  }
};

template <class T>
class IndexOpsConformanceTest : public ::testing::Test {};
TYPED_TEST_SUITE(IndexOpsConformanceTest, ConformanceCases, ProfileNames);

TYPED_TEST(IndexOpsConformanceTest, CapabilityProfileMatches) {
  using Index = typename TypeParam::Index;
  static_assert(IndexLike<Index>);
  // Exactly one point-op spelling is the dispatch target; both existing at
  // once would be ambiguous by design (suffix wins), which no repo index
  // does today.
  static_assert(HasNativeIntOps<Index> != HasIntSuffixOps<Index>);
  EXPECT_EQ(HasScanOp<Index>, TypeParam::kExpectScan);
  EXPECT_EQ(HasBulkLoadOp<Index>, TypeParam::kExpectBulkLoad);
  EXPECT_EQ(HasUpsertOp<Index>, TypeParam::kExpectUpsert);
  EXPECT_EQ(HasNodeCountOp<Index>, TypeParam::kExpectNodeCount);
  EXPECT_TRUE(HasCheckInvariantsOp<Index>);
}

TYPED_TEST(IndexOpsConformanceTest, UniformOpsRoundTrip) {
  using Index = typename TypeParam::Index;
  Index index;
  constexpr uint64_t kKeys = 512;

  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_TRUE(IndexInsert(index, k, k * 2));
    ASSERT_FALSE(IndexInsert(index, k, 999));  // Duplicate rejected.
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    uint64_t out = 0;
    ASSERT_TRUE(IndexLookup(index, k, out));
    ASSERT_EQ(out, k * 2);
  }
  uint64_t out = 0;
  EXPECT_FALSE(IndexLookup(index, kKeys + 1, out));
  EXPECT_TRUE(IndexUpdate(index, 7, 1000));
  EXPECT_FALSE(IndexUpdate(index, kKeys + 1, 1000));  // Absent key.
  ASSERT_TRUE(IndexLookup(index, 7, out));
  EXPECT_EQ(out, 1000u);

  // Upsert both arms: overwrite an existing key, then create a fresh one.
  IndexUpsert(index, 7, 2000);
  ASSERT_TRUE(IndexLookup(index, 7, out));
  EXPECT_EQ(out, 2000u);
  IndexUpsert(index, kKeys + 5, 3000);
  ASSERT_TRUE(IndexLookup(index, kKeys + 5, out));
  EXPECT_EQ(out, 3000u);
  ASSERT_TRUE(IndexRemove(index, kKeys + 5));

  if constexpr (HasScanOp<Index>) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    ASSERT_EQ(IndexScan(index, 10, 20, pairs), 20u);
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].first, 10 + i);
    }
  }

  EXPECT_TRUE(IndexRemove(index, 7));
  EXPECT_FALSE(IndexRemove(index, 7));  // Already gone.
  EXPECT_FALSE(IndexLookup(index, 7, out));
  IndexCheckInvariants(index);
}

TYPED_TEST(IndexOpsConformanceTest, BulkLoadWhenSupported) {
  using Index = typename TypeParam::Index;
  if constexpr (HasBulkLoadOp<Index>) {
    Index index;
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (uint64_t k = 0; k < 2000; ++k) pairs.emplace_back(k, k + 1);
    index.BulkLoad(pairs);
    for (uint64_t k = 0; k < 2000; k += 37) {
      uint64_t found = 0;
      ASSERT_TRUE(IndexLookup(index, k, found));
      ASSERT_EQ(found, k + 1);
    }
    IndexCheckInvariants(index);
  }
}

}  // namespace
}  // namespace optiql
