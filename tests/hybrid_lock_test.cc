// Hybrid latch (Böttcher et al. / paper ref [6]) semantics: three access
// modes, their exclusion matrix, validation masking of the shared count,
// and the adaptive fallback policy.
#include "locks/hybrid_lock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace optiql {
namespace {

TEST(HybridLockTest, OptimisticReadOnFreeLock) {
  HybridLock lock;
  uint64_t v = 0;
  EXPECT_TRUE(lock.AcquireSh(v));
  EXPECT_TRUE(lock.ReleaseSh(v));
}

TEST(HybridLockTest, WriterInvalidatesOptimisticReader) {
  HybridLock lock;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  lock.AcquireEx();
  lock.ReleaseEx();
  EXPECT_FALSE(lock.ReleaseSh(v));
}

TEST(HybridLockTest, PessimisticReaderDoesNotInvalidateOptimistic) {
  // The defining hybrid property: shared-count churn is masked out of
  // optimistic validation.
  HybridLock lock;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  lock.AcquireShPessimistic();
  EXPECT_EQ(lock.SharedCount(), 1u);
  EXPECT_TRUE(lock.ReleaseSh(v));  // Still validates.
  lock.ReleaseShPessimistic();
  EXPECT_EQ(lock.SharedCount(), 0u);
  EXPECT_TRUE(lock.ReleaseSh(v));
}

TEST(HybridLockTest, PessimisticReadersShare) {
  HybridLock lock;
  lock.AcquireShPessimistic();
  lock.AcquireShPessimistic();
  EXPECT_EQ(lock.SharedCount(), 2u);
  EXPECT_FALSE(lock.TryAcquireEx());  // Writers excluded.
  lock.ReleaseShPessimistic();
  EXPECT_FALSE(lock.TryAcquireEx());
  lock.ReleaseShPessimistic();
  EXPECT_TRUE(lock.TryAcquireEx());
  lock.ReleaseEx();
}

TEST(HybridLockTest, WriterExcludesPessimisticReaders) {
  HybridLock lock;
  lock.AcquireEx();
  std::atomic<bool> reader_in{false};
  std::thread reader([&] {
    lock.AcquireShPessimistic();
    reader_in.store(true, std::memory_order_release);
    lock.ReleaseShPessimistic();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_in.load());
  lock.ReleaseEx();
  reader.join();
  EXPECT_TRUE(reader_in.load());
}

TEST(HybridLockTest, PessimisticReadersBlockWriter) {
  HybridLock lock;
  lock.AcquireShPessimistic();
  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    lock.AcquireEx();
    writer_in.store(true, std::memory_order_release);
    lock.ReleaseEx();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_in.load());
  lock.ReleaseShPessimistic();
  writer.join();
  EXPECT_TRUE(writer_in.load());
}

TEST(HybridLockTest, UpgradeFailsUnderSharedReaders) {
  HybridLock lock;
  uint64_t v = 0;
  ASSERT_TRUE(lock.AcquireSh(v));
  lock.AcquireShPessimistic();
  // Snapshot `v` predates the reader, but the word now carries a nonzero
  // shared count: the upgrade must fail (writers cannot preempt readers).
  const uint64_t current = lock.LoadWord();
  EXPECT_FALSE(lock.TryUpgrade(current));
  lock.ReleaseShPessimistic();
  EXPECT_TRUE(lock.TryUpgrade(lock.LoadWord()));
  lock.ReleaseEx();
}

TEST(HybridLockTest, HybridReadFallsBackAfterRepeatedInvalidation) {
  // Deterministic fallback: the read body itself invalidates the snapshot
  // (write-lock cycle) for each optimistic attempt, so the adaptive policy
  // must take the pessimistic path. During the fallback the body must NOT
  // write (a writer would deadlock against our own shared hold), which
  // also proves the fallback call happens under shared protection.
  HybridLock lock;
  int calls = 0;
  const bool fell_back = lock.ReadCriticalHybrid([&] {
    if (calls < HybridLock::kOptimisticAttempts) {
      lock.AcquireEx();
      lock.ReleaseEx();
    }
    ++calls;
  });
  EXPECT_TRUE(fell_back);
  EXPECT_EQ(calls, HybridLock::kOptimisticAttempts + 1);
  EXPECT_EQ(lock.SharedCount(), 0u);
}

TEST(HybridLockTest, MixedModeStressInvariant) {
  HybridLock lock;
  volatile int64_t a = 0;
  volatile int64_t b = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        int64_t x = 0, y = 0;
        lock.ReadCriticalHybrid([&] {
          x = a;
          y = b;
        });
        if (x != y) torn.store(true, std::memory_order_release);
      }
    });
  }
  std::vector<std::thread> writers;
  constexpr int kWriters = 2;
  constexpr int kWrites = 4000;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        lock.AcquireEx();
        a = a + 1;
        for (int spin = 0; spin < 8; ++spin) {
          asm volatile("" ::: "memory");
        }
        b = b + 1;
        lock.ReleaseEx();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, kWriters * kWrites);
  EXPECT_EQ(b, kWriters * kWrites);
  EXPECT_EQ(lock.SharedCount(), 0u);
  EXPECT_FALSE(lock.IsLockedEx());
}

}  // namespace
}  // namespace optiql
