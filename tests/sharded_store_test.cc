// ShardedStore behaviour: hash routing, differential correctness against a
// std::map oracle (single- and multi-threaded), scatter-gather scan
// ordering across shard boundaries, churn under the shared epoch domain,
// and the acceptance path — the store running through the unchanged
// index_bench harness and trace replay.
//
// TSan naming contract (tests/CMakeLists.txt): concurrent suites driving
// optimistic trees carry OptiQl / IndexBench / Multithreaded in their
// names so the discovery-time filter excludes them.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "harness/index_bench.h"
#include "index/art.h"
#include "index/btree.h"
#include "store/sharded_store.h"
#include "sync/epoch.h"
#include "workload/trace_replay.h"

namespace optiql {
namespace {

using OptiQlTree = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using CouplingTree = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;

// Router-independent behaviour: the same randomized differential runs
// against the hash router and the range router (conformance — a routing
// table swap must be invisible to point ops and scans).
template <class Store>
void SingleThreadDifferential(Store& store) {
  std::map<uint64_t, uint64_t> oracle;
  Xoshiro256 rng(0xD1FF);
  std::vector<std::pair<uint64_t, uint64_t>> scanned;

  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(4000);
    const uint64_t value = rng.Next();
    switch (rng.NextBounded(5)) {
      case 0:
        ASSERT_EQ(store.Insert(key, value),
                  oracle.emplace(key, value).second);
        break;
      case 1: {
        const auto it = oracle.find(key);
        ASSERT_EQ(store.Update(key, value), it != oracle.end());
        if (it != oracle.end()) it->second = value;
        break;
      }
      case 2:
        ASSERT_EQ(store.Remove(key), oracle.erase(key) == 1);
        break;
      case 3: {
        uint64_t out = 0;
        const auto it = oracle.find(key);
        ASSERT_EQ(store.Lookup(key, out), it != oracle.end());
        if (it != oracle.end()) {
          ASSERT_EQ(out, it->second);
        }
        break;
      }
      default: {
        const size_t limit = 1 + rng.NextBounded(32);
        store.Scan(key, limit, scanned);
        auto it = oracle.lower_bound(key);
        for (const auto& pair : scanned) {
          ASSERT_NE(it, oracle.end());
          ASSERT_EQ(pair.first, it->first);
          ASSERT_EQ(pair.second, it->second);
          ++it;
        }
        // The scan stopped early only if the oracle ran out too.
        if (scanned.size() < limit) {
          ASSERT_EQ(it, oracle.end());
        }
        break;
      }
    }
  }
  ASSERT_EQ(store.Size(), oracle.size());
  store.CheckInvariants();
}

TEST(ShardedStoreTest, SingleThreadDifferentialAgainstMapOracle) {
  ShardedStore<OptiQlTree> store(7);  // Odd count: catches modulo bugs.
  SingleThreadDifferential(store);
}

TEST(ShardedStoreTest, RangeRouterSingleThreadDifferential) {
  // Dense boundaries inside the op keyspace: scans and point ops cross
  // span edges constantly.
  ShardedStore<OptiQlTree, RangeShardRouter> store(
      7, RangeShardRouter::EvenOver(4000, 7));
  SingleThreadDifferential(store);
}

TEST(ShardedStoreTest, RangeRouterDefaultSpansCoverFullKeySpace) {
  // No explicit splits: spans divide the u64 space evenly; dense small
  // keys all land in span 0 but every key is routable.
  ShardedStore<OptiQlTree, RangeShardRouter> store(4);
  ASSERT_TRUE(store.Insert(0, 1));
  ASSERT_TRUE(store.Insert(UINT64_MAX, 2));
  ASSERT_TRUE(store.Insert(UINT64_MAX / 2, 3));
  EXPECT_EQ(store.Size(), 3u);
  uint64_t out = 0;
  EXPECT_TRUE(store.Lookup(UINT64_MAX, out));
  EXPECT_EQ(out, 2u);
  EXPECT_EQ(store.ShardCount(), 4u);
  // Keys spread across distinct spans land on distinct shards.
  EXPECT_NE(store.ShardIndexOf(0), store.ShardIndexOf(UINT64_MAX));
}

TEST(ShardedStoreTest, ScanMergesAcrossShardBoundaries) {
  // Dense keys: consecutive keys land on different shards by design, so
  // every scan window is stitched together by the k-way merge.
  ShardedStore<OptiQlTree> store(4);
  constexpr uint64_t kKeys = 10000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(store.Insert(k, k * 3));

  std::vector<std::pair<uint64_t, uint64_t>> out;
  const uint64_t starts[] = {0, 1, 997, 4096, kKeys - 10};
  for (uint64_t start : starts) {
    const size_t limit = 64;
    const size_t got = store.Scan(start, limit, out);
    const size_t expect = std::min<size_t>(limit, kKeys - start);
    ASSERT_EQ(got, expect) << "start=" << start;
    for (size_t i = 0; i < got; ++i) {
      ASSERT_EQ(out[i].first, start + i);
      ASSERT_EQ(out[i].second, (start + i) * 3);
    }
  }
  EXPECT_EQ(store.Scan(kKeys + 5, 16, out), 0u);
  EXPECT_EQ(store.Scan(0, 0, out), 0u);
}

TEST(ShardedStoreTest, RoutingCoversAllShardsAndSizeSums) {
  ShardedStore<OptiQlTree> store(16);
  constexpr uint64_t kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(store.Insert(k, k));
  size_t sum = 0;
  for (size_t s = 0; s < store.ShardCount(); ++s) {
    // Dense keys under a full-avalanche router: every shard sees a
    // roughly proportional slice (loose 2x bound, no flakiness).
    EXPECT_GT(store.ShardAt(s).Size(), kKeys / 32) << "shard " << s;
    sum += store.ShardAt(s).Size();
  }
  EXPECT_EQ(sum, kKeys);
  EXPECT_EQ(store.Size(), kKeys);
  // Point ops agree with the router's own mapping.
  for (uint64_t k = 0; k < 100; ++k) {
    uint64_t out = 0;
    EXPECT_TRUE(
        store.ShardAt(store.ShardIndexOf(k)).Lookup(k, out));
  }
}

TEST(ShardedStoreTest, BulkLoadPartitionsSortedInput) {
  // PreloadIndex takes the bulk-load fast path on the store (it has
  // BulkLoad), partitioning the sorted input per shard.
  ShardedStore<OptiQlTree> store(5);
  IndexWorkload workload;
  workload.records = 12000;
  PreloadIndex(store, workload);
  EXPECT_EQ(store.Size(), workload.records);
  for (uint64_t k = 0; k < workload.records; k += 113) {
    uint64_t out = 0;
    ASSERT_TRUE(store.Lookup(k, out));
    ASSERT_EQ(out, k + 1);
  }
  store.CheckInvariants();
}

TEST(ShardedStoreTest, UpsertWorksOnShardedArtViaFallback) {
  // ART has no native Upsert; the store's Upsert goes through the
  // IndexUpsert update-then-insert fallback.
  ShardedStore<ArtTree<ArtOlcPolicy>> store(3);
  store.Upsert(42, 1);
  uint64_t out = 0;
  ASSERT_TRUE(store.Lookup(42, out));
  EXPECT_EQ(out, 1u);
  store.Upsert(42, 2);
  ASSERT_TRUE(store.Lookup(42, out));
  EXPECT_EQ(out, 2u);
  static_assert(!HasScanOp<ShardedStore<ArtTree<ArtOlcPolicy>>>);
}

// Acceptance path: ShardedStore<BTree<OptiQL>> through the UNCHANGED
// index_bench harness (preload + mixed fixed-duration run).
TEST(ShardedStoreTest, RunsThroughIndexBenchHarness) {
  ShardedStore<OptiQlTree> store(4);
  IndexWorkload workload;
  workload.records = 5000;
  workload.lookup_pct = 40;
  workload.update_pct = 30;
  workload.insert_pct = 20;
  workload.remove_pct = 10;
  workload.threads = 4;
  workload.duration_ms = 60;
  PreloadIndex(store, workload);
  const RunResult result = RunIndexBench(store, workload);
  EXPECT_GT(result.TotalOps(), 0u);
  // Inserts outnumber removes 2:1 in expectation, so the store grew.
  EXPECT_GT(store.Size(), workload.records);
  store.CheckInvariants();
}

// Acceptance path: the UNCHANGED ReplayTrace drives the store, in both
// op-partitioning modes.
TEST(ShardedStoreTest, MultithreadedReplayBothPartitionings) {
  TraceConfig config;
  config.operations = 20000;
  config.key_space = 200000;  // Wide space: inserts rarely collide.
  config.lookup_pct = 50;
  config.insert_pct = 50;
  config.update_pct = 0;
  config.remove_pct = 0;
  config.max_scan_len = 1;
  const Trace trace = Trace::Generate(config);

  for (const bool by_key : {false, true}) {
    ShardedStore<OptiQlTree> store(4);
    ReplayOptions options;
    options.threads = 4;
    options.partition_by_key = by_key;
    const ReplayResult result = ReplayTrace(store, trace, options);
    EXPECT_EQ(result.TotalOps(), trace.size()) << "by_key=" << by_key;
    // Every distinct inserted key is present exactly once.
    EXPECT_EQ(store.Size(), result.insert_ok) << "by_key=" << by_key;
    store.CheckInvariants();
  }
}

// Concurrent differential: each thread owns a disjoint key stripe, so the
// final contents are exactly the union of per-thread survivors.
TEST(ShardedStoreOptiQlTest, ConcurrentDisjointWritersDifferential) {
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 4000;
  ShardedStore<OptiQlTree> store(8);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      // Stripe by residue: thread t owns keys k with k % kThreads == t.
      for (uint64_t i = 0; i < kKeysPerThread; ++i) {
        const uint64_t key = i * kThreads + static_cast<uint64_t>(t);
        ASSERT_TRUE(store.Insert(key, key + 7));
      }
      // Remove every other key the thread inserted.
      for (uint64_t i = 0; i < kKeysPerThread; i += 2) {
        const uint64_t key = i * kThreads + static_cast<uint64_t>(t);
        ASSERT_TRUE(store.Remove(key));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(store.Size(), kThreads * kKeysPerThread / 2);
  for (uint64_t i = 0; i < kKeysPerThread; ++i) {
    for (int t = 0; t < kThreads; ++t) {
      const uint64_t key = i * kThreads + static_cast<uint64_t>(t);
      uint64_t out = 0;
      ASSERT_EQ(store.Lookup(key, out), i % 2 == 1) << key;
      if (i % 2 == 1) {
        ASSERT_EQ(out, key + 7);
      }
    }
  }
  store.CheckInvariants();
}

// Churn under the shared epoch domain: concurrent insert/remove cycles
// force delete-time merges that retire nodes through the one process-wide
// epoch manager while readers from other shards are active. ASan proves
// no retired node is freed under a live reader.
TEST(ShardedStoreOptiQlTest, ConcurrentChurnUnderEpochReclamation) {
  constexpr int kWriters = 3;
  constexpr uint64_t kRange = 8000;
  ShardedStore<OptiQlTree> store(4);
  for (uint64_t k = 0; k < kRange; ++k) ASSERT_TRUE(store.Insert(k, k));
  const uint64_t retired_before = EpochManager::Instance().TotalRetired();

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&store, t] {
      // Disjoint stripes keep every op's return value deterministic.
      for (int cycle = 0; cycle < 6; ++cycle) {
        for (uint64_t i = static_cast<uint64_t>(t); i < kRange;
             i += kWriters) {
          ASSERT_TRUE(store.Remove(i));
        }
        for (uint64_t i = static_cast<uint64_t>(t); i < kRange;
             i += kWriters) {
          ASSERT_TRUE(store.Insert(i, i + cycle));
        }
      }
    });
  }
  workers.emplace_back([&store, &stop] {
    std::vector<std::pair<uint64_t, uint64_t>> buffer;
    Xoshiro256 rng(0xC0FFEE);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t out = 0;
      store.Lookup(rng.NextBounded(kRange), out);
      store.Scan(rng.NextBounded(kRange), 16, buffer);
    }
  });
  for (int t = 0; t < kWriters; ++t) workers[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  workers.back().join();

  EXPECT_EQ(store.Size(), kRange);
  // The remove waves merged leaves: nodes were retired through the epoch
  // layer (not freed in place).
  EXPECT_GT(EpochManager::Instance().TotalRetired(), retired_before);
  store.CheckInvariants();
}

// Replay-affinity contract: with threads == shards, key-hash partitioned
// replay and the store's router agree on ownership (same Mix64 family),
// so each replay thread drives exactly one shard.
TEST(ShardedStoreTest, ShardAffinityAlignsWithKeyPartitioning) {
  constexpr size_t kShards = 4;
  ShardedStore<CouplingTree> store(kShards);
  for (uint64_t key = 0; key < 10000; ++key) {
    EXPECT_EQ(store.ShardIndexOf(key),
              static_cast<size_t>(Mix64(key) % kShards));
  }
}

}  // namespace
}  // namespace optiql
