# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/locks_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/art_test[1]_include.cmake")
include("/root/repo/build/tests/hash_table_test[1]_include.cmake")
include("/root/repo/build/tests/workload_harness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
