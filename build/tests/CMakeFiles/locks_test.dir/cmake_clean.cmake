file(REMOVE_RECURSE
  "CMakeFiles/locks_test.dir/guarded_test.cc.o"
  "CMakeFiles/locks_test.dir/guarded_test.cc.o.d"
  "CMakeFiles/locks_test.dir/hybrid_lock_test.cc.o"
  "CMakeFiles/locks_test.dir/hybrid_lock_test.cc.o.d"
  "CMakeFiles/locks_test.dir/lock_exclusive_test.cc.o"
  "CMakeFiles/locks_test.dir/lock_exclusive_test.cc.o.d"
  "CMakeFiles/locks_test.dir/lock_optimistic_test.cc.o"
  "CMakeFiles/locks_test.dir/lock_optimistic_test.cc.o.d"
  "CMakeFiles/locks_test.dir/mcs_rw_lock_test.cc.o"
  "CMakeFiles/locks_test.dir/mcs_rw_lock_test.cc.o.d"
  "CMakeFiles/locks_test.dir/opticlh_test.cc.o"
  "CMakeFiles/locks_test.dir/opticlh_test.cc.o.d"
  "CMakeFiles/locks_test.dir/optiql_test.cc.o"
  "CMakeFiles/locks_test.dir/optiql_test.cc.o.d"
  "CMakeFiles/locks_test.dir/qnode_pool_test.cc.o"
  "CMakeFiles/locks_test.dir/qnode_pool_test.cc.o.d"
  "locks_test"
  "locks_test.pdb"
  "locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
