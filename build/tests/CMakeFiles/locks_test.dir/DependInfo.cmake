
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/guarded_test.cc" "tests/CMakeFiles/locks_test.dir/guarded_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/guarded_test.cc.o.d"
  "/root/repo/tests/hybrid_lock_test.cc" "tests/CMakeFiles/locks_test.dir/hybrid_lock_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/hybrid_lock_test.cc.o.d"
  "/root/repo/tests/lock_exclusive_test.cc" "tests/CMakeFiles/locks_test.dir/lock_exclusive_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/lock_exclusive_test.cc.o.d"
  "/root/repo/tests/lock_optimistic_test.cc" "tests/CMakeFiles/locks_test.dir/lock_optimistic_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/lock_optimistic_test.cc.o.d"
  "/root/repo/tests/mcs_rw_lock_test.cc" "tests/CMakeFiles/locks_test.dir/mcs_rw_lock_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/mcs_rw_lock_test.cc.o.d"
  "/root/repo/tests/opticlh_test.cc" "tests/CMakeFiles/locks_test.dir/opticlh_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/opticlh_test.cc.o.d"
  "/root/repo/tests/optiql_test.cc" "tests/CMakeFiles/locks_test.dir/optiql_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/optiql_test.cc.o.d"
  "/root/repo/tests/qnode_pool_test.cc" "tests/CMakeFiles/locks_test.dir/qnode_pool_test.cc.o" "gcc" "tests/CMakeFiles/locks_test.dir/qnode_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/optiql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
