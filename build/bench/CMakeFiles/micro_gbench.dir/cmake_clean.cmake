file(REMOVE_RECURSE
  "CMakeFiles/micro_gbench.dir/micro_gbench.cc.o"
  "CMakeFiles/micro_gbench.dir/micro_gbench.cc.o.d"
  "micro_gbench"
  "micro_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
