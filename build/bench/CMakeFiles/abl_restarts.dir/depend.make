# Empty dependencies file for abl_restarts.
# This may be replaced when dependencies are built.
