file(REMOVE_RECURSE
  "CMakeFiles/abl_restarts.dir/abl_restarts.cc.o"
  "CMakeFiles/abl_restarts.dir/abl_restarts.cc.o.d"
  "abl_restarts"
  "abl_restarts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_restarts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
