# Empty compiler generated dependencies file for ext_ycsb.
# This may be replaced when dependencies are built.
