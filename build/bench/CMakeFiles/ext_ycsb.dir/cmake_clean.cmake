file(REMOVE_RECURSE
  "CMakeFiles/ext_ycsb.dir/ext_ycsb.cc.o"
  "CMakeFiles/ext_ycsb.dir/ext_ycsb.cc.o.d"
  "ext_ycsb"
  "ext_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
