file(REMOVE_RECURSE
  "CMakeFiles/fig13_art_sparse.dir/fig13_art_sparse.cc.o"
  "CMakeFiles/fig13_art_sparse.dir/fig13_art_sparse.cc.o.d"
  "fig13_art_sparse"
  "fig13_art_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_art_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
