# Empty dependencies file for fig13_art_sparse.
# This may be replaced when dependencies are built.
