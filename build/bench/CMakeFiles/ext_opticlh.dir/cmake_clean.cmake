file(REMOVE_RECURSE
  "CMakeFiles/ext_opticlh.dir/ext_opticlh.cc.o"
  "CMakeFiles/ext_opticlh.dir/ext_opticlh.cc.o.d"
  "ext_opticlh"
  "ext_opticlh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_opticlh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
