# Empty compiler generated dependencies file for ext_opticlh.
# This may be replaced when dependencies are built.
