# Empty dependencies file for fig10_index_uniform.
# This may be replaced when dependencies are built.
