file(REMOVE_RECURSE
  "CMakeFiles/fig10_index_uniform.dir/fig10_index_uniform.cc.o"
  "CMakeFiles/fig10_index_uniform.dir/fig10_index_uniform.cc.o.d"
  "fig10_index_uniform"
  "fig10_index_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_index_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
