# Empty dependencies file for ext_hash_table.
# This may be replaced when dependencies are built.
