file(REMOVE_RECURSE
  "CMakeFiles/ext_hash_table.dir/ext_hash_table.cc.o"
  "CMakeFiles/ext_hash_table.dir/ext_hash_table.cc.o.d"
  "ext_hash_table"
  "ext_hash_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hash_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
