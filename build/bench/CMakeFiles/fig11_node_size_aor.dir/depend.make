# Empty dependencies file for fig11_node_size_aor.
# This may be replaced when dependencies are built.
