file(REMOVE_RECURSE
  "CMakeFiles/fig11_node_size_aor.dir/fig11_node_size_aor.cc.o"
  "CMakeFiles/fig11_node_size_aor.dir/fig11_node_size_aor.cc.o.d"
  "fig11_node_size_aor"
  "fig11_node_size_aor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_node_size_aor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
