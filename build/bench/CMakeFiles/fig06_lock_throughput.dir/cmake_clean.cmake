file(REMOVE_RECURSE
  "CMakeFiles/fig06_lock_throughput.dir/fig06_lock_throughput.cc.o"
  "CMakeFiles/fig06_lock_throughput.dir/fig06_lock_throughput.cc.o.d"
  "fig06_lock_throughput"
  "fig06_lock_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_lock_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
