file(REMOVE_RECURSE
  "CMakeFiles/fig08_cs_length.dir/fig08_cs_length.cc.o"
  "CMakeFiles/fig08_cs_length.dir/fig08_cs_length.cc.o.d"
  "fig08_cs_length"
  "fig08_cs_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cs_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
