# Empty dependencies file for fig08_cs_length.
# This may be replaced when dependencies are built.
