file(REMOVE_RECURSE
  "CMakeFiles/fig07_mixed_ratios.dir/fig07_mixed_ratios.cc.o"
  "CMakeFiles/fig07_mixed_ratios.dir/fig07_mixed_ratios.cc.o.d"
  "fig07_mixed_ratios"
  "fig07_mixed_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mixed_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
