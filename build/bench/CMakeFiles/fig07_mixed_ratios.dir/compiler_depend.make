# Empty compiler generated dependencies file for fig07_mixed_ratios.
# This may be replaced when dependencies are built.
