# Empty dependencies file for tab01_reader_success.
# This may be replaced when dependencies are built.
