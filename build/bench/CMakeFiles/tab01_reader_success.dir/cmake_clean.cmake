file(REMOVE_RECURSE
  "CMakeFiles/tab01_reader_success.dir/tab01_reader_success.cc.o"
  "CMakeFiles/tab01_reader_success.dir/tab01_reader_success.cc.o.d"
  "tab01_reader_success"
  "tab01_reader_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_reader_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
