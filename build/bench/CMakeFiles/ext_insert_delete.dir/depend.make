# Empty dependencies file for ext_insert_delete.
# This may be replaced when dependencies are built.
