file(REMOVE_RECURSE
  "CMakeFiles/ext_insert_delete.dir/ext_insert_delete.cc.o"
  "CMakeFiles/ext_insert_delete.dir/ext_insert_delete.cc.o.d"
  "ext_insert_delete"
  "ext_insert_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_insert_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
