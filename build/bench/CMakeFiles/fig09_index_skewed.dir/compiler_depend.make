# Empty compiler generated dependencies file for fig09_index_skewed.
# This may be replaced when dependencies are built.
