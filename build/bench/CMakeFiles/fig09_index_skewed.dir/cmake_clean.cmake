file(REMOVE_RECURSE
  "CMakeFiles/fig09_index_skewed.dir/fig09_index_skewed.cc.o"
  "CMakeFiles/fig09_index_skewed.dir/fig09_index_skewed.cc.o.d"
  "fig09_index_skewed"
  "fig09_index_skewed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_index_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
