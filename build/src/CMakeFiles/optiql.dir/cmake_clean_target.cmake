file(REMOVE_RECURSE
  "liboptiql.a"
)
