file(REMOVE_RECURSE
  "CMakeFiles/optiql.dir/harness/bench_runner.cc.o"
  "CMakeFiles/optiql.dir/harness/bench_runner.cc.o.d"
  "CMakeFiles/optiql.dir/harness/table_printer.cc.o"
  "CMakeFiles/optiql.dir/harness/table_printer.cc.o.d"
  "CMakeFiles/optiql.dir/qnode/qnode_pool.cc.o"
  "CMakeFiles/optiql.dir/qnode/qnode_pool.cc.o.d"
  "CMakeFiles/optiql.dir/sync/epoch.cc.o"
  "CMakeFiles/optiql.dir/sync/epoch.cc.o.d"
  "CMakeFiles/optiql.dir/workload/trace.cc.o"
  "CMakeFiles/optiql.dir/workload/trace.cc.o.d"
  "liboptiql.a"
  "liboptiql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optiql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
