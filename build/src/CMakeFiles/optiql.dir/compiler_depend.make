# Empty compiler generated dependencies file for optiql.
# This may be replaced when dependencies are built.
