
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/bench_runner.cc" "src/CMakeFiles/optiql.dir/harness/bench_runner.cc.o" "gcc" "src/CMakeFiles/optiql.dir/harness/bench_runner.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/optiql.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/optiql.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/qnode/qnode_pool.cc" "src/CMakeFiles/optiql.dir/qnode/qnode_pool.cc.o" "gcc" "src/CMakeFiles/optiql.dir/qnode/qnode_pool.cc.o.d"
  "/root/repo/src/sync/epoch.cc" "src/CMakeFiles/optiql.dir/sync/epoch.cc.o" "gcc" "src/CMakeFiles/optiql.dir/sync/epoch.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/optiql.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/optiql.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
