file(REMOVE_RECURSE
  "CMakeFiles/trace_replay_tool.dir/trace_replay_tool.cc.o"
  "CMakeFiles/trace_replay_tool.dir/trace_replay_tool.cc.o.d"
  "trace_replay_tool"
  "trace_replay_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
