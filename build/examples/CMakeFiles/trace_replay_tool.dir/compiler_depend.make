# Empty compiler generated dependencies file for trace_replay_tool.
# This may be replaced when dependencies are built.
