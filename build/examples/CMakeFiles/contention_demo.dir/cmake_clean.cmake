file(REMOVE_RECURSE
  "CMakeFiles/contention_demo.dir/contention_demo.cc.o"
  "CMakeFiles/contention_demo.dir/contention_demo.cc.o.d"
  "contention_demo"
  "contention_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
