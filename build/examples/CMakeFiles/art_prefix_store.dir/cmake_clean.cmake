file(REMOVE_RECURSE
  "CMakeFiles/art_prefix_store.dir/art_prefix_store.cc.o"
  "CMakeFiles/art_prefix_store.dir/art_prefix_store.cc.o.d"
  "art_prefix_store"
  "art_prefix_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/art_prefix_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
