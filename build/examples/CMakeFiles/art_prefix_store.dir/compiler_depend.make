# Empty compiler generated dependencies file for art_prefix_store.
# This may be replaced when dependencies are built.
