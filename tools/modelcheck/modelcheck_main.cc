// modelcheck — exhaustive interleaving checker over the real lock headers.
//
// Usage:
//   modelcheck --list
//   modelcheck [--scenario=NAME] [--preemption-bound=N] [--budget-ms=N]
//              [--max-steps=N] [--minimize] [--trace] [--stats] [--bug=NAME]
//   modelcheck --scenario=NAME --replay=0.1.1.0 [--bug=NAME]
//
// With no --scenario, every registered scenario runs. The exit status is 0
// iff every run matched its expectation (clean pass, or a detected
// violation for *_demo scenarios / --bug runs). On a violation the tool
// prints the spec message, the replayable schedule string, and the
// interleaved operation trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/model_explorer.h"
#include "tools/modelcheck/scenarios.h"

namespace optiql::model {
namespace {

struct Cli {
  std::string scenario;
  std::string replay;
  std::string bug;
  ExploreOptions opt;
  bool list = false;
  bool minimize = false;
  bool trace = false;
  bool stats = false;
};

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

bool ApplyBug(const std::string& name) {
  if (name == "optiql_drop_obsolete_on_handover") {
    bugs().optiql_drop_obsolete_on_handover = true;
    return true;
  }
  if (name == "mcsrw_upgrade_ignores_readers") {
    bugs().mcsrw_upgrade_ignores_readers = true;
    return true;
  }
  if (name == "reshard_copy_skips_gate") {
    bugs().reshard_copy_skips_gate = true;
    return true;
  }
  return false;
}

void PrintViolation(const ScenarioInfo& info, const ExploreResult& r,
                    bool with_trace) {
  std::printf("  violation: %s\n", r.message.c_str());
  std::printf("  schedule:  %s\n", FormatSchedule(r.schedule).c_str());
  std::printf("  replay:    modelcheck --scenario=%s --replay=%s\n",
              info.name, FormatSchedule(r.schedule).c_str());
  if (with_trace && !r.trace.empty()) {
    std::printf("  trace:\n%s", r.trace.c_str());
  }
}

// Runs one scenario and returns true iff the outcome matched expectation.
bool RunScenario(const ScenarioInfo& info, const Cli& cli,
                 bool expect_violation) {
  auto scenario = info.make();
  ExploreResult r;
  if (!cli.replay.empty()) {
    r = Replay(*scenario, ParseSchedule(cli.replay));
  } else if (cli.minimize) {
    r = FindMinimal(*scenario, cli.opt);
  } else {
    r = Explore(*scenario, cli.opt);
  }
  const bool matched = r.found_violation == expect_violation;
  std::printf("%-28s %s  executions=%llu steps=%llu depth=%d%s%s\n",
              info.name,
              matched ? (r.found_violation ? "CAUGHT" : "PASS  ")
                      : (r.found_violation ? "FAIL  " : "MISSED"),
              static_cast<unsigned long long>(r.executions),
              static_cast<unsigned long long>(r.steps), r.max_depth,
              r.complete ? " (exhaustive)" : "",
              r.hit_budget ? " (budget hit)" : "");
  if (r.found_violation) PrintViolation(info, r, cli.trace || !matched);
  if (cli.stats) {
    std::printf("| %s | %d | %llu | %llu | %d | %s |\n", info.name,
                info.threads, static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.steps), r.max_depth,
                r.complete ? "yes" : "no");
  }
  return matched;
}

int Main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--list", &v)) {
      cli.list = true;
    } else if (ParseFlag(argv[i], "--scenario", &v) && v) {
      cli.scenario = v;
    } else if (ParseFlag(argv[i], "--replay", &v) && v) {
      cli.replay = v;
    } else if (ParseFlag(argv[i], "--bug", &v) && v) {
      cli.bug = v;
    } else if (ParseFlag(argv[i], "--preemption-bound", &v) && v) {
      cli.opt.preemption_bound = std::atoi(v);
    } else if (ParseFlag(argv[i], "--budget-ms", &v) && v) {
      cli.opt.budget_ms = std::atoll(v);
    } else if (ParseFlag(argv[i], "--max-steps", &v) && v) {
      cli.opt.max_steps = std::atoll(v);
    } else if (ParseFlag(argv[i], "--minimize", &v)) {
      cli.minimize = true;
    } else if (ParseFlag(argv[i], "--trace", &v)) {
      cli.trace = true;
    } else if (ParseFlag(argv[i], "--stats", &v)) {
      cli.stats = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  if (cli.list) {
    for (const ScenarioInfo& info : AllScenarios()) {
      std::printf("%-28s %d threads  %s%s\n", info.name, info.threads,
                  info.description,
                  info.expect_violation ? "  [expects violation]" : "");
    }
    return 0;
  }

  if (!cli.bug.empty() && !ApplyBug(cli.bug)) {
    std::fprintf(stderr, "unknown --bug: %s\n", cli.bug.c_str());
    return 2;
  }
  if (!cli.replay.empty() && cli.scenario.empty()) {
    std::fprintf(stderr, "--replay requires --scenario\n");
    return 2;
  }

  bool all_matched = true;
  if (!cli.scenario.empty()) {
    const ScenarioInfo* info = FindScenario(cli.scenario);
    if (info == nullptr) {
      std::fprintf(stderr, "unknown scenario: %s (try --list)\n",
                   cli.scenario.c_str());
      return 2;
    }
    // A seeded bug flips the expectation: the run should CATCH it.
    const bool expect = info->expect_violation || !cli.bug.empty();
    all_matched = RunScenario(*info, cli, expect);
  } else {
    if (cli.stats) {
      std::printf("| scenario | threads | executions | steps | depth | "
                  "exhaustive |\n|---|---|---|---|---|---|\n");
    }
    for (const ScenarioInfo& info : AllScenarios()) {
      const bool expect = info.expect_violation || !cli.bug.empty();
      all_matched &= RunScenario(info, cli, expect);
    }
  }
  return all_matched ? 0 : 1;
}

}  // namespace
}  // namespace optiql::model

int main(int argc, char** argv) { return optiql::model::Main(argc, argv); }
