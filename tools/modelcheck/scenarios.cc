#include "tools/modelcheck/scenarios.h"

#include <optional>

#include "analysis/model_spec.h"
#include "common/check.h"
#include "core/opticlh.h"
#include "core/optiql.h"
#include "locks/clh_lock.h"
#include "locks/hybrid_lock.h"
#include "locks/mcs_lock.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/ticket_lock.h"
#include "locks/tts_lock.h"

namespace optiql::model {

namespace {

QNode* Deck(int tid, int i) { return Runtime::Current()->DeckNode(tid, i); }

// ---------------------------------------------------------------------------
// Lock adapters: unify the acquire/release surface so one scenario template
// covers every family. Each adapter owns the lock, routes Lock/Unlock with
// whatever handle discipline the family needs, and asserts its end state.
// `acquisitions` lets version-carrying locks pin strict monotonicity: after
// k exclusive sections the published version must be exactly k (no lost or
// duplicated bumps anywhere in the handover chain).

struct TtsOps {
  static constexpr const char* kLabel = "TtsLock.word";
  TtsLock lock;
  void Lock(int) { lock.AcquireEx(); }
  void Unlock(int) { lock.ReleaseEx(); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "lock still held at end");
  }
};

struct TicketOps {
  static constexpr const char* kLabel = "TicketLock";
  TicketLock lock;
  void Lock(int) { lock.AcquireEx(); }
  void Unlock(int) { lock.ReleaseEx(); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "lock still held at end");
  }
};

struct McsOps {
  static constexpr const char* kLabel = "McsLock.tail";
  McsLock lock;
  void Lock(int tid) { lock.AcquireEx(Deck(tid, 0)); }
  void Unlock(int tid) { lock.ReleaseEx(Deck(tid, 0)); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "queue not empty at end");
  }
};

struct ClhOps {
  static constexpr const char* kLabel = "ClhLock.tail";
  ClhLock lock;
  QNode* handle[Runtime::kMaxThreads] = {};
  void Lock(int tid) { handle[tid] = lock.AcquireEx(); }
  void Unlock(int tid) { lock.ReleaseEx(handle[tid]); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "queue not empty at end");
  }
};

struct OptLockOps {
  static constexpr const char* kLabel = "OptLock.word";
  OptLock lock;
  void Lock(int) { lock.AcquireEx(); }
  void Unlock(int) { lock.ReleaseEx(); }
  void CheckFinal(uint64_t acquisitions) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "lock still held at end");
    OPTIQL_INVARIANT(lock.LoadWord() == acquisitions,
                     "version not strictly monotonic: k exclusive releases "
                     "must publish version k");
  }
};

struct OptiQlOps {
  static constexpr const char* kLabel = "OptiQL.word";
  OptiQL lock;
  void Lock(int tid) { lock.AcquireEx(Deck(tid, 0)); }
  void Unlock(int tid) { lock.ReleaseEx(Deck(tid, 0)); }
  void CheckFinal(uint64_t acquisitions) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "word still LOCKED at end");
    OPTIQL_INVARIANT(!lock.IsOpReadWindowOpen(),
                     "opportunistic-read window left open after the queue "
                     "drained");
    OPTIQL_INVARIANT(OptiQL::VersionOf(lock.LoadWord()) == acquisitions,
                     "version not strictly monotonic across queue handover: "
                     "k exclusive releases must publish version k");
  }
};

struct OptiQlNorOps {
  static constexpr const char* kLabel = "OptiQL-NOR.word";
  OptiQLNor lock;
  void Lock(int tid) { lock.AcquireEx(Deck(tid, 0)); }
  void Unlock(int tid) { lock.ReleaseEx(Deck(tid, 0)); }
  void CheckFinal(uint64_t acquisitions) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "word still LOCKED at end");
    OPTIQL_INVARIANT(OptiQLNor::VersionOf(lock.LoadWord()) == acquisitions,
                     "version not strictly monotonic across queue handover");
  }
};

struct OptiClhOps {
  static constexpr const char* kLabel = "OptiCLH.word";
  OptiCLH lock;
  QNode* handle[Runtime::kMaxThreads] = {};
  void Lock(int tid) { handle[tid] = lock.AcquireEx(); }
  void Unlock(int tid) { lock.ReleaseEx(handle[tid]); }
  void CheckFinal(uint64_t acquisitions) {
    OPTIQL_INVARIANT(!lock.IsLockedEx(), "word still LOCKED at end");
    OPTIQL_INVARIANT(OptiCLH::VersionOf(lock.LoadWord()) == acquisitions,
                     "version not strictly monotonic across CLH handover");
  }
};

struct McsRwWriterOps {
  static constexpr const char* kLabel = "McsRwLock.word";
  McsRwLock lock;
  void Lock(int tid) { lock.AcquireEx(Deck(tid, 0)); }
  void Unlock(int tid) { lock.ReleaseEx(Deck(tid, 0)); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.HasQueue() && lock.ActiveReaders() == 0,
                     "queue/reader state not drained at end");
  }
};

struct HybridOps {
  static constexpr const char* kLabel = "HybridLock.word";
  HybridLock lock;
  void Lock(int) { lock.AcquireEx(); }
  void Unlock(int) { lock.ReleaseEx(); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx() && lock.SharedCount() == 0,
                     "lock state not drained at end");
  }
};

struct AdaptiveOps {
  static constexpr const char* kLabel = "AdaptiveHybridLock.word";
  AdaptiveHybridLock lock;
  bool via_gate[Runtime::kMaxThreads] = {};
  void Lock(int tid) { via_gate[tid] = lock.AcquireEx(Deck(tid, 0)); }
  void Unlock(int tid) { lock.ReleaseEx(Deck(tid, 0), via_gate[tid]); }
  void CheckFinal(uint64_t) {
    OPTIQL_INVARIANT(!lock.IsLockedEx() && lock.SharedCount() == 0,
                     "lock state not drained at end");
  }
};

// Same lock preset to kQueued so 2-thread programs reach the MCS-gated
// writer path (organic promotion needs more collisions than an exhaustive
// small program produces).
struct AdaptiveQueuedOps : AdaptiveOps {
  void Init() {
    lock.ModelSetState(AdaptiveHybridLock::Mode::kQueued,
                       AdaptiveHybridLock::kPromoteQueued);
  }
};

// ---------------------------------------------------------------------------
// Scenario templates

// N threads, each running `iters` exclusive critical sections on one lock.
// Specs: CsProbe occupancy + lost-update, adapter end state (incl. version
// monotonicity), plus the runtime's built-in qnode-pool conservation check.
template <class Ops>
class MutexScenario : public Scenario {
 public:
  MutexScenario(int threads, int iters) : threads_(threads), iters_(iters) {}
  int num_threads() const override { return threads_; }

  void Reset() override {
    ops_.emplace();
    cs_.emplace();
    if constexpr (requires(Ops& o) { o.Init(); }) ops_->Init();
    Runtime::Current()->NameObject(&ops_->lock, Ops::kLabel);
  }

  void Thread(int tid) override {
    for (int i = 0; i < iters_; ++i) {
      ops_->Lock(tid);
      cs_->Critical();
      ops_->Unlock(tid);
    }
  }

  void Finale() override {
    cs_->CheckFinal();
    ops_->CheckFinal(static_cast<uint64_t>(threads_) * iters_);
  }

 private:
  const int threads_;
  const int iters_;
  std::optional<Ops> ops_;
  std::optional<CsProbe> cs_;
};

// Threads 0..n-2 are writers (publishing a fresh value per section); thread
// n-1 is an optimistic reader that snapshots, reads both data cells, and —
// only when validation succeeds — asserts the pair is consistent. With two
// writers this exercises OptiQL's opportunistic-read window: the reader can
// snapshot and validate entirely inside a queue handover.
template <class Ops>
class OptReadScenario : public Scenario {
 public:
  OptReadScenario(int threads, int iters) : threads_(threads), iters_(iters) {}
  int num_threads() const override { return threads_; }

  void Reset() override {
    ops_.emplace();
    seq_.emplace();
    Runtime::Current()->NameObject(&ops_->lock, Ops::kLabel);
  }

  void Thread(int tid) override {
    if (tid < threads_ - 1) {
      for (int i = 0; i < iters_; ++i) {
        ops_->Lock(tid);
        seq_->Publish(static_cast<uint64_t>(tid) * 100 + i + 1);
        ops_->Unlock(tid);
      }
      return;
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
      uint64_t v;
      if (!ops_->lock.AcquireSh(v)) continue;
      const uint64_t a = seq_->ReadFirst();
      const uint64_t b = seq_->ReadSecond();
      if (ops_->lock.ReleaseSh(v)) {
        SeqProbe::Check(a, b);
        return;
      }
    }
  }

  void Finale() override {
    ops_->CheckFinal(static_cast<uint64_t>(threads_ - 1) * iters_);
  }

 private:
  const int threads_;
  const int iters_;
  std::optional<Ops> ops_;
  std::optional<SeqProbe> seq_;
};

// OptiQL no-bump release: a writer that modified nothing releases with
// ReleaseExNoBump while an optimistic reader runs. The reader's validated
// pairs must be consistent as usual, and — the point of the scenario — the
// word must end bit-identical to its initial state (version 0, no bump).
class OptiQlNoBumpScenario : public Scenario {
 public:
  int num_threads() const override { return 2; }

  void Reset() override {
    lock_.emplace();
    seq_.emplace();
    Runtime::Current()->NameObject(&*lock_, "OptiQL.word");
  }

  void Thread(int tid) override {
    if (tid == 0) {
      lock_->AcquireEx(Deck(0, 0));
      lock_->ReleaseExNoBump(Deck(0, 0));
      return;
    }
    uint64_t v;
    if (!lock_->AcquireSh(v)) return;
    const uint64_t a = seq_->ReadFirst();
    const uint64_t b = seq_->ReadSecond();
    if (lock_->ReleaseSh(v)) SeqProbe::Check(a, b);
  }

  void Finale() override {
    OPTIQL_INVARIANT(lock_->LoadWord() == 0,
                     "ReleaseExNoBump changed the word: a clean critical "
                     "section must leave every overlapping snapshot valid");
  }

 private:
  std::optional<OptiQL> lock_;
  std::optional<SeqProbe> seq_;
};

// OptLock retirement: one writer retires the object; the other thread races
// an optimistic read and a try-acquire against it. Whatever interleaves,
// the final word must be retired, unlocked, and reject new readers.
class OptLockObsoleteScenario : public Scenario {
 public:
  int num_threads() const override { return 2; }

  void Reset() override {
    lock_.emplace();
    cs_.emplace();
    Runtime::Current()->NameObject(&*lock_, "OptLock.word");
  }

  void Thread(int tid) override {
    if (tid == 0) {
      lock_->AcquireEx();
      cs_->Critical();
      lock_->ReleaseExObsolete();
      return;
    }
    uint64_t v;
    if (lock_->AcquireSh(v)) (void)lock_->ReleaseSh(v);
    if (lock_->TryAcquireEx()) {
      cs_->Critical();
      lock_->ReleaseEx();
    }
  }

  void Finale() override {
    cs_->CheckFinal();
    OPTIQL_INVARIANT(lock_->IsObsolete() && !lock_->IsLockedEx(),
                     "retirement lost: final word must be unlocked and "
                     "obsolete");
    uint64_t v;
    OPTIQL_INVARIANT(!lock_->AcquireSh(v),
                     "retired lock still admits optimistic readers");
  }

 private:
  std::optional<OptLock> lock_;
  std::optional<CsProbe> cs_;
};

// The obsolete-survival property across OptiQL queue handover: thread 0
// retires the object; the other threads are plain queued writers. The
// marker is planted in thread 0's qnode version and must ride NextVersion
// through every subsequent grant until the last release publishes it on the
// word — the exact propagation the seeded drop-obsolete bug breaks.
class OptiQlHandoverObsoleteScenario : public Scenario {
 public:
  explicit OptiQlHandoverObsoleteScenario(int threads) : threads_(threads) {}
  int num_threads() const override { return threads_; }

  void Reset() override {
    lock_.emplace();
    cs_.emplace();
    Runtime::Current()->NameObject(&*lock_, "OptiQL.word");
  }

  void Thread(int tid) override {
    QNode* node = Deck(tid, 0);
    lock_->AcquireEx(node);
    cs_->Critical();
    if (tid == 0) {
      lock_->ReleaseExObsolete(node);
    } else {
      lock_->ReleaseEx(node);
    }
  }

  void Finale() override {
    cs_->CheckFinal();
    OPTIQL_INVARIANT(lock_->IsObsolete(),
                     "obsolete marker lost across queue handover: the final "
                     "word must carry the retirement");
    OPTIQL_INVARIANT(!lock_->IsLockedEx(), "word still LOCKED at end");
    uint64_t v;
    OPTIQL_INVARIANT(!lock_->AcquireSh(v),
                     "retired lock still admits optimistic readers");
  }

 private:
  const int threads_;
  std::optional<OptiQL> lock_;
  std::optional<CsProbe> cs_;
};

// MCS-RW shared/exclusive interleaving through the queue: thread 0 is a
// queued writer, the rest are queued readers. RwProbe asserts writers are
// alone and readers never overlap a writer; the finale checks reader-count
// conservation.
class McsRwScenario : public Scenario {
 public:
  explicit McsRwScenario(int threads) : threads_(threads) {}
  int num_threads() const override { return threads_; }

  void Reset() override {
    lock_.emplace();
    rw_.emplace();
    Runtime::Current()->NameObject(&*lock_, "McsRwLock.word");
  }

  void Thread(int tid) override {
    QNode* node = Deck(tid, 0);
    if (tid == 0) {
      lock_->AcquireEx(node);
      rw_->WriterEnter();
      rw_->WriterExit();
      lock_->ReleaseEx(node);
      return;
    }
    lock_->AcquireSh(node);
    rw_->ReaderEnter();
    rw_->ReaderExit();
    lock_->ReleaseSh(node);
  }

  void Finale() override {
    rw_->CheckFinal();
    OPTIQL_INVARIANT(!lock_->HasQueue() && lock_->ActiveReaders() == 0,
                     "reader count not conserved: queue drained but the "
                     "word still records state");
  }

 private:
  const int threads_;
  std::optional<McsRwLock> lock_;
  std::optional<RwProbe> rw_;
};

// MCS-RW shared→exclusive upgrade atomicity: thread 0 takes a queue-less
// shared hold and upgrades; thread 1 is a concurrent queue-less reader; the
// optional thread 2 is a queued writer. The upgrade may only succeed as
// sole holder — the seeded ignores-readers bug admits a reader/writer
// overlap that RwProbe catches.
class McsRwUpgradeScenario : public Scenario {
 public:
  explicit McsRwUpgradeScenario(int threads) : threads_(threads) {}
  int num_threads() const override { return threads_; }

  void Reset() override {
    lock_.emplace();
    rw_.emplace();
    Runtime::Current()->NameObject(&*lock_, "McsRwLock.word");
  }

  void Thread(int tid) override {
    if (tid == 0) {
      if (!lock_->TryAcquireSh()) return;
      rw_->ReaderEnter();
      rw_->ReaderExit();
      if (lock_->TryUpgradeShNoQueue(Deck(0, 0), 1)) {
        rw_->WriterEnter();
        rw_->WriterExit();
        lock_->ReleaseEx(Deck(0, 0));
      } else {
        lock_->ReleaseShNoQueue();
      }
      return;
    }
    if (tid == 1) {
      if (!lock_->TryAcquireSh()) return;
      rw_->ReaderEnter();
      rw_->ReaderExit();
      lock_->ReleaseShNoQueue();
      return;
    }
    lock_->AcquireEx(Deck(tid, 0));
    rw_->WriterEnter();
    rw_->WriterExit();
    lock_->ReleaseEx(Deck(tid, 0));
  }

  void Finale() override {
    rw_->CheckFinal();
    OPTIQL_INVARIANT(!lock_->HasQueue() && lock_->ActiveReaders() == 0,
                     "lock state not drained after upgrade scenario");
  }

 private:
  const int threads_;
  std::optional<McsRwLock> lock_;
  std::optional<RwProbe> rw_;
};

// ShardedStore's elastic-reshard double-routing window (DESIGN.md §14)
// distilled to two keys and presence bits. Thread 0 is the migration
// copier: under the per-chunk gate it copies every key the source holds
// into the target, then publishes the watermark ("span fully moved").
// Thread 1 is a writer inside the window: it removes k0 (present before
// the window opened) and inserts k1 (absent), each op double-applied to
// source AND target under a shared gate hold — the store's protocol for
// keys whose span is mid-migration. The spec is routed visibility once
// both threads finish: reads go to the target iff the watermark says the
// key moved, and at every interleaving the removed key must be
// unreachable and the inserted key reachable. The seeded
// reshard_copy_skips_gate bug lets the copier run ungated, so a remove
// can land between its source read and target write and the stale copy
// resurrects k0 — exactly the race the shared/exclusive gate exists to
// close.
class ReshardHandoverScenario : public Scenario {
 public:
  int num_threads() const override { return 2; }

  void Reset() override {
    gate_.emplace();
    src0_.emplace(1);  // k0 present in the source before the window opens.
    tgt0_.emplace(0);
    src1_.emplace(0);  // k1 arrives through a window write.
    tgt1_.emplace(0);
    moved_.emplace(0);
    Runtime::Current()->NameObject(&*gate_, "reshard.gate");
    Runtime::Current()->NameObject(&*src0_, "reshard.src[k0]");
    Runtime::Current()->NameObject(&*tgt0_, "reshard.tgt[k0]");
    Runtime::Current()->NameObject(&*src1_, "reshard.src[k1]");
    Runtime::Current()->NameObject(&*tgt1_, "reshard.tgt[k1]");
    Runtime::Current()->NameObject(&*moved_, "reshard.watermark");
  }

  void Thread(int tid) override {
    if (tid == 0) {
      // Copier: one chunk covering the whole span, exclusive on the gate.
      const bool gated = !bugs().reshard_copy_skips_gate;
      if (gated) gate_->AcquireEx();
      if (src0_->load(std::memory_order_acquire) != 0) {
        tgt0_->store(1, std::memory_order_release);
      }
      if (src1_->load(std::memory_order_acquire) != 0) {
        tgt1_->store(1, std::memory_order_release);
      }
      if (gated) gate_->ReleaseEx();
      moved_->store(1, std::memory_order_release);
      return;
    }
    // Window writer: each double-apply pairs source and target under a
    // (shared) gate hold; with one writer the TTS lock models it exactly.
    gate_->AcquireEx();
    src0_->store(0, std::memory_order_release);  // remove k0: source...
    tgt0_->store(0, std::memory_order_release);  // ...and mirror.
    gate_->ReleaseEx();
    gate_->AcquireEx();
    src1_->store(1, std::memory_order_release);  // insert k1: source...
    tgt1_->store(1, std::memory_order_release);  // ...and mirror.
    gate_->ReleaseEx();
  }

  void Finale() override {
    QuietScope quiet;
    const bool moved = moved_->load(std::memory_order_relaxed) != 0;
    const uint64_t vis0 = moved ? tgt0_->load(std::memory_order_relaxed)
                                : src0_->load(std::memory_order_relaxed);
    const uint64_t vis1 = moved ? tgt1_->load(std::memory_order_relaxed)
                                : src1_->load(std::memory_order_relaxed);
    OPTIQL_INVARIANT(vis0 == 0,
                     "removed key resurrected across the reshard handover: "
                     "a stale chunk copy re-inserted it into the target");
    OPTIQL_INVARIANT(vis1 == 1,
                     "inserted key unreachable after the reshard handover: "
                     "the double-applied write was lost");
    OPTIQL_INVARIANT(!gate_->IsLockedEx(), "chunk gate still held at end");
  }

 private:
  std::optional<TtsLock> gate_;
  std::optional<ModelAtomic<uint64_t>> src0_, tgt0_, src1_, tgt1_, moved_;
};

// Classic ABBA deadlock over two TTS locks. This scenario EXPECTS a
// violation: it proves the spin-blocking semantics turn a lost-wakeup cycle
// into a reported deadlock rather than a hang.
class DeadlockDemoScenario : public Scenario {
 public:
  int num_threads() const override { return 2; }

  void Reset() override {
    a_.emplace();
    b_.emplace();
    Runtime::Current()->NameObject(&*a_, "TtsLock.A");
    Runtime::Current()->NameObject(&*b_, "TtsLock.B");
  }

  void Thread(int tid) override {
    TtsLock& first = tid == 0 ? *a_ : *b_;
    TtsLock& second = tid == 0 ? *b_ : *a_;
    first.AcquireEx();
    second.AcquireEx();
    second.ReleaseEx();
    first.ReleaseEx();
  }

 private:
  std::optional<TtsLock> a_;
  std::optional<TtsLock> b_;
};

// ---------------------------------------------------------------------------
// Registry

template <class S, class... Args>
std::function<std::unique_ptr<Scenario>()> Make(Args... args) {
  return [args...] { return std::make_unique<S>(args...); };
}

std::vector<ScenarioInfo> BuildRegistry() {
  std::vector<ScenarioInfo> r;
  auto add = [&r](const char* name, const char* desc, int threads,
                  bool expect_violation,
                  std::function<std::unique_ptr<Scenario>()> make) {
    r.push_back({name, desc, threads, expect_violation, std::move(make)});
  };

  // Mutual exclusion, one entry per lock family at 2 threads...
  add("tts_mutex_2", "TTS lock: 2 writers, 1 section each", 2, false,
      Make<MutexScenario<TtsOps>>(2, 1));
  add("ticket_mutex_2", "ticket lock: 2 writers, 1 section each", 2, false,
      Make<MutexScenario<TicketOps>>(2, 1));
  add("mcs_mutex_2", "MCS lock: 2 writers, 1 section each", 2, false,
      Make<MutexScenario<McsOps>>(2, 1));
  add("clh_mutex_2", "CLH lock (node migration): 2 writers, 1 section each", 2,
      false, Make<MutexScenario<ClhOps>>(2, 1));
  add("optlock_mutex_2", "OptLock: 2 writers, 1 section each + version count",
      2, false, Make<MutexScenario<OptLockOps>>(2, 1));
  add("optiql_mutex_2", "OptiQL: 2 writers, 1 section each + version count", 2,
      false, Make<MutexScenario<OptiQlOps>>(2, 1));
  add("optiql_nor_mutex_2", "OptiQL-NOR: 2 writers, 1 section each", 2, false,
      Make<MutexScenario<OptiQlNorOps>>(2, 1));
  add("opticlh_mutex_2", "OptiCLH (node migration): 2 writers, 1 section each",
      2, false, Make<MutexScenario<OptiClhOps>>(2, 1));
  add("mcsrw_writers_2", "MCS-RW: 2 queued writers", 2, false,
      Make<MutexScenario<McsRwWriterOps>>(2, 1));
  add("hybrid_mutex_2", "hybrid lock: 2 writers, 1 section each", 2, false,
      Make<MutexScenario<HybridOps>>(2, 1));
  add("adaptive_mutex_2", "adaptive hybrid (optimistic mode): 2 writers", 2,
      false, Make<MutexScenario<AdaptiveOps>>(2, 1));
  add("adaptive_queued_2", "adaptive hybrid preset to kQueued: 2 writers", 2,
      false, Make<MutexScenario<AdaptiveQueuedOps>>(2, 1));

  // ...and the paper-central families at 3 threads.
  add("optlock_mutex_3", "OptLock: 3 writers", 3, false,
      Make<MutexScenario<OptLockOps>>(3, 1));
  add("optiql_mutex_3", "OptiQL: 3 writers (full handover chain)", 3, false,
      Make<MutexScenario<OptiQlOps>>(3, 1));
  add("mcsrw_writers_3", "MCS-RW: 3 queued writers", 3, false,
      Make<MutexScenario<McsRwWriterOps>>(3, 1));

  // Optimistic readers against writers (seqlock torn-read spec).
  add("optlock_optread_2", "OptLock: writer vs validating reader", 2, false,
      Make<OptReadScenario<OptLockOps>>(2, 1));
  add("optiql_optread_2", "OptiQL: writer vs validating reader", 2, false,
      Make<OptReadScenario<OptiQlOps>>(2, 1));
  add("optiql_optread_3",
      "OptiQL: 2 writers vs reader (opportunistic-read window)", 3, false,
      Make<OptReadScenario<OptiQlOps>>(3, 1));
  add("opticlh_optread_2", "OptiCLH: writer vs validating reader", 2, false,
      Make<OptReadScenario<OptiClhOps>>(2, 1));
  add("hybrid_optread_2", "hybrid: writer vs validating reader", 2, false,
      Make<OptReadScenario<HybridOps>>(2, 1));
  add("optiql_nobump_2", "OptiQL ReleaseExNoBump leaves snapshots valid", 2,
      false, Make<OptiQlNoBumpScenario>());

  // Retirement / obsolete-marker survival.
  add("optlock_obsolete_2", "OptLock retirement vs racing reader+writer", 2,
      false, Make<OptLockObsoleteScenario>());
  add("optiql_handover_obsolete_2",
      "OptiQL obsolete marker survives one handover", 2, false,
      Make<OptiQlHandoverObsoleteScenario>(2));
  add("optiql_handover_obsolete_3",
      "OptiQL obsolete marker survives a 2-deep handover chain", 3, false,
      Make<OptiQlHandoverObsoleteScenario>(3));

  // Reader/writer and upgrade protocols.
  add("mcsrw_rw_2", "MCS-RW: queued writer vs queued reader", 2, false,
      Make<McsRwScenario>(2));
  add("mcsrw_rw_3", "MCS-RW: queued writer vs 2 queued readers", 3, false,
      Make<McsRwScenario>(3));
  add("mcsrw_upgrade_2", "MCS-RW: sole-holder upgrade vs racing reader", 2,
      false, Make<McsRwUpgradeScenario>(2));
  add("mcsrw_upgrade_3",
      "MCS-RW: upgrade vs racing reader vs queued writer", 3, false,
      Make<McsRwUpgradeScenario>(3));

  // Elastic-sharding handover window.
  add("reshard_handover_2",
      "reshard double-routing window: chunk copier vs double-apply writer",
      2, false, Make<ReshardHandoverScenario>());

  // Negative control: the checker must DETECT this one.
  add("deadlock_demo_2", "ABBA deadlock over two TTS locks (expected hit)",
      2, true, Make<DeadlockDemoScenario>());
  return r;
}

}  // namespace

const std::vector<ScenarioInfo>& AllScenarios() {
  static const std::vector<ScenarioInfo> registry = BuildRegistry();
  return registry;
}

const ScenarioInfo* FindScenario(const std::string& name) {
  for (const ScenarioInfo& info : AllScenarios()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

}  // namespace optiql::model
