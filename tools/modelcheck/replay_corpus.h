// Checked-in counterexample corpus: minimized schedules (produced by
// FindMinimal, fewest preemptions first) that catch each seeded protocol
// bug. modelcheck_test replays every entry two ways — with the bug enabled
// the schedule must still reach the violation, and with the bug disabled
// the same schedule must pass clean — so a future protocol change that
// re-introduces one of these races fails deterministically, without
// re-running the full exploration.
//
// To regenerate an entry:
//   modelcheck --scenario=<name> --bug=<bug> --minimize --trace
#ifndef OPTIQL_TOOLS_MODELCHECK_REPLAY_CORPUS_H_
#define OPTIQL_TOOLS_MODELCHECK_REPLAY_CORPUS_H_

namespace optiql::model {

struct ReplayCase {
  const char* scenario;  // registry name (scenarios.h)
  const char* bug;       // SeededBugs field name
  const char* schedule;  // minimized thread-id schedule ("0.1.1.0...")
  const char* expect;    // substring of the violation message
};

// Filled in from real FindMinimal output; see modelcheck_test.cc for the
// enable/disable replay harness.
inline constexpr ReplayCase kReplayCorpus[] = {
    // Retiring holder hands the lock over; the grant drops kObsoleteBit.
    {"optiql_handover_obsolete_2", "optiql_drop_obsolete_on_handover",
     "0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.1.1.0.0.0.0.1.1.1.1.1.1.1."
     "1.1.1.1",
     "obsolete"},
    // Same drop with a second successor in the queue behind the handover.
    {"optiql_handover_obsolete_3", "optiql_drop_obsolete_on_handover",
     "0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.1.1.1.1.1.2.2.2.2.2.2.2."
     "2.2.1.1.1.1.2.2.2.2.2.2.2.2.2.2.2",
     "obsolete"},
    // Upgrade CAS ignores concurrent readers; the count later underflows.
    {"mcsrw_upgrade_2", "mcsrw_upgrade_ignores_readers",
     "0.0.0.1.1.1.1.0.0.0.0.0.0.0.0.0.0.1", "reader"},
    // Ungated chunk copier reads the source, a double-applied remove lands,
    // then the stale copy resurrects the key in the target shard.
    {"reshard_handover_2", "reshard_copy_skips_gate",
     "0.1.1.1.1.1.1.1.1.1.1.0.0.0.0", "resurrected"},
};

}  // namespace optiql::model

#endif  // OPTIQL_TOOLS_MODELCHECK_REPLAY_CORPUS_H_
