// Scenario registry for the model checker (DESIGN.md §13): small fixed
// thread programs over the real lock headers, checked against the spec
// probes in src/analysis/model_spec.h. Names are stable — they appear in
// ctest output, EXPERIMENTS.md state-count tables, and checked-in replay
// schedules (tools/modelcheck/replay_corpus.h).
#ifndef OPTIQL_TOOLS_MODELCHECK_SCENARIOS_H_
#define OPTIQL_TOOLS_MODELCHECK_SCENARIOS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/model_runtime.h"

namespace optiql::model {

struct ScenarioInfo {
  const char* name;
  const char* description;
  int threads;
  // True only for *_demo entries that exist to prove the checker detects a
  // violation; every other scenario must pass a full exhaustive run.
  bool expect_violation;
  std::function<std::unique_ptr<Scenario>()> make;
};

const std::vector<ScenarioInfo>& AllScenarios();
const ScenarioInfo* FindScenario(const std::string& name);

}  // namespace optiql::model

#endif  // OPTIQL_TOOLS_MODELCHECK_SCENARIOS_H_
