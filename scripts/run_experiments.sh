#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension benchmarks.
#
# Usage:
#   scripts/run_experiments.sh [quick|default|full] [output-file]
#
#   quick   — smoke parameters (~1 minute)
#   default — balanced parameters (a few minutes)
#   full    — paper-scale durations and record counts (hours on small boxes)
set -euo pipefail

mode="${1:-default}"
out="${2:-bench_output.txt}"
build_dir="${BUILD_DIR:-build}"

case "$mode" in
  quick)
    export OPTIQL_BENCH_DURATION_MS=50
    export OPTIQL_BENCH_RECORDS=20000
    ;;
  default)
    export OPTIQL_BENCH_DURATION_MS=150
    export OPTIQL_BENCH_RECORDS=100000
    ;;
  full)
    export OPTIQL_BENCH_DURATION_MS=1000
    export OPTIQL_BENCH_RECORDS=10000000
    ;;
  *)
    echo "unknown mode: $mode (expected quick|default|full)" >&2
    exit 1
    ;;
esac

if [ ! -d "$build_dir/bench" ]; then
  echo "build first: cmake -B $build_dir -G Ninja && cmake --build $build_dir" >&2
  exit 1
fi

{
  echo "# optiql experiment run: mode=$mode $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "# host: $(uname -srm), $(nproc) hardware threads"
  for bench in "$build_dir"/bench/*; do
    [ -x "$bench" ] && [ -f "$bench" ] || continue
    echo
    echo "===== RUN: $(basename "$bench") ====="
    "$bench"
  done
} | tee "$out"
