#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extension benchmarks.
#
# Usage:
#   scripts/run_experiments.sh [quick|default|full] [output-file]
#
#   quick   — smoke parameters (~1 minute)
#   default — balanced parameters (a few minutes)
#   full    — paper-scale durations and record counts (hours on small boxes)
set -euo pipefail

mode="${1:-default}"
out="${2:-bench_output.txt}"
build_dir="${BUILD_DIR:-build}"

case "$mode" in
  quick)
    export OPTIQL_BENCH_DURATION_MS=50
    export OPTIQL_BENCH_RECORDS=20000
    ;;
  default)
    export OPTIQL_BENCH_DURATION_MS=150
    export OPTIQL_BENCH_RECORDS=100000
    ;;
  full)
    export OPTIQL_BENCH_DURATION_MS=1000
    export OPTIQL_BENCH_RECORDS=10000000
    ;;
  *)
    echo "unknown mode: $mode (expected quick|default|full)" >&2
    exit 1
    ;;
esac

if [ ! -d "$build_dir/bench" ]; then
  echo "build first: cmake -B $build_dir -G Ninja && cmake --build $build_dir" >&2
  exit 1
fi

# One row per benchmark: "binary[ args...]". Rows with --json also
# regenerate that bench's BENCH_<name>.json next to the text output, so a
# single run of this script refreshes every table, figure, and JSON record
# the repo quotes. Keep this list in sync with bench/CMakeLists.txt; any
# built binary missing from it is run flagless with a warning below.
benches=(
  "fig01_motivation"
  "fig06_lock_throughput"
  "fig07_mixed_ratios"
  "fig08_cs_length"
  "fig09_index_skewed"
  "fig10_index_uniform"
  "fig11_node_size_aor"
  "fig12_tail_latency"
  "fig13_art_sparse"
  "tab01_reader_success"
  "abl_fairness"
  "abl_restarts --json"
  "micro_search_kernel --json"
  "micro_gbench"
  "ext_insert_delete"
  "ext_hash_table"
  "ext_opticlh"
  "ext_ycsb"
  "ext_sharded --json"
  "ext_adaptive --json"
  "ext_txn --json"
  "ext_batch --json"
  "ext_reshard --json"
)

{
  echo "# optiql experiment run: mode=$mode $(date -u +%Y-%m-%dT%H:%M:%SZ)"
  echo "# host: $(uname -srm), $(nproc) hardware threads"
  listed=" "
  for row in "${benches[@]}"; do
    read -r name args <<< "$row"
    listed="$listed$name "
    bin="$build_dir/bench/$name"
    if [ ! -x "$bin" ]; then
      echo "WARNING: $bin not built, skipping" >&2
      continue
    fi
    echo
    echo "===== RUN: $name ${args:-} ====="
    # shellcheck disable=SC2086
    "$bin" ${args:-}
  done
  # Safety net: benches added to CMake but not to the table above still
  # run (flagless), and the warning flags the missing row.
  for bench in "$build_dir"/bench/*; do
    [ -x "$bench" ] && [ -f "$bench" ] || continue
    name="$(basename "$bench")"
    case "$listed" in *" $name "*) continue ;; esac
    echo "WARNING: $name has no row in scripts/run_experiments.sh" >&2
    echo
    echo "===== RUN: $name ====="
    "$bench"
  done
} | tee "$out"
