#!/usr/bin/env python3
"""Protocol linter for the optimistic-concurrency contract.

Thread Safety Analysis covers the pessimistic locks (see
src/common/annotations.h) and TSan must exclude the optimistic suites
(their reads race by design), so the rules that actually make optimistic
locking safe are enforced by nothing off the shelf. This linter checks
them:

  R1 validate-on-exit   Every optimistic read section (AcquireSh /
                        ReadLockOrRestart / ReadLockNode) must reach a
                        validation (ReleaseSh / Validate / TryUpgrade)
                        before any `return` and before the function ends.
                        Restart edges (`continue`, `break`, `goto`) are
                        exempt: abandoning a snapshot is always safe,
                        *using* it without validation is not.
  R2 no-store-in-read-section
                        No stores through pointers (`p->field = ...`,
                        `p->n++`, ...) while an optimistic read section is
                        open: an unvalidated snapshot must never be used
                        to mutate shared state.
  R3 raw-delete         Index nodes may only be freed by the epoch layer
                        (inside a Retire(...) deleter) or by teardown /
                        deleter-named functions (~X, Free*, Delete*,
                        Destroy*). A bare `delete` on a reachable node is
                        a use-after-free for concurrent optimistic
                        readers.
  R4 epoch-guard        Public index operations (Insert/Update/Upsert/
                        Remove/Lookup/Scan/Get/Put/Erase) must run under
                        an EpochGuard, directly or via a same-file callee,
                        or take one from the caller — otherwise a
                        concurrent Retire can reclaim a node mid-descent.
  R5 version-dataflow   The version variable handed to a validation
                        (ReleaseSh / Validate / TryUpgrade) must be one a
                        matching acquire (AcquireSh / ReadLockOrRestart /
                        ReadLockNode) actually filled, or a plain copy of
                        one (`pv = v;` descent handover). Validating a
                        never-filled or stale word compares against
                        garbage and silently disables the protocol.
                        Compound-expression arguments are conservatively
                        skipped; only plain identifiers are checked.
  R6 occ-write-before-validate
                        The txn-layer analogue of R1/R2: between a
                        `StableVersion()` snapshot and its
                        `ValidateVersion()` check, nothing may be
                        published — no `Install()` and no atomic
                        `.store()`. OCC's correctness rests on reads
                        being validated *before* their values feed a
                        write; a write issued mid-section is a dirty
                        write under an unvalidated snapshot.
  R7 blocking-acquire-in-read-section
                        No blocking/pessimistic acquire (AcquireEx /
                        AcquireExDeferred / AcquireShPessimistic) while an
                        optimistic read section is open. Queueing behind a
                        writer that is about to bump the very version the
                        open snapshot validates against guarantees a
                        restart at best; with a lock order it is a
                        deadlock seed (the model checker's ABBA demo is
                        exactly this shape). Validate or abandon the
                        snapshot first, then block.

The TxnOps contract names (StableVersion / ValidateVersion) are matched
in any spelling — bare, `Ops::`-qualified, or `TxnOps<Lock>::`-qualified
— since the names are unique to the contract. The coupling-facade names
(AcquireSh et al.) stay member-call-only: their qualified spellings are
the pessimistic facade, which TSA covers.

Engines:
  --engine=lexical (default) needs only the Python stdlib: functions are
      extracted by brace matching over comment/string-stripped text and
      the rules run over a token stream. Deterministic, runs anywhere.
  --engine=clang uses libclang (python `clang.cindex`) over
      compile_commands.json for function extents and token streams, then
      feeds the *same* rule state machine. Opt-in: the container image
      this repo is developed in has no libclang; CI pins --engine=lexical
      for determinism.

Escape hatches (each needs a reason after the colon):
  // LINT-ALLOW(rule-id): reason        suppresses on this or next line
  // LINT-ALLOW-FILE(rule-id): reason   suppresses for the whole file
  // LINT-TODO(rule-id): reason         suppresses AND is reported as an
                                        open item (ROADMAP fodder)

Exit status: 0 clean, 1 findings, 2 bad invocation.
"""

import argparse
import os
import re
import sys

RULES = ("validate-on-exit", "no-store-in-read-section", "raw-delete",
         "epoch-guard", "version-dataflow", "occ-write-before-validate",
         "blocking-acquire-in-read-section")

# Lock-implementation layer: the protocol primitives themselves. Their
# bodies *are* the open/validate operations, so the usage rules do not
# apply (they are covered by the checked-invariant build instead).
TRUSTED_PATHS = (
    "src/locks/",
    "src/qnode/",
    "src/sync/",
    "src/core/optiql.h",
    "src/core/opticlh.h",
)

# Protocol-primitive wrappers: functions whose body is one leg of the
# protocol (the open or the close), so R1/R2 see an unbalanced section by
# construction. Kept deliberately narrow.
HELPER_NAME_RE = re.compile(
    r"^(ReadLock\w*|Validate\w*|ReleaseSh|AcquireSh|TryUpgrade\w*"
    r"|ReleaseNode|LockOf|UnlockOf|ReadCritical)$")

# R1/R2 section openers and closers. `AcquireSh` is only an opener as a
# member call (`x.AcquireSh(` / `x->AcquireSh(`): `POps::AcquireSh(lock,
# slot)` is the pessimistic coupling facade, checked by TSA instead.
OPENER_RE = re.compile(
    r"(?<![:\w])(?:ReadLockOrRestart|ReadLockNode)\s*\(|"
    r"(?:\.|->)AcquireSh\s*\(")
CLOSER_RE = re.compile(
    r"(?<![:\w])(?:Validate\w*)\s*\(|"
    r"(?:\.|->)(?:ReleaseSh|TryUpgrade\w*)\s*\(")

# R1/R6: the TxnOps OCC read section. `StableVersion` / `ValidateVersion`
# exist only as the contract's names, so any spelling — bare or
# `::`-qualified (`Ops::StableVersion(`, `TxnOps<L>::ValidateVersion(`) —
# opens/closes a section. (`\b` matches after `:` and `>`.)
OCC_OPENER_RE = re.compile(r"\bStableVersion\s*\(")
OCC_CLOSER_RE = re.compile(r"\bValidateVersion\s*\(")

# R6: a publication issued while an OCC read section is open. `Install`
# is the txn write-guard's publish; `.store(` is a raw atomic publish.
# Loads are fine — OCC reads under the snapshot by design.
OCC_WRITE_RE = re.compile(r"(?:\.|->)\s*(?:Install\w*|store)\s*\(")

# R7: a blocking/pessimistic acquire, member-call form only (qualified
# spellings like `LeafOps::LockEx(...)` are the coupling facade, covered
# by TSA). Longer names first so `AcquireExDeferred` is not half-matched.
BLOCKING_ACQUIRE_RE = re.compile(
    r"(?:\.|->)(?:AcquireExDeferred|AcquireShPessimistic|AcquireEx)\s*\(")

# R2: a store through a pointer dereference. Excludes `==`, `<=` etc. via
# the lookahead; member stores on locals (`result.found = ...`) use `.`
# and are deliberately not matched.
DEREF_STORE_RE = re.compile(
    r"->\s*\w+\s*(=(?![=])|\+\+|--|\+=|-=|\|=|&=|\^=)")

# R3: freeing calls. `delete`/`delete[]` expressions plus the repo's node
# deleters. `Retire`/`RetireNode`/`RetireLeaf` are the *sanctioned* path.
FREE_CALL_RE = re.compile(
    r"(?<![:\w.>])delete(?:\s*\[\s*\])?\s|"
    r"(?<![.\w>])(?:DeleteNode|FreeLeaf|FreeSubtree)\s*\(")
DELETER_NAME_RE = re.compile(r"^(~\w+|Free\w*|Delete\w*|Destroy\w*|Clear\w*)$")
RETIRE_CALL_RE = re.compile(r"(?<![:\w])Retire\w*\s*(<[^<>]*>)?\s*\(")

# R5: acquires that *fill* a version variable (capture group = the
# variable) and validations that *use* one. Each use's argument must be a
# plain identifier that some fill produced — directly or through `dst =
# src;` copies. Arguments with nested calls or member accesses fail the
# identifier shape and are skipped (conservative: R5 never guesses).
VERSION_FILL_RES = (
    re.compile(r"(?:\.|->)AcquireSh\s*\(\s*&?\s*(\w+)\s*\)"),
    re.compile(r"(?<![:\w])(?:ReadLockOrRestart|ReadLockNode)\s*"
               r"\((?:[^()]|\([^()]*\))*?,\s*&?\s*(\w+)\s*\)"),
    re.compile(r"\bStableVersion\s*"
               r"\((?:[^()]|\([^()]*\))*?,\s*&?\s*(\w+)\s*\)"),
)
VERSION_USE_RES = (
    re.compile(r"(?:\.|->)ReleaseSh\s*\(\s*(\w+)\s*\)"),
    re.compile(r"(?:\.|->)TryUpgrade\w*\s*\(\s*(\w+)\s*[,)]"),
    re.compile(r"(?<![:\w.>])Validate\w*\s*"
               r"\((?:[^()]|\([^()]*\))*?,\s*(\w+)\s*\)"),
    re.compile(r"\bValidateVersion\s*"
               r"\((?:[^()]|\([^()]*\))*?,\s*(\w+)\s*\)"),
)
# One `dst = src` per statement chunk, anchored at the chunk's end so
# initializers (`uint64_t pv = v`) and plain assignments both match while
# calls and arithmetic (which end in `)` or an operator) do not.
VERSION_ASSIGN_RE = re.compile(r"(\w+)\s*=(?![=])\s*(\w+)\s*$")

# R4: public index entry points that must be epoch-protected.
PUBLIC_OP_RE = re.compile(
    r"^(Insert|Update|Upsert|Remove|Lookup|Scan|Get|Put|Erase)$")
R4_PATH_RE = re.compile(
    r"(src/index/[^/]+|lint_fixtures/[^/]*index[^/]*)\.(h|cc)$")

CONTROL_KEYWORDS = frozenset(
    ("if", "for", "while", "switch", "catch", "return", "sizeof",
     "alignof", "decltype", "static_assert", "else", "do", "new"))
NON_FUNC_HEAD_RE = re.compile(
    r"\b(class|struct|union|enum|namespace)\b(?!.*\boperator\b)")


class Finding:
    def __init__(self, path, line, rule, message, todo=False):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.todo = todo

    def __str__(self):
        kind = "todo" if self.todo else "error"
        return "%s:%d: %s [%s]: %s" % (self.path, self.line, kind,
                                       self.rule, self.message)


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c == '"' or c == "'":
            # R"(...)" raw strings.
            if c == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:i + 18])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i)
                    j = n if j < 0 else j + len(close)
                    out.append(re.sub(r"[^\n]", " ", text[i:j]))
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append('"' + " " * (j - i - 2) + '"' if j - i >= 2 else " ")
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Allowances:
    """LINT-ALLOW / LINT-ALLOW-FILE / LINT-TODO directives of one file."""

    LINE_RE = re.compile(r"LINT-(ALLOW|TODO)\(([\w-]+)\)\s*:\s*(\S.*)")
    FILE_RE = re.compile(r"LINT-ALLOW-FILE\(([\w-]+)\)\s*:\s*(\S.*)")

    def __init__(self, raw_text):
        self.file_rules = set()
        self.line_rules = set()  # (line, rule)
        self.todos = []  # (line, rule, reason)
        lines = raw_text.splitlines()
        for lineno, line in enumerate(lines, 1):
            m = self.FILE_RE.search(line)
            if m:
                self.file_rules.add(m.group(1))
                continue
            m = self.LINE_RE.search(line)
            if m:
                kind, rule, reason = m.groups()
                self.line_rules.add((lineno, rule))
                # A directive on a pure comment line covers the first
                # following code line, so multi-line reason comments work.
                target = lineno
                while target < len(lines) and \
                        lines[target - 1].lstrip().startswith("//"):
                    target += 1
                self.line_rules.add((target, rule))
                if kind == "TODO":
                    self.todos.append((lineno, rule, reason.strip()))

    def suppressed(self, line, rule):
        if rule in self.file_rules:
            return True
        # A directive suppresses its own line, its target code line, and
        # the line after the directive.
        return ((line, rule) in self.line_rules or
                (line - 1, rule) in self.line_rules)


class Function:
    """One extracted function: name, header+body text, line offsets."""

    def __init__(self, name, head, body, head_line, body_line):
        self.name = name
        self.head = head
        self.body = body          # Comment/string-stripped, braces included.
        self.head_line = head_line
        self.body_line = body_line  # Line of the opening brace.

    def body_line_of(self, offset):
        return self.body_line + self.body.count("\n", 0, offset)


def extract_functions(stripped):
    """Finds function definitions by brace matching over stripped text.

    Walks the text tracking a context stack (namespace / class / function /
    plain block). A `{` whose head (text since the last ; { or } at the
    same level) contains a parenthesized parameter list and is not a
    class/namespace/control head starts a function — only when the current
    context is file, namespace, or class scope, so lambdas and compound
    statements inside bodies are never treated as functions.
    """
    functions = []
    stack = []  # Entries: ("ns"|"class"|"func"|"block", start_offset)
    head_start = 0
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "{":
            head = stripped[head_start:i]
            in_code = all(k in ("ns", "class") for k, _ in stack)
            kind = "block"
            name = None
            if in_code:
                if NON_FUNC_HEAD_RE.search(head) and "(" not in head.split(
                        "(")[0].rsplit("operator", 1)[-1] and re.search(
                            r"\b(class|struct|union|enum)\b", head):
                    kind = "class"
                elif re.search(r"\bnamespace\b", head):
                    kind = "ns"
                else:
                    m = None
                    for m in re.finditer(r"(~?\w[\w:]*|operator\s*[^\s(]+)\s*\(",
                                         head):
                        pass  # Last match: the parameter list, not a macro.
                    if m:
                        name = m.group(1).split("::")[-1].strip()
                        if name not in CONTROL_KEYWORDS and "=" not in \
                                head.split(m.group(1))[0].split("\n")[-1]:
                            kind = "func"
            if kind == "func":
                # Attribute macros like OPTIQL_ACQUIRE() follow the param
                # list; the *first* plausible name before a '(' wins if the
                # last one is a known macro.
                m2 = re.search(r"(~?\w+)\s*\([^()]*(\([^()]*\))?[^()]*\)\s*"
                               r"(const|noexcept|override|final|OPTIQL_\w+"
                               r"|\s|\([^()]*\)|->\s*[\w:<>,*&\s]+|:\s*[^{}]*)*$",
                               head)
                if m2 and m2.group(1) not in CONTROL_KEYWORDS:
                    name = m2.group(1)
                head_line = stripped.count("\n", 0, head_start) + 1
                body_line = stripped.count("\n", 0, i) + 1
                functions.append((name, head, i, head_line, body_line))
            stack.append((kind, i))
            head_start = i + 1
        elif c == "}":
            if stack:
                kind, start = stack.pop()
                if kind == "func":
                    for idx in range(len(functions) - 1, -1, -1):
                        if functions[idx][2] == start:
                            nm, hd, st, hl, bl = functions[idx]
                            functions[idx] = Function(
                                nm, hd, stripped[st:i + 1], hl, bl)
                            break
            head_start = i + 1
        elif c == ";":
            if not stack or stack[-1][0] in ("ns", "class"):
                head_start = i + 1
        i += 1
    return [f for f in functions if isinstance(f, Function)]


def iter_statements(body):
    """Yields (offset, text) per statement-ish chunk of a function body.

    Chunks are split on ; { and } so control flow reads linearly; enough
    granularity for the binary open/closed section model.
    """
    start = 0
    for i, c in enumerate(body):
        if c in ";{}":
            if body[start:i].strip():
                yield start, body[start:i]
            start = i + 1
    if body[start:].strip():
        yield start, body[start:]


def check_function_rules(path, func, allow, findings):
    """R1 + R2 + R6 + R7 over one function body (binary open/closed
    sections).

    R6 only applies to sections opened by `StableVersion` (the OCC leg of
    the TxnOps contract); coupling-opened sections (ReadLockOrRestart /
    AcquireSh) keep the classic R1/R2 treatment.
    """
    if HELPER_NAME_RE.match(func.name or ""):
        return
    open_section = False
    occ_section = False  # Current open section was opened by StableVersion.
    open_line = None
    for off, stmt in iter_statements(func.body):
        line = func.body_line_of(off)
        occ_open = OCC_OPENER_RE.search(stmt)
        has_open = OPENER_RE.search(stmt) or occ_open
        has_close = CLOSER_RE.search(stmt) or OCC_CLOSER_RE.search(stmt)
        is_return = re.search(r"(?<!\w)return(?!\w)", stmt)
        # A return in the same statement as an opener is the failure leg of
        # a bail block (`if (!x.AcquireSh(v)) return false;`): the snapshot
        # is abandoned, not used, so no validation is required.
        if is_return and open_section and not has_close and not has_open:
            rline = func.body_line_of(off + is_return.start())
            if not allow.suppressed(rline, "validate-on-exit"):
                findings.append(Finding(
                    path, rline, "validate-on-exit",
                    "return while the optimistic read section opened at "
                    "line %d is unvalidated (no ReleaseSh/Validate(Version)/"
                    "TryUpgrade on this exit path)" % open_line))
            open_section = False  # One finding per section.
        if open_section:
            m = DEREF_STORE_RE.search(stmt)
            if m:
                store_line = func.body_line_of(off + m.start())
                if not allow.suppressed(store_line,
                                        "no-store-in-read-section"):
                    findings.append(Finding(
                        path, store_line, "no-store-in-read-section",
                        "store through a pointer inside the optimistic "
                        "read section opened at line %d (writes require "
                        "an upgrade or exclusive lock)" % open_line))
            m = BLOCKING_ACQUIRE_RE.search(stmt)
            if m:
                acq_line = func.body_line_of(off + m.start())
                if not allow.suppressed(acq_line,
                                        "blocking-acquire-in-read-section"):
                    findings.append(Finding(
                        path, acq_line, "blocking-acquire-in-read-section",
                        "blocking acquire inside the optimistic read "
                        "section opened at line %d: queueing under an "
                        "unvalidated snapshot is a restart hazard and a "
                        "deadlock seed — validate or abandon the snapshot "
                        "first (TryUpgrade for the same lock)" % open_line))
            if occ_section:
                m = OCC_WRITE_RE.search(stmt)
                if m:
                    write_line = func.body_line_of(off + m.start())
                    if not allow.suppressed(write_line,
                                            "occ-write-before-validate"):
                        findings.append(Finding(
                            path, write_line, "occ-write-before-validate",
                            "write published inside the OCC read section "
                            "opened at line %d before ValidateVersion() "
                            "(install only after the snapshot validates, "
                            "under an exclusive lock)" % open_line))
        if has_close:
            open_section = False
            occ_section = False
        if has_open:
            open_section = True
            occ_section = occ_open is not None
            open_line = func.body_line_of(off + has_open.start())
    if open_section:
        line = func.body_line_of(len(func.body) - 1)
        if not allow.suppressed(line, "validate-on-exit"):
            findings.append(Finding(
                path, line, "validate-on-exit",
                "function ends with the optimistic read section opened at "
                "line %d still unvalidated" % open_line))


def check_version_dataflow(path, func, allow, findings):
    """R5 over one function body (flow-insensitive fill/copy tracking).

    The tracked set starts as every word in the function head — a version
    passed in as a parameter was filled by the caller's acquire — plus
    every variable an in-body acquire fills, then closes over `dst = src`
    copies to a fixpoint (the descent handover idiom `pv = v; v = cv;`).
    A validation whose argument is a plain identifier outside that set is
    validating a word no acquire ever produced.
    """
    if HELPER_NAME_RE.match(func.name or ""):
        return
    uses = []
    for use_re in VERSION_USE_RES:
        for m in use_re.finditer(func.body):
            uses.append((m.start(1), m.group(1)))
    if not uses:
        return
    tracked = set(re.findall(r"\w+", func.head))
    for fill_re in VERSION_FILL_RES:
        for m in fill_re.finditer(func.body):
            tracked.add(m.group(1))
    assigns = []
    for _off, stmt in iter_statements(func.body):
        m = VERSION_ASSIGN_RE.search(stmt)
        if not m:
            continue
        # Member stores (`p->v = x`) and member sources (`x = p.v`) are
        # not plain-identifier copies; skip both sides.
        if m.start(1) > 0 and stmt[m.start(1) - 1] in ".>:":
            continue
        if stmt[m.start(2) - 1] in ".>:&":
            continue
        assigns.append((m.group(1), m.group(2)))
    changed = True
    while changed:
        changed = False
        for dst, src in assigns:
            if src in tracked and dst not in tracked:
                tracked.add(dst)
                changed = True
    for off, var in uses:
        if var in tracked or var[0].isdigit():
            continue
        line = func.body_line_of(off)
        if allow.suppressed(line, "version-dataflow"):
            continue
        findings.append(Finding(
            path, line, "version-dataflow",
            "version variable '%s' passed to a validation was never "
            "filled by a matching acquire (AcquireSh/ReadLockOrRestart/"
            "ReadLockNode) nor copied from one" % var))


def retire_spans(body):
    """Extents of Retire(...) argument lists (deleters inside are legal)."""
    spans = []
    for m in RETIRE_CALL_RE.finditer(body):
        depth = 0
        for i in range(m.end() - 1, len(body)):
            if body[i] == "(":
                depth += 1
            elif body[i] == ")":
                depth -= 1
                if depth == 0:
                    spans.append((m.start(), i + 1))
                    break
    return spans


def check_raw_delete(path, func, allow, findings):
    """R3 over one function body."""
    if DELETER_NAME_RE.match(func.name or ""):
        return
    spans = retire_spans(func.body)
    for m in FREE_CALL_RE.finditer(func.body):
        if any(a <= m.start() < b for a, b in spans):
            continue
        line = func.body_line_of(m.start())
        if allow.suppressed(line, "raw-delete"):
            continue
        findings.append(Finding(
            path, line, "raw-delete",
            "raw free of an index node outside the epoch layer (use "
            "EpochManager::Retire, or a ~dtor/Free*/Delete*/Destroy* "
            "teardown helper)"))


def check_epoch_guard(path, functions, allow, findings):
    """R4 over one file: public ops must reach an EpochGuard."""
    if not R4_PATH_RE.search(path.replace(os.sep, "/")):
        return
    by_name = {}
    for f in functions:
        by_name.setdefault(f.name, []).append(f)

    guarded_cache = {}

    def reaches_guard(name, depth=0):
        if depth > 6 or name not in by_name:
            return False
        if name in guarded_cache:
            return guarded_cache[name]
        guarded_cache[name] = False  # Cycle guard.
        for f in by_name[name]:
            text = f.head + f.body
            if "EpochGuard" in text:
                guarded_cache[name] = True
                return True
        for f in by_name[name]:
            for callee in set(re.findall(r"(?<![:.\w>])(\w+)\s*\(", f.body)):
                if callee != name and callee in by_name and \
                        reaches_guard(callee, depth + 1):
                    guarded_cache[name] = True
                    return True
        return guarded_cache[name]

    for f in functions:
        if not f.name or not PUBLIC_OP_RE.match(f.name):
            continue
        if allow.suppressed(f.head_line, "epoch-guard") or \
                allow.suppressed(f.body_line, "epoch-guard"):
            continue
        if not reaches_guard(f.name):
            findings.append(Finding(
                path, f.body_line, "epoch-guard",
                "public index operation %s() never reaches an EpochGuard "
                "(directly, via a same-file callee, or as a parameter); a "
                "concurrent Retire may reclaim nodes mid-descent"
                % f.name))


def lint_text(path, raw_text):
    """Runs all rules over one file's text; returns (findings, todos)."""
    allow = Allowances(raw_text)
    findings = []
    rel = path.replace(os.sep, "/")
    trusted = any(("/" + rel).find("/" + t) >= 0 for t in TRUSTED_PATHS)
    if not trusted:
        stripped = strip_comments_and_strings(raw_text)
        functions = extract_functions(stripped)
        for func in functions:
            check_function_rules(path, func, allow, findings)
            check_raw_delete(path, func, allow, findings)
            check_version_dataflow(path, func, allow, findings)
        check_epoch_guard(path, functions, allow, findings)
    todos = [Finding(path, ln, rule, reason, todo=True)
             for ln, rule, reason in allow.todos]
    return findings, todos


def lint_file(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return lint_text(path, f.read())


# --- libclang engine (opt-in) -------------------------------------------

def lint_file_clang(path, compile_db_dir):
    """Same rules, but function extents come from libclang cursors."""
    from clang import cindex  # Raises ImportError without libclang.
    index = cindex.Index.create()
    args = ["-std=c++20", "-Isrc"]
    if compile_db_dir:
        try:
            db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
            cmds = db.getCompileCommands(os.path.abspath(path))
            if cmds:
                args = [a for a in list(cmds[0].arguments)[1:-1]
                        if a not in ("-c", "-o")]
        except cindex.CompilationDatabaseError:
            pass
    tu = index.parse(path, args=args)
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    allow = Allowances(raw)
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines(keepends=True)
    offsets = [0]
    for ln in lines:
        offsets.append(offsets[-1] + len(ln))
    findings = []
    functions = []
    kinds = (cindex.CursorKind.CXX_METHOD, cindex.CursorKind.FUNCTION_DECL,
             cindex.CursorKind.FUNCTION_TEMPLATE,
             cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR)

    def visit(cursor):
        for ch in cursor.get_children():
            if ch.kind in kinds and ch.is_definition() and \
                    ch.location.file and ch.location.file.name == path:
                ext = ch.extent
                start = offsets[ext.start.line - 1] + ext.start.column - 1
                end = offsets[ext.end.line - 1] + ext.end.column - 1
                text = stripped[start:end]
                brace = text.find("{")
                if brace < 0:
                    continue
                functions.append(Function(
                    ch.spelling, text[:brace], text[brace:],
                    ext.start.line,
                    ext.start.line + text[:brace].count("\n")))
            visit(ch)

    visit(tu.cursor)
    rel = path.replace(os.sep, "/")
    if not any(("/" + rel).find("/" + t) >= 0 for t in TRUSTED_PATHS):
        for func in functions:
            check_function_rules(path, func, allow, findings)
            check_raw_delete(path, func, allow, findings)
            check_version_dataflow(path, func, allow, findings)
        check_epoch_guard(path, functions, allow, findings)
    todos = [Finding(path, ln, rule, reason, todo=True)
             for ln, rule, reason in allow.todos]
    return findings, todos


# --- driver --------------------------------------------------------------

def collect_sources(root):
    out = []
    for base, _dirs, files in os.walk(os.path.join(root, "src")):
        for name in sorted(files):
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(base, name))
    return sorted(out)


def run_self_test(fixtures_dir, engine, build_dir):
    """Fixture contract: good_* files are clean; bad_* files carry
    `// EXPECT-FAIL: rule-id` lines and every expected rule must fire."""
    failures = []
    names = sorted(os.listdir(fixtures_dir))
    if not names:
        print("no fixtures in %s" % fixtures_dir, file=sys.stderr)
        return 2
    for name in names:
        if not name.endswith((".h", ".cc")):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
        expected = set(re.findall(r"//\s*EXPECT-FAIL:\s*([\w-]+)", raw))
        if engine == "clang":
            findings, _ = lint_file_clang(path, build_dir)
        else:
            findings, _ = lint_file(path)
        got = set(f.rule for f in findings)
        if name.startswith("good_"):
            if findings:
                failures.append("%s: expected clean, got: %s" % (
                    name, "; ".join(str(f) for f in findings)))
        elif name.startswith("bad_"):
            if not expected:
                failures.append("%s: bad_ fixture lacks EXPECT-FAIL" % name)
            missing = expected - got
            unexpected = got - expected
            if missing:
                failures.append("%s: rules did not fire: %s" % (
                    name, ", ".join(sorted(missing))))
            if unexpected:
                failures.append("%s: unexpected rules fired: %s (%s)" % (
                    name, ", ".join(sorted(unexpected)),
                    "; ".join(str(f) for f in findings
                              if f.rule in unexpected)))
    if failures:
        for f in failures:
            print("SELF-TEST FAIL: %s" % f, file=sys.stderr)
        return 1
    print("self-test OK (%d fixtures)" % len(
        [n for n in names if n.endswith((".h", ".cc"))]))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files to lint (default: <root>/src/**/*.{h,cc})")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--engine", choices=("lexical", "clang"),
                    default="lexical")
    ap.add_argument("--build-dir", default="build",
                    help="directory holding compile_commands.json "
                         "(clang engine)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--fixtures-dir", default=None,
                    help="fixture directory (default: "
                         "<root>/tests/lint_fixtures)")
    args = ap.parse_args(argv)

    if args.engine == "clang":
        try:
            from clang import cindex  # noqa: F401
        except ImportError:
            print("--engine=clang needs python libclang (clang.cindex); "
                  "not available here — use --engine=lexical",
                  file=sys.stderr)
            return 2

    if args.self_test:
        fixtures = args.fixtures_dir or os.path.join(
            args.root, "tests", "lint_fixtures")
        return run_self_test(fixtures, args.engine, args.build_dir)

    paths = args.paths or collect_sources(args.root)
    if not paths:
        print("no sources found under %s" % args.root, file=sys.stderr)
        return 2
    all_findings = []
    all_todos = []
    for path in paths:
        if args.engine == "clang":
            findings, todos = lint_file_clang(path, args.build_dir)
        else:
            findings, todos = lint_file(path)
        all_findings.extend(findings)
        all_todos.extend(todos)
    for f in all_todos:
        print(str(f))
    for f in all_findings:
        print(str(f))
    print("%d file(s), %d finding(s), %d open LINT-TODO(s)" % (
        len(paths), len(all_findings), len(all_todos)))
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
