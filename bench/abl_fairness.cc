// Ablation (paper §1.1, §3 D3): fairness of centralized locks with and
// without exponential backoff versus queue-based locks, under high
// contention. The paper reports "lucky" threads being ~3x more likely to
// acquire a backoff lock; queue-based locks grant FIFO. We report Jain's
// fairness index and the max/min per-thread acquisition ratio.
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

template <class Lock>
void RunRow(const BenchFlags& flags, TablePrinter& table) {
  MicroBenchConfig config;
  config.num_locks = 1;  // Extreme contention exposes unfairness best.
  config.read_pct = 0;
  config.cs_length = 50;
  config.threads = flags.MaxThreads();
  config.duration_ms = flags.duration_ms;
  const RunResult result = RunLockMicroBench<Lock>(config);
  uint64_t min_ops = ~0ULL, max_ops = 0;
  for (const auto& s : result.per_thread) {
    min_ops = std::min(min_ops, s.ops);
    max_ops = std::max(max_ops, s.ops);
  }
  table.AddRow({LockOps<Lock>::kName,
                TablePrinter::Fmt(result.MopsPerSec()),
                TablePrinter::Fmt(result.JainFairness(), 3),
                TablePrinter::Fmt(min_ops == 0
                                      ? 0.0
                                      : static_cast<double>(max_ops) /
                                            static_cast<double>(min_ops),
                                  2)});
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Ablation: backoff vs. fairness under extreme contention",
              "paper §1.1 ('lucky' threads ~3x with backoff) and §3 D3",
              flags);
  TablePrinter table(
      {"lock", "Mops/s", "Jain fairness", "max/min thread ratio"});
  RunRow<TtsLock>(flags, table);
  RunRow<TtsBackoffLock>(flags, table);
  RunRow<OptLock>(flags, table);
  RunRow<OptBackoffLock>(flags, table);
  RunRow<TicketLock>(flags, table);
  RunRow<McsLock>(flags, table);
  RunRow<OptiQL>(flags, table);
  table.Print();
  std::printf(
      "\nExpected shape: backoff variants raise throughput but lower "
      "fairness (higher max/min); queue-based and ticket locks stay near "
      "Jain=1.\n");
  return 0;
}
