// Figure 6: exclusive-lock throughput under five contention levels
// (extreme / high / medium / low / none), sweeping thread counts across
// all seven lock variants. Queue-based locks must hold their throughput
// under extreme/high contention; centralized ones collapse.
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

template <class Lock>
void RunRows(const BenchFlags& flags, const ContentionLevel& level,
             TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int threads : flags.threads) {
    MicroBenchConfig config;
    config.num_locks = level.num_locks;
    config.read_pct = 0;
    config.cs_length = 50;
    config.threads = threads;
    config.duration_ms = flags.duration_ms;
    const RunResult result = RunLockMicroBench<Lock>(config);
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

void RunLevel(const BenchFlags& flags, const ContentionLevel& level) {
  std::printf("-- Contention: %s (%zu lock(s)%s) --\n", level.name,
              level.num_locks == 0 ? 1 : level.num_locks,
              level.num_locks == 0 ? " per thread" : "");
  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  RunRows<OptLock>(flags, level, table);
  RunRows<OptiQLNor>(flags, level, table);
  RunRows<OptiQL>(flags, level, table);
  RunRows<SharedMutexLock>(flags, level, table);
  RunRows<McsRwLock>(flags, level, table);
  RunRows<TtsLock>(flags, level, table);
  RunRows<McsLock>(flags, level, table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 6: exclusive lock throughput vs. contention",
              "paper Fig. 6 (§7.2, pure-write microbenchmark, CS=50)",
              flags);
  for (const ContentionLevel& level : kContentionLevels) {
    RunLevel(flags, level);
  }
  return 0;
}
