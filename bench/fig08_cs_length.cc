// Figure 8: lock throughput as a function of critical-section length under
// low and high contention with a read-mostly (80/20) mix. Opportunistic
// read mainly benefits short reads; with long critical sections OptiQL
// converges toward OptiQL-NOR.
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

constexpr int kCsLengths[] = {5, 50, 100, 150, 200};

template <class Lock>
void RunRow(const BenchFlags& flags, size_t num_locks, TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int cs : kCsLengths) {
    MicroBenchConfig config;
    config.num_locks = num_locks;
    config.read_pct = 80;
    config.cs_length = cs;
    config.threads = flags.MaxThreads();
    config.duration_ms = flags.duration_ms;
    const RunResult result = RunLockMicroBench<Lock>(config);
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

void RunLevel(const BenchFlags& flags, const char* name, size_t num_locks) {
  std::printf("-- Contention: %s, 80%%/20%% read/write, %d threads --\n",
              name, flags.MaxThreads());
  std::vector<std::string> header = {"lock \\ CS length (Mops/s)"};
  for (int cs : kCsLengths) header.push_back(std::to_string(cs));
  TablePrinter table(std::move(header));
  RunRow<OptLock>(flags, num_locks, table);
  RunRow<OptiQLNor>(flags, num_locks, table);
  RunRow<OptiQL>(flags, num_locks, table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 8: throughput vs. critical-section length",
              "paper Fig. 8 (§7.2, 80% reads, low vs. high contention)",
              flags);
  RunLevel(flags, "low", 1000000);
  RunLevel(flags, "high", 5);
  return 0;
}
