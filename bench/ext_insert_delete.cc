// Extension of §7.3's remark: "We also tested workloads that involve
// inserts and deletes, and observed the same performance characteristics
// for OptiQL." This bench runs insert-heavy and insert/delete-churn mixes
// over both indexes (SMOs, node growth and retirement included) so the
// claim can be checked on this substrate.
#include "index_bench_common.h"

namespace optiql {
namespace {

struct ChurnMix {
  const char* name;
  int lookup_pct;
  int insert_pct;
  int remove_pct;
};

constexpr ChurnMix kMixes[] = {
    {"Insert-heavy (50/50 lookup/insert)", 50, 50, 0},
    {"Churn (50 lookup / 25 insert / 25 remove)", 50, 25, 25},
};

template <class Tree>
void RunRow(const BenchFlags& flags, const char* name, const ChurnMix& mix,
            TablePrinter& table) {
  std::vector<std::string> row = {name};
  for (int threads : flags.threads) {
    // Fresh tree per cell: insert-heavy cells grow the tree, which would
    // otherwise skew later cells.
    auto tree = std::make_unique<Tree>();
    IndexWorkload workload;
    workload.records = flags.records;
    workload.lookup_pct = mix.lookup_pct;
    workload.insert_pct = mix.insert_pct;
    workload.remove_pct = mix.remove_pct;
    workload.update_pct = 0;
    workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
    workload.skew = 0.2;
    workload.threads = threads;
    workload.duration_ms = flags.duration_ms;
    PreloadIndex(*tree, workload);
    row.push_back(TablePrinter::Fmt(RunIndexBench(*tree, workload).MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

void RunMix(const BenchFlags& flags, const ChurnMix& mix) {
  std::printf("-- B+-tree, %s --\n", mix.name);
  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  {
    TablePrinter table(header);
    RunRow<BTreeOptLock>(flags, "OptLock", mix, table);
    RunRow<BTreeOptiQlNor>(flags, "OptiQL-NOR", mix, table);
    RunRow<BTreeOptiQl>(flags, "OptiQL", mix, table);
    table.Print();
  }
  std::printf("\n-- ART, %s --\n", mix.name);
  {
    TablePrinter table(header);
    RunRow<ArtOptLock>(flags, "OptLock", mix, table);
    RunRow<ArtOptiQlNor>(flags, "OptiQL-NOR", mix, table);
    RunRow<ArtOptiQl>(flags, "OptiQL", mix, table);
    table.Print();
  }
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: insert/delete workloads",
              "paper §7.3 ('same performance characteristics') — SMO-heavy "
              "mixes",
              flags);
  for (const ChurnMix& mix : kMixes) RunMix(flags, mix);
  return 0;
}
