// Extension of §7.3's remark: "We also tested workloads that involve
// inserts and deletes, and observed the same performance characteristics
// for OptiQL." This bench runs insert-heavy and insert/delete-churn mixes
// over both indexes (SMOs, node growth and retirement included) so the
// claim can be checked on this substrate.
#include "index_bench_common.h"

namespace optiql {
namespace {

struct ChurnMix {
  const char* name;
  int lookup_pct;
  int insert_pct;
  int remove_pct;
};

constexpr ChurnMix kMixes[] = {
    {"Insert-heavy (50/50 lookup/insert)", 50, 50, 0},
    {"Churn (50 lookup / 25 insert / 25 remove)", 50, 25, 25},
};

template <class Tree>
void RunRow(const BenchFlags& flags, const char* name, const ChurnMix& mix,
            TablePrinter& table) {
  std::vector<std::string> row = {name};
  for (int threads : flags.threads) {
    // Fresh tree per cell: insert-heavy cells grow the tree, which would
    // otherwise skew later cells.
    auto tree = std::make_unique<Tree>();
    IndexWorkload workload;
    workload.records = flags.records;
    workload.lookup_pct = mix.lookup_pct;
    workload.insert_pct = mix.insert_pct;
    workload.remove_pct = mix.remove_pct;
    workload.update_pct = 0;
    workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
    workload.skew = 0.2;
    workload.threads = threads;
    workload.duration_ms = flags.duration_ms;
    PreloadIndex(*tree, workload);
    row.push_back(TablePrinter::Fmt(RunIndexBench(*tree, workload).MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

// Fixed-population steady-state churn (50/50 insert/remove over the
// preloaded key range): with delete-time merges the node count levels off
// after the first window instead of growing monotonically, and the epoch
// layer's reclaim total tracks its retire total. All three B+-tree
// synchronization protocols are exercised.
template <class Tree>
void RunSteadyStateRow(const BenchFlags& flags, const char* name,
                       TablePrinter& table) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload workload;
  workload.records = flags.records;
  workload.lookup_pct = 0;
  workload.update_pct = 0;
  workload.insert_pct = 50;
  workload.remove_pct = 50;
  workload.fixed_population = true;
  workload.threads = flags.threads.back();
  workload.duration_ms = flags.duration_ms;
  PreloadIndex(*tree, workload);
  const SteadyStateReport report = RunChurnWindows(*tree, workload);
  const auto stats = tree->GetStats();
  table.AddRow({name, TablePrinter::Fmt(report.mops),
                std::to_string(report.nodes_preload),
                std::to_string(report.nodes_after_first),
                std::to_string(report.nodes_after_second),
                std::to_string(stats.leaf_merges + stats.inner_merges),
                std::to_string(stats.rebalance_borrows),
                std::to_string(report.retired_delta),
                std::to_string(report.reclaimed_delta)});
}

void RunSteadyState(const BenchFlags& flags) {
  std::printf(
      "-- B+-tree steady state: fixed-population 50/50 insert/remove churn "
      "(%d threads) --\n",
      flags.threads.back());
  TablePrinter table({"lock", "Mops/s", "nodes preload", "nodes W1",
                      "nodes W2", "merges", "borrows", "retired",
                      "reclaimed"});
  RunSteadyStateRow<BTreeOptLock>(flags, "OptLock", table);
  RunSteadyStateRow<BTreeOptiQl>(flags, "OptiQL", table);
  RunSteadyStateRow<BTreeMcsRw>(flags, "MCS-RW coupling", table);
  table.Print();
  std::printf("\n");
}

void RunMix(const BenchFlags& flags, const ChurnMix& mix) {
  std::printf("-- B+-tree, %s --\n", mix.name);
  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  {
    TablePrinter table(header);
    RunRow<BTreeOptLock>(flags, "OptLock", mix, table);
    RunRow<BTreeOptiQlNor>(flags, "OptiQL-NOR", mix, table);
    RunRow<BTreeOptiQl>(flags, "OptiQL", mix, table);
    table.Print();
  }
  std::printf("\n-- ART, %s --\n", mix.name);
  {
    TablePrinter table(header);
    RunRow<ArtOptLock>(flags, "OptLock", mix, table);
    RunRow<ArtOptiQlNor>(flags, "OptiQL-NOR", mix, table);
    RunRow<ArtOptiQl>(flags, "OptiQL", mix, table);
    table.Print();
  }
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: insert/delete workloads",
              "paper §7.3 ('same performance characteristics') — SMO-heavy "
              "mixes",
              flags);
  for (const ChurnMix& mix : kMixes) RunMix(flags, mix);
  RunSteadyState(flags);
  return 0;
}
