// Shared scaffolding for the index benchmark binaries (Figures 1, 9-13):
// tree typedefs matching the paper's legend and a generic sweep runner.
#ifndef OPTIQL_BENCH_INDEX_BENCH_COMMON_H_
#define OPTIQL_BENCH_INDEX_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/index_bench.h"
#include "harness/table_printer.h"
#include "index/art.h"
#include "index/art_coupling.h"
#include "index/btree.h"

namespace optiql {

// B+-tree variants (paper §7.1 lock list). 256-byte nodes per §7.1.
using BTreeOptLock = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using BTreeOptiQl = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using BTreeOptiQlNor =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>>;
using BTreeOptiQlAor =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;
using BTreePthread = BTree<uint64_t, uint64_t,
                           BTreeCouplingPolicy<SharedMutexLock>>;
using BTreeMcsRw = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;

// ART variants (§6.2).
using ArtOptLock = ArtTree<ArtOlcPolicy>;
using ArtOptiQl = ArtTree<ArtOptiQlPolicy<OptiQL>>;
using ArtOptiQlNor = ArtTree<ArtOptiQlPolicy<OptiQLNor>>;
using ArtPthread = ArtCouplingTree<SharedMutexLock>;
using ArtMcsRw = ArtCouplingTree<McsRwLock>;

// Builds a tree, preloads it, then reports Mops/s for every (mix, threads)
// combination through `emit(mix_index, threads_index, result)`.
template <class Tree, class Emit>
void SweepIndex(const BenchFlags& flags, const IndexWorkload& base,
                const std::vector<OpMix>& mixes, const Emit& emit) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload workload = base;
  workload.duration_ms = flags.duration_ms;
  PreloadIndex(*tree, workload);
  for (size_t m = 0; m < mixes.size(); ++m) {
    workload.lookup_pct = mixes[m].lookup_pct;
    workload.update_pct = mixes[m].update_pct;
    workload.insert_pct = 0;
    workload.remove_pct = 0;
    for (size_t t = 0; t < flags.threads.size(); ++t) {
      workload.threads = flags.threads[t];
      emit(m, t, RunIndexBench(*tree, workload));
    }
  }
}

}  // namespace optiql

#endif  // OPTIQL_BENCH_INDEX_BENCH_COMMON_H_
