// Shared scaffolding for the index benchmark binaries (Figures 1, 9-13):
// tree typedefs matching the paper's legend and a generic sweep runner.
#ifndef OPTIQL_BENCH_INDEX_BENCH_COMMON_H_
#define OPTIQL_BENCH_INDEX_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/index_bench.h"
#include "harness/table_printer.h"
#include "index/art.h"
#include "index/art_coupling.h"
#include "index/btree.h"
#include "index/index_ops.h"
#include "sync/epoch.h"

namespace optiql {

// B+-tree variants (paper §7.1 lock list). 256-byte nodes per §7.1.
using BTreeOptLock = BTree<uint64_t, uint64_t, BTreeOlcPolicy>;
using BTreeOptiQl = BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>;
using BTreeOptiQlNor =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>>;
using BTreeOptiQlAor =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/true>>;
using BTreePthread = BTree<uint64_t, uint64_t,
                           BTreeCouplingPolicy<SharedMutexLock>>;
using BTreeMcsRw = BTree<uint64_t, uint64_t, BTreeCouplingPolicy<McsRwLock>>;

// Latch-free in-place leaf update variants (ISSUE 6 extension): same
// protocols, but Update/Upsert of an existing key publishes the value with
// one atomic store under a version-preserving micro-window.
using BTreeOptLockIp = BTree<uint64_t, uint64_t, BTreeOlcInPlacePolicy>;
using BTreeOptiQlIp =
    BTree<uint64_t, uint64_t, BTreeOptiQlInPlacePolicy<OptiQL>>;

// ART variants (§6.2).
using ArtOptLock = ArtTree<ArtOlcPolicy>;
using ArtOptiQl = ArtTree<ArtOptiQlPolicy<OptiQL>>;
using ArtOptiQlNor = ArtTree<ArtOptiQlPolicy<OptiQLNor>>;
using ArtPthread = ArtCouplingTree<SharedMutexLock>;
using ArtMcsRw = ArtCouplingTree<McsRwLock>;

// Steady-state churn measurement: runs the same fixed-population workload
// twice against a preloaded tree and snapshots the live node count after
// each window plus the epoch layer's retire/reclaim totals across both.
// With delete-time merges the second window's node count stays level with
// the first (steady state); without them it keeps climbing.
struct SteadyStateReport {
  double mops = 0;  // Mean over both windows.
  size_t nodes_preload = 0;
  size_t nodes_after_first = 0;
  size_t nodes_after_second = 0;
  uint64_t retired_delta = 0;
  uint64_t reclaimed_delta = 0;
};

template <class Tree>
  requires HasNodeCountOp<Tree>
SteadyStateReport RunChurnWindows(Tree& tree, const IndexWorkload& workload) {
  SteadyStateReport report;
  // The retire/reclaim totals are process-global; retirements left pending
  // by earlier rows' trees would count into this row's reclaimed delta.
  // All worker threads have joined by now, so the caller is the only
  // thread inside the epoch layer and an unconditional drain is safe.
  EpochManager::Instance().ReclaimAllUnsafe();
  report.nodes_preload = tree.NodeCount();
  const uint64_t retired0 = EpochManager::Instance().TotalRetired();
  const uint64_t reclaimed0 = EpochManager::Instance().TotalReclaimed();
  const double first = RunIndexBench(tree, workload).MopsPerSec();
  report.nodes_after_first = tree.NodeCount();
  const double second = RunIndexBench(tree, workload).MopsPerSec();
  report.nodes_after_second = tree.NodeCount();
  report.retired_delta = EpochManager::Instance().TotalRetired() - retired0;
  report.reclaimed_delta =
      EpochManager::Instance().TotalReclaimed() - reclaimed0;
  report.mops = (first + second) / 2;
  return report;
}

// Maps a parsed --dist onto the index harness's sampler. The harness
// draws uniform or self-similar keys (the paper's evaluation); Zipfian
// requests are not supported there — benches that need them sample
// through KeySampler directly (ext_ycsb, ext_txn).
inline bool ApplyKeyDist(const KeyDist& dist, IndexWorkload& workload) {
  switch (dist.kind) {
    case KeyDist::Kind::kUniform:
      workload.distribution = IndexWorkload::Distribution::kUniform;
      return true;
    case KeyDist::Kind::kSelfSimilar:
      workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
      workload.skew = dist.skew;
      return true;
    case KeyDist::Kind::kZipfian:
      return false;
  }
  return false;
}

// Builds a tree, preloads it, then reports Mops/s for every (mix, threads)
// combination through `emit(mix_index, threads_index, result)`.
// An explicit --dist overrides the workload's baked-in distribution.
template <class Tree, class Emit>
void SweepIndex(const BenchFlags& flags, const IndexWorkload& base,
                const std::vector<OpMix>& mixes, const Emit& emit) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload workload = base;
  workload.duration_ms = flags.duration_ms;
  if (flags.dist_given && !ApplyKeyDist(flags.dist, workload)) {
    std::fprintf(stderr,
                 "index sweeps support --dist=uniform|selfsimilar[:h]\n");
    std::exit(2);
  }
  PreloadIndex(*tree, workload);
  for (size_t m = 0; m < mixes.size(); ++m) {
    workload.lookup_pct = mixes[m].lookup_pct;
    workload.update_pct = mixes[m].update_pct;
    workload.insert_pct = 0;
    workload.remove_pct = 0;
    for (size_t t = 0; t < flags.threads.size(); ++t) {
      workload.threads = flags.threads[t];
      emit(m, t, RunIndexBench(*tree, workload));
    }
  }
}

}  // namespace optiql

#endif  // OPTIQL_BENCH_INDEX_BENCH_COMMON_H_
