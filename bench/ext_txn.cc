// Extension: multi-key transactions (src/txn/) over the hash table and
// B+-tree hosts — Silo-style OCC vs no-wait 2PL, across the lock families
// the TxnOps contract unifies.
//
// Each transaction samples `txn_size` keys from the preloaded population,
// reads every one, and bumps every other one (read-modify-write). OCC
// reads lock-free and validates at commit against the indexes' own lock
// words; 2PL locks as it goes and aborts on any busy lock. The sweep
// crosses {OCC, 2PL} x lock family x host x txn size x key skew, and
// reports committed-transaction throughput plus the abort rate — the
// protocols' fundamental trade under growing contention.
//
// Methodology matches ext_adaptive: every data point is the MEDIAN of
// OPTIQL_BENCH_REPEATS (default 3) runs, INTERLEAVED across the rows of a
// table so machine drift lands on all protocols alike. --json writes
// BENCH_txn.json.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"
#include "index/hash_table.h"
#include "txn/txn.h"

namespace optiql {
namespace {

using HashOptLock = HashTable<HashOlcPolicy>;
using HashOptiQl = HashTable<HashOptiQlPolicy<>>;
using HashOptiClh = HashTable<HashLockPolicy<OptiCLH>>;
using HashMcsRw = HashTable<HashLockPolicy<McsRwLock>>;
using BTreeTxnOptLock = BTreeOptLock;  // index_bench_common typedef.
using BTreeTxnOptiQl =
    BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, /*kAor=*/false>>;

int Repeats() {
  return std::max<int>(1, static_cast<int>(EnvInt("OPTIQL_BENCH_REPEATS", 3)));
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// One (row, thread-count) cell accumulated across the interleaved passes.
struct PointStat {
  std::vector<double> mtps;        // Committed Mtxn/s, one entry per pass.
  std::vector<double> abort_rate;  // aborts / attempts, one per pass.
};

using PointMap = std::map<std::pair<std::string, int>, PointStat>;

// Row identity: display name plus the fields the JSON rows break out.
struct RowSpec {
  std::string name;
  const char* protocol;
  const char* lock;
  const char* host;
};

// Runs the fixed-duration transaction workload for every thread count and
// appends this pass's numbers to the row's cells. `stats.ops` counts
// committed transactions (RunTxn retries until a commit sticks), so the
// runner's Mops/s is committed throughput directly.
template <template <class> class TxnT, class Index>
void TxnPass(Index& index, const RowSpec& row, const BenchFlags& flags,
             const KeySampler& sampler, int txn_size, PointMap& points) {
  for (int threads : flags.threads) {
    RunOptions options;
    options.threads = threads;
    options.duration_ms = flags.duration_ms;
    std::vector<TxnStats> per_thread(static_cast<size_t>(threads));
    const RunResult result = RunFixedDuration(
        options,
        [&](int tid, const std::atomic<bool>& stop, WorkerStats& stats) {
          Xoshiro256 rng(0x51a7b2ddULL * 977 + static_cast<uint64_t>(tid));
          TxnStats& local = per_thread[static_cast<size_t>(tid)];
          uint64_t keys[16];
          while (!stop.load(std::memory_order_acquire)) {
            for (int i = 0; i < txn_size; ++i) keys[i] = sampler.Next(rng);
            RunTxn<TxnT<Index>>(index, local, [&](TxnT<Index>& txn) {
              for (int i = 0; i < txn_size; ++i) {
                uint64_t value = 0;
                if (txn.Get(keys[i], value) == TxnResult::kAbort) {
                  return false;
                }
                // Bump every other key: each transaction both reads and
                // writes, so OCC validation and 2PL upgrades are exercised.
                if ((i & 1) == 0 &&
                    txn.Put(keys[i], value + 1) == TxnResult::kAbort) {
                  return false;
                }
              }
              return true;
            });
            ++stats.ops;
          }
        });
    TxnStats total;
    for (const TxnStats& s : per_thread) total += s;
    const double attempts =
        static_cast<double>(total.commits + total.aborts);
    PointStat& p = points[{row.name, threads}];
    p.mtps.push_back(result.MopsPerSec());
    p.abort_rate.push_back(
        attempts == 0 ? 0.0 : static_cast<double>(total.aborts) / attempts);
  }
}

template <class Index>
void Preload(Index& index, uint64_t records) {
  for (uint64_t k = 0; k < records; ++k) {
    OPTIQL_CHECK(index.Insert(k, k));
  }
}

// One table: every protocol x lock x host row at a fixed (skew, txn_size).
void TxnSection(const BenchFlags& flags, const KeyDist& dist, int txn_size,
                JsonBenchWriter& json) {
  const int repeats = Repeats();
  std::printf("-- txns of %d keys (read all, bump half), %s keys, "
              "median of %d --\n",
              txn_size, dist.Name().c_str(), repeats);

  const KeySampler sampler(dist, flags.records);

  auto h_optlock = std::make_unique<HashOptLock>();
  auto h_optiql = std::make_unique<HashOptiQl>();
  auto h_opticlh = std::make_unique<HashOptiClh>();
  auto h_mcsrw = std::make_unique<HashMcsRw>();
  auto b_optlock = std::make_unique<BTreeTxnOptLock>();
  auto b_optiql = std::make_unique<BTreeTxnOptiQl>();
  Preload(*h_optlock, flags.records);
  Preload(*h_optiql, flags.records);
  Preload(*h_opticlh, flags.records);
  Preload(*h_mcsrw, flags.records);
  Preload(*b_optlock, flags.records);
  Preload(*b_optiql, flags.records);

  const RowSpec occ_h_optlock{"OCC hash/OptLock", "occ", "OptLock", "hash"};
  const RowSpec occ_h_optiql{"OCC hash/OptiQL", "occ", "OptiQL", "hash"};
  const RowSpec occ_h_opticlh{"OCC hash/OptiCLH", "occ", "OptiCLH", "hash"};
  const RowSpec occ_b_optlock{"OCC btree/OptLock", "occ", "OptLock", "btree"};
  const RowSpec occ_b_optiql{"OCC btree/OptiQL", "occ", "OptiQL", "btree"};
  const RowSpec tpl_h_optlock{"2PL hash/OptLock", "2pl", "OptLock", "hash"};
  const RowSpec tpl_h_optiql{"2PL hash/OptiQL", "2pl", "OptiQL", "hash"};
  const RowSpec tpl_h_opticlh{"2PL hash/OptiCLH", "2pl", "OptiCLH", "hash"};
  const RowSpec tpl_h_mcsrw{"2PL hash/MCS-RW", "2pl", "MCS-RW", "hash"};
  const RowSpec tpl_b_optlock{"2PL btree/OptLock", "2pl", "OptLock", "btree"};
  const RowSpec tpl_b_optiql{"2PL btree/OptiQL", "2pl", "OptiQL", "btree"};
  const std::vector<const RowSpec*> order = {
      &occ_h_optlock, &occ_h_optiql, &occ_h_opticlh, &occ_b_optlock,
      &occ_b_optiql,  &tpl_h_optlock, &tpl_h_optiql, &tpl_h_opticlh,
      &tpl_h_mcsrw,   &tpl_b_optlock, &tpl_b_optiql};

  PointMap points;
  for (int rep = 0; rep < repeats; ++rep) {
    TxnPass<OccTxn>(*h_optlock, occ_h_optlock, flags, sampler, txn_size,
                    points);
    TxnPass<OccTxn>(*h_optiql, occ_h_optiql, flags, sampler, txn_size,
                    points);
    TxnPass<OccTxn>(*h_opticlh, occ_h_opticlh, flags, sampler, txn_size,
                    points);
    TxnPass<OccTxn>(*b_optlock, occ_b_optlock, flags, sampler, txn_size,
                    points);
    TxnPass<OccTxn>(*b_optiql, occ_b_optiql, flags, sampler, txn_size,
                    points);
    TxnPass<TwoPlTxn>(*h_optlock, tpl_h_optlock, flags, sampler, txn_size,
                      points);
    TxnPass<TwoPlTxn>(*h_optiql, tpl_h_optiql, flags, sampler, txn_size,
                      points);
    TxnPass<TwoPlTxn>(*h_opticlh, tpl_h_opticlh, flags, sampler, txn_size,
                      points);
    TxnPass<TwoPlTxn>(*h_mcsrw, tpl_h_mcsrw, flags, sampler, txn_size,
                      points);
    TxnPass<TwoPlTxn>(*b_optlock, tpl_b_optlock, flags, sampler, txn_size,
                      points);
    TxnPass<TwoPlTxn>(*b_optiql, tpl_b_optiql, flags, sampler, txn_size,
                      points);
  }

  std::vector<std::string> header = {
      "protocol host/lock \\ threads (Mtxn/s / abort-rate)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  for (const RowSpec* row : order) {
    std::vector<std::string> cells = {row->name};
    for (int threads : flags.threads) {
      const PointStat& p = points.at({row->name, threads});
      cells.push_back(TablePrinter::Fmt(Median(p.mtps)) + " / " +
                      TablePrinter::Fmt(Median(p.abort_rate), 3));
      json.AddRecord({
          {"bench", "ext_txn"},
          {"protocol", row->protocol},
          {"lock", row->lock},
          {"host", row->host},
          {"txn_size", std::to_string(txn_size)},
          {"skew", dist.Name()},
          {"threads", std::to_string(threads)},
          {"repeats", std::to_string(repeats)},
          {"mops", JsonBenchWriter::Num(Median(p.mtps))},
          {"abort_rate", JsonBenchWriter::Num(Median(p.abort_rate))},
      });
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: multi-key transactions (OCC vs no-wait 2PL)",
              "txn layer over the TxnOps lock contract; OCC validates "
              "against the indexes' own lock words",
              flags);
  JsonBenchWriter json;
  // --dist narrows the sweep to one skew; the default runs the paper-style
  // uniform / zipf 0.99 contrast.
  std::vector<KeyDist> dists;
  if (flags.dist_given) {
    dists.push_back(flags.dist);
  } else {
    dists.push_back(KeyDist::Uniform());
    dists.push_back(KeyDist::Zipfian(0.99));
  }
  for (const KeyDist& dist : dists) {
    for (int txn_size : {2, 4, 8}) {
      TxnSection(flags, dist, txn_size, json);
    }
  }
  if (flags.json) {
    json.WriteFile(flags.json_path.empty() ? "BENCH_txn.json"
                                           : flags.json_path);
  }
  return 0;
}
