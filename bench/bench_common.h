// Shared helpers for the per-figure benchmark binaries: flag parsing and
// banner printing. Every binary accepts:
//   --threads=a,b,c     thread counts to sweep (default: env/auto)
//   --duration=MS       per-data-point duration (default: env or 150 ms)
//   --records=N         index preload size (default: env or 100000)
//   --full              paper-scale parameters (slower)
// Environment fallbacks: OPTIQL_BENCH_THREADS, OPTIQL_BENCH_DURATION_MS,
// OPTIQL_BENCH_RECORDS.
#ifndef OPTIQL_BENCH_BENCH_COMMON_H_
#define OPTIQL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_runner.h"

namespace optiql {

struct BenchFlags {
  std::vector<int> threads;
  int duration_ms = 150;
  uint64_t records = 100000;
  bool full = false;

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    flags.threads = BenchThreadCounts();
    flags.duration_ms = BenchDurationMs(150);
    flags.records =
        static_cast<uint64_t>(EnvInt("OPTIQL_BENCH_RECORDS", 100000));
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        flags.threads.clear();
        const char* spec = arg.c_str() + 10;
        while (*spec != '\0') {
          flags.threads.push_back(std::atoi(spec));
          const char* comma = std::strchr(spec, ',');
          if (comma == nullptr) break;
          spec = comma + 1;
        }
      } else if (arg.rfind("--duration=", 0) == 0) {
        flags.duration_ms = std::atoi(arg.c_str() + 11);
      } else if (arg.rfind("--records=", 0) == 0) {
        flags.records = std::strtoull(arg.c_str() + 10, nullptr, 10);
      } else if (arg == "--full") {
        flags.full = true;
        flags.duration_ms = 1000;
        flags.records = 10000000;
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--threads=a,b,c] [--duration=ms] [--records=n] "
            "[--full]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return flags;
  }

  int MaxThreads() const {
    int max = 1;
    for (int t : threads) max = std::max(max, t);
    return max;
  }
};

inline void PrintBanner(const char* experiment, const char* paper_ref,
                        const BenchFlags& flags) {
  std::printf("=== %s ===\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("machine: %u hardware threads; duration/point: %d ms\n",
              std::thread::hardware_concurrency(), flags.duration_ms);
  std::printf("\n");
}

}  // namespace optiql

#endif  // OPTIQL_BENCH_BENCH_COMMON_H_
