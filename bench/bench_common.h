// Shared helpers for the per-figure benchmark binaries: flag parsing,
// banner printing, and machine-readable result emission. Every binary
// accepts:
//   --threads=a,b,c     thread counts to sweep (default: env/auto)
//   --duration=MS       per-data-point duration (default: env or 150 ms)
//   --records=N         index preload size (default: env or 100000)
//   --full              paper-scale parameters (slower)
//   --json[=PATH]       also emit results as a JSON array (benches that
//                       support it write BENCH_<name>.json by default)
// Environment fallbacks: OPTIQL_BENCH_THREADS, OPTIQL_BENCH_DURATION_MS,
// OPTIQL_BENCH_RECORDS.
#ifndef OPTIQL_BENCH_BENCH_COMMON_H_
#define OPTIQL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/bench_runner.h"

namespace optiql {

struct BenchFlags {
  std::vector<int> threads;
  int duration_ms = 150;
  uint64_t records = 100000;
  bool full = false;
  bool json = false;
  std::string json_path;  // Empty: the binary picks its default name.

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    flags.threads = BenchThreadCounts();
    flags.duration_ms = BenchDurationMs(150);
    flags.records =
        static_cast<uint64_t>(EnvInt("OPTIQL_BENCH_RECORDS", 100000));
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        flags.threads.clear();
        const char* spec = arg.c_str() + 10;
        while (*spec != '\0') {
          flags.threads.push_back(std::atoi(spec));
          const char* comma = std::strchr(spec, ',');
          if (comma == nullptr) break;
          spec = comma + 1;
        }
      } else if (arg.rfind("--duration=", 0) == 0) {
        flags.duration_ms = std::atoi(arg.c_str() + 11);
      } else if (arg.rfind("--records=", 0) == 0) {
        flags.records = std::strtoull(arg.c_str() + 10, nullptr, 10);
      } else if (arg == "--full") {
        flags.full = true;
        flags.duration_ms = 1000;
        flags.records = 10000000;
      } else if (arg == "--json") {
        flags.json = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        flags.json = true;
        flags.json_path = arg.substr(7);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--threads=a,b,c] [--duration=ms] [--records=n] "
            "[--full] [--json[=path]]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return flags;
  }

  int MaxThreads() const {
    int max = 1;
    for (int t : threads) max = std::max(max, t);
    return max;
  }
};

// Accumulates benchmark rows and writes them as a JSON array of flat
// objects — the machine-readable counterpart of the printed tables, so a
// driver can track the repo's perf trajectory across commits. Values are
// emitted verbatim when they look numeric and quoted otherwise.
class JsonBenchWriter {
 public:
  using Field = std::pair<const char*, std::string>;

  void AddRecord(std::initializer_list<Field> fields) {
    std::string row = "  {";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) row += ", ";
      first = false;
      row += '"';
      row += f.first;
      row += "\": ";
      row += IsNumeric(f.second) ? f.second : Quote(f.second);
    }
    row += '}';
    rows_.push_back(std::move(row));
  }

  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  // Writes `[ ...rows ]`; returns false (and prints a warning) on I/O
  // failure so benches can keep their printed output authoritative.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(rows_[i].c_str(), f);
      std::fputs(i + 1 < rows_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %zu records to %s\n", rows_.size(), path.c_str());
    return ok;
  }

 private:
  static bool IsNumeric(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::string> rows_;
};

inline void PrintBanner(const char* experiment, const char* paper_ref,
                        const BenchFlags& flags) {
  std::printf("=== %s ===\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("machine: %u hardware threads; duration/point: %d ms\n",
              std::thread::hardware_concurrency(), flags.duration_ms);
  std::printf("\n");
}

}  // namespace optiql

#endif  // OPTIQL_BENCH_BENCH_COMMON_H_
