// Shared helpers for the per-figure benchmark binaries: flag parsing,
// banner printing, key-distribution selection, the YCSB core mix tables,
// and machine-readable result emission. Every binary accepts:
//   --threads=a,b,c     thread counts to sweep (default: env/auto)
//   --duration=MS       per-data-point duration (default: env or 150 ms)
//   --records=N         index preload size (default: env or 100000)
//   --dist=SPEC         key-access distribution: uniform | zipf[:theta]
//                       | selfsimilar[:skew] (default: per-binary)
//   --batch=N           issue point reads as batches of N through the
//                       batched op surface (default 1 = single ops)
//   --full              paper-scale parameters (slower)
//   --json[=PATH]       also emit results as a JSON array (benches that
//                       support it write BENCH_<name>.json by default)
// Environment fallbacks: OPTIQL_BENCH_THREADS, OPTIQL_BENCH_DURATION_MS,
// OPTIQL_BENCH_RECORDS.
#ifndef OPTIQL_BENCH_BENCH_COMMON_H_
#define OPTIQL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "harness/bench_runner.h"
#include "workload/distributions.h"

namespace optiql {

// A parsed key-access distribution choice — one spelling shared by every
// bench binary (ext_ycsb, ext_txn, the index sweeps) instead of each
// growing its own enum + parser.
struct KeyDist {
  enum class Kind { kUniform, kZipfian, kSelfSimilar };
  Kind kind = Kind::kUniform;
  double skew = 0.0;  // Zipf theta / self-similar h; unused for uniform.

  static KeyDist Uniform() { return {Kind::kUniform, 0.0}; }
  static KeyDist Zipfian(double theta) { return {Kind::kZipfian, theta}; }
  static KeyDist SelfSimilar(double h) { return {Kind::kSelfSimilar, h}; }

  // "uniform" | "zipf" | "zipf:0.7" | "selfsimilar" | "selfsimilar:0.3".
  static bool Parse(const std::string& spec, KeyDist& out) {
    const size_t colon = spec.find(':');
    const std::string name = spec.substr(0, colon);
    const bool has_param = colon != std::string::npos;
    const double param =
        has_param ? std::strtod(spec.c_str() + colon + 1, nullptr) : 0.0;
    if (name == "uniform") {
      if (has_param) return false;
      out = Uniform();
    } else if (name == "zipf" || name == "zipfian") {
      out = Zipfian(has_param ? param : 0.99);
      if (out.skew <= 0.0 || out.skew >= 1.0) return false;
    } else if (name == "selfsimilar") {
      out = SelfSimilar(has_param ? param : 0.2);
      if (out.skew <= 0.0 || out.skew >= 0.5) return false;
    } else {
      return false;
    }
    return true;
  }

  std::string Name() const {
    char buf[32];
    switch (kind) {
      case Kind::kUniform:
        return "uniform";
      case Kind::kZipfian:
        std::snprintf(buf, sizeof(buf), "zipf:%.2f", skew);
        return buf;
      case Kind::kSelfSimilar:
        std::snprintf(buf, sizeof(buf), "selfsimilar:%.2f", skew);
        return buf;
    }
    return "?";
  }
};

// Materializes the sampler a KeyDist names over [0, records). Constructed
// once per run (the Zipf constructor sums a harmonic series over n) and
// shared read-only by the worker threads.
class KeySampler {
 public:
  KeySampler(const KeyDist& dist, uint64_t records) : uniform_(records) {
    if (dist.kind == KeyDist::Kind::kZipfian) {
      zipf_.emplace(records, dist.skew);
    } else if (dist.kind == KeyDist::Kind::kSelfSimilar) {
      selfsim_.emplace(records, dist.skew);
    }
  }

  uint64_t Next(Xoshiro256& rng) const {
    if (zipf_) return zipf_->Next(rng);
    if (selfsim_) return selfsim_->Next(rng);
    return uniform_.Next(rng);
  }

 private:
  UniformDistribution uniform_;
  std::optional<ZipfianDistribution> zipf_;
  std::optional<SelfSimilarDistribution> selfsim_;
};

// --- YCSB core mixes -------------------------------------------------------
// The industry-standard op-mix tables (Cooper et al., SoCC '10), shared by
// ext_ycsb and any bench that wants a named mix. Percentages sum to 100;
// `latest` marks workload D's recency-skewed request distribution.

struct YcsbWorkload {
  const char* name;
  const char* description;
  int read_pct;
  int update_pct;
  int insert_pct;
  int scan_pct;
  int rmw_pct;
  bool latest = false;  // D: requests target recently inserted keys.
};

inline constexpr YcsbWorkload kYcsbWorkloads[] = {
    {"A", "update heavy (50/50 read/update, zipf)", 50, 50, 0, 0, 0},
    {"B", "read mostly (95/5 read/update, zipf)", 95, 5, 0, 0, 0},
    {"C", "read only (zipf)", 100, 0, 0, 0, 0},
    {"D", "read latest (95/5 read/insert)", 95, 0, 5, 0, 0, true},
    {"E", "short ranges (95/5 scan/insert, zipf)", 0, 0, 5, 95, 0},
    {"F", "read-modify-write (50/50 read/rmw, zipf)", 50, 0, 0, 0, 50},
};

struct BenchFlags {
  std::vector<int> threads;
  int duration_ms = 150;
  uint64_t records = 100000;
  bool full = false;
  bool json = false;
  std::string json_path;  // Empty: the binary picks its default name.
  KeyDist dist;           // --dist; dist_given says it was set explicitly
  bool dist_given = false;  // (binaries keep their own default otherwise).
  int batch = 1;          // --batch; 1 = single-op mode.

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    flags.threads = BenchThreadCounts();
    flags.duration_ms = BenchDurationMs(150);
    flags.records =
        static_cast<uint64_t>(EnvInt("OPTIQL_BENCH_RECORDS", 100000));
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--threads=", 0) == 0) {
        flags.threads.clear();
        const char* spec = arg.c_str() + 10;
        while (*spec != '\0') {
          flags.threads.push_back(std::atoi(spec));
          const char* comma = std::strchr(spec, ',');
          if (comma == nullptr) break;
          spec = comma + 1;
        }
      } else if (arg.rfind("--duration=", 0) == 0) {
        flags.duration_ms = std::atoi(arg.c_str() + 11);
      } else if (arg.rfind("--records=", 0) == 0) {
        flags.records = std::strtoull(arg.c_str() + 10, nullptr, 10);
      } else if (arg.rfind("--dist=", 0) == 0) {
        if (!KeyDist::Parse(arg.substr(7), flags.dist)) {
          std::fprintf(stderr,
                       "bad --dist (want uniform | zipf[:theta] | "
                       "selfsimilar[:skew]): %s\n",
                       arg.c_str());
          std::exit(2);
        }
        flags.dist_given = true;
      } else if (arg.rfind("--batch=", 0) == 0) {
        flags.batch = std::atoi(arg.c_str() + 8);
        if (flags.batch < 1) {
          std::fprintf(stderr, "bad --batch (want >= 1): %s\n", arg.c_str());
          std::exit(2);
        }
      } else if (arg == "--full") {
        flags.full = true;
        flags.duration_ms = 1000;
        flags.records = 10000000;
      } else if (arg == "--json") {
        flags.json = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        flags.json = true;
        flags.json_path = arg.substr(7);
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--threads=a,b,c] [--duration=ms] [--records=n] "
            "[--dist=spec] [--batch=n] [--full] [--json[=path]]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return flags;
  }

  int MaxThreads() const {
    int max = 1;
    for (int t : threads) max = std::max(max, t);
    return max;
  }
};

// Accumulates benchmark rows and writes them as a JSON array of flat
// objects — the machine-readable counterpart of the printed tables, so a
// driver can track the repo's perf trajectory across commits. Values are
// emitted verbatim when they look numeric and quoted otherwise.
class JsonBenchWriter {
 public:
  using Field = std::pair<const char*, std::string>;

  void AddRecord(std::initializer_list<Field> fields) {
    std::string row = "  {";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) row += ", ";
      first = false;
      row += '"';
      row += f.first;
      row += "\": ";
      row += IsNumeric(f.second) ? f.second : Quote(f.second);
    }
    row += '}';
    rows_.push_back(std::move(row));
  }

  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  // Writes `[ ...rows ]`; returns false (and prints a warning) on I/O
  // failure so benches can keep their printed output authoritative.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(rows_[i].c_str(), f);
      std::fputs(i + 1 < rows_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %zu records to %s\n", rows_.size(), path.c_str());
    return ok;
  }

 private:
  static bool IsNumeric(const std::string& s) {
    if (s.empty()) return false;
    char* end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::string> rows_;
};

inline void PrintBanner(const char* experiment, const char* paper_ref,
                        const BenchFlags& flags) {
  std::printf("=== %s ===\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("machine: %u hardware threads; duration/point: %d ms\n",
              std::thread::hardware_concurrency(), flags.duration_ms);
  std::printf("\n");
}

}  // namespace optiql

#endif  // OPTIQL_BENCH_BENCH_COMMON_H_
