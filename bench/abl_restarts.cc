// Ablation: wasted work under contention, quantified. The centralized
// optimistic protocol aborts and re-traverses from the root whenever an
// upgrade CAS or a validation fails; OptiQL's adapted protocol (Algorithm
// 4) queues on the leaf instead, and the in-place update variants (ISSUE 6)
// avoid invalidating readers altogether for point updates of existing
// keys. This bench reports *restarts per completed operation* for all of
// them across contention levels — the CAS-retry-storm mechanism behind
// Figure 1/9, made visible. This is the evaluation harness for the
// adaptive/in-place work; pair with `ext_adaptive --json` for the
// machine-readable sweep.
#include "index_bench_common.h"

namespace optiql {
namespace {

template <class Tree>
void RunRow(const BenchFlags& flags, const char* name,
            IndexWorkload::Distribution dist, int lookup_pct, int update_pct,
            TablePrinter& table) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload workload;
  workload.records = flags.records;
  workload.lookup_pct = lookup_pct;
  workload.update_pct = update_pct;
  workload.distribution = dist;
  workload.skew = 0.2;
  workload.duration_ms = flags.duration_ms;
  PreloadIndex(*tree, workload);

  std::vector<std::string> row = {name};
  for (int threads : flags.threads) {
    workload.threads = threads;
    tree->ResetStats();
    const RunResult result = RunIndexBench(*tree, workload);
    const auto stats = tree->GetStats();
    const double restarts_per_kop =
        result.TotalOps() == 0
            ? 0.0
            : 1000.0 *
                  static_cast<double>(stats.read_restarts +
                                      stats.write_restarts) /
                  static_cast<double>(result.TotalOps());
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()) + " / " +
                  TablePrinter::Fmt(restarts_per_kop, 2));
  }
  table.AddRow(std::move(row));
}

void RunCase(const BenchFlags& flags, IndexWorkload::Distribution dist,
             int lookup_pct, int update_pct, const char* title) {
  std::printf("-- %s (%d%% lookup / %d%% update) --\n", title, lookup_pct,
              update_pct);
  std::vector<std::string> header = {
      "lock \\ threads (Mops/s / restarts-per-1k-ops)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  RunRow<BTreeOptLock>(flags, "OptLock", dist, lookup_pct, update_pct,
                       table);
  RunRow<BTreeOptLockIp>(flags, "OptLock-InPlace", dist, lookup_pct,
                         update_pct, table);
  RunRow<BTreeOptiQlNor>(flags, "OptiQL-NOR", dist, lookup_pct, update_pct,
                         table);
  RunRow<BTreeOptiQl>(flags, "OptiQL", dist, lookup_pct, update_pct, table);
  RunRow<BTreeOptiQlIp>(flags, "OptiQL-InPlace", dist, lookup_pct,
                        update_pct, table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Ablation: protocol restarts per operation",
              "mechanism behind paper Figs. 1/9 — OLC abort-and-retry vs "
              "OptiQL's queue-on-leaf vs latch-free in-place updates",
              flags);
  RunCase(flags, IndexWorkload::Distribution::kUniform, 20, 80,
          "Low contention: uniform");
  RunCase(flags, IndexWorkload::Distribution::kSelfSimilar, 20, 80,
          "High contention: self-similar 0.2");
  RunCase(flags, IndexWorkload::Distribution::kSelfSimilar, 90, 10,
          "Read-mostly hot set: self-similar 0.2");
  return 0;
}
