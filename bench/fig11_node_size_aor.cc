// Figure 11: B+-tree throughput under the skewed workload as the node size
// grows from 256 B to 16 KB (longer critical sections), for read-heavy /
// balanced / write-heavy mixes, including adjustable opportunistic read
// (OptiQL-AOR). AOR pays off with larger nodes, where readers need more
// time to finish inside the handover window.
#include "index_bench_common.h"

namespace optiql {
namespace {

const std::vector<OpMix> kMixes = {
    {"Read-heavy", 80, 20}, {"Balanced", 50, 50}, {"Write-heavy", 20, 80}};

// results[mix][lock][size] in Mops/s, as strings.
using ResultGrid = std::vector<std::vector<std::vector<std::string>>>;

template <class Tree>
void RunCell(const BenchFlags& flags, size_t lock_idx, size_t size_idx,
             ResultGrid& grid) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = IndexWorkload::Distribution::kSelfSimilar;
  base.skew = 0.2;
  BenchFlags one = flags;
  one.threads = {flags.MaxThreads()};  // Fixed thread count (paper: 40).
  SweepIndex<Tree>(one, base, kMixes,
                   [&](size_t m, size_t, const RunResult& result) {
                     grid[m][lock_idx][size_idx] =
                         TablePrinter::Fmt(result.MopsPerSec());
                   });
}

template <size_t kNodeBytes>
void RunSize(const BenchFlags& flags, size_t size_idx, ResultGrid& grid) {
  RunCell<BTree<uint64_t, uint64_t, BTreeOlcPolicy, kNodeBytes>>(
      flags, 0, size_idx, grid);
  RunCell<BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQLNor>,
                kNodeBytes>>(flags, 1, size_idx, grid);
  RunCell<BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>, kNodeBytes>>(
      flags, 2, size_idx, grid);
  RunCell<BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL, true>,
                kNodeBytes>>(flags, 3, size_idx, grid);
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 11: B+-tree throughput vs. node size (incl. AOR)",
              "paper Fig. 11 (§7.4, self-similar 0.2, fixed thread count)",
              flags);

  const std::vector<std::string> sizes = {"256",  "512",  "1024", "2048",
                                          "4096", "8192", "16384"};
  const std::vector<std::string> locks = {"OptLock", "OptiQL-NOR", "OptiQL",
                                          "OptiQL-AOR"};
  ResultGrid grid(kMixes.size(),
                  std::vector<std::vector<std::string>>(
                      locks.size(), std::vector<std::string>(sizes.size())));

  RunSize<256>(flags, 0, grid);
  RunSize<512>(flags, 1, grid);
  RunSize<1024>(flags, 2, grid);
  RunSize<2048>(flags, 3, grid);
  RunSize<4096>(flags, 4, grid);
  RunSize<8192>(flags, 5, grid);
  RunSize<16384>(flags, 6, grid);

  for (size_t m = 0; m < kMixes.size(); ++m) {
    std::printf("-- %s (%d%% lookup / %d%% update), %d threads --\n",
                kMixes[m].name, kMixes[m].lookup_pct, kMixes[m].update_pct,
                flags.MaxThreads());
    std::vector<std::string> header = {"lock \\ node bytes (Mops/s)"};
    for (const auto& s : sizes) header.push_back(s);
    TablePrinter table(std::move(header));
    for (size_t l = 0; l < locks.size(); ++l) {
      std::vector<std::string> row = {locks[l]};
      for (const auto& cell : grid[m][l]) row.push_back(cell);
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
