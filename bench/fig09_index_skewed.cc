// Figure 9: B+-tree (top) and ART (bottom) throughput under the skewed
// workload (self-similar, skew 0.2, dense keys) across five operation
// mixes and a thread sweep. Pessimistic MCS-RW/pthread fail to scale even
// read-only; OptLock collapses as writes grow; OptiQL holds; opportunistic
// read separates OptiQL from OptiQL-NOR whenever reads are present.
#include "index_bench_common.h"

namespace optiql {
namespace {

const std::vector<OpMix> kMixes(std::begin(kPaperOpMixes),
                                std::end(kPaperOpMixes));

struct Sheet {
  // [mix][lock] -> row of throughput per thread count.
  std::vector<std::vector<std::vector<std::string>>> cells;
  std::vector<std::string> lock_names;
};

template <class Tree>
void RunTree(const BenchFlags& flags, const char* lock_name, Sheet& sheet) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = IndexWorkload::Distribution::kSelfSimilar;
  base.skew = 0.2;
  base.key_space = KeySpace::kDense;

  const size_t lock_idx = sheet.lock_names.size();
  sheet.lock_names.push_back(lock_name);
  for (auto& mix_rows : sheet.cells) {
    mix_rows.emplace_back(flags.threads.size());
  }
  SweepIndex<Tree>(flags, base, kMixes,
                   [&](size_t m, size_t t, const RunResult& result) {
                     sheet.cells[m][lock_idx][t] =
                         TablePrinter::Fmt(result.MopsPerSec());
                   });
}

void PrintSheet(const char* index_name, const BenchFlags& flags,
                const Sheet& sheet) {
  for (size_t m = 0; m < kMixes.size(); ++m) {
    std::printf("-- %s, %s (%d%% lookup / %d%% update) --\n", index_name,
                kMixes[m].name, kMixes[m].lookup_pct, kMixes[m].update_pct);
    std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));
    for (size_t l = 0; l < sheet.lock_names.size(); ++l) {
      std::vector<std::string> row = {sheet.lock_names[l]};
      for (const auto& cell : sheet.cells[m][l]) row.push_back(cell);
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 9: index throughput under skewed access",
              "paper Fig. 9 (§7.3, self-similar 0.2, dense keys)", flags);

  {
    Sheet sheet;
    sheet.cells.resize(kMixes.size());
    RunTree<BTreeOptLock>(flags, "OptLock", sheet);
    RunTree<BTreeOptiQlNor>(flags, "OptiQL-NOR", sheet);
    RunTree<BTreeOptiQl>(flags, "OptiQL", sheet);
    RunTree<BTreePthread>(flags, "pthread", sheet);
    RunTree<BTreeMcsRw>(flags, "MCS-RW", sheet);
    PrintSheet("B+-tree", flags, sheet);
  }
  {
    Sheet sheet;
    sheet.cells.resize(kMixes.size());
    RunTree<ArtOptLock>(flags, "OptLock", sheet);
    RunTree<ArtOptiQlNor>(flags, "OptiQL-NOR", sheet);
    RunTree<ArtOptiQl>(flags, "OptiQL", sheet);
    RunTree<ArtPthread>(flags, "pthread", sheet);
    RunTree<ArtMcsRw>(flags, "MCS-RW", sheet);
    PrintSheet("ART", flags, sheet);
  }
  return 0;
}
