// Micro-benchmark for the intra-node search kernels (src/common/simd.h):
// scalar vs SIMD lower/upper bound at every B+-tree node size the paper
// sweeps (Figure 11), and scalar vs SIMD ART FindChild for each node type.
// This is the evidence behind the SIMD rewrite of the index hot paths —
// the win is measured here, not asserted.
//
//   ./micro_search_kernel [--duration=ms] [--json[=path]]
//
// With --json, results are also written as a JSON array (default path
// BENCH_search_kernel.json) so the perf trajectory is machine-readable.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/simd.h"
#include "index/art_nodes.h"
#include "index/btree.h"
#include "locks/optlock.h"

namespace optiql {
namespace {

using Clock = std::chrono::steady_clock;

constexpr int kProbeCount = 1 << 14;  // Pow2 ring of precomputed probes.

struct Measurement {
  double ops_per_sec;
  uint64_t checksum;  // Defeats dead-code elimination; printed in a footer.
};

// Runs `op(i)` for ~duration_ms and reports ops/s. `op` returns a value
// folded into the checksum so the compiler cannot drop the kernel.
template <class F>
Measurement Measure(int duration_ms, F&& op) {
  uint64_t checksum = 0;
  for (int i = 0; i < kProbeCount; ++i) checksum += op(i);  // Warm-up.
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::milliseconds(duration_ms);
  uint64_t ops = 0;
  auto now = start;
  while (now < deadline) {
    for (int i = 0; i < kProbeCount; ++i) {
      checksum += op(static_cast<int>(ops) + i);
    }
    ops += kProbeCount;
    now = Clock::now();
  }
  const double secs = std::chrono::duration<double>(now - start).count();
  return {static_cast<double>(ops) / secs, checksum};
}

uint64_t g_checksum = 0;

void Report(JsonBenchWriter* json, const char* kernel, size_t node_bytes,
            size_t keys, const Measurement& scalar,
            const Measurement& simd_m) {
  std::printf("%-18s %8zu %6zu %10.1f %10.1f %7.2fx\n", kernel, node_bytes,
              keys, scalar.ops_per_sec / 1e6, simd_m.ops_per_sec / 1e6,
              simd_m.ops_per_sec / scalar.ops_per_sec);
  g_checksum += scalar.checksum + simd_m.checksum;
  if (json != nullptr) {
    for (const auto& [variant, m] :
         {std::pair<const char*, const Measurement&>{"scalar", scalar},
          {"simd", simd_m}}) {
      json->AddRecord({{"bench", "search_kernel"},
                       {"backend", simd::kBackendName},
                       {"kernel", kernel},
                       {"node_bytes", std::to_string(node_bytes)},
                       {"keys", std::to_string(keys)},
                       {"variant", variant},
                       {"ops_per_sec", JsonBenchWriter::Num(m.ops_per_sec)}});
    }
  }
}

// --- B+-tree node search: sorted u64 arrays at real node geometries ---

template <size_t kNodeBytes>
void BenchBTreeSize(const BenchFlags& flags, JsonBenchWriter* json) {
  using Tree = BTree<uint64_t, uint64_t, BTreeOlcPolicy, kNodeBytes>;
  std::mt19937_64 rng(0x5EED + kNodeBytes);

  for (const auto& [kernel, n] :
       {std::pair<const char*, size_t>{"leaf_lower_bound",
                                       Tree::LeafCapacity()},
        {"inner_upper_bound", Tree::InnerCapacity()}}) {
    std::vector<uint64_t> keys(n);
    for (size_t i = 0; i < n; ++i) keys[i] = 2 * i + 1;  // Odd, sorted.
    std::vector<uint64_t> probes(kProbeCount);
    for (auto& p : probes) p = rng() % (2 * n + 2);  // Hits and misses.
    const uint64_t* k = keys.data();
    const uint64_t* pr = probes.data();
    const uint16_t count = static_cast<uint16_t>(n);

    const bool lower = kernel[0] == 'l';
    const Measurement scalar = Measure(flags.duration_ms, [&](int i) {
      const uint64_t key = pr[i & (kProbeCount - 1)];
      return lower ? simd::ScalarLowerBound(k, count, key)
                   : simd::ScalarUpperBound(k, count, key);
    });
    const Measurement vec = Measure(flags.duration_ms, [&](int i) {
      const uint64_t key = pr[i & (kProbeCount - 1)];
      return lower ? simd::LowerBound(k, count, key)
                   : simd::UpperBound(k, count, key);
    });
    Report(json, kernel, kNodeBytes, n, scalar, vec);
  }
}

// --- ART FindChild: one populated node per type ---

using Nodes = ArtNodes<OptLock>;

// The pre-SIMD FindChild for Node4/Node16 (scalar key scan); Node48 and
// Node256 are table lookups with no vector counterpart, so both columns
// run the same code there (expected speedup ~1.0x, reported for
// completeness across all four node types).
void* ScalarFindChild(const Nodes::Node* node, uint8_t byte) {
  switch (node->type) {
    case Nodes::NodeType::kNode4: {
      const auto* n = static_cast<const Nodes::Node4*>(node);
      const int idx = simd::ScalarFindByte(
          n->keys, n->count <= 4 ? n->count : 4, byte);
      return idx >= 0 ? n->children[idx] : nullptr;
    }
    case Nodes::NodeType::kNode16: {
      const auto* n = static_cast<const Nodes::Node16*>(node);
      const int idx = simd::ScalarFindByte(
          n->keys, n->count <= 16 ? n->count : 16, byte);
      return idx >= 0 ? n->children[idx] : nullptr;
    }
    default:
      return Nodes::FindChild(node, byte);
  }
}

void BenchArtNode(const BenchFlags& flags, JsonBenchWriter* json,
                  Nodes::NodeType type, const char* kernel, int fanout,
                  size_t node_bytes) {
  Nodes::Node* node = Nodes::NewNode(type);
  std::mt19937_64 rng(fanout);
  std::vector<uint8_t> present;
  for (int i = 0; i < fanout; ++i) {
    // Spread routing bytes over the whole space, like real radix levels.
    const uint8_t byte = static_cast<uint8_t>((i * 256) / fanout + 1);
    present.push_back(byte);
    Nodes::AddChild(node, byte, reinterpret_cast<void*>(uintptr_t{0x40}));
  }
  std::vector<uint8_t> probes(kProbeCount);
  for (auto& p : probes) {
    // 75% hits, 25% uniform (mostly misses) — a lookup-heavy mix.
    p = (rng() % 4 != 0) ? present[rng() % present.size()]
                         : static_cast<uint8_t>(rng());
  }
  const uint8_t* pr = probes.data();

  const Measurement scalar = Measure(flags.duration_ms, [&](int i) {
    return reinterpret_cast<uintptr_t>(
        ScalarFindChild(node, pr[i & (kProbeCount - 1)]));
  });
  const Measurement vec = Measure(flags.duration_ms, [&](int i) {
    return reinterpret_cast<uintptr_t>(
        Nodes::FindChild(node, pr[i & (kProbeCount - 1)]));
  });
  Report(json, kernel, node_bytes, static_cast<size_t>(fanout), scalar, vec);
  Nodes::DeleteNode(node);
}

int Run(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("micro_search_kernel",
              "extension: intra-node search kernels (scalar vs SIMD)",
              flags);
  std::printf("simd backend: %s\n\n", simd::kBackendName);
  std::printf("%-18s %8s %6s %10s %10s %8s\n", "kernel", "bytes", "keys",
              "scalarM/s", "simdM/s", "speedup");

  JsonBenchWriter writer;
  JsonBenchWriter* json = flags.json ? &writer : nullptr;

  BenchBTreeSize<256>(flags, json);
  BenchBTreeSize<512>(flags, json);
  BenchBTreeSize<1024>(flags, json);
  BenchBTreeSize<4096>(flags, json);
  BenchBTreeSize<16384>(flags, json);

  BenchArtNode(flags, json, Nodes::NodeType::kNode4, "art_find_child4", 4,
               sizeof(Nodes::Node4));
  BenchArtNode(flags, json, Nodes::NodeType::kNode16, "art_find_child16", 16,
               sizeof(Nodes::Node16));
  BenchArtNode(flags, json, Nodes::NodeType::kNode48, "art_find_child48", 48,
               sizeof(Nodes::Node48));
  BenchArtNode(flags, json, Nodes::NodeType::kNode256, "art_find_child256",
               256, sizeof(Nodes::Node256));

  std::printf("\n(checksum %llu)\n",
              static_cast<unsigned long long>(g_checksum));
  if (json != nullptr) {
    const std::string path =
        flags.json_path.empty() ? "BENCH_search_kernel.json" : flags.json_path;
    writer.WriteFile(path);
  }
  return 0;
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) { return optiql::Run(argc, argv); }
