// Extension: OptiQL beyond hierarchical indexes (paper §1.2 "OptiQL itself
// is general-purpose"). A per-bucket-locked hash table isolates the bucket
// lock completely — no coupling, no upgrades — so the robustness gap
// between centralized and queue-based bucket locks is maximally visible on
// skewed (hot-bucket) workloads.
#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/table_printer.h"
#include "index/hash_table.h"
#include "workload/distributions.h"

namespace optiql {
namespace {

template <class Table>
RunResult RunHashBench(const BenchFlags& flags, Table& table,
                       uint64_t records, int lookup_pct, int threads) {
  RunOptions options;
  options.threads = threads;
  options.duration_ms = flags.duration_ms;
  const SelfSimilarDistribution dist(records, 0.2);
  return RunFixedDuration(
      options, [&](int tid, const std::atomic<bool>& stop,
                   WorkerStats& stats) {
        Xoshiro256 rng(0x4a5bULL * 131 + static_cast<uint64_t>(tid));
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t key = dist.Next(rng);
          if (rng.NextBounded(100) < static_cast<uint64_t>(lookup_pct)) {
            uint64_t out = 0;
            table.Lookup(key, out);
          } else {
            table.Update(key, rng.Next());
          }
          ++stats.ops;
        }
      });
}

template <class Table>
void RunRow(const BenchFlags& flags, const char* name, int lookup_pct,
            size_t buckets, TablePrinter& out) {
  Table table(buckets);
  for (uint64_t k = 0; k < flags.records; ++k) table.Insert(k, k);
  std::vector<std::string> row = {name};
  for (int threads : flags.threads) {
    row.push_back(TablePrinter::Fmt(
        RunHashBench(flags, table, flags.records, lookup_pct, threads)
            .MopsPerSec()));
  }
  out.AddRow(std::move(row));
}

void RunMix(const BenchFlags& flags, const char* title, int lookup_pct,
            size_t buckets) {
  std::printf("-- %s (%zu buckets, self-similar 0.2) --\n", title, buckets);
  std::vector<std::string> header = {"bucket lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  RunRow<HashTable<HashOlcPolicy>>(flags, "OptLock", lookup_pct, buckets,
                                   table);
  RunRow<HashTable<HashOptiQlPolicy<OptiQLNor>>>(flags, "OptiQL-NOR",
                                                 lookup_pct, buckets, table);
  RunRow<HashTable<HashOptiQlPolicy<OptiQL>>>(flags, "OptiQL", lookup_pct,
                                              buckets, table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: hash table with per-bucket locks",
              "paper §1.2 (generality beyond indexing)", flags);
  // Few buckets = extreme per-lock contention; many = low contention.
  RunMix(flags, "Update-only, hot buckets", 0, 16);
  RunMix(flags, "Balanced, hot buckets", 50, 16);
  RunMix(flags, "Balanced, provisioned buckets", 50, 1 << 16);
  return 0;
}
