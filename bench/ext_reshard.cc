// Extension: elastic sharding (ISSUE 10). Two questions:
//
//   A. Online-split timeline — full-mix workers hammer a range-routed
//      store while a controller thread runs a live Split through the
//      epoch-published double-routing window. Per-10ms throughput slices
//      plus per-phase latency histograms show whether the migration
//      stalls the world. The acceptance bar lives here: throughput during
//      the split must stay >= 50% of steady state, with no empty slice
//      (no stop-the-world gap).
//   B. Scan cost by router — the same scan workload against the
//      hash-routed store (scatter-gather across every shard + k-way
//      merge) and the range-routed store (only the spans the range
//      intersects). The gap is the point of range routing.
//
// Emits BENCH_reshard.json with --json.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"
#include "store/sharded_store.h"

namespace optiql {
namespace {

using HashStore = ShardedStore<BTreeOptiQl>;
using RangeStore = ShardedStore<BTreeOptiQl, RangeShardRouter>;
using Clock = std::chrono::steady_clock;

constexpr size_t kShards = 8;
constexpr uint64_t kSliceMs = 10;         // Timeline resolution.
constexpr size_t kMaxSlices = 4096;       // 40s ceiling, plenty.
constexpr uint64_t kLatBucketNs = 250;    // Histogram resolution.
constexpr size_t kLatBuckets = 4096 + 1;  // Last bucket = overflow (>1ms).

// Phases of the timeline run, indexed by the controller's atomic.
enum Phase { kSteady = 0, kDuringSplit = 1, kAfterSplit = 2 };

struct WorkerTimeline {
  std::vector<uint64_t> slice_ops = std::vector<uint64_t>(kMaxSlices, 0);
  // Per-phase latency histogram, kLatBucketNs-wide buckets.
  std::array<std::vector<uint64_t>, 3> hist = {
      std::vector<uint64_t>(kLatBuckets, 0),
      std::vector<uint64_t>(kLatBuckets, 0),
      std::vector<uint64_t>(kLatBuckets, 0)};
};

double PercentileUs(const std::vector<uint64_t>& hist, double pct) {
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  if (total == 0) return 0;
  const uint64_t want = static_cast<uint64_t>(static_cast<double>(total) * pct);
  uint64_t seen = 0;
  for (size_t b = 0; b < hist.size(); ++b) {
    seen += hist[b];
    if (seen >= want) {
      return static_cast<double>((b + 1) * kLatBucketNs) / 1000.0;
    }
  }
  return static_cast<double>(hist.size() * kLatBucketNs) / 1000.0;
}

uint64_t HistOps(const std::vector<uint64_t>& hist) {
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  return total;
}

// Full-mix worker: 60% lookup, 20% upsert, 10% remove, 10% short scan.
// Every op is timed; the latency lands in the histogram of whatever phase
// the controller has published, and the op count lands in its time slice.
void TimelineWorker(RangeStore& store, uint64_t space, uint64_t seed,
                    const std::atomic<bool>& stop,
                    const std::atomic<int>& phase, Clock::time_point start,
                    WorkerTimeline& out) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  while (!stop.load(std::memory_order_acquire)) {
    const uint64_t key = rng.Next() % space;
    const uint64_t op = rng.Next() % 10;
    const Clock::time_point t0 = Clock::now();
    switch (op) {
      case 0:
      case 1:
        store.Upsert(key, key + 1);
        break;
      case 2:
        store.Remove(key);
        break;
      case 3:
        scanned.clear();
        store.Scan(key, 32, scanned);
        break;
      default: {
        uint64_t value = 0;
        store.Lookup(key, value);
        break;
      }
    }
    const Clock::time_point t1 = Clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    const uint64_t slice = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - start)
            .count() / kSliceMs);
    if (slice < kMaxSlices) ++out.slice_ops[slice];
    const int ph = phase.load(std::memory_order_relaxed);
    ++out.hist[static_cast<size_t>(ph)]
          [std::min<uint64_t>(ns / kLatBucketNs, kLatBuckets - 1)];
  }
}

void RunSplitTimeline(const BenchFlags& flags, JsonBenchWriter& json) {
  const uint64_t space = flags.records;
  const int threads = std::max(2, flags.MaxThreads());
  const int steady_ms = std::max(flags.duration_ms, 300);

  RangeStore store(kShards, RangeShardRouter::EvenOver(space, kShards));
  for (uint64_t k = 0; k < space; ++k) store.Insert(k, k + 1);

  // Split the middle span at its midpoint: a real migration (half that
  // span's keys move) against a boundary no existing span uses.
  const uint64_t span = space / kShards;
  const uint64_t split_key = (kShards / 2) * span + span / 2;

  std::printf(
      "-- online split timeline: %d workers, %u keys, split @ %llu --\n",
      threads, static_cast<unsigned>(space),
      static_cast<unsigned long long>(split_key));

  std::atomic<bool> stop{false};
  std::atomic<int> phase{kSteady};
  std::vector<WorkerTimeline> timelines(static_cast<size_t>(threads));
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TimelineWorker(store, space, 0x8E5ADULL * 257 + static_cast<uint64_t>(t),
                     stop, phase, start, timelines[static_cast<size_t>(t)]);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(steady_ms));
  phase.store(kDuringSplit, std::memory_order_release);
  const Clock::time_point split_begin = Clock::now();
  const bool split_ok = store.Split(split_key);
  const Clock::time_point split_end = Clock::now();
  phase.store(kAfterSplit, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(steady_ms / 2));
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  OPTIQL_CHECK(split_ok);
  const double split_secs =
      std::chrono::duration<double>(split_end - split_begin).count();
  const auto slice_of = [&](Clock::time_point tp) {
    return static_cast<size_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(tp - start)
            .count() / kSliceMs);
  };
  const size_t split_begin_slice = slice_of(split_begin);
  const size_t split_end_slice = slice_of(split_end);
  const size_t last_slice = slice_of(Clock::now());

  // Merge per-thread slices and histograms.
  std::vector<uint64_t> slices(kMaxSlices, 0);
  std::array<std::vector<uint64_t>, 3> hist = {
      std::vector<uint64_t>(kLatBuckets, 0),
      std::vector<uint64_t>(kLatBuckets, 0),
      std::vector<uint64_t>(kLatBuckets, 0)};
  for (const WorkerTimeline& tl : timelines) {
    for (size_t s = 0; s < kMaxSlices; ++s) slices[s] += tl.slice_ops[s];
    for (size_t p = 0; p < 3; ++p) {
      for (size_t b = 0; b < kLatBuckets; ++b) hist[p][b] += tl.hist[p][b];
    }
  }

  // Steady mean skips the first two slices (thread ramp) and stops short
  // of the split. The split window is measured two ways: exact op counts
  // from the phase histogram (robust even when the split fits inside one
  // slice) and the worst slice that overlaps the window (the
  // stop-the-world probe).
  uint64_t steady_ops = 0;
  size_t steady_slices = 0;
  for (size_t s = 2; s + 1 < split_begin_slice; ++s) {
    steady_ops += slices[s];
    ++steady_slices;
  }
  const double steady_mops =
      steady_slices == 0
          ? 0
          : static_cast<double>(steady_ops) /
                (static_cast<double>(steady_slices * kSliceMs) * 1e3);
  const double split_mops =
      split_secs <= 0
          ? 0
          : static_cast<double>(HistOps(hist[kDuringSplit])) / split_secs /
                1e6;
  uint64_t worst_split_slice = UINT64_MAX;
  for (size_t s = split_begin_slice; s <= split_end_slice && s < kMaxSlices;
       ++s) {
    worst_split_slice = std::min(worst_split_slice, slices[s]);
  }
  if (worst_split_slice == UINT64_MAX) worst_split_slice = 0;
  const double steady_slice_ops =
      steady_slices == 0
          ? 0
          : static_cast<double>(steady_ops) /
                static_cast<double>(steady_slices);
  const double split_frac = steady_mops == 0 ? 0 : split_mops / steady_mops;
  const double worst_slice_frac =
      steady_slice_ops == 0
          ? 0
          : static_cast<double>(worst_split_slice) / steady_slice_ops;

  TablePrinter table({"phase", "Mops/s", "p50 us", "p99 us", "ops"});
  const char* names[3] = {"steady", "during split", "after split"};
  const double mops_by_phase[3] = {
      steady_mops, split_mops,
      static_cast<double>(HistOps(hist[kAfterSplit])) /
          (static_cast<double>(steady_ms / 2) * 1e3)};
  for (size_t p = 0; p < 3; ++p) {
    table.AddRow({names[p], TablePrinter::Fmt(mops_by_phase[p]),
                  TablePrinter::Fmt(PercentileUs(hist[p], 0.50)),
                  TablePrinter::Fmt(PercentileUs(hist[p], 0.99)),
                  std::to_string(HistOps(hist[p]))});
    json.AddRecord(
        {{"phase", "timeline_summary"},
         {"window", names[p]},
         {"threads", JsonBenchWriter::Num(threads)},
         {"mops", JsonBenchWriter::Num(mops_by_phase[p])},
         {"p50_us", JsonBenchWriter::Num(PercentileUs(hist[p], 0.50))},
         {"p99_us", JsonBenchWriter::Num(PercentileUs(hist[p], 0.99))},
         {"ops", JsonBenchWriter::Num(static_cast<double>(HistOps(hist[p])))}});
  }
  table.Print();
  std::printf(
      "split took %.2f ms; throughput during split = %.0f%% of steady; "
      "worst overlapping slice = %.0f%% of a steady slice\n",
      split_secs * 1e3, split_frac * 100, worst_slice_frac * 100);
  json.AddRecord(
      {{"phase", "split_acceptance"},
       {"split_ms", JsonBenchWriter::Num(split_secs * 1e3)},
       {"split_over_steady", JsonBenchWriter::Num(split_frac)},
       {"worst_slice_over_steady", JsonBenchWriter::Num(worst_slice_frac)},
       {"stop_the_world_gap",
        worst_split_slice == 0 && split_end_slice > split_begin_slice
            ? "true"
            : "false"}});

  // The raw timeline, for plotting. Slices after the workers stopped are
  // noise; emit up to the last full slice.
  for (size_t s = 0; s + 1 < last_slice && s < kMaxSlices; ++s) {
    if (slices[s] == 0 && s > split_end_slice + 2) break;
    json.AddRecord(
        {{"phase", "timeline"},
         {"slice_ms", JsonBenchWriter::Num(static_cast<double>(s * kSliceMs))},
         {"ops", JsonBenchWriter::Num(static_cast<double>(slices[s]))},
         {"window", s < split_begin_slice     ? "steady"
                    : s <= split_end_slice    ? "split"
                                              : "after"}});
  }
  std::printf("\n");
}

// Fixed-duration scan loop: uniform start keys, fixed scan length.
template <class Store>
double RunScanLoop(Store& store, const BenchFlags& flags, int threads,
                   uint64_t space, size_t scan_len) {
  RunOptions options;
  options.threads = threads;
  options.duration_ms = flags.duration_ms;
  const RunResult result = RunFixedDuration(
      options,
      [&](int tid, const std::atomic<bool>& stop, WorkerStats& stats) {
        Xoshiro256 rng(0x5CA4ULL * 131 + static_cast<uint64_t>(tid));
        std::vector<std::pair<uint64_t, uint64_t>> out;
        while (!stop.load(std::memory_order_acquire)) {
          out.clear();
          store.Scan(rng.Next() % space, scan_len, out);
          ++stats.ops;
        }
      });
  return result.MopsPerSec();
}

void RunScanCost(const BenchFlags& flags, JsonBenchWriter& json) {
  const uint64_t space = flags.records;
  auto hash_store = std::make_unique<HashStore>(kShards);
  auto range_store = std::make_unique<RangeStore>(
      kShards, RangeShardRouter::EvenOver(space, kShards));
  for (uint64_t k = 0; k < space; ++k) {
    hash_store->Insert(k, k + 1);
    range_store->Insert(k, k + 1);
  }

  std::printf(
      "-- scan cost by router (%zu shards): hash scatter-gathers every "
      "shard, range touches only intersecting spans --\n",
      kShards);
  TablePrinter table(
      {"threads", "scan len", "hash Mscan/s", "range Mscan/s", "range/hash"});
  std::vector<int> thread_counts = {1};
  if (flags.MaxThreads() > 1) thread_counts.push_back(flags.MaxThreads());
  for (int threads : thread_counts) {
    for (size_t scan_len : {size_t{16}, size_t{100}}) {
      const double hash_mscans =
          RunScanLoop(*hash_store, flags, threads, space, scan_len);
      const double range_mscans =
          RunScanLoop(*range_store, flags, threads, space, scan_len);
      const double ratio =
          hash_mscans == 0 ? 0 : range_mscans / hash_mscans;
      char ratio_buf[32];
      std::snprintf(ratio_buf, sizeof(ratio_buf), "%.2fx", ratio);
      table.AddRow({std::to_string(threads), std::to_string(scan_len),
                    TablePrinter::Fmt(hash_mscans),
                    TablePrinter::Fmt(range_mscans), ratio_buf});
      json.AddRecord({{"phase", "scan_cost"},
                      {"shards", JsonBenchWriter::Num(kShards)},
                      {"threads", JsonBenchWriter::Num(threads)},
                      {"scan_len", JsonBenchWriter::Num(scan_len)},
                      {"hash_mscans", JsonBenchWriter::Num(hash_mscans)},
                      {"range_mscans", JsonBenchWriter::Num(range_mscans)},
                      {"range_over_hash", JsonBenchWriter::Num(ratio)}});
    }
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: elastic sharding (online split/merge)",
              "range routing + epoch-published tables, ISSUE 10", flags);
  JsonBenchWriter json;
  RunSplitTimeline(flags, json);
  RunScanCost(flags, json);
  if (flags.json) {
    const std::string path =
        flags.json_path.empty() ? "BENCH_reshard.json" : flags.json_path;
    json.WriteFile(path);
  }
  return 0;
}
