// Figure 13: ART throughput with *sparse* integer keys under the skewed
// distribution — sparse keys force lazy expansion, so hot leaves hang off
// higher-level nodes and updates must upgrade (CAS) instead of taking a
// last-level lock directly. OptLock suffers excessive retries; the OptiQL
// variants use contention expansion (§6.2) to materialize hot paths and
// local-spin. The expansion count is reported as a diagnostic.
#include "index_bench_common.h"

namespace optiql {
namespace {

const std::vector<OpMix> kMixes = {{"Read-heavy", 80, 20},
                                   {"Write-heavy", 20, 80}};

template <class Tree>
void RunRow(const BenchFlags& flags, const char* name, size_t mix,
            TablePrinter& table, std::string* diag) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = IndexWorkload::Distribution::kSelfSimilar;
  base.skew = 0.2;
  base.key_space = KeySpace::kSparse;

  auto tree = std::make_unique<Tree>();
  IndexWorkload workload = base;
  workload.duration_ms = flags.duration_ms;
  PreloadIndex(*tree, workload);
  workload.lookup_pct = kMixes[mix].lookup_pct;
  workload.update_pct = kMixes[mix].update_pct;

  std::vector<std::string> row = {name};
  for (int threads : flags.threads) {
    workload.threads = threads;
    const RunResult result = RunIndexBench(*tree, workload);
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()));
  }
  if (diag != nullptr) {
    *diag = std::to_string(tree->ContentionExpansions());
  }
  table.AddRow(std::move(row));
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 13: ART with sparse keys (lazy expansion)",
              "paper Fig. 13 (§7.6, self-similar 0.2, sparse 8-byte keys)",
              flags);
  for (size_t m = 0; m < kMixes.size(); ++m) {
    std::printf("-- (%c) %s (%d%% lookup / %d%% update) --\n",
                static_cast<char>('a' + m), kMixes[m].name,
                kMixes[m].lookup_pct, kMixes[m].update_pct);
    std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));
    std::string ql_expansions, nor_expansions;
    RunRow<ArtOptLock>(flags, "OptLock", m, table, nullptr);
    RunRow<ArtOptiQlNor>(flags, "OptiQL-NOR", m, table, &nor_expansions);
    RunRow<ArtOptiQl>(flags, "OptiQL", m, table, &ql_expansions);
    RunRow<ArtPthread>(flags, "pthread", m, table, nullptr);
    RunRow<ArtMcsRw>(flags, "MCS-RW", m, table, nullptr);
    table.Print();
    std::printf("contention expansions: OptiQL=%s OptiQL-NOR=%s\n\n",
                ql_expansions.c_str(), nor_expansions.c_str());
  }
  return 0;
}
