// Extension: sharded-store contention study. Sweeps shard count × threads
// × skew for the update-only mix (the regime where Fig. 9 shows OptLock's
// contention collapse) over OptiQL, OptLock and MCS-RW B+-trees composed
// through ShardedStore. Hash routing scatters the self-similar hot keys —
// which are *adjacent* and share leaves in a single tree — across shards,
// so rising shard counts flatten the collapse; the sweep quantifies how
// much of each lock's robustness sharding can buy back.
//
// With --json, results are also written as a JSON array (default path
// BENCH_sharded.json): one record per (lock, skew, shards, threads) cell.
#include <string>
#include <vector>

#include "bench_common.h"
#include "index_bench_common.h"
#include "store/sharded_store.h"

namespace optiql {
namespace {

constexpr size_t kShardCounts[] = {1, 4, 16};

struct SkewPoint {
  const char* name;
  IndexWorkload::Distribution distribution;
  double skew;
};

constexpr SkewPoint kSkewPoints[] = {
    {"uniform", IndexWorkload::Distribution::kUniform, 0.0},
    {"selfsim-0.2", IndexWorkload::Distribution::kSelfSimilar, 0.2},
};

template <class Tree>
void RunLock(const BenchFlags& flags, const char* lock_name,
             JsonBenchWriter* json) {
  for (const SkewPoint& skew : kSkewPoints) {
    std::printf("-- %s, update-only, %s --\n", lock_name, skew.name);
    std::vector<std::string> header = {"shards \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));

    for (size_t shards : kShardCounts) {
      ShardedStore<Tree> store(shards);
      IndexWorkload workload;
      workload.records = flags.records;
      workload.lookup_pct = 0;
      workload.update_pct = 100;
      workload.distribution = skew.distribution;
      workload.skew = skew.skew;
      workload.key_space = KeySpace::kDense;
      workload.duration_ms = flags.duration_ms;
      PreloadIndex(store, workload);

      std::vector<std::string> row = {std::to_string(shards)};
      for (int threads : flags.threads) {
        workload.threads = threads;
        const double mops = RunIndexBench(store, workload).MopsPerSec();
        row.push_back(TablePrinter::Fmt(mops));
        if (json != nullptr) {
          json->AddRecord({{"bench", "sharded"},
                           {"lock", lock_name},
                           {"skew", skew.name},
                           {"shards", std::to_string(shards)},
                           {"threads", std::to_string(threads)},
                           {"mops", JsonBenchWriter::Num(mops)}});
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: sharded store, shard count x threads x skew",
              "beyond the paper; partition-aware view of Fig. 9 (§7.3)",
              flags);

  JsonBenchWriter json;
  JsonBenchWriter* sink = flags.json ? &json : nullptr;
  RunLock<BTreeOptiQl>(flags, "OptiQL", sink);
  RunLock<BTreeOptLock>(flags, "OptLock", sink);
  RunLock<BTreeMcsRw>(flags, "MCS-RW", sink);

  if (flags.json) {
    json.WriteFile(flags.json_path.empty() ? "BENCH_sharded.json"
                                           : flags.json_path);
  }
  return 0;
}
