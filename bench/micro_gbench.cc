// Google-benchmark micro costs (supplementary to §5.4's overhead
// discussion): uncontended acquire/release cycles per lock, optimistic read
// snapshot+validate cost, queue-node ID translation (the §6.3 indirection),
// and index point-operation costs.
#include <benchmark/benchmark.h>

#include "core/optiql.h"
#include "harness/lock_adapters.h"
#include "index/art.h"
#include "index/btree.h"
#include "qnode/qnode_pool.h"

namespace optiql {
namespace {

template <class Lock>
void BM_UncontendedAcquireRelease(benchmark::State& state) {
  Lock lock;
  typename LockOps<Lock>::Ctx ctx;
  for (auto _ : state) {
    LockOps<Lock>::AcquireEx(lock, ctx);
    LockOps<Lock>::ReleaseEx(lock, ctx);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, TtsLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, TicketLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, OptLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, McsLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, McsRwLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, OptiQLNor);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, OptiQL);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, ClhLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, OptiCLH);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, HybridLock);
BENCHMARK_TEMPLATE(BM_UncontendedAcquireRelease, SharedMutexLock);

template <class Lock>
void BM_OptimisticReadSnapshotValidate(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    uint64_t v;
    benchmark::DoNotOptimize(lock.AcquireSh(v));
    benchmark::DoNotOptimize(lock.ReleaseSh(v));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_OptimisticReadSnapshotValidate, OptLock);
BENCHMARK_TEMPLATE(BM_OptimisticReadSnapshotValidate, OptiQL);
BENCHMARK_TEMPLATE(BM_OptimisticReadSnapshotValidate, OptiQLNor);
BENCHMARK_TEMPLATE(BM_OptimisticReadSnapshotValidate, OptiCLH);
BENCHMARK_TEMPLATE(BM_OptimisticReadSnapshotValidate, HybridLock);

// Ablation: the cost of the §6.3 queue-node ID <-> pointer indirection.
void BM_QNodeIdTranslation(benchmark::State& state) {
  QNodePool& pool = QNodePool::Instance();
  QNode* node = ThreadQNodes::Get(0);
  const uint32_t id = pool.ToId(node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ToPtr(id));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QNodeIdTranslation);

void BM_QNodeRawPointerBaseline(benchmark::State& state) {
  QNode* node = ThreadQNodes::Get(0);
  QNode* volatile slot = node;  // Simulate a pointer-carrying lock word.
  for (auto _ : state) {
    benchmark::DoNotOptimize(slot);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_QNodeRawPointerBaseline);

// Single-threaded index point-operation costs.
template <class Tree>
void BM_BTreeLookupHit(benchmark::State& state) {
  static Tree* tree = [] {
    auto* t = new Tree();
    for (uint64_t k = 0; k < 100000; ++k) t->Insert(k, k);
    return t;
  }();
  uint64_t key = 0;
  for (auto _ : state) {
    uint64_t out;
    benchmark::DoNotOptimize(tree->Lookup(key, out));
    key = (key + 7919) % 100000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_BTreeLookupHit,
                   BTree<uint64_t, uint64_t, BTreeOlcPolicy>);
BENCHMARK_TEMPLATE(BM_BTreeLookupHit,
                   BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>);

template <class Tree>
void BM_BTreeUpdate(benchmark::State& state) {
  static Tree* tree = [] {
    auto* t = new Tree();
    for (uint64_t k = 0; k < 100000; ++k) t->Insert(k, k);
    return t;
  }();
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Update(key, key + 1));
    key = (key + 7919) % 100000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_BTreeUpdate,
                   BTree<uint64_t, uint64_t, BTreeOlcPolicy>);
BENCHMARK_TEMPLATE(BM_BTreeUpdate,
                   BTree<uint64_t, uint64_t, BTreeOptiQlPolicy<OptiQL>>);

template <class Tree>
void BM_ArtLookupHit(benchmark::State& state) {
  static Tree* tree = [] {
    auto* t = new Tree();
    for (uint64_t k = 0; k < 100000; ++k) t->InsertInt(k, k);
    return t;
  }();
  uint64_t key = 0;
  for (auto _ : state) {
    uint64_t out;
    benchmark::DoNotOptimize(tree->LookupInt(key, out));
    key = (key + 7919) % 100000;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_ArtLookupHit, ArtTree<ArtOlcPolicy>);
BENCHMARK_TEMPLATE(BM_ArtLookupHit, ArtTree<ArtOptiQlPolicy<OptiQL>>);

}  // namespace
}  // namespace optiql

BENCHMARK_MAIN();
