// Extension (paper §8 future work): CLH adapted with optimistic reads
// ("OptiCLH") head-to-head with OptiQL across the Figure-6/7 conditions.
// CLH's node-migration design removes the wait-for-link step from release
// and folds version handover into the unblocking store, at the cost of a
// pooled-node pop/push per acquisition.
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

template <class Lock>
void RunExclusiveRow(const BenchFlags& flags, const ContentionLevel& level,
                     TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int threads : flags.threads) {
    MicroBenchConfig config;
    config.num_locks = level.num_locks;
    config.read_pct = 0;
    config.threads = threads;
    config.duration_ms = flags.duration_ms;
    row.push_back(TablePrinter::Fmt(RunLockMicroBench<Lock>(config).MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

template <class Lock>
void RunMixedRow(const BenchFlags& flags, TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int read_pct : {0, 20, 50, 80, 90}) {
    MicroBenchConfig config;
    config.num_locks = 5;  // High contention.
    config.read_pct = read_pct;
    config.threads = flags.MaxThreads();
    config.duration_ms = flags.duration_ms;
    const RunResult result = RunLockMicroBench<Lock>(config);
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: OptiCLH (CLH + optimistic reads) vs OptiQL",
              "paper §8 future work ('CLH could also be adapted')", flags);

  for (const ContentionLevel& level : {kContentionLevels[0],
                                       kContentionLevels[1],
                                       kContentionLevels[3]}) {
    std::printf("-- Exclusive-only, contention: %s --\n", level.name);
    std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));
    RunExclusiveRow<McsLock>(flags, level, table);
    RunExclusiveRow<ClhLock>(flags, level, table);
    RunExclusiveRow<OptiQL>(flags, level, table);
    RunExclusiveRow<OptiCLH>(flags, level, table);
    table.Print();
    std::printf("\n");
  }

  std::printf("-- Mixed read/write, high contention (5 locks), %d threads "
              "--\n",
              flags.MaxThreads());
  TablePrinter table({"lock \\ read/write (Mops/s)", "0/100", "20/80",
                      "50/50", "80/20", "90/10"});
  RunMixedRow<OptiQL>(flags, table);
  RunMixedRow<OptiCLH>(flags, table);
  RunMixedRow<HybridLock>(flags, table);
  table.Print();
  std::printf(
      "\n(Hybrid = Bottcher et al.'s optimistic latch with pessimistic "
      "reader fallback, the paper's ref [6].)\n");
  return 0;
}
