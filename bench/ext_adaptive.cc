// Extension: contention-adaptive lock modes + latch-free leaf updates,
// evaluated against the fixed protocols they generalize (ISSUE 6).
//
// Section 1 (fig06-style lock sweep): AdaptiveHybridLock must track the
// best *fixed* protocol at each contention level — centralized CAS locks
// win when collisions are rare, queue-based locks win when they are not,
// and the adaptive lock must converge to whichever side the node needs.
//
// Section 2 (index sweep): B+-trees with latch-free in-place leaf updates
// (BTree*InPlacePolicy) vs. their locked-update baselines on read-mostly
// skewed mixes, where every locked point update invalidates the hot leaf's
// optimistic readers and the in-place path does not.
//
// Methodology: every data point is the MEDIAN of OPTIQL_BENCH_REPEATS
// (default 3) runs, and the repeats are INTERLEAVED across the protocols
// in a row — pass 1 runs every lock, then pass 2, ... — so minute-scale
// machine drift (CPU steal on shared boxes) lands on all protocols alike
// instead of biasing whichever row happened to run in a slow window.
//
// With -DOPTIQL_LOCK_TELEMETRY=ON the restart/fallback/wait counters from
// src/sync/lock_telemetry.h are reported alongside throughput (they read 0
// in default builds). --json writes BENCH_adaptive.json.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"
#include "sync/lock_telemetry.h"

namespace optiql {
namespace {

struct TelemetryDelta {
  uint64_t restarts = 0;
  uint64_t fallbacks = 0;
  uint64_t waits = 0;
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  uint64_t inplace_updates = 0;
  uint64_t inplace_fallbacks = 0;

  TelemetryDelta& operator+=(const TelemetryDelta& o) {
    restarts += o.restarts;
    fallbacks += o.fallbacks;
    waits += o.waits;
    escalations += o.escalations;
    deescalations += o.deescalations;
    inplace_updates += o.inplace_updates;
    inplace_fallbacks += o.inplace_fallbacks;
    return *this;
  }
};

TelemetryDelta TakeDelta() {
  const LockTelemetry::Snapshot s = LockTelemetry::Take();
  TelemetryDelta d;
  d.restarts = s[LockTelemetry::kOptimisticRestart];
  d.fallbacks = s[LockTelemetry::kPessimisticFallback];
  d.waits = s[LockTelemetry::kExclusiveWait];
  d.escalations = s[LockTelemetry::kModeEscalation];
  d.deescalations = s[LockTelemetry::kModeDeescalation];
  d.inplace_updates = s[LockTelemetry::kInPlaceUpdate];
  d.inplace_fallbacks = s[LockTelemetry::kInPlaceFallback];
  return d;
}

int Repeats() {
  return std::max<int>(1, static_cast<int>(EnvInt("OPTIQL_BENCH_REPEATS", 3)));
}

// One (row, thread-count) cell accumulated across the interleaved passes.
struct PointStat {
  std::vector<double> mops;             // One entry per pass.
  std::vector<double> restarts_per_kop;  // Index section only.
  TelemetryDelta telemetry;             // Summed over passes.
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

// Keyed by (row name, threads); rows print in first-seen order.
using PointMap = std::map<std::pair<std::string, int>, PointStat>;

// --- Section 1: lock sweep ------------------------------------------------

template <class Lock>
void LockPass(const BenchFlags& flags, const ContentionLevel& level,
              int read_pct, PointMap& points) {
  for (int threads : flags.threads) {
    MicroBenchConfig config;
    config.num_locks = level.num_locks;
    config.read_pct = read_pct;
    config.cs_length = 50;
    config.threads = threads;
    config.duration_ms = flags.duration_ms;
    LockTelemetry::Reset();
    const RunResult result = RunLockMicroBench<Lock>(config);
    PointStat& p = points[{LockOps<Lock>::kName, threads}];
    p.mops.push_back(result.MopsPerSec());
    p.telemetry += TakeDelta();
  }
}

void LockLevel(const BenchFlags& flags, const ContentionLevel& level,
               int read_pct, JsonBenchWriter& json) {
  const int repeats = Repeats();
  std::printf(
      "-- Locks, contention: %s (%zu lock(s)%s), %d%% reads, "
      "median of %d --\n",
      level.name, level.num_locks == 0 ? 1 : level.num_locks,
      level.num_locks == 0 ? " per thread" : "", read_pct, repeats);

  PointMap points;
  const std::vector<std::string> order = {"TTS",    "OptLock", "MCS",
                                          "OptiQL", "Hybrid",  "Hybrid-Adaptive"};
  for (int rep = 0; rep < repeats; ++rep) {
    LockPass<TtsLock>(flags, level, read_pct, points);
    LockPass<OptLock>(flags, level, read_pct, points);
    LockPass<McsLock>(flags, level, read_pct, points);
    LockPass<OptiQL>(flags, level, read_pct, points);
    LockPass<HybridLock>(flags, level, read_pct, points);
    LockPass<AdaptiveHybridLock>(flags, level, read_pct, points);
  }

  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  for (const std::string& name : order) {
    std::vector<std::string> row = {name};
    for (int threads : flags.threads) {
      const PointStat& p = points.at({name, threads});
      const TelemetryDelta& t = p.telemetry;
      row.push_back(TablePrinter::Fmt(Median(p.mops)));
      json.AddRecord({
          {"bench", "ext_adaptive"},
          {"section", "lock_sweep"},
          {"contention", level.name},
          {"read_pct", std::to_string(read_pct)},
          {"lock", name},
          {"threads", std::to_string(threads)},
          {"repeats", std::to_string(repeats)},
          {"mops", JsonBenchWriter::Num(Median(p.mops))},
          {"telemetry_restarts", std::to_string(t.restarts)},
          {"telemetry_fallbacks", std::to_string(t.fallbacks)},
          {"telemetry_waits", std::to_string(t.waits)},
          {"telemetry_escalations", std::to_string(t.escalations)},
          {"telemetry_deescalations", std::to_string(t.deescalations)},
      });
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

// --- Section 2: index sweep -----------------------------------------------

template <class Tree>
void IndexPass(Tree& tree, const char* name, const BenchFlags& flags,
               IndexWorkload workload, PointMap& points) {
  for (int threads : flags.threads) {
    workload.threads = threads;
    tree.ResetStats();
    LockTelemetry::Reset();
    const RunResult result = RunIndexBench(tree, workload);
    const TelemetryDelta t = TakeDelta();
    const auto stats = tree.GetStats();
    const double restarts_per_kop =
        result.TotalOps() == 0
            ? 0.0
            : 1000.0 *
                  static_cast<double>(stats.read_restarts +
                                      stats.write_restarts) /
                  static_cast<double>(result.TotalOps());
    PointStat& p = points[{name, threads}];
    p.mops.push_back(result.MopsPerSec());
    p.restarts_per_kop.push_back(restarts_per_kop);
    p.telemetry += t;
  }
}

void IndexMix(const BenchFlags& flags, int lookup_pct, int update_pct,
              JsonBenchWriter& json) {
  const int repeats = Repeats();
  std::printf(
      "-- B+-tree, %d%% lookup / %d%% update, self-similar 0.2, "
      "median of %d --\n",
      lookup_pct, update_pct, repeats);

  IndexWorkload workload;
  workload.records = flags.records;
  workload.lookup_pct = lookup_pct;
  workload.update_pct = update_pct;
  workload.distribution = IndexWorkload::Distribution::kSelfSimilar;
  workload.skew = 0.2;
  workload.duration_ms = flags.duration_ms;

  // Preload every tree up front; the mixes are lookup/update-only, so the
  // trees stay structurally identical across the interleaved passes.
  auto optlock = std::make_unique<BTreeOptLock>();
  auto optlock_ip = std::make_unique<BTreeOptLockIp>();
  auto optiql = std::make_unique<BTreeOptiQl>();
  auto optiql_ip = std::make_unique<BTreeOptiQlIp>();
  PreloadIndex(*optlock, workload);
  PreloadIndex(*optlock_ip, workload);
  PreloadIndex(*optiql, workload);
  PreloadIndex(*optiql_ip, workload);

  PointMap points;
  const std::vector<std::string> order = {"OptLock", "OptLock-InPlace",
                                          "OptiQL", "OptiQL-InPlace"};
  for (int rep = 0; rep < repeats; ++rep) {
    IndexPass(*optlock, "OptLock", flags, workload, points);
    IndexPass(*optlock_ip, "OptLock-InPlace", flags, workload, points);
    IndexPass(*optiql, "OptiQL", flags, workload, points);
    IndexPass(*optiql_ip, "OptiQL-InPlace", flags, workload, points);
  }

  std::vector<std::string> header = {
      "tree \\ threads (Mops/s / restarts-per-1k-ops)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  for (const std::string& name : order) {
    std::vector<std::string> row = {name};
    for (int threads : flags.threads) {
      const PointStat& p = points.at({name, threads});
      row.push_back(TablePrinter::Fmt(Median(p.mops)) + " / " +
                    TablePrinter::Fmt(Median(p.restarts_per_kop), 2));
      json.AddRecord({
          {"bench", "ext_adaptive"},
          {"section", "index_inplace"},
          {"tree", name},
          {"lookup_pct", std::to_string(lookup_pct)},
          {"update_pct", std::to_string(update_pct)},
          {"distribution", "selfsimilar-0.2"},
          {"threads", std::to_string(threads)},
          {"repeats", std::to_string(repeats)},
          {"mops", JsonBenchWriter::Num(Median(p.mops))},
          {"tree_restarts_per_kop",
           JsonBenchWriter::Num(Median(p.restarts_per_kop))},
          {"telemetry_restarts", std::to_string(p.telemetry.restarts)},
          {"telemetry_inplace_updates",
           std::to_string(p.telemetry.inplace_updates)},
          {"telemetry_inplace_fallbacks",
           std::to_string(p.telemetry.inplace_fallbacks)},
      });
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: adaptive lock modes + latch-free leaf updates",
              "extends paper Fig. 6 / Fig. 9 with per-node adaptation "
              "(ISSUE 6; telemetry columns need -DOPTIQL_LOCK_TELEMETRY=ON)",
              flags);
  if constexpr (!LockTelemetry::kEnabled) {
    std::printf(
        "note: built without OPTIQL_LOCK_TELEMETRY; telemetry counters "
        "will read 0\n\n");
  }
  JsonBenchWriter json;
  // Fig. 6's extreme/high ends stress the queued mode, `low` the optimistic
  // fast path; `medium`/`none` add little beyond `low` here.
  for (const ContentionLevel& level : kContentionLevels) {
    if (std::string(level.name) == "medium" ||
        std::string(level.name) == "none") {
      continue;
    }
    LockLevel(flags, level, /*read_pct=*/0, json);
  }
  // Read-mixed pass: exercises the optimistic-vs-pessimistic reader modes.
  LockLevel(flags, kContentionLevels[1], /*read_pct=*/80, json);
  // Read-mostly skewed mixes: the latch-free in-place update target.
  IndexMix(flags, /*lookup_pct=*/95, /*update_pct=*/5, json);
  IndexMix(flags, /*lookup_pct=*/90, /*update_pct=*/10, json);
  if (flags.json) {
    json.WriteFile(flags.json_path.empty() ? "BENCH_adaptive.json"
                                           : flags.json_path);
  }
  return 0;
}
