// Extension: YCSB core workloads A–F on the B+-tree, OptLock vs OptiQL.
// The paper evaluates PiBench-style fixed mixes; YCSB adds the
// industry-standard mixes including scans (E) and read-modify-write (F),
// with Zipfian and latest-biased request distributions.
#include <vector>

#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"

namespace optiql {
namespace {

template <class Tree>
double RunYcsb(const BenchFlags& flags, const YcsbWorkload& workload,
               int threads) {
  auto tree = std::make_unique<Tree>();
  for (uint64_t k = 0; k < flags.records; ++k) {
    OPTIQL_CHECK(tree->Insert(k, k));
  }
  std::atomic<uint64_t> next_insert{flags.records};

  RunOptions options;
  options.threads = threads;
  options.duration_ms = flags.duration_ms;
  // YCSB's default request skew; --dist overrides it for the whole sweep.
  const KeyDist dist =
      flags.dist_given ? flags.dist : KeyDist::Zipfian(0.99);
  const KeySampler sampler(dist, flags.records);

  const RunResult result = RunFixedDuration(
      options,
      [&](int tid, const std::atomic<bool>& stop, WorkerStats& stats) {
        Xoshiro256 rng(0x9c5bULL * 271 + static_cast<uint64_t>(tid));
        std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
        while (!stop.load(std::memory_order_acquire)) {
          uint64_t key;
          if (workload.latest) {
            // "Latest": skew rank 0 = the newest inserted key.
            const uint64_t limit =
                next_insert.load(std::memory_order_relaxed);
            const uint64_t back = sampler.Next(rng) % limit;
            key = limit - 1 - back;
          } else {
            key = sampler.Next(rng);
          }
          const uint64_t roll = rng.NextBounded(100);
          if (roll < static_cast<uint64_t>(workload.read_pct)) {
            uint64_t out = 0;
            tree->Lookup(key, out);
          } else if (roll < static_cast<uint64_t>(workload.read_pct +
                                                  workload.update_pct)) {
            tree->Update(key, rng.Next());
          } else if (roll <
                     static_cast<uint64_t>(workload.read_pct +
                                           workload.update_pct +
                                           workload.insert_pct)) {
            const uint64_t fresh =
                next_insert.fetch_add(1, std::memory_order_relaxed);
            tree->Insert(fresh, fresh);
          } else if (roll < static_cast<uint64_t>(
                                workload.read_pct + workload.update_pct +
                                workload.insert_pct + workload.scan_pct)) {
            tree->Scan(key, 1 + rng.NextBounded(100), scan_buffer);
          } else {  // RMW
            uint64_t out = 0;
            if (tree->Lookup(key, out)) tree->Update(key, out + 1);
          }
          ++stats.ops;
        }
      });
  return result.MopsPerSec();
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: YCSB A-F on the B+-tree",
              "industry-standard mixes (zipf 0.99), OptLock vs OptiQL",
              flags);
  for (const YcsbWorkload& workload : kYcsbWorkloads) {
    std::printf("-- YCSB-%s: %s --\n", workload.name, workload.description);
    std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));
    std::vector<std::string> row_optlock = {"OptLock"};
    std::vector<std::string> row_optiql = {"OptiQL"};
    for (int threads : flags.threads) {
      row_optlock.push_back(TablePrinter::Fmt(
          RunYcsb<BTreeOptLock>(flags, workload, threads)));
      row_optiql.push_back(TablePrinter::Fmt(
          RunYcsb<BTreeOptiQl>(flags, workload, threads)));
    }
    table.AddRow(std::move(row_optlock));
    table.AddRow(std::move(row_optiql));
    table.Print();
    std::printf("\n");
  }
  return 0;
}
