// Extension: YCSB core workloads A–F on the B+-tree, OptLock vs OptiQL.
// The paper evaluates PiBench-style fixed mixes; YCSB adds the
// industry-standard mixes including scans (E) and read-modify-write (F),
// with Zipfian and latest-biased request distributions. Everything shared
// comes from bench_common.h (mix tables, --dist parsing, KeySampler) and
// the uniform index surface (PreloadIndex + IndexLookup/... dispatch);
// --batch=N adds rows that issue the read arm through IndexLookupBatch,
// so YCSB-C doubles as a demo of the batched read path.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/index_bench.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"

namespace optiql {
namespace {

template <class Tree>
double RunYcsb(const BenchFlags& flags, const YcsbWorkload& workload,
               int threads, int batch) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload preload;
  preload.records = flags.records;
  PreloadIndex(*tree, preload);
  std::atomic<uint64_t> next_insert{flags.records};

  RunOptions options;
  options.threads = threads;
  options.duration_ms = flags.duration_ms;
  // YCSB's default request skew; --dist overrides it for the whole sweep.
  const KeyDist dist =
      flags.dist_given ? flags.dist : KeyDist::Zipfian(0.99);
  const KeySampler sampler(dist, flags.records);
  const size_t read_batch = batch > 1 ? static_cast<size_t>(batch) : 1;

  const RunResult result = RunFixedDuration(
      options,
      [&](int tid, const std::atomic<bool>& stop, WorkerStats& stats) {
        Xoshiro256 rng(0x9c5bULL * 271 + static_cast<uint64_t>(tid));
        std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
        std::vector<uint64_t> keys(read_batch);
        std::vector<uint64_t> values(read_batch);
        const std::unique_ptr<bool[]> found(new bool[read_batch]);
        const auto draw = [&]() -> uint64_t {
          if (workload.latest) {
            // "Latest": skew rank 0 = the newest inserted key.
            const uint64_t limit =
                next_insert.load(std::memory_order_relaxed);
            const uint64_t back = sampler.Next(rng) % limit;
            return limit - 1 - back;
          }
          return sampler.Next(rng);
        };
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t key = draw();
          const uint64_t roll = rng.NextBounded(100);
          if (roll < static_cast<uint64_t>(workload.read_pct)) {
            if (read_batch > 1) {
              keys[0] = key;
              for (size_t i = 1; i < read_batch; ++i) keys[i] = draw();
              IndexLookupBatch(*tree, keys.data(), read_batch,
                               values.data(), found.get());
              stats.ops += read_batch - 1;  // +1 at the loop bottom.
            } else {
              uint64_t out = 0;
              IndexLookup(*tree, key, out);
            }
          } else if (roll < static_cast<uint64_t>(workload.read_pct +
                                                  workload.update_pct)) {
            IndexUpdate(*tree, key, rng.Next());
          } else if (roll <
                     static_cast<uint64_t>(workload.read_pct +
                                           workload.update_pct +
                                           workload.insert_pct)) {
            const uint64_t fresh =
                next_insert.fetch_add(1, std::memory_order_relaxed);
            IndexInsert(*tree, fresh, fresh);
          } else if (roll < static_cast<uint64_t>(
                                workload.read_pct + workload.update_pct +
                                workload.insert_pct + workload.scan_pct)) {
            if constexpr (HasScanOp<Tree>) {
              IndexScan(*tree, key, 1 + rng.NextBounded(100), scan_buffer);
            } else {
              uint64_t out = 0;
              IndexLookup(*tree, key, out);  // Degraded: point probe.
            }
          } else {  // RMW
            uint64_t out = 0;
            if (IndexLookup(*tree, key, out)) {
              IndexUpdate(*tree, key, out + 1);
            }
          }
          ++stats.ops;
        }
      });
  return result.MopsPerSec();
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: YCSB A-F on the B+-tree",
              "industry-standard mixes (zipf 0.99), OptLock vs OptiQL",
              flags);
  for (const YcsbWorkload& workload : kYcsbWorkloads) {
    std::printf("-- YCSB-%s: %s --\n", workload.name, workload.description);
    std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
    for (int t : flags.threads) header.push_back(std::to_string(t));
    TablePrinter table(std::move(header));
    std::vector<std::string> row_optlock = {"OptLock"};
    std::vector<std::string> row_optiql = {"OptiQL"};
    for (int threads : flags.threads) {
      row_optlock.push_back(TablePrinter::Fmt(
          RunYcsb<BTreeOptLock>(flags, workload, threads, /*batch=*/1)));
      row_optiql.push_back(TablePrinter::Fmt(
          RunYcsb<BTreeOptiQl>(flags, workload, threads, /*batch=*/1)));
    }
    table.AddRow(std::move(row_optlock));
    table.AddRow(std::move(row_optiql));
    if (flags.batch > 1) {
      // Batched read rows: the read arm goes through IndexLookupBatch
      // (interleaved descents + one epoch guard per batch).
      std::vector<std::string> row_optlock_b = {
          "OptLock (batch=" + std::to_string(flags.batch) + ")"};
      std::vector<std::string> row_optiql_b = {
          "OptiQL (batch=" + std::to_string(flags.batch) + ")"};
      for (int threads : flags.threads) {
        row_optlock_b.push_back(TablePrinter::Fmt(
            RunYcsb<BTreeOptLock>(flags, workload, threads, flags.batch)));
        row_optiql_b.push_back(TablePrinter::Fmt(
            RunYcsb<BTreeOptiQl>(flags, workload, threads, flags.batch)));
      }
      table.AddRow(std::move(row_optlock_b));
      table.AddRow(std::move(row_optiql_b));
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
