// Figure 10: index throughput under low contention (uniform keys) with the
// balanced 50/50 mix. All optimistic variants (OptLock, OptiQL, OptiQL-NOR)
// should be indistinguishable; the pessimistic RW locks trail.
#include "index_bench_common.h"

namespace optiql {
namespace {

template <class Tree>
void RunRow(const BenchFlags& flags, const char* name, TablePrinter& table) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = IndexWorkload::Distribution::kUniform;
  std::vector<std::string> row = {name};
  row.resize(1 + flags.threads.size());
  SweepIndex<Tree>(flags, base, {{"Balanced", 50, 50}},
                   [&](size_t, size_t t, const RunResult& result) {
                     row[1 + t] = TablePrinter::Fmt(result.MopsPerSec());
                   });
  table.AddRow(std::move(row));
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 10: index throughput under low contention (balanced)",
              "paper Fig. 10 (§7.3, uniform keys, 50% lookup / 50% update)",
              flags);

  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));

  std::printf("-- (a) B+-tree --\n");
  {
    TablePrinter table(header);
    RunRow<BTreeOptLock>(flags, "OptLock", table);
    RunRow<BTreeOptiQlNor>(flags, "OptiQL-NOR", table);
    RunRow<BTreeOptiQl>(flags, "OptiQL", table);
    RunRow<BTreePthread>(flags, "pthread", table);
    RunRow<BTreeMcsRw>(flags, "MCS-RW", table);
    table.Print();
  }
  std::printf("\n-- (b) ART --\n");
  {
    TablePrinter table(header);
    RunRow<ArtOptLock>(flags, "OptLock", table);
    RunRow<ArtOptiQlNor>(flags, "OptiQL-NOR", table);
    RunRow<ArtOptiQl>(flags, "OptiQL", table);
    RunRow<ArtPthread>(flags, "pthread", table);
    RunRow<ArtMcsRw>(flags, "MCS-RW", table);
    table.Print();
  }
  return 0;
}
