// Figure 12: operation latency at percentiles up to 99.999% under the
// skewed workload, at two thread counts, for both indexes. OptLock's tail
// explodes with update share (CAS-retry unfairness); OptiQL's FIFO queue
// keeps the tail flat.
#include "index_bench_common.h"

namespace optiql {
namespace {

const std::vector<OpMix> kMixes = {
    {"Read-only", 100, 0}, {"Balanced", 50, 50}, {"Update-only", 0, 100}};

constexpr double kQuantiles[] = {0.0, 0.5, 0.9, 0.99, 0.999, 0.9999,
                                 0.99999};
constexpr const char* kQuantileNames[] = {"min",    "50%",    "90%", "99%",
                                          "99.9%",  "99.99%", "99.999%"};

template <class Tree>
void RunRows(const BenchFlags& flags, const char* lock_name, int threads,
             std::vector<std::vector<std::string>>& rows_per_mix) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = IndexWorkload::Distribution::kSelfSimilar;
  base.skew = 0.2;
  base.latency_sampling = 8;  // Sample 1/8 operations.
  BenchFlags one = flags;
  one.threads = {threads};
  SweepIndex<Tree>(one, base, kMixes,
                   [&](size_t m, size_t, const RunResult& result) {
                     const Histogram merged = result.MergedLatency();
                     std::vector<std::string> row = {lock_name};
                     for (double q : kQuantiles) {
                       const double us =
                           static_cast<double>(q == 0.0
                                                   ? merged.min()
                                                   : merged.ValueAtQuantile(q)) /
                           1000.0;
                       row.push_back(TablePrinter::Fmt(us, 1));
                     }
                     rows_per_mix[m] = std::move(row);
                   });
}

template <class TreeOptLock, class TreeNor, class TreeQl>
void RunIndex(const char* index_name, const BenchFlags& flags) {
  const int max_threads = flags.MaxThreads();
  const int threads_pairs[2] = {std::max(1, max_threads / 2), max_threads};
  for (int threads : threads_pairs) {
    std::vector<std::vector<std::string>> optlock(kMixes.size()),
        nor(kMixes.size()), ql(kMixes.size());
    RunRows<TreeOptLock>(flags, "OptLock", threads, optlock);
    RunRows<TreeNor>(flags, "OptiQL-NOR", threads, nor);
    RunRows<TreeQl>(flags, "OptiQL", threads, ql);
    for (size_t m = 0; m < kMixes.size(); ++m) {
      std::printf("-- %s, %s, %d threads (latency in microseconds) --\n",
                  index_name, kMixes[m].name, threads);
      std::vector<std::string> header = {"lock \\ percentile"};
      for (const char* q : kQuantileNames) header.push_back(q);
      TablePrinter table(std::move(header));
      table.AddRow(optlock[m]);
      table.AddRow(nor[m]);
      table.AddRow(ql[m]);
      table.Print();
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 12: tail latency percentiles",
              "paper Fig. 12 (§7.5, self-similar 0.2, two thread counts)",
              flags);
  RunIndex<BTreeOptLock, BTreeOptiQlNor, BTreeOptiQl>("B+-tree", flags);
  RunIndex<ArtOptLock, ArtOptiQlNor, ArtOptiQl>("ART", flags);
  return 0;
}
