// Figure 1 (the motivating experiment): update-only throughput of a
// memory-optimized B+-tree, centralized optimistic locking vs OptiQL, under
// (a) low contention (uniform keys) and (b) high contention (self-similar,
// skew 0.2). OptLock collapses beyond one socket under contention; OptiQL
// holds its plateau.
#include "index_bench_common.h"

namespace optiql {
namespace {

template <class Tree>
void RunRow(const BenchFlags& flags, IndexWorkload::Distribution dist,
            const char* name, TablePrinter& table) {
  IndexWorkload base;
  base.records = flags.records;
  base.distribution = dist;
  base.skew = 0.2;
  std::vector<std::string> row = {name};
  row.resize(1 + flags.threads.size());
  SweepIndex<Tree>(flags, base, {{"Update-only", 0, 100}},
                   [&](size_t, size_t t, const RunResult& result) {
                     row[1 + t] = TablePrinter::Fmt(result.MopsPerSec());
                   });
  table.AddRow(std::move(row));
}

void RunCase(const BenchFlags& flags, IndexWorkload::Distribution dist,
             const char* title) {
  std::printf("-- %s --\n", title);
  std::vector<std::string> header = {"lock \\ threads (Mops/s)"};
  for (int t : flags.threads) header.push_back(std::to_string(t));
  TablePrinter table(std::move(header));
  RunRow<BTreeOptLock>(flags, dist, "Centralized optimistic (OptLock)",
                       table);
  RunRow<BTreeOptiQl>(flags, dist, "OptiQL (this work)", table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 1: B+-tree update throughput, OptLock vs OptiQL",
              "paper Fig. 1 (§1, 100% updates, dense 8-byte keys)", flags);
  RunCase(flags, IndexWorkload::Distribution::kUniform,
          "(a) Low contention: uniform keys");
  RunCase(flags, IndexWorkload::Distribution::kSelfSimilar,
          "(b) High contention: self-similar, skew 0.2");
  return 0;
}
