// Figure 7: lock throughput under varying read/write ratios at the maximum
// thread count, for four contention levels. OptiQL must track OptLock on
// read-dominant/low-contention cells while avoiding collapse on
// write-dominant/high-contention cells.
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

constexpr int kReadPcts[] = {0, 20, 50, 80, 90};

template <class Lock>
void RunRow(const BenchFlags& flags, size_t num_locks, TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int read_pct : kReadPcts) {
    MicroBenchConfig config;
    config.num_locks = num_locks;
    config.read_pct = read_pct;
    config.cs_length = 50;
    config.threads = flags.MaxThreads();
    config.duration_ms = flags.duration_ms;
    const RunResult result = RunLockMicroBench<Lock>(config);
    row.push_back(TablePrinter::Fmt(result.MopsPerSec()));
  }
  table.AddRow(std::move(row));
}

void RunLevel(const BenchFlags& flags, const ContentionLevel& level) {
  std::printf("-- Contention: %s (%zu locks), %d threads --\n", level.name,
              level.num_locks, flags.MaxThreads());
  std::vector<std::string> header = {"lock \\ read/write (Mops/s)"};
  for (int pct : kReadPcts) {
    header.push_back(std::to_string(pct) + "/" + std::to_string(100 - pct));
  }
  TablePrinter table(std::move(header));
  RunRow<OptLock>(flags, level.num_locks, table);
  RunRow<OptiQLNor>(flags, level.num_locks, table);
  RunRow<OptiQL>(flags, level.num_locks, table);
  RunRow<SharedMutexLock>(flags, level.num_locks, table);
  RunRow<McsRwLock>(flags, level.num_locks, table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Figure 7: lock throughput vs. read/write ratio",
              "paper Fig. 7 (§7.2, mixed microbenchmark at 80 threads)",
              flags);
  // Figure 7 shows extreme/high/medium/low (the "none" level is excluded
  // because read-only results are identical across locks).
  for (size_t i = 0; i < 4; ++i) {
    RunLevel(flags, kContentionLevels[i]);
  }
  return 0;
}
