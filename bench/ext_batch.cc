// Extension: batched index execution (ISSUE 8). Three questions, three
// phases, all over preloaded read paths:
//
//   A. Interleave sweep — how many in-flight descents (G) maximize the
//      memory-level parallelism of one thread's batch? (batch=128,
//      uniform, single thread; G=1 is the amortized-guard singles loop.)
//   B. Batch-size sweep — batched lookups at the phase-A interleave vs
//      the loop-of-singles baseline (per-op epoch guard), uniform and
//      self-similar skew, single thread. The acceptance bar lives here:
//      batch >= 32 must beat singles by >= 1.5x on the B+-tree and ART.
//   C. Sharded dispatch — ShardedStore at 16 shards: per-op routing
//      (guard + route per key) vs LookupBatch (partition once, one
//      amortized guard + one interleaved group per shard).
//
// Emits BENCH_batch.json with --json.
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/bench_runner.h"
#include "harness/index_bench.h"
#include "harness/table_printer.h"
#include "index_bench_common.h"
#include "store/sharded_store.h"

namespace optiql {
namespace {

constexpr size_t kLaneSweep[] = {1, 2, 4, 8, 16, 32};
constexpr size_t kBatchSweep[] = {8, 32, 128};
constexpr size_t kSweepBatch = 128;  // Phase-A batch size.
constexpr size_t kShards = 16;       // Phase-C shard count.

// Dispatches a batched lookup with an explicit interleave factor where the
// index exposes one (the native B+-tree/ART lane paths); everything else —
// including ShardedStore, whose per-shard groups pick their own factor —
// goes through the uniform IndexLookupBatch surface.
template <class Tree>
size_t BatchLookupWithLanes(const Tree& tree, const uint64_t* keys, size_t n,
                            uint64_t* values, bool* found, size_t lanes) {
  if constexpr (requires {
                  tree.LookupBatchInt(keys, n, values, found, lanes);
                }) {
    return tree.LookupBatchInt(keys, n, values, found, lanes);
  } else if constexpr (requires {
                         tree.LookupBatch(keys, n, values, found, lanes);
                       }) {
    return tree.LookupBatch(keys, n, values, found, lanes);
  } else {
    (void)lanes;
    return IndexLookupBatch(tree, keys, n, values, found);
  }
}

// Fixed-duration read loop. batch == 1 is the loop-of-singles baseline:
// one plain Lookup (own epoch guard, serial descent) per key. batch > 1
// issues whole batches through the batched surface.
template <class Tree>
double RunBatchReads(Tree& tree, const BenchFlags& flags, int threads,
                     const KeyDist& dist, size_t batch, size_t lanes) {
  RunOptions options;
  options.threads = threads;
  options.duration_ms = flags.duration_ms;
  const KeySampler sampler(dist, flags.records);
  const RunResult result = RunFixedDuration(
      options,
      [&](int tid, const std::atomic<bool>& stop, WorkerStats& stats) {
        Xoshiro256 rng(0xBA7C4ULL * 131 + static_cast<uint64_t>(tid));
        std::vector<uint64_t> keys(batch);
        std::vector<uint64_t> values(batch);
        const std::unique_ptr<bool[]> found(new bool[batch]);
        while (!stop.load(std::memory_order_acquire)) {
          for (size_t i = 0; i < batch; ++i) keys[i] = sampler.Next(rng);
          if (batch == 1) {
            uint64_t out = 0;
            IndexLookup(tree, keys[0], out);
          } else {
            BatchLookupWithLanes(tree, keys.data(), batch, values.data(),
                                 found.get(), lanes);
          }
          stats.ops += batch;
        }
      });
  return result.MopsPerSec();
}

template <class Tree>
void SweepTree(const char* name, const BenchFlags& flags,
               JsonBenchWriter& json) {
  auto tree = std::make_unique<Tree>();
  IndexWorkload preload;
  preload.records = flags.records;
  PreloadIndex(*tree, preload);

  // Phase A: interleave sweep.
  std::printf("-- %s: interleave sweep (batch=%zu, uniform, 1 thread) --\n",
              name, kSweepBatch);
  std::vector<std::string> header = {"G (Mops/s)"};
  for (size_t lanes : kLaneSweep) header.push_back(std::to_string(lanes));
  TablePrinter sweep_table(std::move(header));
  std::vector<std::string> sweep_row = {name};
  size_t best_lanes = 1;
  double best_mops = 0;
  for (size_t lanes : kLaneSweep) {
    const double mops = RunBatchReads(*tree, flags, /*threads=*/1,
                                      KeyDist::Uniform(), kSweepBatch, lanes);
    json.AddRecord({{"phase", "interleave"},
                    {"index", name},
                    {"batch", JsonBenchWriter::Num(kSweepBatch)},
                    {"lanes", JsonBenchWriter::Num(lanes)},
                    {"mops", JsonBenchWriter::Num(mops)}});
    sweep_row.push_back(TablePrinter::Fmt(mops));
    if (mops > best_mops) {
      best_mops = mops;
      best_lanes = lanes;
    }
  }
  sweep_table.AddRow(std::move(sweep_row));
  sweep_table.Print();
  std::printf("best interleave: G=%zu\n\n", best_lanes);

  // Phase B: batch-size sweep vs the loop-of-singles baseline.
  const KeyDist dists[] = {KeyDist::Uniform(), KeyDist::SelfSimilar(0.2)};
  std::printf("-- %s: batch sweep (G=%zu, 1 thread) --\n", name, best_lanes);
  std::vector<std::string> batch_header = {"dist \\ batch"};
  batch_header.push_back("1 (singles)");
  for (size_t batch : kBatchSweep) {
    batch_header.push_back(std::to_string(batch));
  }
  batch_header.push_back("speedup@128");
  TablePrinter batch_table(std::move(batch_header));
  for (const KeyDist& dist : dists) {
    const double singles = RunBatchReads(*tree, flags, /*threads=*/1, dist,
                                         /*batch=*/1, /*lanes=*/1);
    json.AddRecord({{"phase", "batch_sweep"},
                    {"index", name},
                    {"dist", dist.Name()},
                    {"batch", "1"},
                    {"lanes", "1"},
                    {"mops", JsonBenchWriter::Num(singles)},
                    {"speedup", "1"}});
    std::vector<std::string> row = {dist.Name()};
    row.push_back(TablePrinter::Fmt(singles));
    double last_speedup = 1;
    for (size_t batch : kBatchSweep) {
      const double mops =
          RunBatchReads(*tree, flags, /*threads=*/1, dist, batch, best_lanes);
      last_speedup = mops / singles;
      json.AddRecord({{"phase", "batch_sweep"},
                      {"index", name},
                      {"dist", dist.Name()},
                      {"batch", JsonBenchWriter::Num(batch)},
                      {"lanes", JsonBenchWriter::Num(best_lanes)},
                      {"mops", JsonBenchWriter::Num(mops)},
                      {"speedup", JsonBenchWriter::Num(mops / singles)}});
      row.push_back(TablePrinter::Fmt(mops));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", last_speedup);
    row.push_back(buf);
    batch_table.AddRow(std::move(row));
  }
  batch_table.Print();
  std::printf("\n");
}

void SweepSharded(const BenchFlags& flags, JsonBenchWriter& json) {
  using Store = ShardedStore<BTreeOptLock>;
  auto store = std::make_unique<Store>(kShards);
  IndexWorkload preload;
  preload.records = flags.records;
  PreloadIndex(*store, preload);

  std::printf("-- ShardedStore<BTreeOptLock>, %zu shards: per-op vs batched "
              "dispatch (uniform) --\n",
              kShards);
  std::vector<std::string> header = {"threads", "per-op"};
  for (size_t batch : {size_t{32}, size_t{128}}) {
    header.push_back("batch=" + std::to_string(batch));
  }
  header.push_back("speedup@128");
  TablePrinter table(std::move(header));
  std::vector<int> thread_counts = {1};
  if (flags.MaxThreads() > 1) thread_counts.push_back(flags.MaxThreads());
  for (int threads : thread_counts) {
    const double per_op = RunBatchReads(*store, flags, threads,
                                        KeyDist::Uniform(), 1, 1);
    json.AddRecord({{"phase", "sharded"},
                    {"shards", JsonBenchWriter::Num(kShards)},
                    {"threads", JsonBenchWriter::Num(threads)},
                    {"mode", "per_op"},
                    {"batch", "1"},
                    {"mops", JsonBenchWriter::Num(per_op)},
                    {"speedup", "1"}});
    std::vector<std::string> row = {std::to_string(threads)};
    row.push_back(TablePrinter::Fmt(per_op));
    double last_speedup = 1;
    for (size_t batch : {size_t{32}, size_t{128}}) {
      const double mops = RunBatchReads(*store, flags, threads,
                                        KeyDist::Uniform(), batch, 0);
      last_speedup = mops / per_op;
      json.AddRecord({{"phase", "sharded"},
                      {"shards", JsonBenchWriter::Num(kShards)},
                      {"threads", JsonBenchWriter::Num(threads)},
                      {"mode", "batched"},
                      {"batch", JsonBenchWriter::Num(batch)},
                      {"mops", JsonBenchWriter::Num(mops)},
                      {"speedup", JsonBenchWriter::Num(mops / per_op)}});
      row.push_back(TablePrinter::Fmt(mops));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", last_speedup);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Extension: batched execution (interleaved descents)",
              "AMAC-style multi-descent batches + per-shard dispatch",
              flags);
  JsonBenchWriter json;
  SweepTree<BTreeOptLock>("btree/OptLock", flags, json);
  SweepTree<BTreeOptiQl>("btree/OptiQL", flags, json);
  SweepTree<ArtOptLock>("art/OptLock", flags, json);
  SweepTree<ArtOptiQl>("art/OptiQL", flags, json);
  SweepSharded(flags, json);
  if (flags.json) {
    const std::string path =
        flags.json_path.empty() ? "BENCH_batch.json" : flags.json_path;
    json.WriteFile(path);
  }
  return 0;
}
