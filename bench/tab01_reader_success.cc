// Table 1: reader success rate of OptiQL-NOR vs OptiQL under varying
// read/write ratios at high contention. Without opportunistic read the
// queue keeps the lock word continuously "locked", starving optimistic
// readers (<2% success in the paper); opportunistic read admits them
// during handover windows (~27-32%).
#include "bench_common.h"
#include "harness/micro_bench.h"
#include "harness/table_printer.h"

namespace optiql {
namespace {

constexpr int kReadPcts[] = {20, 50, 80, 90};

template <class Lock>
void RunRow(const BenchFlags& flags, TablePrinter& table) {
  std::vector<std::string> row = {LockOps<Lock>::kName};
  for (int read_pct : kReadPcts) {
    MicroBenchConfig config;
    config.num_locks = 5;  // High contention.
    config.read_pct = read_pct;
    config.cs_length = 50;
    config.threads = flags.MaxThreads();
    config.duration_ms = flags.duration_ms;
    const RunResult result = RunLockMicroBench<Lock>(config);
    const double rate =
        result.TotalReadsAttempted() == 0
            ? 0.0
            : 100.0 * static_cast<double>(result.TotalReadsOk()) /
                  static_cast<double>(result.TotalReadsAttempted());
    row.push_back(TablePrinter::Fmt(rate) + "%");
  }
  table.AddRow(std::move(row));
}

}  // namespace
}  // namespace optiql

int main(int argc, char** argv) {
  using namespace optiql;
  const BenchFlags flags = BenchFlags::Parse(argc, argv);
  PrintBanner("Table 1: reader success rate under high contention",
              "paper Table 1 (§7.2, 5 locks, CS=50)", flags);
  std::vector<std::string> header = {"lock \\ read/write"};
  for (int pct : kReadPcts) {
    header.push_back(std::to_string(pct) + "%/" + std::to_string(100 - pct) +
                     "%");
  }
  TablePrinter table(std::move(header));
  RunRow<OptiQLNor>(flags, table);
  RunRow<OptiQL>(flags, table);
  table.Print();
  std::printf(
      "\nExpected shape (paper): OptiQL-NOR < 2%% everywhere; OptiQL in "
      "the tens of percent.\n");
  return 0;
}
