// Multi-key transactions over the repository's indexes, built entirely on
// the TxnOps<Lock> contract (sync/txn_ops.h) through the transaction-host
// hooks (index/index_ops.h: TxnHostIndex and friends).
//
// Two protocols, both generic over any hosting index — B+-tree, hash
// table, or a ShardedStore of either:
//
//   OccTxn    Silo-style optimistic concurrency control. The execution
//             phase reads lock-free through TxnRead (validated snapshots
//             of record values plus the guarding lock's version word); the
//             commit phase locks the write set in TxnLockRank order,
//             re-validates every read against the indexes' own lock words
//             — the same words single-key operations version with, no
//             shadow version table — then installs and releases. A read
//             whose word moved (or is locked by another transaction)
//             aborts the commit.
//
//   TwoPlTxn  No-wait two-phase locking. Every access acquires its record
//             lock up front and holds it to the end; any acquisition that
//             would block aborts instead (no-wait deadlock avoidance, so
//             no lock ordering is needed). On versioned hosts reads take
//             the exclusive lock (those families have no shared mode); on
//             shared-mode hosts (MCS-RW buckets) reads hold the record's
//             lock shared and writes exclusive, with a write into a
//             self-read lock atomically upgrading the transaction's own
//             shared holds (TxnOps::TryUpgradeSh — a no-wait retry of that
//             self-collision would repeat forever). Writes are buffered
//             and installed at commit, so aborts need no undo.
//
// Workload model (CCBench-style): transactions read and update EXISTING
// keys over a fixed population; they do not insert or remove. Structural
// index modifications must be quiesced while transactions run — see the
// hook contracts in the host indexes.
//
// Capacity: a transaction may hold at most ThreadQNodes::kMaxTxnLocks
// record locks (queue nodes come from the per-thread txn slot range).
#ifndef OPTIQL_TXN_TXN_H_
#define OPTIQL_TXN_TXN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/platform.h"
#include "index/index_ops.h"
#include "qnode/qnode_pool.h"
#include "sync/epoch.h"
#include "sync/txn_ops.h"

namespace optiql {

// Outcome of a single transactional access. kAbort means the transaction
// must abort and retry (a no-wait acquisition lost); the caller returns
// control to RunTxn, which calls Abort() and re-runs the body.
enum class TxnResult { kOk, kNotFound, kAbort };

// Per-thread protocol counters (aggregated by the caller).
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  // Abort reasons: a no-wait lock acquisition lost (2PL), or commit-time
  // read validation failed (OCC).
  uint64_t busy_aborts = 0;
  uint64_t validation_aborts = 0;

  TxnStats& operator+=(const TxnStats& other) {
    commits += other.commits;
    aborts += other.aborts;
    busy_aborts += other.busy_aborts;
    validation_aborts += other.validation_aborts;
    return *this;
  }
};

// --- OCC -------------------------------------------------------------------

template <class Index>
  requires TxnVersionedHost<Index>
class OccTxn {
 public:
  using Lock = typename Index::TxnLock;
  using Ops = TxnOps<Lock>;

  explicit OccTxn(Index& index) : index_(index) {
    reads_.reserve(8);
    writes_.reserve(4);
    if constexpr (HasRoutingVersionOp<Index>) {
      routing_version_ = index_.RoutingVersion();
    }
  }

  OccTxn(const OccTxn&) = delete;
  OccTxn& operator=(const OccTxn&) = delete;

  // Execution-phase read: lock-free, validated snapshot. Reads its own
  // buffered writes; repeated reads of a key reuse the first snapshot
  // (repeatable within the transaction, enforced at commit).
  TxnResult Get(uint64_t key, uint64_t& out) {
    OPTIQL_INVARIANT(!finished_, "Get on a finished transaction");
    for (const Write& w : writes_) {
      if (w.key == key) {
        out = w.value;
        return TxnResult::kOk;
      }
    }
    for (const Read& r : reads_) {
      if (r.key == key) {
        out = r.value;
        return r.found ? TxnResult::kOk : TxnResult::kNotFound;
      }
    }
    typename Index::TxnReadResult result;
    index_.TxnRead(key, result);
    reads_.push_back(
        Read{key, result.value, result.lock, result.version, result.found});
    out = result.value;
    return result.found ? TxnResult::kOk : TxnResult::kNotFound;
  }

  // Buffers the write; the lock is only taken at commit.
  TxnResult Put(uint64_t key, uint64_t value) {
    OPTIQL_INVARIANT(!finished_, "Put on a finished transaction");
    for (Write& w : writes_) {
      if (w.key == key) {
        w.value = value;
        return TxnResult::kOk;
      }
    }
    OPTIQL_CHECK(writes_.size() < ThreadQNodes::kMaxTxnLocks);
    writes_.push_back(Write{key, value});
    return TxnResult::kOk;
  }

  // Silo commit: lock the write set in rank order, validate the read set
  // against the lock words, install, release. False = aborted (a read no
  // longer validates, or a written key vanished); the transaction is dead
  // either way.
  bool Commit() {
    OPTIQL_INVARIANT(!finished_, "Commit on a finished transaction");
    finished_ = true;

    // Lock phase, in global rank order (consistent across transactions, so
    // blocking acquisition cannot deadlock).
    std::sort(writes_.begin(), writes_.end(),
              [this](const Write& a, const Write& b) {
                return index_.TxnLockRank(a.key) < index_.TxnLockRank(b.key);
              });
    const auto held = [this](const Lock* lock) { return OwningGuard(lock); };
    for (Write& w : writes_) {
      typename Index::TxnWriteGuard guard;
      const TxnLockStatus status = index_.TxnLockForWrite(
          w.key, ThreadQNodes::kTxnSlotBase + static_cast<int>(num_guards_),
          held, guard);
      if (status == TxnLockStatus::kAbsent) {
        ReleaseGuards(/*installed=*/false);
        return false;
      }
      OPTIQL_CHECK(num_guards_ < ThreadQNodes::kMaxTxnLocks);
      guards_[num_guards_] = guard;
      w.guard_index = num_guards_;
      ++num_guards_;
    }

    // Routing fence (sharded hosts): if the routing table changed since
    // begin — or a migration window is open (odd version) — the records we
    // resolved above may no longer be their keys' homes; abort so the
    // retry re-resolves every shard against the new table. Checked after
    // the lock phase: from here to install the write set is pinned by its
    // record locks, which a migrating copier cannot read past.
    if constexpr (HasRoutingVersionOp<Index>) {
      const uint64_t routing_now = index_.RoutingVersion();
      if (routing_now != routing_version_ || (routing_now & 1) != 0) {
        ReleaseGuards(/*installed=*/false);
        return false;
      }
    }

    // Validation phase: every read must still carry its snapshot version.
    // A record we locked ourselves validates through the held-version the
    // grant carries; anything else through the plain seqlock check (which
    // also rejects records another transaction holds locked).
    for (const Read& r : reads_) {
      const typename Index::TxnWriteGuard* own = OwningGuard(r.lock);
      const bool valid =
          own != nullptr
              ? own->HeldVersion() == Ops::SnapshotVersion(r.version)
              : Ops::ValidateVersion(*r.lock, r.version);
      if (!valid) {
        ReleaseGuards(/*installed=*/false);
        return false;
      }
    }

    // Install + release.
    for (const Write& w : writes_) {
      guards_[w.guard_index].Install(w.value);
    }
    ReleaseGuards(/*installed=*/true);
    return true;
  }

  void Abort() {
    OPTIQL_INVARIANT(!finished_, "Abort on a finished transaction");
    finished_ = true;
    ReleaseGuards(/*installed=*/false);
  }

 private:
  struct Read {
    uint64_t key;
    uint64_t value;
    const Lock* lock;
    uint64_t version;
    bool found;
  };
  struct Write {
    uint64_t key;
    uint64_t value;
    size_t guard_index = 0;
  };

  // The owning guard for `lock`, if this transaction holds it.
  typename Index::TxnWriteGuard* OwningGuard(const Lock* lock) {
    for (size_t i = 0; i < num_guards_; ++i) {
      if (guards_[i].owns() && guards_[i].LockPtr() == lock) {
        return &guards_[i];
      }
    }
    return nullptr;
  }

  void ReleaseGuards(bool installed) {
    for (size_t i = 0; i < num_guards_; ++i) {
      guards_[i].Unlock(installed);
    }
    num_guards_ = 0;
  }

  Index& index_;
  EpochGuard epoch_;  // Spans the transaction: snapshots stay reclaimable-safe.
  std::vector<Read> reads_;
  std::vector<Write> writes_;
  typename Index::TxnWriteGuard guards_[ThreadQNodes::kMaxTxnLocks];
  size_t num_guards_ = 0;
  uint64_t routing_version_ = 0;  // Snapshot at begin (routed hosts only).
  bool finished_ = false;
};

// --- No-wait 2PL -----------------------------------------------------------

template <class Index>
  requires TxnVersionedHost<Index> || TxnSharedReadHost<Index>
class TwoPlTxn {
 public:
  using Lock = typename Index::TxnLock;
  using Ops = TxnOps<Lock>;
  static constexpr bool kSharedReads = TxnSharedReadHost<Index>;

  explicit TwoPlTxn(Index& index) : index_(index) {
    entries_.reserve(4);
    if constexpr (HasRoutingVersionOp<Index>) {
      routing_version_ = index_.RoutingVersion();
    }
  }

  TwoPlTxn(const TwoPlTxn&) = delete;
  TwoPlTxn& operator=(const TwoPlTxn&) = delete;

  // Read. Versioned hosts take the record's exclusive lock (no shared mode
  // exists); shared-mode hosts hold it shared until commit/abort. kAbort =
  // the lock was busy. A kNotFound read holds nothing (no phantom
  // protection — the workload model has no inserts).
  TxnResult Get(uint64_t key, uint64_t& out) {
    OPTIQL_INVARIANT(!finished_, "Get on a finished transaction");
    if (const Entry* entry = FindEntry(key)) {
      out = entry->pending ? entry->value : guards_[entry->guard_index].Read();
      return TxnResult::kOk;
    }
    if constexpr (kSharedReads) {
      const auto held_ex = [this](const Lock* lock) {
        return OwnsExclusive(lock);
      };
      bool found = false;
      uint64_t value = 0;
      const Lock* lock = nullptr;
      const TxnLockStatus status =
          index_.TxnTryReadShared(key, held_ex, found, value, lock);
      if (status == TxnLockStatus::kBusy) return TxnResult::kAbort;
      if (lock != nullptr) shared_holds_.push_back(lock);
      if (!found) return TxnResult::kNotFound;
      out = value;
      return TxnResult::kOk;
    } else {
      size_t guard_index;
      const TxnResult acquired = AcquireExclusive(key, guard_index);
      if (acquired != TxnResult::kOk) return acquired;
      entries_.push_back(Entry{key, guard_index, /*pending=*/false, 0});
      out = guards_[guard_index].Read();
      return TxnResult::kOk;
    }
  }

  // Write intent: takes the record's exclusive lock now (growing phase),
  // buffers the value, installs at commit — aborts need no undo. On a
  // shared-mode host, a record lock this transaction already holds shared
  // is atomically upgraded (see AcquireExclusive); kAbort means a genuine
  // competitor held or shared the lock.
  TxnResult Put(uint64_t key, uint64_t value) {
    OPTIQL_INVARIANT(!finished_, "Put on a finished transaction");
    if (Entry* entry = FindEntry(key)) {
      entry->pending = true;
      entry->value = value;
      return TxnResult::kOk;
    }
    size_t guard_index;
    const TxnResult acquired = AcquireExclusive(key, guard_index);
    if (acquired != TxnResult::kOk) return acquired;
    entries_.push_back(Entry{key, guard_index, /*pending=*/true, value});
    return TxnResult::kOk;
  }

  // Installs buffered writes and releases everything. Every lock is
  // already held, so the only failure is the routing fence below: on a
  // sharded host whose table changed since begin (or has a migration
  // window open), the held records may no longer be their keys' homes —
  // release without installing and let RunTxn retry on the new table.
  bool Commit() {
    OPTIQL_INVARIANT(!finished_, "Commit on a finished transaction");
    finished_ = true;
    if constexpr (HasRoutingVersionOp<Index>) {
      const uint64_t routing_now = index_.RoutingVersion();
      if (routing_now != routing_version_ || (routing_now & 1) != 0) {
        for (size_t i = 0; i < num_guards_; ++i) {
          guards_[i].Unlock(/*installed=*/false);
        }
        num_guards_ = 0;
        ReleaseSharedHolds();
        return false;
      }
    }
    bool installed[ThreadQNodes::kMaxTxnLocks] = {};
    for (const Entry& entry : entries_) {
      if (!entry.pending) continue;
      guards_[entry.guard_index].Install(entry.value);
      // Version-bump the owning hold (the guard may be a non-owning alias
      // of an earlier one on the same lock).
      for (size_t i = 0; i < num_guards_; ++i) {
        if (guards_[i].owns() &&
            guards_[i].LockPtr() == guards_[entry.guard_index].LockPtr()) {
          installed[i] = true;
        }
      }
    }
    for (size_t i = 0; i < num_guards_; ++i) {
      guards_[i].Unlock(installed[i]);
    }
    num_guards_ = 0;
    ReleaseSharedHolds();
    return true;
  }

  void Abort() {
    OPTIQL_INVARIANT(!finished_, "Abort on a finished transaction");
    finished_ = true;
    for (size_t i = 0; i < num_guards_; ++i) {
      guards_[i].Unlock(/*installed=*/false);
    }
    num_guards_ = 0;
    ReleaseSharedHolds();
  }

 private:
  struct Entry {
    uint64_t key;
    size_t guard_index;
    bool pending;  // Buffered write awaiting install.
    uint64_t value;
  };

  Entry* FindEntry(uint64_t key) {
    for (Entry& entry : entries_) {
      if (entry.key == key) return &entry;
    }
    return nullptr;
  }

  bool OwnsExclusive(const Lock* lock) const {
    for (size_t i = 0; i < num_guards_; ++i) {
      if (guards_[i].owns() && guards_[i].LockPtr() == lock) return true;
    }
    return false;
  }

  TxnResult AcquireExclusive(uint64_t key, size_t& guard_index) {
    typename Index::TxnWriteGuard guard;
    const int slot = ThreadQNodes::kTxnSlotBase + static_cast<int>(num_guards_);
    TxnLockStatus status = TxnLockStatus::kBusy;
    bool upgraded = false;
    if constexpr (kSharedReads) {
      // A write into a lock this transaction already reads shared would
      // self-collide, and a no-wait retry would repeat the collision
      // forever. Instead, atomically convert our own shared holds into the
      // exclusive hold: values read under them stay protected (no release
      // window), and kBusy now means a genuine competitor, which aborting
      // can actually resolve.
      const Lock* lock_addr = index_.TxnLockAddr(key);
      if (const uint32_t my_holds = SharedHoldCount(lock_addr);
          my_holds > 0) {
        status = index_.TxnTryUpgradeForWrite(key, slot, my_holds, guard);
        if (status == TxnLockStatus::kBusy) return TxnResult::kAbort;
        DropSharedHolds(lock_addr);  // Consumed by the successful upgrade.
        upgraded = true;
      }
    }
    if (!upgraded) {
      const auto held = [this](const Lock* lock) {
        return OwnsExclusive(lock);
      };
      status = index_.TxnTryLockForWrite(key, slot, held, guard);
    }
    if (status == TxnLockStatus::kBusy) return TxnResult::kAbort;
    if (status == TxnLockStatus::kAbsent) return TxnResult::kNotFound;
    OPTIQL_CHECK(num_guards_ < ThreadQNodes::kMaxTxnLocks);
    guard_index = num_guards_;
    guards_[num_guards_] = guard;
    ++num_guards_;
    return TxnResult::kOk;
  }

  // Repeated shared reads of one lock pile up as duplicate entries; the
  // upgrade path needs the exact count (the lock's reader count must equal
  // our holds for the CAS to fire) and consumes them all at once.
  uint32_t SharedHoldCount(const Lock* lock) const {
    uint32_t holds = 0;
    for (const Lock* held : shared_holds_) holds += (held == lock);
    return holds;
  }

  void DropSharedHolds(const Lock* lock) {
    shared_holds_.erase(
        std::remove(shared_holds_.begin(), shared_holds_.end(), lock),
        shared_holds_.end());
  }

  void ReleaseSharedHolds() {
    if constexpr (kSharedReads) {
      for (const Lock* lock : shared_holds_) {
        Ops::UnlockShNoQueue(*const_cast<Lock*>(lock));
      }
      shared_holds_.clear();
    }
  }

  Index& index_;
  EpochGuard epoch_;
  std::vector<Entry> entries_;
  std::vector<const Lock*> shared_holds_;
  typename Index::TxnWriteGuard guards_[ThreadQNodes::kMaxTxnLocks];
  size_t num_guards_ = 0;
  uint64_t routing_version_ = 0;  // Snapshot at begin (routed hosts only).
  bool finished_ = false;
};

// --- Retry driver ----------------------------------------------------------

// Runs `body(txn)` under a fresh transaction until a commit sticks. The
// body returns false when an access came back kAbort (the driver aborts,
// counts, and re-runs it); a true return commits. OCC attributes aborts to
// failed validation, 2PL to busy locks — matching where each protocol can
// lose.
template <class Txn, class Index, class Body>
void RunTxn(Index& index, TxnStats& stats, Body&& body) {
  // Backoff between attempts, escalating from pause to yield. No-wait
  // retries have no blocking edge that hands the CPU to the conflicting
  // holder, so on an oversubscribed core a thread can otherwise burn its
  // whole scheduler quantum aborting against locks whose holders are
  // preempted mid-transaction — the yield IS the progress mechanism.
  // Everything is released before the wait (Abort/Commit drop all locks;
  // only the epoch guard spans it, and guards never block anyone).
  SpinWait backoff;
  while (true) {
    {
      Txn txn(index);
      if (!body(txn)) {
        txn.Abort();
        ++stats.aborts;
        ++stats.busy_aborts;
      } else if (txn.Commit()) {
        ++stats.commits;
        return;
      } else {
        ++stats.aborts;
        ++stats.validation_aborts;
      }
    }
    backoff.Spin();
  }
}

}  // namespace optiql

#endif  // OPTIQL_TXN_TXN_H_
