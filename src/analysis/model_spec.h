// Cross-thread specification probes for model-check scenarios (DESIGN.md
// §13). Each probe is a tiny piece of "protected data" built from
// ModelAtomic cells, so its accesses are themselves scheduling points: a
// protocol bug manifests as an interleaving in which a probe's invariant
// fires, and the explorer hands back the schedule that reached it.
//
// The probes deliberately check the same property two ways where possible
// (an eager in-section invariant plus an end-state count), because the two
// catch different shapes of the same bug: the invariant pinpoints the
// overlap step, the final count catches overlaps whose windows never quite
// collide with a probe operation.
#ifndef OPTIQL_ANALYSIS_MODEL_SPEC_H_
#define OPTIQL_ANALYSIS_MODEL_SPEC_H_

#if !defined(OPTIQL_MODEL) || !OPTIQL_MODEL
#error "model_spec.h is only meaningful in -DOPTIQL_MODEL=ON builds"
#endif

#include <cstdint>

#include "common/check.h"
#include "common/model_atomic.h"

namespace optiql::model {

// Mutual-exclusion probe for exclusive critical sections. Critical() is a
// read-modify-write performed the racy way (separate load and store): if
// two threads ever overlap in the section, either the occupancy invariant
// fires immediately or an update is lost and CheckFinal sees it.
class CsProbe {
 public:
  void Critical() {
    const uint64_t occupants = in_cs_.fetch_add(1, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(occupants == 0,
                     "mutual exclusion violated: a second thread entered an "
                     "exclusive critical section");
    const uint64_t v = value_.load(std::memory_order_relaxed);
    value_.store(v + 1, std::memory_order_relaxed);
    in_cs_.fetch_sub(1, std::memory_order_acq_rel);
    {
      QuietScope quiet;  // controller-side expectation, not shared protocol
      ++expected_;
    }
  }

  // Controller-side (Finale): every Critical() call must have taken effect.
  void CheckFinal() const {
    QuietScope quiet;
    OPTIQL_INVARIANT(in_cs_.load(std::memory_order_relaxed) == 0,
                     "a thread finished while still inside the critical "
                     "section");
    OPTIQL_INVARIANT(value_.load(std::memory_order_relaxed) == expected_,
                     "lost update: overlapping critical sections dropped an "
                     "increment");
  }

 private:
  ModelAtomic<uint64_t> in_cs_{0};
  ModelAtomic<uint64_t> value_{0};
  uint64_t expected_ = 0;  // bumped quietly; single source of truth at end
};

// Reader/writer overlap probe for shared/exclusive locks. Writers must be
// alone; readers may share with readers only.
class RwProbe {
 public:
  void ReaderEnter() {
    readers_.fetch_add(1, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(writers_.load(std::memory_order_relaxed) == 0,
                     "reader entered while a writer holds the lock");
  }
  void ReaderExit() { readers_.fetch_sub(1, std::memory_order_acq_rel); }

  void WriterEnter() {
    const uint64_t other = writers_.fetch_add(1, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(other == 0,
                     "two writers hold the lock simultaneously");
    OPTIQL_INVARIANT(readers_.load(std::memory_order_relaxed) == 0,
                     "writer entered while readers are still active "
                     "(upgrade admitted a non-sole holder?)");
  }
  void WriterExit() { writers_.fetch_sub(1, std::memory_order_acq_rel); }

  void CheckFinal() const {
    QuietScope quiet;
    OPTIQL_INVARIANT(readers_.load(std::memory_order_relaxed) == 0 &&
                         writers_.load(std::memory_order_relaxed) == 0,
                     "reader/writer occupancy not conserved at end of "
                     "execution");
  }

 private:
  ModelAtomic<uint64_t> readers_{0};
  ModelAtomic<uint64_t> writers_{0};
};

// Torn-read probe for optimistic (validate-after) readers: the seqlock
// contract. A writer publishes the same value into both cells while
// holding the lock; a reader that passed validation must have seen a
// consistent pair. Readers call Check(a, b) only after ReleaseSh returned
// true.
class SeqProbe {
 public:
  void Publish(uint64_t x) {
    data1_.store(x, std::memory_order_relaxed);
    data2_.store(x, std::memory_order_relaxed);
  }

  uint64_t ReadFirst() const { return data1_.load(std::memory_order_relaxed); }
  uint64_t ReadSecond() const { return data2_.load(std::memory_order_relaxed); }

  static void Check(uint64_t a, uint64_t b) {
    OPTIQL_INVARIANT(a == b,
                     "torn optimistic read passed validation: the version "
                     "protocol failed to invalidate an overlapped reader");
  }

 private:
  ModelAtomic<uint64_t> data1_{0};
  ModelAtomic<uint64_t> data2_{0};
};

}  // namespace optiql::model

#endif  // OPTIQL_ANALYSIS_MODEL_SPEC_H_
