// Cooperative scheduling runtime for the model checker (DESIGN.md §13).
//
// A Runtime owns one worker thread per scenario thread. Exactly one worker
// runs at any moment: each visible atomic operation (through the
// ModelAtomic seam) parks the worker on a semaphore pair and hands control
// back to the controller, which picks the next thread to step. The
// explorer (model_explorer.h) drives Step()/EnabledMask() to enumerate
// interleavings; this file only knows how to run ONE schedule at a time,
// deterministically.
//
// Spin semantics (the part that keeps exploration finite): a failed
// spin-wait iteration (SpinWait::Spin / ExponentialBackoff::Pause) parks
// the thread "watching" the object it last accessed. The thread stays
// schedulable for one free re-check per observed change of that object and
// otherwise blocks until some other thread writes it. A state where every
// unfinished thread is blocked this way is a deadlock/lost-wakeup, which
// the explorer reports as a violation.
#ifndef OPTIQL_ANALYSIS_MODEL_RUNTIME_H_
#define OPTIQL_ANALYSIS_MODEL_RUNTIME_H_

#if !defined(OPTIQL_MODEL) || !OPTIQL_MODEL
#error "model_runtime.h is only meaningful in -DOPTIQL_MODEL=ON builds"
#endif

#include <cstdint>
#include <exception>
#include <functional>
#include <semaphore>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/model_atomic.h"
#include "qnode/qnode_pool.h"

namespace optiql::model {

// Thrown to unwind a worker out of the scenario body (execution aborted or
// a spec violation recorded). Never escapes the runtime.
struct ModelStop {};

// One visible operation, as published by the seam.
struct Event {
  const void* obj = nullptr;
  OpKind kind = OpKind::kLoad;
  uint64_t arg = 0;     // operand (store/exchange/CAS-desired/add amount)
  uint64_t result = 0;  // previous value observed
  bool mutated = false;
};

// A scenario is a small fixed thread program over real lock objects.
// Reset() reconstructs all shared state (called on the controller before
// every execution); Thread(tid) is the body run by worker `tid`; Finale()
// runs on the controller after all threads finished and may assert
// end-state properties with OPTIQL_INVARIANT.
class Scenario {
 public:
  virtual ~Scenario() = default;
  virtual int num_threads() const = 0;
  virtual void Reset() = 0;
  virtual void Thread(int tid) = 0;
  virtual void Finale() {}
};

class Runtime {
 public:
  static constexpr int kMaxThreads = 4;
  // Queue nodes dealt to each worker for CLH-style node migration (covers
  // one live node + one adopted node with slack) plus direct per-thread
  // nodes handed out via DeckNode().
  static constexpr int kDeckSize = 4;

  explicit Runtime(Scenario& scenario);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // The active runtime (at most one per process at a time); null outside
  // an exploration. Used by the seam hooks and scenario helpers.
  static Runtime* Current();

  // Starts a fresh execution: resets scenario state, re-deals queue-node
  // decks, and runs every worker up to its first scheduling point.
  void Begin();

  // Runs thread `tid`'s pending operation and lets it advance to its next
  // scheduling point (or to completion). Requires tid enabled.
  void Step(int tid);

  // Bitmask of threads that have a pending operation and are not
  // spin-blocked. 0 with unfinished threads present means deadlock.
  uint32_t EnabledMask() const;
  uint32_t UnfinishedMask() const;

  // The operation thread `tid` executed in its most recent Step.
  const Event& LastExec(int tid) const;

  // The operation thread `tid` is parked on (published but not yet
  // executed), or null once the thread finished. The explorer's sleep-set
  // logic uses this to decide whether a sleeping thread's next move
  // depends on the step just taken.
  const Event* PendingOp(int tid) const {
    const WorkerSlot& s = slots_[tid];
    return (s.has_pending && !s.finished) ? &s.pending : nullptr;
  }

  // Unwinds every still-parked worker (used after a violation or a
  // truncated replay so the next Begin starts clean).
  void AbortExecution();

  // Runs Scenario::Finale plus the built-in pool-conservation check.
  // Requires all threads finished.
  void RunFinale();

  // Records the first spec violation of the current execution.
  void Fail(std::string message);
  bool HasViolation() const { return has_violation_; }
  const std::string& ViolationMessage() const { return violation_; }
  bool InFinale() const { return in_finale_; }

  // Rethrows the first non-ModelStop exception a worker died with (a bug
  // in scenario or runtime code, not a spec violation).
  void CheckWorkerFailures();

  // Human-readable labels for trace output.
  void NameObject(const void* obj, std::string label);
  std::string ObjectLabel(const void* obj) const;

  // Per-thread queue node i (0 <= i < kDeckSize) from the re-dealt deck.
  // Scenario bodies use this instead of ThreadQNodes::Get so node identity
  // is identical across executions.
  QNode* DeckNode(int tid, int i);

  // Write-generation counter of `obj` (bumped on every mutating op).
  uint64_t GenOf(const void* obj) const;
  void BumpGen(const void* obj);

  int num_threads() const { return num_threads_; }

  // --- seam side (called from worker threads; see model_runtime.cc) ---
  struct WorkerSlot {
    std::binary_semaphore start{0};  // controller -> worker: new execution
    std::binary_semaphore go{0};     // controller -> worker: run pending op
    std::binary_semaphore ready{0};  // worker -> controller: parked/finished
    Event pending;                   // op about to execute
    Event exec;                      // last executed op
    bool has_pending = false;
    bool finished = false;
    bool aborted = false;
    std::exception_ptr failure;
    // Spin bookkeeping (see file comment).
    const void* last_access_obj = nullptr;
    const void* last_spin_obj = nullptr;
    uint64_t last_spin_gen = 0;
    // Queue-node deck, re-dealt by Begin().
    std::vector<QNode*> deck;
    int tid = -1;
    std::thread thread;
  };

  WorkerSlot& slot(int tid) { return slots_[tid]; }

 private:
  void WorkerMain(int tid);

  Scenario& scenario_;
  const int num_threads_;
  WorkerSlot slots_[kMaxThreads];
  std::vector<std::vector<QNode*>> master_decks_;  // per tid, fixed at ctor
  std::unordered_map<const void*, uint64_t> obj_gen_;
  std::unordered_map<const void*, std::string> labels_;
  std::string violation_;
  bool has_violation_ = false;
  bool in_finale_ = false;
  bool shutdown_ = false;
  uint32_t pool_in_use_at_begin_ = 0;
};

}  // namespace optiql::model

#endif  // OPTIQL_ANALYSIS_MODEL_RUNTIME_H_
