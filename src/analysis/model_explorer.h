// DFS interleaving explorer over a model Runtime (DESIGN.md §13).
//
// Explore() enumerates schedules of a Scenario depth-first with dynamic
// partial-order reduction: at every choice point the default is to keep
// running the previous thread (run-to-completion), and alternative choices
// are added only where a later step proves dependent (same object, at
// least one mutation) on an earlier one. The reduction is conservative —
// when the conflicting thread was not enabled at the earlier point, every
// thread enabled there is added — so it explores a superset of a
// persistent-set reduction and misses no safety violation reachable under
// sequential consistency.
//
// An optional preemption bound caps the number of involuntary context
// switches per schedule (CHESS-style): with bound k, only schedules with
// <= k preemptions run, which keeps the larger lock x thread configs
// inside a CI budget and yields small counterexamples. A bound-limited or
// budget-limited run reports complete=false.
#ifndef OPTIQL_ANALYSIS_MODEL_EXPLORER_H_
#define OPTIQL_ANALYSIS_MODEL_EXPLORER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/model_runtime.h"

namespace optiql::model {

struct ExploreOptions {
  // < 0: unbounded (full DPOR). Otherwise max preemptions per schedule.
  int preemption_bound = -1;
  // Wall-clock budget; 0 = unlimited. Exploration stops at an execution
  // boundary once exceeded and reports complete=false.
  int64_t budget_ms = 0;
  // Hard cap on executions (0 = unlimited).
  int64_t max_executions = 0;
  // Per-execution step limit: a livelock backstop, reported as a violation.
  int64_t max_steps = 20000;
  // Keep the per-step op trace of a violating execution (costs memory on
  // every execution; always on for Replay).
  bool collect_trace = true;
};

struct ExploreResult {
  bool found_violation = false;
  std::string message;
  std::vector<int> schedule;  // thread-id sequence reaching the violation
  std::string trace;          // interleaved op trace of that schedule
  uint64_t executions = 0;
  uint64_t steps = 0;
  int max_depth = 0;
  // True iff the space was exhausted with no bound/budget truncation:
  // a clean pass is a proof for this scenario under SC.
  bool complete = false;
  bool hit_bound_skip = false;
  bool hit_budget = false;
};

// Exhaustively explores `scenario` under `options`.
ExploreResult Explore(Scenario& scenario, const ExploreOptions& options = {});

// Deterministically re-runs one schedule (e.g. a checked-in counterexample
// or a string from a failure report) and reports what it finds. The
// schedule may be a prefix; remaining steps run with the default policy.
ExploreResult Replay(Scenario& scenario, const std::vector<int>& schedule);

// Finds a minimal counterexample: re-explores with preemption bound
// 0, 1, 2, ... and returns the first violation found (fewest involuntary
// switches — the CHESS small-scope argument). Falls back to the unbounded
// result if bounded passes stay clean.
ExploreResult FindMinimal(Scenario& scenario, const ExploreOptions& options = {});

// "0.1.1.0" <-> {0,1,1,0}
std::string FormatSchedule(const std::vector<int>& schedule);
std::vector<int> ParseSchedule(const std::string& text);

}  // namespace optiql::model

#endif  // OPTIQL_ANALYSIS_MODEL_EXPLORER_H_
