#include "analysis/model_explorer.h"

#include <chrono>
#include <cstdio>

#include "common/check.h"

namespace optiql::model {

namespace {

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kLoad:
      return "load ";
    case OpKind::kStore:
      return "store";
    case OpKind::kRmw:
      return "rmw  ";
    case OpKind::kSpin:
      return "spin ";
  }
  return "?";
}

int LowestBit(uint32_t mask) {
  OPTIQL_CHECK(mask != 0);
  return __builtin_ctz(mask);
}

// One DFS choice point. Node i chooses the thread that executes step i;
// its backtrack set accumulates the alternatives DPOR proves necessary,
// while its sleep set (Godefroid) holds threads whose move from this state
// was already explored in an equivalent order — picking one would only
// re-derive a known trace, so candidates exclude it.
struct Node {
  uint32_t enabled = 0;
  uint32_t done = 0;
  uint32_t backtrack = 0;
  uint32_t sleep = 0;
  int chosen = -1;
  int preempts = 0;  // preemptions consumed up to and including this choice
};

class Dfs {
 public:
  Dfs(Scenario& scenario, const ExploreOptions& opt)
      : opt_(opt), rt_(scenario) {
    if (opt_.budget_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(opt_.budget_ms);
    }
  }

  ExploreResult Run() {
    bool truncated = false;
    while (true) {
      if (opt_.max_executions > 0 &&
          res_.executions >= static_cast<uint64_t>(opt_.max_executions)) {
        truncated = true;
        break;
      }
      if (opt_.budget_ms > 0 && std::chrono::steady_clock::now() >= deadline_) {
        res_.hit_budget = true;
        truncated = true;
        break;
      }
      RunOne();
      rt_.CheckWorkerFailures();
      if (res_.found_violation) return res_;
      if (!PickNextBranch()) break;  // space exhausted
    }
    res_.complete = !truncated && !res_.hit_bound_skip && !res_.hit_budget;
    return res_;
  }

  ExploreResult RunReplay(const std::vector<int>& schedule) {
    forced_ = &schedule;
    replay_mode_ = true;  // single execution: sleep-set pruning is off
    RunOne();
    rt_.CheckWorkerFailures();
    res_.complete = false;  // a single schedule proves nothing by itself
    return res_;
  }

 private:
  // Runs one complete execution: replays the prefix already fixed in
  // stack_, then extends with the default policy (keep running the
  // previous thread), creating nodes and updating backtrack sets.
  void RunOne() {
    rt_.Begin();
    trace_.clear();
    ++res_.executions;
    const size_t prefix = stack_.size();
    size_t i = 0;
    while (true) {
      const uint32_t enabled = rt_.EnabledMask();
      const int prev = i > 0 ? stack_[i - 1].chosen : -1;
      if (i < stack_.size()) {
        // Fixed prefix: the world must look exactly as it did before.
        Node& n = stack_[i];
        OPTIQL_CHECK(n.enabled == enabled);
        n.preempts = PreemptsThrough(i, n.chosen);
      } else {
        if (enabled == 0) {
          if (rt_.UnfinishedMask() != 0) {
            Violation(
                "deadlock: every unfinished thread is blocked waiting for a "
                "write that can never happen");
            return;
          }
          break;  // all threads finished
        }
        const uint32_t sleep = replay_mode_ ? 0 : InheritedSleep(i);
        if ((enabled & ~sleep) == 0) {
          // Sleep-set blocked: every enabled move was already explored in
          // an equivalent order from an ancestor state. Extending further
          // can only re-derive known traces — abandon the execution.
          rt_.AbortExecution();
          return;
        }
        int choice = ForcedChoice(i, enabled);
        if (choice < 0) {
          const uint32_t pick = enabled & ~sleep;
          choice =
              (prev >= 0 && ((pick >> prev) & 1)) ? prev : LowestBit(pick);
        }
        Node n;
        n.enabled = enabled;
        n.sleep = sleep;
        n.chosen = choice;
        n.backtrack = 1u << choice;
        n.preempts = PreemptsThrough(i, choice, enabled);
        stack_.push_back(n);
      }
      Node& n = stack_[i];
      rt_.Step(n.chosen);
      ++res_.steps;
      trace_.push_back({n.chosen, rt_.LastExec(n.chosen)});
      if (i >= prefix && forced_ == nullptr) UpdateBacktrack(i);
      if (static_cast<int>(stack_.size()) > res_.max_depth) {
        res_.max_depth = static_cast<int>(stack_.size());
      }
      if (rt_.HasViolation()) {
        Violation(rt_.ViolationMessage());
        return;
      }
      if (static_cast<int64_t>(trace_.size()) > opt_.max_steps) {
        Violation("step limit exceeded: livelock (or raise --max-steps)");
        return;
      }
      ++i;
    }
    rt_.RunFinale();
    if (rt_.HasViolation()) {
      res_.found_violation = true;
      res_.message = rt_.ViolationMessage();
      CaptureSchedule();
    }
  }

  // Preemption count after choosing `choice` at step i: switching away
  // from a previous thread that could have kept running costs one.
  int PreemptsThrough(size_t i, int choice) const {
    const int base = i > 0 ? stack_[i - 1].preempts : 0;
    if (i == 0) return 0;
    const int prev = stack_[i - 1].chosen;
    const bool preempt =
        choice != prev && ((stack_[i].enabled >> prev) & 1) != 0;
    // stack_[i] exists only on the replay path; on the extend path the
    // caller passes the freshly computed enabled mask via the Node it is
    // about to push — handled by the overload below.
    return base + (preempt ? 1 : 0);
  }
  int PreemptsThrough(size_t i, int choice, uint32_t enabled) const {
    const int base = i > 0 ? stack_[i - 1].preempts : 0;
    if (i == 0) return 0;
    const int prev = stack_[i - 1].chosen;
    const bool preempt = choice != prev && ((enabled >> prev) & 1) != 0;
    return base + (preempt ? 1 : 0);
  }

  // Sleep set a fresh node at depth i inherits: the parent's sleepers,
  // minus any whose pending operation depends on the step the parent just
  // executed (those are "woken" — running them now could reach states the
  // earlier exploration order did not). A sleeping thread's pending op is
  // unchanged since the parent state because only Step(tid) advances tid.
  uint32_t InheritedSleep(size_t i) const {
    if (i == 0) return 0;
    uint32_t ps = stack_[i - 1].sleep;
    if (ps == 0) return 0;
    const Event& pe = trace_[i - 1].second;
    uint32_t out = 0;
    while (ps != 0) {
      const int t = LowestBit(ps);
      ps &= ps - 1;
      const Event* q = rt_.PendingOp(t);
      if (q == nullptr) continue;  // finished: drop from sleep
      const bool q_writes =
          q->kind == OpKind::kStore || q->kind == OpKind::kRmw;
      const bool dependent =
          q->obj != nullptr && q->obj == pe.obj && (q_writes || pe.mutated);
      if (!dependent) out |= 1u << t;
    }
    return out;
  }

  int ForcedChoice(size_t i, uint32_t enabled) {
    if (forced_ == nullptr || i >= forced_->size()) return -1;
    const int tid = (*forced_)[i];
    if (tid < 0 || tid >= rt_.num_threads() || ((enabled >> tid) & 1) == 0) {
      // The schedule no longer fits this binary (the bug it witnessed is
      // gone, or code changed): stop forcing, finish with the default
      // policy so the corpus entry still checks "no violation here".
      forced_ = nullptr;
      return -1;
    }
    return tid;
  }

  // Dynamic partial-order reduction, conservative variant: the new step s
  // races with the most recent dependent step j of another thread; the
  // schedule where s's thread runs before j must also be explored. If s's
  // thread was not enabled at j we cannot name the single alternative, so
  // every thread enabled at j is added (persistent-set fallback).
  void UpdateBacktrack(size_t i) {
    const int stid = trace_[i].first;
    const Event& s = trace_[i].second;
    if (s.obj == nullptr) return;
    for (size_t j = i; j-- > 0;) {
      const Event& e = trace_[j].second;
      if (e.obj != s.obj) continue;
      if (!e.mutated && !s.mutated) continue;  // read/read: independent
      if (trace_[j].first == stid) break;      // ordered by program order
      Node& nj = stack_[j];
      if (((nj.enabled >> stid) & 1) != 0) {
        nj.backtrack |= 1u << stid;
      } else {
        nj.backtrack |= nj.enabled;
      }
      break;
    }
  }

  // Chooses the next unexplored branch, truncating stack_ to it. Returns
  // false when the whole space is exhausted.
  bool PickNextBranch() {
    while (!stack_.empty()) {
      const size_t i = stack_.size() - 1;
      Node& n = stack_[i];
      n.done |= 1u << n.chosen;
      n.sleep |= 1u << n.chosen;  // subtree fully explored from here
      uint32_t cand = n.backtrack & ~n.done & ~n.sleep;
      while (cand != 0) {
        const int c = LowestBit(cand);
        cand &= cand - 1;
        if (opt_.preemption_bound >= 0 &&
            PreemptsThrough(i, c, n.enabled) > opt_.preemption_bound) {
          n.done |= 1u << c;  // skipped, not explored
          res_.hit_bound_skip = true;
          continue;
        }
        n.chosen = c;
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  void Violation(const std::string& message) {
    res_.found_violation = true;
    res_.message = message;
    CaptureSchedule();
    rt_.AbortExecution();
  }

  void CaptureSchedule() {
    res_.schedule.clear();
    for (const auto& [tid, ev] : trace_) res_.schedule.push_back(tid);
    if (!opt_.collect_trace) return;
    std::string out;
    char line[256];
    for (size_t k = 0; k < trace_.size(); ++k) {
      const auto& [tid, ev] = trace_[k];
      std::snprintf(line, sizeof(line),
                    "#%03zu t%d %s %-24s arg=%016llx old=%016llx%s\n", k, tid,
                    KindName(ev.kind), rt_.ObjectLabel(ev.obj).c_str(),
                    static_cast<unsigned long long>(ev.arg),
                    static_cast<unsigned long long>(ev.result),
                    ev.mutated ? " *" : "");
      out += line;
    }
    res_.trace = std::move(out);
  }

  const ExploreOptions opt_;
  Runtime rt_;
  std::vector<Node> stack_;
  std::vector<std::pair<int, Event>> trace_;
  const std::vector<int>* forced_ = nullptr;
  bool replay_mode_ = false;
  ExploreResult res_;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace

ExploreResult Explore(Scenario& scenario, const ExploreOptions& options) {
  Dfs dfs(scenario, options);
  return dfs.Run();
}

ExploreResult Replay(Scenario& scenario, const std::vector<int>& schedule) {
  ExploreOptions opt;
  opt.collect_trace = true;
  Dfs dfs(scenario, opt);
  return dfs.RunReplay(schedule);
}

ExploreResult FindMinimal(Scenario& scenario, const ExploreOptions& options) {
  for (int bound = 0; bound <= 4; ++bound) {
    ExploreOptions bounded = options;
    bounded.preemption_bound = bound;
    ExploreResult r = Explore(scenario, bounded);
    if (r.found_violation) return r;
  }
  return Explore(scenario, options);
}

std::string FormatSchedule(const std::vector<int>& schedule) {
  std::string out;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) out += '.';
    out += std::to_string(schedule[i]);
  }
  return out;
}

std::vector<int> ParseSchedule(const std::string& text) {
  std::vector<int> out;
  int value = -1;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      value = (value < 0 ? 0 : value * 10) + (c - '0');
    } else {
      if (value >= 0) out.push_back(value);
      value = -1;
    }
  }
  if (value >= 0) out.push_back(value);
  return out;
}

}  // namespace optiql::model
