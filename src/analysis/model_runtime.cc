#include "analysis/model_runtime.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace optiql::model {

namespace {

Runtime* g_runtime = nullptr;

// The seam's thread identity: null on the controller and on any unmanaged
// thread (their operations execute directly).
thread_local Runtime::WorkerSlot* t_slot = nullptr;
thread_local int t_quiet = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Seam hooks (declared in common/model_atomic.h)

QuietScope::QuietScope() { ++t_quiet; }
QuietScope::~QuietScope() { --t_quiet; }

SeededBugs& bugs() {
  static SeededBugs b;
  return b;
}

void PreOp(const void* obj, OpKind kind) {
  Runtime::WorkerSlot* slot = t_slot;
  if (slot == nullptr || t_quiet > 0) return;
  slot->pending = Event{};
  slot->pending.obj = obj;
  slot->pending.kind = kind;
  slot->has_pending = true;
  slot->ready.release();
  slot->go.acquire();
  slot->has_pending = false;
  if (slot->aborted) throw ModelStop{};
}

void PostOp(uint64_t arg, uint64_t result, bool mutated) {
  Runtime::WorkerSlot* slot = t_slot;
  if (slot == nullptr || t_quiet > 0) return;
  slot->exec = slot->pending;
  slot->exec.arg = arg;
  slot->exec.result = result;
  slot->exec.mutated = mutated;
  slot->last_access_obj = slot->pending.obj;
  if (slot->pending.kind != OpKind::kLoad) {
    // The thread made (or attempted) a write: its next spin iteration gets
    // a fresh free re-check rather than inheriting stale spin state.
    slot->last_spin_obj = nullptr;
  }
  if (mutated) g_runtime->BumpGen(slot->pending.obj);
}

void SpinYield() {
  Runtime::WorkerSlot* slot = t_slot;
  if (slot == nullptr || t_quiet > 0) {
    // Unmanaged thread in a model build (e.g. a plain gtest): behave like
    // the normal spin-then-yield path would.
    std::this_thread::yield();
    return;
  }
  Runtime* rt = g_runtime;
  const void* obj = slot->last_access_obj;
  slot->pending = Event{};
  slot->pending.obj = obj;
  slot->pending.kind = OpKind::kSpin;
  slot->has_pending = true;
  slot->ready.release();
  slot->go.acquire();
  slot->has_pending = false;
  if (slot->aborted) throw ModelStop{};
  slot->exec = slot->pending;
  // From here on this spin site blocks until `obj` is written again.
  slot->last_spin_obj = obj;
  slot->last_spin_gen = rt->GenOf(obj);
}

void InvariantFailed(const char* file, int line, const char* cond,
                     const char* msg) {
  Runtime* rt = Runtime::Current();
  if (rt != nullptr && (t_slot != nullptr || rt->InFinale())) {
    char buf[512];
    std::snprintf(buf, sizeof(buf), "OPTIQL_INVARIANT failed at %s:%d: %s — %s",
                  file, line, cond, msg);
    rt->Fail(buf);
    throw ModelStop{};
  }
  std::fprintf(stderr, "OPTIQL_INVARIANT failed at %s:%d: %s — %s\n", file,
               line, cond, msg);
  std::abort();
}

QNode* ScenarioPopQNode() {
  Runtime::WorkerSlot* slot = t_slot;
  if (slot == nullptr) return nullptr;
  OPTIQL_CHECK(!slot->deck.empty());  // kDeckSize exceeded by the scenario
  QNode* node = slot->deck.back();
  slot->deck.pop_back();
  {
    QuietScope quiet;
    node->Reset();
  }
  return node;
}

bool ScenarioPushQNode(QNode* node) {
  Runtime::WorkerSlot* slot = t_slot;
  if (slot == nullptr) return false;
  slot->deck.push_back(node);
  return true;
}

// ---------------------------------------------------------------------------
// Runtime

Runtime* Runtime::Current() { return g_runtime; }

Runtime::Runtime(Scenario& scenario)
    : scenario_(scenario), num_threads_(scenario.num_threads()) {
  OPTIQL_CHECK(num_threads_ >= 1 && num_threads_ <= kMaxThreads);
  OPTIQL_CHECK(g_runtime == nullptr);  // one exploration at a time
  g_runtime = this;
  master_decks_.resize(num_threads_);
  for (int tid = 0; tid < num_threads_; ++tid) {
    for (int i = 0; i < kDeckSize; ++i) {
      QNode* node = QNodePool::Instance().Acquire();
      OPTIQL_CHECK(node != nullptr);
      master_decks_[tid].push_back(node);
    }
    slots_[tid].tid = tid;
    slots_[tid].finished = true;  // no execution yet
    slots_[tid].thread = std::thread(&Runtime::WorkerMain, this, tid);
  }
}

Runtime::~Runtime() {
  shutdown_ = true;
  for (int tid = 0; tid < num_threads_; ++tid) slots_[tid].start.release();
  for (int tid = 0; tid < num_threads_; ++tid) slots_[tid].thread.join();
  for (auto& deck : master_decks_) {
    for (QNode* node : deck) {
      // Executions may leave nodes mid-protocol; normalize before Release's
      // Idle->Pooled transition check.
      node->Reset();
      node->dbg_state.store(QNode::kDbgIdle, std::memory_order_relaxed);
      QNodePool::Instance().Release(node);
    }
  }
  g_runtime = nullptr;
}

void Runtime::WorkerMain(int tid) {
  WorkerSlot& slot = slots_[tid];
  while (true) {
    slot.start.acquire();
    if (shutdown_) break;
    t_slot = &slot;
    try {
      scenario_.Thread(tid);
    } catch (const ModelStop&) {
    } catch (...) {
      slot.failure = std::current_exception();
    }
    t_slot = nullptr;
    slot.finished = true;
    slot.ready.release();
  }
}

void Runtime::Begin() {
  has_violation_ = false;
  violation_.clear();
  obj_gen_.clear();
  labels_.clear();
  for (int tid = 0; tid < num_threads_; ++tid) {
    WorkerSlot& slot = slots_[tid];
    OPTIQL_CHECK(slot.finished && !slot.has_pending);
    slot.finished = false;
    slot.aborted = false;
    slot.pending = Event{};
    slot.exec = Event{};
    slot.last_access_obj = nullptr;
    slot.last_spin_obj = nullptr;
    slot.last_spin_gen = 0;
    // Re-deal the deck: identical node identity every execution, pristine
    // contents, forced back to Idle (an aborted execution can leave a node
    // marked Queued).
    slot.deck = master_decks_[tid];
    for (QNode* node : slot.deck) {
      node->Reset();
      node->dbg_state.store(QNode::kDbgIdle, std::memory_order_relaxed);
    }
  }
  scenario_.Reset();  // controller: direct (unscheduled) operations
  pool_in_use_at_begin_ = QNodePool::Instance().in_use();
  // Run each worker to its first scheduling point, one at a time, so any
  // pre-protocol prolog work is serialized deterministically.
  for (int tid = 0; tid < num_threads_; ++tid) {
    slots_[tid].start.release();
    slots_[tid].ready.acquire();
  }
}

void Runtime::Step(int tid) {
  WorkerSlot& slot = slots_[tid];
  OPTIQL_CHECK(slot.has_pending && !slot.finished);
  slot.go.release();
  slot.ready.acquire();
}

uint32_t Runtime::EnabledMask() const {
  uint32_t mask = 0;
  for (int tid = 0; tid < num_threads_; ++tid) {
    const WorkerSlot& slot = slots_[tid];
    if (!slot.has_pending || slot.finished) continue;
    if (slot.pending.kind != OpKind::kSpin) {
      mask |= 1u << tid;
      continue;
    }
    // Spin step: enabled for one free re-check after a real op, or once
    // the watched object has been written since the last spin step.
    const bool free_check = slot.last_spin_obj != slot.pending.obj;
    if (free_check || GenOf(slot.pending.obj) != slot.last_spin_gen) {
      mask |= 1u << tid;
    }
  }
  return mask;
}

uint32_t Runtime::UnfinishedMask() const {
  uint32_t mask = 0;
  for (int tid = 0; tid < num_threads_; ++tid) {
    if (!slots_[tid].finished) mask |= 1u << tid;
  }
  return mask;
}

const Event& Runtime::LastExec(int tid) const { return slots_[tid].exec; }

void Runtime::AbortExecution() {
  for (int tid = 0; tid < num_threads_; ++tid) {
    WorkerSlot& slot = slots_[tid];
    if (slot.finished || !slot.has_pending) continue;
    slot.aborted = true;
    slot.go.release();
    slot.ready.acquire();
    OPTIQL_CHECK(slot.finished);
  }
}

void Runtime::RunFinale() {
  in_finale_ = true;
  try {
    scenario_.Finale();
    const uint32_t in_use = QNodePool::Instance().in_use();
    if (in_use != pool_in_use_at_begin_) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "qnode pool conservation violated: %" PRIu32
                    " nodes in use at start, %" PRIu32 " at end",
                    pool_in_use_at_begin_, in_use);
      Fail(buf);
    }
  } catch (const ModelStop&) {
  }
  in_finale_ = false;
}

void Runtime::Fail(std::string message) {
  if (has_violation_) return;  // keep the first violation of the execution
  has_violation_ = true;
  violation_ = std::move(message);
}

void Runtime::CheckWorkerFailures() {
  for (int tid = 0; tid < num_threads_; ++tid) {
    if (slots_[tid].failure) {
      std::exception_ptr e = slots_[tid].failure;
      slots_[tid].failure = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void Runtime::NameObject(const void* obj, std::string label) {
  labels_[obj] = std::move(label);
}

std::string Runtime::ObjectLabel(const void* obj) const {
  auto it = labels_.find(obj);
  if (it != labels_.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "obj@%p", obj);
  return buf;
}

QNode* Runtime::DeckNode(int tid, int i) {
  OPTIQL_CHECK(tid >= 0 && tid < num_threads_ && i >= 0 && i < kDeckSize);
  return master_decks_[tid][i];
}

uint64_t Runtime::GenOf(const void* obj) const {
  auto it = obj_gen_.find(obj);
  return it == obj_gen_.end() ? 0 : it->second;
}

void Runtime::BumpGen(const void* obj) { ++obj_gen_[obj]; }

}  // namespace optiql::model
