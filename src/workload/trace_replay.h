// Multithreaded trace replay against anything satisfying IndexLike
// (see index/index_ops.h). Two op-partitioning schemes:
//
//   * Round-robin (default): thread t replays ops t, t+threads, ... in
//     order. Even spread regardless of key distribution, but every thread
//     touches every key region — against a sharded store each thread ends
//     up hammering every shard.
//   * Key hash (ReplayOptions::partition_by_key): thread t replays exactly
//     the ops whose key hashes to it (Mix64(key) % threads). Each thread
//     owns a disjoint key set, so per-key op order is preserved from the
//     trace, and — because the sharded store routes with the same Mix64
//     family — threads develop shard affinity (threads == shards lines the
//     two partitions up exactly) instead of serializing every shard on
//     every thread.
#ifndef OPTIQL_WORKLOAD_TRACE_REPLAY_H_
#define OPTIQL_WORKLOAD_TRACE_REPLAY_H_

#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "index/index_ops.h"
#include "workload/trace.h"

namespace optiql {

struct ReplayOptions {
  int threads = 1;
  // false: ops are dealt round-robin across threads (the historical
  // behavior). true: ops are partitioned by key hash as described above.
  bool partition_by_key = false;
};

template <IndexLike Tree>
ReplayResult ReplayTrace(Tree& tree, const Trace& trace,
                         const ReplayOptions& options) {
  const int threads = options.threads;
  std::vector<ReplayResult> partials(static_cast<size_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ReplayResult& stats = partials[static_cast<size_t>(t)];
      std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
      const auto& ops = trace.ops();
      // Key-partitioned threads walk the whole trace and skip foreign
      // keys: a sequential read per thread is far cheaper than building
      // per-thread op lists up front.
      const size_t step =
          options.partition_by_key ? 1 : static_cast<size_t>(threads);
      const size_t first =
          options.partition_by_key ? 0 : static_cast<size_t>(t);
      for (size_t i = first; i < ops.size(); i += step) {
        const TraceOp& op = ops[i];
        if (options.partition_by_key &&
            Mix64(op.key) % static_cast<uint64_t>(threads) !=
                static_cast<uint64_t>(t)) {
          continue;
        }
        switch (op.kind) {
          case TraceOp::Kind::kLookup: {
            uint64_t out = 0;
            ++stats.lookups;
            if (IndexLookup(tree, op.key, out)) {
              ++stats.lookup_hits;
            }
            break;
          }
          case TraceOp::Kind::kInsert:
            ++stats.inserts;
            if (IndexInsert(tree, op.key, op.value)) {
              ++stats.insert_ok;
            }
            break;
          case TraceOp::Kind::kUpdate:
            ++stats.updates;
            if (IndexUpdate(tree, op.key, op.value)) {
              ++stats.update_ok;
            }
            break;
          case TraceOp::Kind::kRemove:
            ++stats.removes;
            if (IndexRemove(tree, op.key)) {
              ++stats.remove_ok;
            }
            break;
          case TraceOp::Kind::kScan:
            ++stats.scans;
            if constexpr (HasScanOp<Tree>) {
              stats.scanned_pairs += IndexScan(
                  tree, op.key, static_cast<size_t>(op.value), scan_buffer);
            } else {
              // Indexes without range support treat scans as lookups.
              uint64_t out = 0;
              IndexLookup(tree, op.key, out);
            }
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  ReplayResult total;
  for (const ReplayResult& p : partials) {
    total.lookups += p.lookups;
    total.lookup_hits += p.lookup_hits;
    total.inserts += p.inserts;
    total.insert_ok += p.insert_ok;
    total.updates += p.updates;
    total.update_ok += p.update_ok;
    total.removes += p.removes;
    total.remove_ok += p.remove_ok;
    total.scans += p.scans;
    total.scanned_pairs += p.scanned_pairs;
  }
  total.seconds = std::chrono::duration<double>(end - start).count();
  return total;
}

template <IndexLike Tree>
ReplayResult ReplayTrace(Tree& tree, const Trace& trace, int threads = 1) {
  ReplayOptions options;
  options.threads = threads;
  return ReplayTrace(tree, trace, options);
}

}  // namespace optiql

#endif  // OPTIQL_WORKLOAD_TRACE_REPLAY_H_
