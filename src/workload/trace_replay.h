// Multithreaded trace replay against any index with the repo's point-op
// interface (B+-tree style or ART's *Int style). Ops are partitioned
// round-robin across threads; each thread replays its slice in order.
#ifndef OPTIQL_WORKLOAD_TRACE_REPLAY_H_
#define OPTIQL_WORKLOAD_TRACE_REPLAY_H_

#include <chrono>
#include <thread>
#include <vector>

#include "harness/index_bench.h"
#include "workload/trace.h"

namespace optiql {

namespace internal {

// Scan support is optional (ART has none); detect it.
template <class Tree>
concept HasScan = requires(Tree t, uint64_t k,
                           std::vector<std::pair<uint64_t, uint64_t>>& out) {
  { t.Scan(k, size_t{1}, out) } -> std::same_as<size_t>;
};

}  // namespace internal

template <class Tree>
ReplayResult ReplayTrace(Tree& tree, const Trace& trace, int threads = 1) {
  std::vector<ReplayResult> partials(static_cast<size_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ReplayResult& stats = partials[static_cast<size_t>(t)];
      std::vector<std::pair<uint64_t, uint64_t>> scan_buffer;
      const auto& ops = trace.ops();
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += static_cast<size_t>(threads)) {
        const TraceOp& op = ops[i];
        switch (op.kind) {
          case TraceOp::Kind::kLookup: {
            uint64_t out = 0;
            ++stats.lookups;
            if (internal::IndexLookup(tree, op.key, out)) {
              ++stats.lookup_hits;
            }
            break;
          }
          case TraceOp::Kind::kInsert:
            ++stats.inserts;
            if (internal::IndexInsert(tree, op.key, op.value)) {
              ++stats.insert_ok;
            }
            break;
          case TraceOp::Kind::kUpdate:
            ++stats.updates;
            if (internal::IndexUpdate(tree, op.key, op.value)) {
              ++stats.update_ok;
            }
            break;
          case TraceOp::Kind::kRemove:
            ++stats.removes;
            if (internal::IndexRemove(tree, op.key)) {
              ++stats.remove_ok;
            }
            break;
          case TraceOp::Kind::kScan:
            ++stats.scans;
            if constexpr (internal::HasScan<Tree>) {
              stats.scanned_pairs += tree.Scan(
                  op.key, static_cast<size_t>(op.value), scan_buffer);
            } else {
              // Indexes without range support treat scans as lookups.
              uint64_t out = 0;
              internal::IndexLookup(tree, op.key, out);
            }
            break;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto end = std::chrono::steady_clock::now();

  ReplayResult total;
  for (const ReplayResult& p : partials) {
    total.lookups += p.lookups;
    total.lookup_hits += p.lookup_hits;
    total.inserts += p.inserts;
    total.insert_ok += p.insert_ok;
    total.updates += p.updates;
    total.update_ok += p.update_ok;
    total.removes += p.removes;
    total.remove_ok += p.remove_ok;
    total.scans += p.scans;
    total.scanned_pairs += p.scanned_pairs;
  }
  total.seconds = std::chrono::duration<double>(end - start).count();
  return total;
}

}  // namespace optiql

#endif  // OPTIQL_WORKLOAD_TRACE_REPLAY_H_
