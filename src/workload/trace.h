// Trace-driven workloads: generate, save, load and replay explicit
// operation traces against any index. Complements the closed-loop
// generators in index_bench.h when exact, reproducible op sequences are
// needed (regression comparisons, cross-index apples-to-apples runs, or
// replaying captured production-like patterns).
//
// File format: one op per line, whitespace-separated:
//   L <key>              lookup
//   I <key> <value>      insert
//   U <key> <value>      update
//   R <key>              remove
//   S <key> <count>      ascending scan
// Lines starting with '#' are comments.
#ifndef OPTIQL_WORKLOAD_TRACE_H_
#define OPTIQL_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "workload/distributions.h"
#include "workload/key_generator.h"

namespace optiql {

struct TraceOp {
  enum class Kind : uint8_t { kLookup, kInsert, kUpdate, kRemove, kScan };

  Kind kind;
  uint64_t key;
  uint64_t value;  // Insert/update payload; scan length for kScan.

  bool operator==(const TraceOp& other) const {
    return kind == other.kind && key == other.key && value == other.value;
  }
};

struct TraceConfig {
  uint64_t operations = 100000;
  uint64_t key_space = 100000;
  // Mix in percent; the remainder after lookup+insert+update+remove is
  // scans.
  int lookup_pct = 70;
  int insert_pct = 10;
  int update_pct = 10;
  int remove_pct = 5;
  uint32_t max_scan_len = 64;
  double skew = 0.0;  // 0 = uniform; else self-similar skew factor.
  KeySpace key_space_shape = KeySpace::kDense;
  uint64_t seed = 42;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceOp> ops) : ops_(std::move(ops)) {}

  // Generates a reproducible synthetic trace from the config.
  static Trace Generate(const TraceConfig& config);

  // Plain-text (de)serialization; returns false on I/O or parse errors.
  bool SaveTo(const std::string& path) const;
  static bool LoadFrom(const std::string& path, Trace* out);

  const std::vector<TraceOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  bool operator==(const Trace& other) const { return ops_ == other.ops_; }

 private:
  std::vector<TraceOp> ops_;
};

// Replay statistics, aggregated over all replay threads.
struct ReplayResult {
  uint64_t lookups = 0, lookup_hits = 0;
  uint64_t inserts = 0, insert_ok = 0;
  uint64_t updates = 0, update_ok = 0;
  uint64_t removes = 0, remove_ok = 0;
  uint64_t scans = 0, scanned_pairs = 0;
  double seconds = 0;

  uint64_t TotalOps() const {
    return lookups + inserts + updates + removes + scans;
  }
  double MopsPerSec() const {
    return seconds > 0 ? static_cast<double>(TotalOps()) / seconds / 1e6
                       : 0.0;
  }
};

}  // namespace optiql

#endif  // OPTIQL_WORKLOAD_TRACE_H_
