// Key-access distributions used by the paper's evaluation (§7.1):
//   * Uniform — the low-contention baseline.
//   * Self-similar (Gray et al., "Quickly Generating Billion-Record
//     Synthetic Databases") with skew factor h: a fraction (1-h) of accesses
//     target the first h*N keys, recursively. The paper uses h = 0.2
//     ("80% of accesses target 20% of the keys").
//   * Zipfian (YCSB-style, Gray et al. §3.2) as an additional skew model.
//
// Each generator maps a per-thread PRNG draw to an index in [0, n).
#ifndef OPTIQL_WORKLOAD_DISTRIBUTIONS_H_
#define OPTIQL_WORKLOAD_DISTRIBUTIONS_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/random.h"

namespace optiql {

class UniformDistribution {
 public:
  explicit UniformDistribution(uint64_t n) : n_(n) { OPTIQL_CHECK(n > 0); }

  uint64_t Next(Xoshiro256& rng) const { return rng.NextBounded(n_); }

 private:
  uint64_t n_;
};

class SelfSimilarDistribution {
 public:
  // skew = h in Gray et al.: (1-h) of the accesses hit the first h*n keys.
  SelfSimilarDistribution(uint64_t n, double skew)
      : n_(n), exponent_(std::log(skew) / std::log(1.0 - skew)) {
    OPTIQL_CHECK(n > 0);
    OPTIQL_CHECK(skew > 0.0 && skew < 0.5);
  }

  uint64_t Next(Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    auto index = static_cast<uint64_t>(static_cast<double>(n_) *
                                       std::pow(u, exponent_));
    return index >= n_ ? n_ - 1 : index;
  }

 private:
  uint64_t n_;
  double exponent_;
};

class ZipfianDistribution {
 public:
  // Gray et al.'s approximate Zipf sampler: rank ~ n^U gives a 1/rank-ish
  // frequency law without precomputing harmonic sums over huge n.
  // theta in (0, 1); larger = more skew.
  ZipfianDistribution(uint64_t n, double theta)
      : n_(n),
        alpha_(1.0 / (1.0 - theta)),
        zetan_(Zeta(n, theta)),
        theta_(theta),
        eta_((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
             (1.0 - Zeta(2, theta) / zetan_)) {
    OPTIQL_CHECK(n > 0);
    OPTIQL_CHECK(theta > 0.0 && theta < 1.0);
  }

  uint64_t Next(Xoshiro256& rng) const {
    // Standard YCSB rejection-free inversion (Gray et al. Fig. 6).
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto index = static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return index >= n_ ? n_ - 1 : index;
  }

 private:
  // Truncated zeta: for large n an exact sum is too slow, so cap the terms;
  // the tail contribution is negligible for benchmark purposes.
  static double Zeta(uint64_t n, double theta) {
    const uint64_t terms = n < 10'000'000 ? n : 10'000'000;
    double sum = 0;
    for (uint64_t i = 1; i <= terms; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double alpha_;
  double zetan_;
  double theta_;
  double eta_;
};

}  // namespace optiql

#endif  // OPTIQL_WORKLOAD_DISTRIBUTIONS_H_
