// Key-space construction for the index benchmarks (§7.1, §7.6):
//   * Dense keys: 0..n-1 — stresses the locks maximally (hot keys share
//     index leaves) and lets ART fully materialize its last levels.
//   * Sparse keys: a fixed bijective scramble of 0..n-1 over the full
//     64-bit space — triggers ART's lazy expansion / path compression
//     (Figure 13).
//
// The big-endian transform makes integer ordering match byte-wise ordering,
// as ART requires (Leis et al. §IV.B "binary-comparable keys").
#ifndef OPTIQL_WORKLOAD_KEY_GENERATOR_H_
#define OPTIQL_WORKLOAD_KEY_GENERATOR_H_

#include <bit>
#include <cstdint>

namespace optiql {

enum class KeySpace {
  kDense,
  kSparse,
};

// Fibonacci-style bijective scramble (odd multiplier => invertible mod 2^64).
inline uint64_t ScrambleKey(uint64_t i) {
  return i * 0x9E3779B97F4A7C15ULL;
}

// Maps a logical record index to its key under the chosen key space.
inline uint64_t MakeKey(uint64_t index, KeySpace space) {
  return space == KeySpace::kDense ? index : ScrambleKey(index);
}

// Encodes an integer key as 8 binary-comparable (big-endian) bytes.
inline uint64_t ToBigEndian(uint64_t key) {
  if constexpr (std::endian::native == std::endian::little) {
    return __builtin_bswap64(key);
  } else {
    return key;
  }
}

inline uint64_t FromBigEndian(uint64_t key) { return ToBigEndian(key); }

}  // namespace optiql

#endif  // OPTIQL_WORKLOAD_KEY_GENERATOR_H_
