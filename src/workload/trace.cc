#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>

namespace optiql {

Trace Trace::Generate(const TraceConfig& config) {
  std::vector<TraceOp> ops;
  ops.reserve(config.operations);
  Xoshiro256 rng(config.seed);
  const UniformDistribution uniform(config.key_space);
  const SelfSimilarDistribution skewed(
      config.key_space, config.skew > 0 ? config.skew : 0.2);

  for (uint64_t i = 0; i < config.operations; ++i) {
    const uint64_t index =
        config.skew > 0 ? skewed.Next(rng) : uniform.Next(rng);
    const uint64_t key = MakeKey(index, config.key_space_shape);
    const int roll = static_cast<int>(rng.NextBounded(100));
    TraceOp op{};
    op.key = key;
    if (roll < config.lookup_pct) {
      op.kind = TraceOp::Kind::kLookup;
    } else if (roll < config.lookup_pct + config.insert_pct) {
      op.kind = TraceOp::Kind::kInsert;
      op.value = rng.Next() | 1;
    } else if (roll <
               config.lookup_pct + config.insert_pct + config.update_pct) {
      op.kind = TraceOp::Kind::kUpdate;
      op.value = rng.Next() | 1;
    } else if (roll < config.lookup_pct + config.insert_pct +
                          config.update_pct + config.remove_pct) {
      op.kind = TraceOp::Kind::kRemove;
    } else {
      op.kind = TraceOp::Kind::kScan;
      op.value = 1 + rng.NextBounded(config.max_scan_len);
    }
    ops.push_back(op);
  }
  return Trace(std::move(ops));
}

bool Trace::SaveTo(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fprintf(file, "# optiql trace: %zu operations\n", ops_.size());
  bool ok = true;
  for (const TraceOp& op : ops_) {
    int written = 0;
    switch (op.kind) {
      case TraceOp::Kind::kLookup:
        written = std::fprintf(file, "L %" PRIu64 "\n", op.key);
        break;
      case TraceOp::Kind::kInsert:
        written =
            std::fprintf(file, "I %" PRIu64 " %" PRIu64 "\n", op.key,
                         op.value);
        break;
      case TraceOp::Kind::kUpdate:
        written =
            std::fprintf(file, "U %" PRIu64 " %" PRIu64 "\n", op.key,
                         op.value);
        break;
      case TraceOp::Kind::kRemove:
        written = std::fprintf(file, "R %" PRIu64 "\n", op.key);
        break;
      case TraceOp::Kind::kScan:
        written =
            std::fprintf(file, "S %" PRIu64 " %" PRIu64 "\n", op.key,
                         op.value);
        break;
    }
    if (written <= 0) {
      ok = false;
      break;
    }
  }
  return std::fclose(file) == 0 && ok;
}

bool Trace::LoadFrom(const std::string& path, Trace* out) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return false;
  std::vector<TraceOp> ops;
  char line[256];
  bool ok = true;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    TraceOp op{};
    char kind = '\0';
    uint64_t a = 0, b = 0;
    const int fields =
        std::sscanf(line, " %c %" SCNu64 " %" SCNu64, &kind, &a, &b);
    if (fields < 2) {
      ok = false;
      break;
    }
    op.key = a;
    op.value = b;
    switch (kind) {
      case 'L':
        op.kind = TraceOp::Kind::kLookup;
        break;
      case 'I':
        op.kind = TraceOp::Kind::kInsert;
        break;
      case 'U':
        op.kind = TraceOp::Kind::kUpdate;
        break;
      case 'R':
        op.kind = TraceOp::Kind::kRemove;
        break;
      case 'S':
        op.kind = TraceOp::Kind::kScan;
        break;
      default:
        ok = false;
        break;
    }
    if (!ok) break;
    if ((op.kind == TraceOp::Kind::kInsert ||
         op.kind == TraceOp::Kind::kUpdate ||
         op.kind == TraceOp::Kind::kScan) &&
        fields != 3) {
      ok = false;
      break;
    }
    ops.push_back(op);
  }
  std::fclose(file);
  if (!ok) return false;
  *out = Trace(std::move(ops));
  return true;
}

}  // namespace optiql
