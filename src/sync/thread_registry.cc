#include "sync/thread_registry.h"

#include <algorithm>
#include <functional>

#include "common/check.h"

namespace optiql {

// The per-thread registration record. Function-local thread_local so its
// destructor ordering is well-defined (reverse order of construction
// completion): it is constructed before any subsystem's per-ID state is
// touched, and destroyed after, at which point the exit hooks tear that
// state down and the ID is released.
struct ThreadRegistration {
  struct Hook {
    void (*fn)(void*);
    void* arg;
  };

  uint32_t id = ThreadRegistry::kInvalidId;
  std::vector<Hook> hooks;

  ~ThreadRegistration() {
    for (auto it = hooks.rbegin(); it != hooks.rend(); ++it) {
      it->fn(it->arg);
    }
    if (id != ThreadRegistry::kInvalidId) {
      ThreadRegistry::Instance().ReleaseId(id);
    }
  }
};

namespace {

ThreadRegistration& LocalRegistration() {
  thread_local ThreadRegistration registration;
  return registration;
}

}  // namespace

ThreadRegistry& ThreadRegistry::Instance() {
  static ThreadRegistry* registry = new ThreadRegistry();  // Never freed.
  return *registry;
}

uint32_t ThreadRegistry::CurrentThreadId() {
  ThreadRegistration& registration = LocalRegistration();
  if (OPTIQL_UNLIKELY(registration.id == kInvalidId)) {
    registration.id = Instance().AcquireId();
  }
  return registration.id;
}

void ThreadRegistry::AtThreadExit(void (*fn)(void*), void* arg) {
  CurrentThreadId();  // Ensure the registration (and its dtor) exists.
  LocalRegistration().hooks.push_back(ThreadRegistration::Hook{fn, arg});
}

uint32_t ThreadRegistry::AcquireId() {
  std::lock_guard<std::mutex> guard(mu_);
  uint32_t id;
  if (!free_ids_.empty()) {
    std::pop_heap(free_ids_.begin(), free_ids_.end(),
                  std::greater<uint32_t>());
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    OPTIQL_CHECK(next_unused_ < kMaxThreads);  // Thread limit exceeded.
    id = next_unused_++;
    high_watermark_.store(next_unused_, std::memory_order_release);
  }
  live_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

void ThreadRegistry::ReleaseId(uint32_t id) {
  std::lock_guard<std::mutex> guard(mu_);
  free_ids_.push_back(id);
  std::push_heap(free_ids_.begin(), free_ids_.end(), std::greater<uint32_t>());
  live_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace optiql
