#include "sync/epoch.h"

#include <cstdlib>
#include <new>
#include <thread>

namespace optiql {

namespace {

// Thread-local retire-bucket tag (RetireBucketScope). A plain thread_local
// integer: trivially destructible, safe to touch from registry exit hooks.
thread_local uint32_t g_retire_bucket = EpochManager::kDefaultBucket;

}  // namespace

uint32_t RetireBucketScope::Current() { return g_retire_bucket; }

uint32_t RetireBucketScope::Swap(uint32_t tag) {
  const uint32_t previous = g_retire_bucket;
  g_retire_bucket = tag;
  return previous;
}

struct EpochManager::ThreadState {
  EpochManager* owner = nullptr;
  Slot* slot = nullptr;
  uint32_t depth = 0;   // Guard nesting depth.
  bool reclaiming = false;  // Re-entrancy latch for ReclaimFrom.
  size_t pending = 0;   // Total un-reclaimed retirements across buckets.
  std::vector<RetireBucket> buckets;

  ~ThreadState() {
    if (owner == nullptr) return;
    // The thread is going away: drain what is provably safe and hand the
    // remainder to the manager's orphan list, where any thread's next
    // reclaim pass picks it up.
    owner->ReclaimFrom(*this);
    std::vector<RetiredObject> leftovers;
    for (RetireBucket& bucket : buckets) {
      for (size_t i = bucket.head; i < bucket.list.size(); ++i) {
        leftovers.push_back(bucket.list[i]);
      }
    }
    if (!leftovers.empty()) owner->AdoptOrphans(std::move(leftovers));
    if (slot != nullptr) {
      slot->epoch.store(kQuiescent, std::memory_order_release);
    }
  }
};

EpochManager::EpochManager() {
  void* mem = std::aligned_alloc(kCachelineSize, sizeof(Slot) * kMaxThreads);
  OPTIQL_CHECK(mem != nullptr);
  slots_ = new (mem) Slot[kMaxThreads];
}

EpochManager::~EpochManager() {
  // No users may remain at destruction: orphans are safe to free.
  for (const RetiredObject& r : orphans_) r.deleter(r.object);
  for (uint32_t i = 0; i < kMaxThreads; ++i) slots_[i].~Slot();
  std::free(slots_);
}

EpochManager& EpochManager::Instance() {
  static EpochManager* manager = new EpochManager();  // Never freed.
  return *manager;
}

EpochManager::ThreadState& EpochManager::LocalState() {
  // The state lives on the heap behind a trivially destructible thread_local
  // pointer and is torn down by a registry exit hook. The hook runs before
  // the registry releases the thread's ID, so the slot (indexed by that ID)
  // is quiescent again before any successor thread can claim it.
  thread_local ThreadState* state = nullptr;
  if (OPTIQL_UNLIKELY(state == nullptr)) {
    const uint32_t tid = ThreadRegistry::CurrentThreadId();
    OPTIQL_CHECK(tid < kMaxThreads);
    state = new ThreadState();
    state->owner = this;
    state->slot = &slots_[tid];
    ThreadRegistry::AtThreadExit(
        [](void* p) { delete static_cast<ThreadState*>(p); }, state);
  }
  // A single process-wide EpochManager::Instance() is assumed per thread;
  // tests that build private managers use dedicated threads.
  OPTIQL_CHECK(state->owner == this);
  return *state;
}

EpochManager::RetireBucket& EpochManager::BucketFor(ThreadState& state,
                                                    uint32_t tag) {
  // Linear scan: a thread touches a handful of shards, and the common case
  // (the tag of the previous retire) is an early hit.
  for (RetireBucket& bucket : state.buckets) {
    if (bucket.tag == tag) return bucket;
  }
  state.buckets.push_back(RetireBucket{tag, 0, {}});
  return state.buckets.back();
}

void EpochManager::Enter() {
  ThreadState& state = LocalState();
  if (state.depth++ > 0) return;
  // seq_cst store + fence: the epoch announcement must be globally visible
  // before any of the guarded loads, or a concurrent reclaimer could miss
  // this thread.
  state.slot->epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                          std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochManager::Exit() {
  ThreadState& state = LocalState();
  OPTIQL_CHECK(state.depth > 0);
  if (--state.depth > 0) return;
  state.slot->epoch.store(kQuiescent, std::memory_order_release);
  if (state.pending != 0) ReclaimIfPossible();
}

void EpochManager::Retire(void* object, void (*deleter)(void*)) {
  ThreadState& state = LocalState();
  OPTIQL_CHECK(state.depth > 0);
  // The fence orders the caller's unlink stores before the epoch read: any
  // thread that enters two epochs later is guaranteed to observe the unlink
  // and thus cannot reach `object` anymore.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  BucketFor(state, g_retire_bucket)
      .list.push_back(RetiredObject{object, deleter, epoch});
  ++state.pending;
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (retire_clock_.fetch_add(1, std::memory_order_relaxed) %
          kRetiresPerEpochAdvance ==
      kRetiresPerEpochAdvance - 1) {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = kQuiescent;
  // Quiescent slots (including never-used ones) read as kQuiescent and do
  // not lower the minimum, so scanning to the registry's high watermark
  // covers every thread that could be active.
  const uint32_t limit = ThreadRegistry::Instance().high_watermark();
  for (uint32_t i = 0; i < limit; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

uint32_t EpochManager::GuardDepth() { return LocalState().depth; }

void EpochManager::Synchronize() {
  ThreadState& state = LocalState();
  // A guard held by this thread would pin MinActiveEpoch at (or below) the
  // observed epoch forever: self-deadlock, so forbid it.
  OPTIQL_CHECK(state.depth == 0);
  // Everything active at this instant entered at <= observed; the bump
  // makes every later entrant announce a strictly larger epoch, so once
  // the minimum active epoch exceeds `observed`, every guard that was open
  // at the call has closed at least once.
  const uint64_t observed = global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  while (MinActiveEpoch() <= observed) {
    std::this_thread::yield();
  }
}

size_t EpochManager::ReclaimIfPossible() { return ReclaimFrom(LocalState()); }

size_t EpochManager::ReclaimFrom(ThreadState& state) {
  // Deleters may themselves trigger reclamation (a retired container's
  // destructor calling ReclaimIfPossible): the latch turns the nested call
  // into a no-op instead of a double drain of the same entries.
  if (state.reclaiming) return 0;
  state.reclaiming = true;
  // Objects retired in epoch E may still be visible to threads active in
  // epochs E and E+1 (the advance is unchecked, so one extra epoch of slack
  // absorbs in-flight announcements); they are safe once every active
  // thread is at least two epochs past the retirement.
  const uint64_t min_active = MinActiveEpoch();
  const size_t from_orphans = ReclaimOrphans(min_active);
  size_t from_lists = 0;
  // Index-based: a deleter that retires into a fresh tag can grow
  // state.buckets and invalidate references.
  for (size_t b = 0; b < state.buckets.size(); ++b) {
    // FIFO drain: epochs are non-decreasing within the bucket, so the
    // first still-visible entry ends this bucket's pass without touching
    // anything behind it. head advances before the deleter runs so the
    // entry is never seen twice.
    while (true) {
      RetireBucket& bucket = state.buckets[b];
      if (bucket.head >= bucket.list.size() ||
          bucket.list[bucket.head].epoch + 1 >= min_active) {  // kQuiescent
        break;                                                 // => none.
      }
      const RetiredObject victim = bucket.list[bucket.head];
      ++bucket.head;
      ++from_lists;
      victim.deleter(victim.object);
    }
    RetireBucket& bucket = state.buckets[b];
    if (bucket.head == bucket.list.size()) {
      bucket.list.clear();
      bucket.head = 0;
    } else if (bucket.head >= 64 && bucket.head * 2 >= bucket.list.size()) {
      bucket.list.erase(
          bucket.list.begin(),
          bucket.list.begin() + static_cast<ptrdiff_t>(bucket.head));
      bucket.head = 0;
    }
  }
  state.pending -= from_lists;
  reclaimed_total_.fetch_add(from_lists, std::memory_order_relaxed);
  state.reclaiming = false;
  return from_orphans + from_lists;
}

size_t EpochManager::ReclaimAllUnsafe() {
  ThreadState& state = LocalState();
  state.reclaiming = true;  // Nested ReclaimIfPossible from deleters: no-op.
  size_t reclaimed = 0;
  for (size_t b = 0; b < state.buckets.size(); ++b) {
    while (true) {
      RetireBucket& bucket = state.buckets[b];
      if (bucket.head >= bucket.list.size()) break;
      const RetiredObject victim = bucket.list[bucket.head];
      ++bucket.head;
      ++reclaimed;
      victim.deleter(victim.object);
    }
    state.buckets[b].list.clear();
    state.buckets[b].head = 0;
  }
  state.pending = 0;
  state.reclaiming = false;
  std::vector<RetiredObject> orphans;
  {
    std::lock_guard<std::mutex> guard(orphan_mu_);
    orphans.swap(orphans_);
  }
  reclaimed += orphans.size();
  for (const RetiredObject& r : orphans) r.deleter(r.object);
  reclaimed_total_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

size_t EpochManager::ReclaimOrphans(uint64_t min_active) {
  std::vector<RetiredObject> safe;
  {
    std::lock_guard<std::mutex> guard(orphan_mu_);
    if (orphans_.empty()) return 0;
    for (size_t i = 0; i < orphans_.size();) {
      if (orphans_[i].epoch + 1 < min_active) {
        safe.push_back(orphans_[i]);
        orphans_[i] = orphans_.back();
        orphans_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const RetiredObject& r : safe) r.deleter(r.object);
  reclaimed_total_.fetch_add(safe.size(), std::memory_order_relaxed);
  return safe.size();
}

void EpochManager::AdoptOrphans(std::vector<RetiredObject>&& leftovers) {
  std::lock_guard<std::mutex> guard(orphan_mu_);
  for (RetiredObject& r : leftovers) orphans_.push_back(r);
}

size_t EpochManager::RetiredCount() const {
  return const_cast<EpochManager*>(this)->LocalState().pending;
}

size_t EpochManager::RetiredCountInBucket(uint32_t tag) const {
  ThreadState& state = const_cast<EpochManager*>(this)->LocalState();
  for (const RetireBucket& bucket : state.buckets) {
    if (bucket.tag == tag) return bucket.Pending();
  }
  return 0;
}

}  // namespace optiql
