#include "sync/epoch.h"

#include <cstdlib>
#include <new>

namespace optiql {

struct EpochManager::ThreadState {
  EpochManager* owner = nullptr;
  Slot* slot = nullptr;
  uint32_t depth = 0;  // Guard nesting depth.
  std::vector<RetiredObject> retired;

  ~ThreadState() {
    if (owner == nullptr) return;
    // The thread is going away: drain what is provably safe and hand the
    // remainder to the manager's orphan list, where any thread's next
    // reclaim pass picks it up.
    owner->ReclaimFrom(*this);
    if (!retired.empty()) owner->AdoptOrphans(std::move(retired));
    if (slot != nullptr) {
      slot->epoch.store(kQuiescent, std::memory_order_release);
    }
  }
};

EpochManager::EpochManager() {
  void* mem = std::aligned_alloc(kCachelineSize, sizeof(Slot) * kMaxThreads);
  OPTIQL_CHECK(mem != nullptr);
  slots_ = new (mem) Slot[kMaxThreads];
}

EpochManager::~EpochManager() {
  // No users may remain at destruction: orphans are safe to free.
  for (const RetiredObject& r : orphans_) r.deleter(r.object);
  for (uint32_t i = 0; i < kMaxThreads; ++i) slots_[i].~Slot();
  std::free(slots_);
}

EpochManager& EpochManager::Instance() {
  static EpochManager* manager = new EpochManager();  // Never freed.
  return *manager;
}

EpochManager::ThreadState& EpochManager::LocalState() {
  // The state lives on the heap behind a trivially destructible thread_local
  // pointer and is torn down by a registry exit hook. The hook runs before
  // the registry releases the thread's ID, so the slot (indexed by that ID)
  // is quiescent again before any successor thread can claim it.
  thread_local ThreadState* state = nullptr;
  if (OPTIQL_UNLIKELY(state == nullptr)) {
    const uint32_t tid = ThreadRegistry::CurrentThreadId();
    OPTIQL_CHECK(tid < kMaxThreads);
    state = new ThreadState();
    state->owner = this;
    state->slot = &slots_[tid];
    ThreadRegistry::AtThreadExit(
        [](void* p) { delete static_cast<ThreadState*>(p); }, state);
  }
  // A single process-wide EpochManager::Instance() is assumed per thread;
  // tests that build private managers use dedicated threads.
  OPTIQL_CHECK(state->owner == this);
  return *state;
}

void EpochManager::Enter() {
  ThreadState& state = LocalState();
  if (state.depth++ > 0) return;
  // seq_cst store + fence: the epoch announcement must be globally visible
  // before any of the guarded loads, or a concurrent reclaimer could miss
  // this thread.
  state.slot->epoch.store(global_epoch_.load(std::memory_order_seq_cst),
                          std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochManager::Exit() {
  ThreadState& state = LocalState();
  OPTIQL_CHECK(state.depth > 0);
  if (--state.depth > 0) return;
  state.slot->epoch.store(kQuiescent, std::memory_order_release);
  if (!state.retired.empty()) ReclaimIfPossible();
}

void EpochManager::Retire(void* object, void (*deleter)(void*)) {
  ThreadState& state = LocalState();
  OPTIQL_CHECK(state.depth > 0);
  // The fence orders the caller's unlink stores before the epoch read: any
  // thread that enters two epochs later is guaranteed to observe the unlink
  // and thus cannot reach `object` anymore.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  state.retired.push_back(RetiredObject{object, deleter, epoch});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (retire_clock_.fetch_add(1, std::memory_order_relaxed) %
          kRetiresPerEpochAdvance ==
      kRetiresPerEpochAdvance - 1) {
    global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = kQuiescent;
  // Quiescent slots (including never-used ones) read as kQuiescent and do
  // not lower the minimum, so scanning to the registry's high watermark
  // covers every thread that could be active.
  const uint32_t limit = ThreadRegistry::Instance().high_watermark();
  for (uint32_t i = 0; i < limit; ++i) {
    const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

size_t EpochManager::ReclaimIfPossible() { return ReclaimFrom(LocalState()); }

size_t EpochManager::ReclaimFrom(ThreadState& state) {
  if (state.retired.empty()) {
    return ReclaimOrphans(MinActiveEpoch());
  }
  // Objects retired in epoch E may still be visible to threads active in
  // epochs E and E+1 (the advance is unchecked, so one extra epoch of slack
  // absorbs in-flight announcements); they are safe once every active
  // thread is at least two epochs past the retirement.
  const uint64_t min_active = MinActiveEpoch();
  const size_t from_orphans = ReclaimOrphans(min_active);
  size_t from_list = 0;
  auto& list = state.retired;
  for (size_t i = 0; i < list.size();) {
    if (list[i].epoch + 1 < min_active) {  // kQuiescent => no active readers.
      list[i].deleter(list[i].object);
      list[i] = list.back();
      list.pop_back();
      ++from_list;
    } else {
      ++i;
    }
  }
  reclaimed_total_.fetch_add(from_list, std::memory_order_relaxed);
  return from_orphans + from_list;
}

size_t EpochManager::ReclaimAllUnsafe() {
  ThreadState& state = LocalState();
  size_t reclaimed = state.retired.size();
  for (const RetiredObject& r : state.retired) r.deleter(r.object);
  state.retired.clear();
  std::vector<RetiredObject> orphans;
  {
    std::lock_guard<std::mutex> guard(orphan_mu_);
    orphans.swap(orphans_);
  }
  reclaimed += orphans.size();
  for (const RetiredObject& r : orphans) r.deleter(r.object);
  reclaimed_total_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

size_t EpochManager::ReclaimOrphans(uint64_t min_active) {
  std::vector<RetiredObject> safe;
  {
    std::lock_guard<std::mutex> guard(orphan_mu_);
    if (orphans_.empty()) return 0;
    for (size_t i = 0; i < orphans_.size();) {
      if (orphans_[i].epoch + 1 < min_active) {
        safe.push_back(orphans_[i]);
        orphans_[i] = orphans_.back();
        orphans_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (const RetiredObject& r : safe) r.deleter(r.object);
  reclaimed_total_.fetch_add(safe.size(), std::memory_order_relaxed);
  return safe.size();
}

void EpochManager::AdoptOrphans(std::vector<RetiredObject>&& leftovers) {
  std::lock_guard<std::mutex> guard(orphan_mu_);
  for (RetiredObject& r : leftovers) orphans_.push_back(r);
}

size_t EpochManager::RetiredCount() const {
  return const_cast<EpochManager*>(this)->LocalState().retired.size();
}

}  // namespace optiql
