// Epoch-based memory reclamation.
//
// Optimistic readers traverse index nodes without holding locks, so a node
// removed from the structure (ART node growth, B+-tree root replacement)
// cannot be freed immediately: a reader may still be dereferencing it (its
// version validation will fail *afterwards*). Index operations therefore run
// inside an EpochGuard; retired nodes are freed only once every thread that
// could have observed them has moved past their retirement epoch.
//
// Scheme: a global epoch counter, a fixed array of per-thread slots (each
// slot publishes the epoch the thread entered at, or "quiescent"), and
// per-thread retire lists. The global epoch is advanced every
// kRetiresPerEpochAdvance retirements; a retired object is reclaimed when
// min(active thread epochs) exceeds its retirement epoch.
//
// Retire lists are BUCKETED by an opaque caller-chosen tag (the sharded
// store tags by shard slot via RetireBucketScope). Within one thread each
// bucket is a FIFO whose epochs are monotonically non-decreasing, so a
// reclaim pass drains each bucket from the front and stops at the first
// still-visible object: a retirement burst against one hot shard cannot put
// thousands of young entries in front of another shard's old, long-safe
// ones, and the pass costs O(reclaimed + buckets) instead of O(pending).
//
// Slots are indexed by ThreadRegistry IDs: the registry is the one place
// threads register, and its exit hooks tear this manager's per-thread state
// down before the ID can be recycled.
#ifndef OPTIQL_SYNC_EPOCH_H_
#define OPTIQL_SYNC_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "common/platform.h"
#include "sync/thread_registry.h"

namespace optiql {

class EpochManager {
 public:
  static constexpr uint32_t kMaxThreads = ThreadRegistry::kMaxThreads;
  static constexpr uint64_t kQuiescent = ~0ULL;
  static constexpr uint32_t kRetiresPerEpochAdvance = 64;
  static constexpr uint32_t kDefaultBucket = 0;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // Process-wide instance used by the indexes. Never destroyed.
  static EpochManager& Instance();

  // Marks this thread as active in the current epoch. Re-entrant.
  void Enter();

  // Marks this thread quiescent (when the outermost guard exits) and
  // occasionally sweeps its retire list.
  void Exit();

  // Schedules `object` for deletion once all current readers are gone.
  // Must be called while inside an Enter/Exit pair. The object lands in
  // this thread's bucket for the current RetireBucketScope tag.
  void Retire(void* object, void (*deleter)(void*));

  template <class T>
  void Retire(T* object) {
    Retire(object, [](void* p) { delete static_cast<T*>(p); });
  }

  // Frees every retired object that no active thread can still observe.
  // Returns the number of objects reclaimed (from this thread's buckets).
  size_t ReclaimIfPossible();

  // Drains this thread's retire buckets unconditionally. Only safe when the
  // caller guarantees no concurrent readers (e.g., index destructor).
  size_t ReclaimAllUnsafe();

  // Grace period: advances the global epoch and spins until every thread
  // that was inside a guard at the time of the call has exited it. On
  // return, no reader can still hold a reference published before the
  // call (e.g. a routing-table snapshot that was since replaced). Must be
  // called OUTSIDE any guard on the calling thread — a held guard would
  // wait on itself.
  void Synchronize();

  // --- Introspection (tests/diagnostics) ---
  uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  // Guard nesting depth of the CALLING thread (0 = outside any guard).
  // Lets callers precheck the Synchronize() no-guard-held precondition and
  // fail gracefully instead of CHECK-aborting.
  uint32_t GuardDepth();
  size_t RetiredCount() const;  // This thread's pending retirements.
  // Pending retirements in one bucket of this thread (tests).
  size_t RetiredCountInBucket(uint32_t tag) const;

  // Lifetime totals across all threads (monotonic; for steady-state
  // reporting: a workload is leak-free when the two advance in lockstep).
  uint64_t TotalRetired() const {
    return retired_total_.load(std::memory_order_acquire);
  }
  uint64_t TotalReclaimed() const {
    return reclaimed_total_.load(std::memory_order_acquire);
  }

 private:
  struct OPTIQL_CACHELINE_ALIGNED Slot {
    std::atomic<uint64_t> epoch{kQuiescent};
  };

  struct RetiredObject {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  // One per-thread retire bucket: a FIFO drained from `head`. Epochs are
  // appended in non-decreasing order (Retire reads the monotone global
  // epoch), so the first still-visible entry blocks only its own bucket.
  struct RetireBucket {
    uint32_t tag = kDefaultBucket;
    size_t head = 0;
    std::vector<RetiredObject> list;

    size_t Pending() const { return list.size() - head; }
  };

  struct ThreadState;
  friend struct ThreadState;

  ThreadState& LocalState();
  RetireBucket& BucketFor(ThreadState& state, uint32_t tag);
  size_t ReclaimFrom(ThreadState& state);
  size_t ReclaimOrphans(uint64_t min_active);
  void AdoptOrphans(std::vector<RetiredObject>&& leftovers);
  uint64_t MinActiveEpoch() const;

  Slot* slots_;  // Array of kMaxThreads slots, indexed by ThreadRegistry ID.
  std::atomic<uint64_t> global_epoch_{1};
  std::atomic<uint64_t> retire_clock_{0};
  std::atomic<uint64_t> retired_total_{0};
  std::atomic<uint64_t> reclaimed_total_{0};

  // Retired objects whose owning thread exited before they became safe;
  // swept by any thread's next reclaim pass. Guarded by orphan_mu_.
  std::mutex orphan_mu_;
  std::vector<RetiredObject> orphans_;
};

// RAII guard bracketing an index operation.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager = EpochManager::Instance())
      : manager_(manager) {
    manager_.Enter();
  }
  ~EpochGuard() { manager_.Exit(); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
};

// Tags every Retire on this thread with `tag` for the scope's lifetime, so
// retirements bucket per shard (or any other domain) instead of piling into
// one list. Nestable; restores the previous tag on exit. Code that never
// opens a scope retires into kDefaultBucket, preserving the old behavior.
class RetireBucketScope {
 public:
  explicit RetireBucketScope(uint32_t tag) : previous_(Swap(tag)) {}
  ~RetireBucketScope() { Swap(previous_); }

  RetireBucketScope(const RetireBucketScope&) = delete;
  RetireBucketScope& operator=(const RetireBucketScope&) = delete;

  static uint32_t Current();

 private:
  static uint32_t Swap(uint32_t tag);
  uint32_t previous_;
};

}  // namespace optiql

#endif  // OPTIQL_SYNC_EPOCH_H_
