// Lock telemetry: process-wide counters for the events that drive (and
// evaluate) contention adaptation — optimistic restarts, pessimistic
// fallbacks, exclusive-acquire waits, per-node mode transitions, and the
// latch-free leaf update paths.
//
// Design constraints (ISSUE 6 tentpole):
//  * Compiled out by default. Counting sites call LockTelemetry::Count(...)
//    unconditionally; with OPTIQL_LOCK_TELEMETRY undefined the body is an
//    `if constexpr (false)` and the call vanishes. Enabled via
//    -DOPTIQL_LOCK_TELEMETRY=ON (CMake option).
//  * Counting must never become its own contention point. Each thread owns
//    one cacheline-aligned slot indexed by ThreadRegistry::CurrentThreadId();
//    increments are single-writer relaxed load+store (no RMW, no sharing).
//  * Thread IDs are recycled. A ThreadRegistry::AtThreadExit hook folds the
//    exiting thread's slot into a global retired accumulator *before* the ID
//    is reused, so Snapshot() totals are loss-free across thread churn.
//
// The storage is tiny (kMaxThreads cachelines) and kept unconditionally so
// tests and benches compile identically in both modes; only the counting
// fast path is gated.
#ifndef OPTIQL_SYNC_LOCK_TELEMETRY_H_
#define OPTIQL_SYNC_LOCK_TELEMETRY_H_

#include <atomic>
#include <cstdint>

#include "common/platform.h"
#include "sync/thread_registry.h"

namespace optiql {

#if defined(OPTIQL_LOCK_TELEMETRY) && OPTIQL_LOCK_TELEMETRY
inline constexpr bool kLockTelemetryEnabled = true;
#else
inline constexpr bool kLockTelemetryEnabled = false;
#endif

class LockTelemetry {
 public:
  enum Counter : uint32_t {
    // An optimistic read section failed validation (ReleaseSh mismatch or
    // AcquireSh on a locked/obsolete word) and the caller must restart.
    kOptimisticRestart = 0,
    // A read entered a pessimistic mode (shared count / queued) after the
    // optimistic policy gave up.
    kPessimisticFallback,
    // An exclusive acquisition found the lock held and had to wait (counted
    // once per contended acquisition, not per spin iteration).
    kExclusiveWait,
    // AdaptiveHybridLock per-node mode transitions.
    kModeEscalation,
    kModeDeescalation,
    // B+-tree latch-free leaf value updates: published in place, and
    // attempts that bounced to the locked path.
    kInPlaceUpdate,
    kInPlaceFallback,
    kNumCounters,
  };

  static constexpr bool kEnabled = kLockTelemetryEnabled;

  struct Snapshot {
    uint64_t counts[kNumCounters] = {};

    uint64_t operator[](Counter c) const { return counts[c]; }
    uint64_t restarts() const { return counts[kOptimisticRestart]; }
    uint64_t fallbacks() const { return counts[kPessimisticFallback]; }
    uint64_t waits() const { return counts[kExclusiveWait]; }
  };

  // Hot path: bump the calling thread's private counter. Single writer per
  // slot, so a relaxed load+store pair suffices (no lock-prefixed RMW).
  static void Count(Counter c) {
    if constexpr (kEnabled) {
      std::atomic<uint64_t>& cell = LocalSlot().counts[c];
      cell.store(cell.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
    }
  }

  // Adds `n` at once (e.g. a batch of restarts measured locally).
  static void CountN(Counter c, uint64_t n) {
    if constexpr (kEnabled) {
      std::atomic<uint64_t>& cell = LocalSlot().counts[c];
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }
  }

  // Sums retired totals plus every live slot. Safe to call concurrently
  // with counting; the result is a consistent lower bound that is exact
  // whenever no thread is mid-increment (e.g. between bench phases).
  static Snapshot Take() {
    Snapshot s;
    for (uint32_t c = 0; c < kNumCounters; ++c) {
      s.counts[c] = retired_[c].load(std::memory_order_acquire);
    }
    const uint32_t hw = ThreadRegistry::Instance().high_watermark();
    for (uint32_t id = 0; id < hw; ++id) {
      for (uint32_t c = 0; c < kNumCounters; ++c) {
        s.counts[c] += slots_[id].counts[c].load(std::memory_order_acquire);
      }
    }
    return s;
  }

  // Zeroes all counters. Only meaningful while no other thread is counting
  // (between bench phases / in single-threaded tests): concurrent
  // increments may be lost.
  static void Reset() {
    for (uint32_t c = 0; c < kNumCounters; ++c) {
      retired_[c].store(0, std::memory_order_release);
    }
    const uint32_t hw = ThreadRegistry::Instance().high_watermark();
    for (uint32_t id = 0; id < hw; ++id) {
      for (uint32_t c = 0; c < kNumCounters; ++c) {
        slots_[id].counts[c].store(0, std::memory_order_release);
      }
    }
  }

  static const char* Name(Counter c) {
    switch (c) {
      case kOptimisticRestart: return "optimistic_restarts";
      case kPessimisticFallback: return "pessimistic_fallbacks";
      case kExclusiveWait: return "exclusive_waits";
      case kModeEscalation: return "mode_escalations";
      case kModeDeescalation: return "mode_deescalations";
      case kInPlaceUpdate: return "inplace_updates";
      case kInPlaceFallback: return "inplace_fallbacks";
      default: return "unknown";
    }
  }

 private:
  struct alignas(kCachelineSize) Slot {
    // Zero-initialized: slots_ has static storage duration and C++20
    // value-initializes atomics.
    std::atomic<uint64_t> counts[kNumCounters];
  };

  // Per-thread slot, resolved once per thread then cached. The AtThreadExit
  // hook folds the slot into retired_ and clears it before the registry
  // recycles the ID, so a successor thread starts from zero.
  static Slot& LocalSlot() {
    thread_local Slot* slot = [] {
      const uint32_t id = ThreadRegistry::CurrentThreadId();
      Slot* s = &slots_[id];
      ThreadRegistry::AtThreadExit(&FoldSlot, s);
      return s;
    }();
    return *slot;
  }

  static void FoldSlot(void* arg) {
    Slot* s = static_cast<Slot*>(arg);
    for (uint32_t c = 0; c < kNumCounters; ++c) {
      const uint64_t n = s->counts[c].exchange(0, std::memory_order_acq_rel);
      retired_[c].fetch_add(n, std::memory_order_acq_rel);
    }
  }

  static inline Slot slots_[ThreadRegistry::kMaxThreads];
  static inline std::atomic<uint64_t> retired_[kNumCounters];
};

}  // namespace optiql

#endif  // OPTIQL_SYNC_LOCK_TELEMETRY_H_
