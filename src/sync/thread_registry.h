// Process-wide thread registry: the single source of dense thread IDs for
// every per-thread subsystem (epoch slots, queue-node caches, harness stats).
//
// Each thread is lazily assigned the lowest free ID on first use and releases
// it automatically at thread exit (RAII). Subsystems that keep per-ID state
// register teardown hooks with AtThreadExit(); hooks run in reverse
// registration order *before* the ID is returned for reuse, so a recycled ID
// never observes a predecessor's stale slot contents.
#ifndef OPTIQL_SYNC_THREAD_REGISTRY_H_
#define OPTIQL_SYNC_THREAD_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace optiql {

class ThreadRegistry {
 public:
  // Upper bound on concurrently registered threads. Sized to the paper's
  // deployment model (threads <= hardware contexts, with headroom).
  static constexpr uint32_t kMaxThreads = 512;
  static constexpr uint32_t kInvalidId = ~0u;

  // Process-wide instance. Never destroyed.
  static ThreadRegistry& Instance();

  // Dense ID of the calling thread, assigned on first use (lowest free ID).
  // Stable for the thread's lifetime; recycled after the thread exits, so
  // concurrently live threads never share an ID. Aborts when more than
  // kMaxThreads threads are live at once.
  static uint32_t CurrentThreadId();

  // Registers `fn(arg)` to run when the calling thread deregisters, before
  // its ID becomes reusable. Hooks run in reverse registration order.
  static void AtThreadExit(void (*fn)(void*), void* arg);

  // Number of currently registered threads.
  uint32_t live_threads() const {
    return live_.load(std::memory_order_acquire);
  }

  // Exclusive upper bound on IDs ever assigned; per-ID state lives in
  // [0, high_watermark()).
  uint32_t high_watermark() const {
    return high_watermark_.load(std::memory_order_acquire);
  }

  ThreadRegistry(const ThreadRegistry&) = delete;
  ThreadRegistry& operator=(const ThreadRegistry&) = delete;

 private:
  friend struct ThreadRegistration;

  ThreadRegistry() = default;

  uint32_t AcquireId();
  void ReleaseId(uint32_t id);

  mutable std::mutex mu_;
  std::vector<uint32_t> free_ids_;  // Min-heap; guarded by mu_.
  uint32_t next_unused_ = 0;        // Guarded by mu_.
  std::atomic<uint32_t> high_watermark_{0};
  std::atomic<uint32_t> live_{0};
};

}  // namespace optiql

#endif  // OPTIQL_SYNC_THREAD_REGISTRY_H_
