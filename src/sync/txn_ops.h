// TxnOps<Lock> — the one uniform version/lock contract over every lock
// family the indexes use. Before this header, each consumer of a lock's
// version word or exclusive mode spoke a private dialect: the B+-tree
// policies called AcquireSh/ReleaseSh member pairs directly, the coupling
// trees went through a PessimisticOps facade, Guarded<> duck-typed the
// qnode-vs-plain AcquireEx split, and a transaction layer could not be
// written once at all. TxnOps gives every family the same spellings:
//
//   Optimistic read (versioned families: OptLock, OptiQL, OptiCLH)
//     StableVersion(lock, v)     snapshot the word; false = locked/retired
//     ValidateVersion(lock, v)   seqlock validation: whole word unchanged
//     SnapshotVersion(word)      the version component of a snapshot
//     IsObsolete(lock)           retired-object probe (where supported)
//
//   Exclusive mode (every family)
//     LockEx(lock, slot) -> ExHandle      blocking acquire
//     TryLockEx(lock, slot, h) -> bool    no-wait acquire (2PL, OCC commit)
//     TryUpgrade(lock, v, slot, h)        snapshot -> exclusive promotion
//     UnlockEx(lock, h)                   release, bump version
//     UnlockExNoBump(lock, h)             release, no bump (no-op sections)
//     UnlockExObsolete(lock, h)           release + retire the object
//     HeldVersion(lock, h)                version a validated snapshot of
//                                         this lock must carry while WE
//                                         hold it (OCC self-held reads)
//
//   Shared mode (pessimistic reader-writer families: MCS-RW, shared_mutex)
//     LockSh/UnlockSh(lock, slot)         blocking, coupling protocols
//     TryLockSh(lock) -> bool             no-wait, queue-less (txn reads)
//     UnlockShNoQueue(lock)               pairs with TryLockSh
//     TryUpgradeSh(lock, slot, n, h)      atomically convert the caller's n
//                                         queue-less shared holds into an
//                                         exclusive hold (kHasShUpgrade)
//
// `slot` selects a thread-local queue node (ThreadQNodes) for queue-based
// locks and is ignored by centralized ones; coupling alternates slots 0/1
// by depth and uses slot 2 for rebalance siblings, the txn layer owns
// slots ThreadQNodes::kTxnSlotBase and up. ExHandle is a trivially
// copyable token: empty for centralized locks, the queue node for MCS
// descendants (OptiCLH's handle is the node AcquireEx *returns*, which is
// not the one passed in — CLH queue nodes migrate).
//
// Capability dispatch is by `if constexpr` on the flags:
//   kVersioned     optimistic read surface exists; the word doubles as the
//                  Silo-style OCC timestamp (no shadow version table)
//   kSharedMode    pessimistic shared mode exists
//   kHasShUpgrade  TryUpgradeSh supported (a shared-mode family without it
//                  cannot host 2PL read-then-write on one record)
//   kHasNoBump     UnlockExNoBump supported
//   kHasObsolete   UnlockExObsolete / IsObsolete supported (a lock without
//                  it cannot guard nodes that get unlinked, e.g. B+-tree
//                  leaves under delete-time merging)
//
// TSA annotations appear ONLY on the MCS-RW / shared_mutex specializations
// (annotated capability types); the optimistic families' read side is not
// expressible in TSA and is covered by scripts/lint_optimistic.py and the
// checked-invariant build instead (see common/annotations.h).
#ifndef OPTIQL_SYNC_TXN_OPS_H_
#define OPTIQL_SYNC_TXN_OPS_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "core/opticlh.h"
#include "core/optiql.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/shared_mutex_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {

// Exclusive-acquisition handles. Distinct tiny structs (not ints/pointers)
// so the slot-based and handle-based UnlockEx overloads can never be
// confused at a call site.
struct NoExHandle {};
struct QNodeExHandle {
  QNode* node = nullptr;
};

// Primary template intentionally undefined: a lock family joins the
// contract by specialization, never by accidental duck typing.
template <class Lock>
struct TxnOps;

// Outcome of an index's record-lock hooks (TxnLockForWrite and friends):
// the record was locked, it does not exist, or a no-wait attempt lost to a
// competing holder (the transaction aborts and retries).
enum class TxnLockStatus { kAcquired, kAbsent, kBusy };

// Concept for "this lock family carries a validatable version word" —
// what Silo-style OCC needs from a host index's locks.
template <class Lock>
concept VersionedLock = TxnOps<Lock>::kVersioned;

template <class Lock>
concept SharedModeLock = TxnOps<Lock>::kSharedMode;

// --- OptLock: centralized, word = [locked | obsolete | version] ------------

template <class BackoffPolicy>
struct TxnOps<BasicOptLock<BackoffPolicy>> {
  using Lock = BasicOptLock<BackoffPolicy>;
  using ExHandle = NoExHandle;
  static constexpr bool kVersioned = true;
  static constexpr bool kSharedMode = false;
  static constexpr bool kHasShUpgrade = false;
  static constexpr bool kHasNoBump = true;
  static constexpr bool kHasObsolete = true;

  static bool StableVersion(const Lock& lock, uint64_t& v) {
    return lock.AcquireSh(v);
  }
  static bool ValidateVersion(const Lock& lock, uint64_t v) {
    return lock.ReleaseSh(v);
  }
  static uint64_t SnapshotVersion(uint64_t word) {
    return word & Lock::kVersionMask;
  }
  static bool IsObsolete(const Lock& lock) { return lock.IsObsolete(); }

  static ExHandle LockEx(Lock& lock, int /*slot*/) {
    lock.AcquireEx();
    return {};
  }
  static bool TryLockEx(Lock& lock, int /*slot*/, ExHandle& handle) {
    handle = {};
    return lock.TryAcquireEx();
  }
  static bool TryUpgrade(Lock& lock, uint64_t v, int /*slot*/,
                         ExHandle& handle) {
    handle = {};
    return lock.TryUpgrade(v);
  }
  static void UnlockEx(Lock& lock, ExHandle) { lock.ReleaseEx(); }
  static void UnlockExNoBump(Lock& lock, ExHandle) { lock.ReleaseExNoBump(); }
  static void UnlockExObsolete(Lock& lock, ExHandle) {
    lock.ReleaseExObsolete();
  }
  // While held, the word is `snapshot | kLockedBit`: the version field
  // still carries the pre-acquisition version.
  static uint64_t HeldVersion(const Lock& lock, const ExHandle&) {
    return lock.LoadWord() & Lock::kVersionMask;
  }
};

// --- OptiQL: MCS-queued, version handed over through the queue node --------

template <bool kEnableOpRead>
struct TxnOps<BasicOptiQL<kEnableOpRead>> {
  using Lock = BasicOptiQL<kEnableOpRead>;
  using ExHandle = QNodeExHandle;
  static constexpr bool kVersioned = true;
  static constexpr bool kSharedMode = false;
  static constexpr bool kHasShUpgrade = false;
  static constexpr bool kHasNoBump = true;
  static constexpr bool kHasObsolete = true;

  static bool StableVersion(const Lock& lock, uint64_t& v) {
    return lock.AcquireSh(v);
  }
  static bool ValidateVersion(const Lock& lock, uint64_t v) {
    return lock.ReleaseSh(v);
  }
  static uint64_t SnapshotVersion(uint64_t word) {
    return Lock::VersionOf(word);
  }
  static bool IsObsolete(const Lock& lock) { return lock.IsObsolete(); }

  static ExHandle LockEx(Lock& lock, int slot) {
    QNode* node = ThreadQNodes::Get(slot);
    lock.AcquireEx(node);
    return {node};
  }
  static bool TryLockEx(Lock& lock, int slot, ExHandle& handle) {
    QNode* node = ThreadQNodes::Get(slot);
    if (!lock.TryAcquireEx(node)) return false;
    handle = {node};
    return true;
  }
  static bool TryUpgrade(Lock& lock, uint64_t v, int slot, ExHandle& handle) {
    QNode* node = ThreadQNodes::Get(slot);
    if (!lock.TryUpgrade(v, node)) return false;
    handle = {node};
    return true;
  }
  static void UnlockEx(Lock& lock, ExHandle handle) {
    lock.ReleaseEx(handle.node);
  }
  static void UnlockExNoBump(Lock& lock, ExHandle handle) {
    lock.ReleaseExNoBump(handle.node);
  }
  static void UnlockExObsolete(Lock& lock, ExHandle handle) {
    lock.ReleaseExObsolete(handle.node);
  }
  // The grant stored NextVersion(snapshot) in the holder's queue node;
  // modular -1 recovers the version an overlapping (or opportunistic-read)
  // snapshot must carry for the protected data to be unchanged.
  static uint64_t HeldVersion(const Lock&, const ExHandle& handle) {
    return (handle.node->version.load(std::memory_order_relaxed) +
            Lock::kVersionMask) &
           Lock::kVersionMask;
  }
};

// --- OptiCLH: CLH-queued; the acquisition handle is the node AcquireEx ----
// returns (queue nodes migrate to the successor). No obsolete marker: this
// family cannot guard nodes that get unlinked under concurrency.

template <>
struct TxnOps<OptiCLH> {
  using Lock = OptiCLH;
  using ExHandle = QNodeExHandle;
  static constexpr bool kVersioned = true;
  static constexpr bool kSharedMode = false;
  static constexpr bool kHasShUpgrade = false;
  static constexpr bool kHasNoBump = false;
  static constexpr bool kHasObsolete = false;

  static bool StableVersion(const Lock& lock, uint64_t& v) {
    return lock.AcquireSh(v);
  }
  static bool ValidateVersion(const Lock& lock, uint64_t v) {
    return lock.ReleaseSh(v);
  }
  static uint64_t SnapshotVersion(uint64_t word) {
    return Lock::VersionOf(word);
  }

  static ExHandle LockEx(Lock& lock, int /*slot*/) {
    return {lock.AcquireEx()};
  }
  static bool TryLockEx(Lock& lock, int /*slot*/, ExHandle& handle) {
    QNode* node = lock.TryAcquireEx();
    if (node == nullptr) return false;
    handle = {node};
    return true;
  }
  static bool TryUpgrade(Lock& lock, uint64_t v, int /*slot*/,
                         ExHandle& handle) {
    QNode* node = lock.TryUpgrade(v);
    if (node == nullptr) return false;
    handle = {node};
    return true;
  }
  static void UnlockEx(Lock& lock, ExHandle handle) {
    lock.ReleaseEx(handle.node);
  }
  // OptiCLH grants carry NextVersion(snapshot) in the handle's aux field.
  static uint64_t HeldVersion(const Lock&, const ExHandle& handle) {
    return (handle.node->aux.load(std::memory_order_relaxed) +
            Lock::kVersionMask) &
           Lock::kVersionMask;
  }
};

// --- MCS-RW: pessimistic reader-writer, no version word --------------------
// The annotations forward the capability through the facade, exactly as the
// old PessimisticOps did: TSA sees `TxnOps<L>::LockSh(lock, slot)` acquire
// `lock` itself, so callers are checked as if they had called the lock.

template <>
struct TxnOps<McsRwLock> {
  using Lock = McsRwLock;
  using ExHandle = QNodeExHandle;
  static constexpr bool kVersioned = false;
  static constexpr bool kSharedMode = true;
  static constexpr bool kHasShUpgrade = true;
  static constexpr bool kHasNoBump = false;
  static constexpr bool kHasObsolete = false;

  // Slot-based blocking surface (lock-coupling protocols).
  static void LockSh(Lock& lock, int slot) OPTIQL_ACQUIRE_SHARED(lock) {
    lock.AcquireSh(ThreadQNodes::Get(slot));
  }
  static void UnlockSh(Lock& lock, int slot) OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseSh(ThreadQNodes::Get(slot));
  }
  static void LockEx(Lock& lock, int slot) OPTIQL_ACQUIRE(lock) {
    lock.AcquireEx(ThreadQNodes::Get(slot));
  }
  static void UnlockEx(Lock& lock, int slot) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx(ThreadQNodes::Get(slot));
  }

  // Handle-based no-wait surface (txn layer).
  static bool TryLockEx(Lock& lock, int slot, ExHandle& handle)
      OPTIQL_TRY_ACQUIRE(true, lock) {
    QNode* node = ThreadQNodes::Get(slot);
    if (!lock.TryAcquireEx(node)) return false;
    handle = {node};
    return true;
  }
  static void UnlockEx(Lock& lock, ExHandle handle) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx(handle.node);
  }
  static bool TryLockSh(Lock& lock) OPTIQL_TRY_ACQUIRE_SHARED(true, lock) {
    return lock.TryAcquireSh();
  }
  static void UnlockShNoQueue(Lock& lock) OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseShNoQueue();
  }
  // Converts `my_holds` of the caller's TryLockSh holds into an exclusive
  // hold in one CAS (2PL read-then-write on one record — without this a
  // write into a self-read bucket would no-wait-abort forever). Success
  // consumes the shared holds; failure leaves them. Unannotated: a
  // conditional shared→exclusive conversion is not expressible in TSA —
  // analyzed callers wrap the call site (see McsRwLock).
  static bool TryUpgradeSh(Lock& lock, int slot, uint32_t my_holds,
                           ExHandle& handle) {
    QNode* node = ThreadQNodes::Get(slot);
    if (!lock.TryUpgradeShNoQueue(node, my_holds)) return false;
    handle = {node};
    return true;
  }
};

// --- shared_mutex (the paper's pthread baseline) ----------------------------

template <>
struct TxnOps<SharedMutexLock> {
  using Lock = SharedMutexLock;
  using ExHandle = NoExHandle;
  static constexpr bool kVersioned = false;
  static constexpr bool kSharedMode = true;
  // std::shared_mutex has no atomic upgrade, so this family cannot host
  // 2PL read-then-write on one record (TxnSharedReadHost excludes it).
  static constexpr bool kHasShUpgrade = false;
  static constexpr bool kHasNoBump = false;
  static constexpr bool kHasObsolete = false;

  static void LockSh(Lock& lock, int /*slot*/) OPTIQL_ACQUIRE_SHARED(lock) {
    lock.AcquireSh();
  }
  static void UnlockSh(Lock& lock, int /*slot*/) OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseSh();
  }
  static void LockEx(Lock& lock, int /*slot*/) OPTIQL_ACQUIRE(lock) {
    lock.AcquireEx();
  }
  static void UnlockEx(Lock& lock, int /*slot*/) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx();
  }

  static bool TryLockEx(Lock& lock, int /*slot*/, ExHandle& handle)
      OPTIQL_TRY_ACQUIRE(true, lock) {
    handle = {};
    return lock.TryAcquireEx();
  }
  static void UnlockEx(Lock& lock, ExHandle) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx();
  }
  static bool TryLockSh(Lock& lock) OPTIQL_TRY_ACQUIRE_SHARED(true, lock) {
    return lock.TryAcquireSh();
  }
  static void UnlockShNoQueue(Lock& lock) OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseSh();
  }
};

}  // namespace optiql

#endif  // OPTIQL_SYNC_TXN_OPS_H_
