// Routing layer for ShardedStore: versioned, epoch-published routing
// tables (DESIGN.md §14).
//
// A router POLICY (HashShardRouter / RangeShardRouter) names a TABLE type
// and builds the initial instance; the store publishes tables through a
// single std::atomic<const Table*> that every operation loads once, under
// its EpochGuard, and uses for the whole op. Replaced tables retire through
// the epoch layer, so a reader pinned on an old table keeps a fully valid
// snapshot until its guard closes — routing changes never require stopping
// readers.
//
//   HashRoutingTable  — full-avalanche Mix64 partitioning over a fixed
//                       shard count. No spans, no resharding; scans are
//                       scatter-gather (every shard may hold any range).
//   RangeRoutingTable — sorted spans over the u64 key space, one shard per
//                       span. Scans walk only the spans the range
//                       intersects, in key order (no k-way merge at all:
//                       span segments concatenate). Supports an online
//                       migration window (ShardMigration) during which one
//                       span is double-routed between a source and a
//                       target shard.
//
// Double-routing window (split/merge handover): the migrating span's keys
// live authoritatively in the SOURCE shard for the entire window (the
// source decides insert/remove success), while every write also applies to
// the TARGET. A watermark tracks copy progress: keys below it are fully
// mirrored in the target, and reads prefer the target for them. The copier
// takes the per-migration gate exclusively per chunk; writers over the
// migrating span take it shared around their source+target pair, which
// makes each write atomic with respect to chunk copies — without the gate,
// a copier could re-insert into the target a key a concurrent writer just
// removed from both shards (resurrection), or overwrite a fresher write
// with a stale scan snapshot. The OptiCheck scenario `reshard_handover_2`
// model-checks exactly this window.
#ifndef OPTIQL_STORE_ROUTING_H_
#define OPTIQL_STORE_ROUTING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace optiql {

// Where one key's ops go under a pinned table. Steady state: all three
// name the same shard slot and co_write is -1. Inside a migration window,
// `write` is the authoritative (source) shard, `co_write` the mirror
// (target), and `read` prefers the target once the key has been copied.
struct KeyRoute {
  uint32_t read;
  uint32_t write;
  int32_t co_write;  // -1 when no double-apply is required.

  bool DoubleApply() const { return co_write >= 0; }
};

// State of one in-flight span migration, shared by every table version
// that participates in the window (shared_ptr: the state outlives any
// individual table snapshot that references it).
struct ShardMigration {
  uint64_t begin;  // First key of the moving span.
  uint64_t last;   // Inclusive upper bound (UINT64_MAX for the top span).
  uint32_t source;  // Authoritative shard slot during the window.
  uint32_t target;  // Mirror slot; owns the span after the window closes.

  // Keys strictly below the watermark are fully copied into the target.
  std::atomic<uint64_t> watermark;
  // Set instead of watermark = last + 1 when last == UINT64_MAX.
  std::atomic<bool> all_moved{false};

  // Copier exclusive per chunk; span writers shared per op. See header
  // comment for why the pairing must be atomic against chunk copies.
  mutable std::shared_mutex gate;

  ShardMigration(uint64_t b, uint64_t l, uint32_t src, uint32_t dst)
      : begin(b), last(l), source(src), target(dst), watermark(b) {}

  bool Covers(uint64_t key) const { return key >= begin && key <= last; }

  bool Moved(uint64_t key) const {
    return all_moved.load(std::memory_order_acquire) ||
           key < watermark.load(std::memory_order_acquire);
  }
};

// --- Hash routing -----------------------------------------------------------

class HashRoutingTable {
 public:
  // Spans are meaningless under hashing: scans must scatter-gather.
  static constexpr bool kOrderedSpans = false;

  explicit HashRoutingTable(size_t shards) : shard_count_(shards) {
    OPTIQL_CHECK(shards >= 1);
  }

  KeyRoute Route(uint64_t key) const {
    const uint32_t s = static_cast<uint32_t>(Mix64(key) % shard_count_);
    return KeyRoute{s, s, -1};
  }

  size_t shard_count() const { return shard_count_; }
  // Versions are even in steady state (odd = migration window open); the
  // hash table never reshards, so it is permanently at the initial steady
  // version.
  uint64_t version() const { return 2; }

 private:
  size_t shard_count_;
};

// --- Range routing ----------------------------------------------------------

class RangeRoutingTable {
 public:
  static constexpr bool kOrderedSpans = true;

  // Span i covers [spans[i].begin, spans[i+1].begin), the last span up to
  // and including UINT64_MAX. spans[0].begin must be 0.
  struct Span {
    uint64_t begin;
    uint32_t shard;
  };

  RangeRoutingTable(std::vector<Span> spans, uint64_t version,
                    std::shared_ptr<ShardMigration> migration = nullptr)
      : spans_(std::move(spans)),
        version_(version),
        migration_(std::move(migration)) {
    OPTIQL_CHECK(!spans_.empty() && spans_[0].begin == 0);
    for (size_t i = 1; i < spans_.size(); ++i) {
      OPTIQL_CHECK(spans_[i - 1].begin < spans_[i].begin);
    }
  }

  KeyRoute Route(uint64_t key) const {
    const uint32_t home = spans_[SpanIndexOf(key)].shard;
    const ShardMigration* m = migration_.get();
    if (m == nullptr || !m->Covers(key)) return KeyRoute{home, home, -1};
    const uint32_t read = m->Moved(key) ? m->target : m->source;
    return KeyRoute{read, m->source, static_cast<int32_t>(m->target)};
  }

  size_t SpanIndexOf(uint64_t key) const {
    // Rightmost span whose begin <= key (spans_[0].begin == 0 guarantees
    // existence).
    size_t lo = 0, hi = spans_.size();
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      if (spans_[mid].begin <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Inclusive upper bound of span i.
  uint64_t SpanLast(size_t i) const {
    return i + 1 < spans_.size() ? spans_[i + 1].begin - 1 : UINT64_MAX;
  }

  const std::vector<Span>& spans() const { return spans_; }
  size_t shard_count() const { return spans_.size(); }
  uint64_t version() const { return version_; }
  const std::shared_ptr<ShardMigration>& migration() const {
    return migration_;
  }

 private:
  std::vector<Span> spans_;
  uint64_t version_;
  std::shared_ptr<ShardMigration> migration_;
};

// --- Router policies --------------------------------------------------------

// Default router: full-avalanche hash partitioning. Uses the same Mix64
// family as key-partitioned trace replay so "replay threads == shards"
// gives every replay thread exclusive ownership of its shards. The legacy
// functor form is kept for code (and tests) that reason about the raw
// key->shard mapping.
struct HashShardRouter {
  using Table = HashRoutingTable;

  size_t operator()(uint64_t key, size_t shard_count) const {
    return static_cast<size_t>(Mix64(key) % shard_count);
  }

  Table MakeInitialTable(size_t shards) const { return Table(shards); }
};

// Range router: contiguous spans, one shard per span, online split/merge.
// With no explicit boundaries the initial table divides the full u64 space
// evenly — right for hashed/sparse keys; dense workloads should pass
// explicit split points (e.g. EvenOver(max_expected_key, shards)).
struct RangeShardRouter {
  using Table = RangeRoutingTable;

  // shards-1 ascending, non-zero span boundaries; empty = even over u64.
  std::vector<uint64_t> splits;

  static RangeShardRouter EvenOver(uint64_t space_end, size_t shards) {
    RangeShardRouter router;
    // space_end < shards cannot yield `shards` distinct non-zero
    // boundaries (stride would be 0); fall back to the even-over-u64
    // default instead of building a table that fails its span checks.
    if (shards > 1 && space_end >= shards) {
      const uint64_t stride = space_end / shards;
      for (size_t i = 1; i < shards; ++i) {
        router.splits.push_back(stride * i);
      }
    }
    return router;
  }

  Table MakeInitialTable(size_t shards) const {
    std::vector<RangeRoutingTable::Span> spans;
    if (!splits.empty()) {
      OPTIQL_CHECK(splits.size() + 1 == shards);
      spans.push_back({0, 0});
      for (size_t i = 0; i < splits.size(); ++i) {
        spans.push_back({splits[i], static_cast<uint32_t>(i + 1)});
      }
    } else {
      // 2^64 / shards without the 128-bit literal: stride for shard counts
      // that are powers of two is exact; otherwise round down (the last
      // span absorbs the remainder).
      const uint64_t stride = shards > 1 ? (~0ULL / shards) + 1 : 0;
      for (size_t i = 0; i < shards; ++i) {
        spans.push_back({stride * i, static_cast<uint32_t>(i)});
      }
    }
    return Table(std::move(spans), /*version=*/2);
  }
};

}  // namespace optiql

#endif  // OPTIQL_STORE_ROUTING_H_
