// Sharded composition of index instances: the partitioned regime the
// production north star needs, where per-partition contention (and thus
// lock robustness, §7.3's collapse curves) is decided by key routing.
//
// ShardedStore<Index, Router> owns independent shards of any IndexLike
// index and routes every op through a VERSIONED ROUTING TABLE
// (store/routing.h) published behind one std::atomic pointer. Every public
// op opens an EpochGuard, loads the table once, and uses that snapshot for
// the whole op; replaced tables retire through the epoch layer, so the
// table can be swapped under load without stopping readers.
//
// Two router policies:
//   HashShardRouter  — fixed shard count, full-avalanche Mix64 routing
//                      (adjacent hot keys land on different shards, which
//                      is exactly what breaks the B+-tree's hot-leaf
//                      convoys under skew). Scans are scatter-gather with
//                      a k-way merge: any shard may hold any range.
//   RangeShardRouter — contiguous key spans, one shard per span. Scans
//                      walk only the spans the range intersects, in key
//                      order (segments concatenate; no k-way merge), and
//                      the store supports ONLINE resharding: Split(k)
//                      carves [k, span_end) out of its span into a fresh
//                      shard, Merge(k) dissolves the span starting at k
//                      into its left neighbor — both while the full op mix
//                      keeps running, with zero lost or duplicated keys.
//
// Online migration protocol (DESIGN.md §14): a migration window opens with
// an odd-versioned table that routes the moving span through a
// ShardMigration — writes double-apply (source authoritative, target
// mirrored) under a shared gate, reads prefer the target below the copy
// watermark; the copier moves the span chunk-by-chunk under the exclusive
// gate, then an even-versioned steady table closes the window. Epoch
// Synchronize() grace periods bracket the window so no straggler ever
// writes single-routed while the copier runs, and the source's moved range
// is deleted only after no reader can still be routed to it.
//
// Epoch integration: there is ONE epoch domain (the process-wide
// EpochManager) shared by all shards. Enter/Exit are re-entrant, so the
// shard's own guard nests for free and a multi-shard scan pays one epoch
// transition instead of N. Every dispatch into a shard opens a
// RetireBucketScope tagged with the shard slot, so one shard's retirement
// burst (e.g. the migration's bulk upserts) stays in its own bucket and
// never stalls reclamation for the others.
//
// Because ShardedStore itself satisfies the IndexOps surface
// (index/index_ops.h), it runs through the entire existing harness, trace
// replay, and bench stack unchanged.
#ifndef OPTIQL_STORE_SHARDED_STORE_H_
#define OPTIQL_STORE_SHARDED_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "index/index_ops.h"
#include "store/routing.h"
#include "sync/epoch.h"

namespace optiql {

namespace internal {

// Conditionally inherited transaction-host typedefs: only a store over a
// transaction-hosting shard type re-exports the shard's hook types (an
// unconditional member alias would break instantiation for plain shards).
template <class Index, bool = TxnHostIndex<Index>>
struct ShardTxnTypes {};

template <class Index>
struct ShardTxnTypes<Index, true> {
  using TxnLock = typename Index::TxnLock;
  using TxnWriteGuard = typename Index::TxnWriteGuard;
};

template <class Index, bool = TxnVersionedHost<Index>>
struct ShardTxnReadTypes {};

template <class Index>
struct ShardTxnReadTypes<Index, true> {
  using TxnReadResult = typename Index::TxnReadResult;
};

}  // namespace internal

template <class Index, class Router = HashShardRouter>
  requires IndexLike<Index>
class ShardedStore : public internal::ShardTxnTypes<Index>,
                     public internal::ShardTxnReadTypes<Index> {
 public:
  using Table = typename Router::Table;

  static constexpr size_t kDefaultShards = 8;
  // Whether the routing table orders keys into spans — which is also what
  // makes online split/merge possible.
  static constexpr bool kElastic = Table::kOrderedSpans;
  // Keys copied per exclusive-gate chunk during a migration; small enough
  // that span writers blocked on the gate wait microseconds, large enough
  // to amortize the lock handoffs.
  static constexpr size_t kMigrateChunk = 256;

  explicit ShardedStore(size_t shards = kDefaultShards,
                        Router router = Router())
      : router_(std::move(router)), slots_(SlotCapacity(shards)) {
    OPTIQL_CHECK(shards >= 1 && shards <= slots_.size());
    for (size_t i = 0; i < shards; ++i) {
      slots_[i].store(new Index(), std::memory_order_relaxed);
    }
    slot_limit_.store(static_cast<uint32_t>(shards),
                      std::memory_order_relaxed);
    table_.store(new Table(router_.MakeInitialTable(shards)),
                 std::memory_order_release);
  }

  ~ShardedStore() {
    delete table_.load(std::memory_order_relaxed);
    for (auto& slot : slots_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // --- Uniform point ops (the IndexOps surface) ---
  //
  // Each op pins the current table for its duration (the guard keeps a
  // replaced table alive) and routes through it. Writes that land in a
  // migration window double-apply: the SOURCE shard is authoritative for
  // the op's outcome, and the decided mutation is mirrored into the
  // target, both under the migration gate held shared — which makes the
  // pair atomic against the copier's exclusive-gate chunks (without it, a
  // chunk copy could resurrect a concurrently removed key in the target).

  bool Insert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    const Table* t = table();
    const KeyRoute r = t->Route(key);
    if (!r.DoubleApply()) {
      RetireBucketScope tag(RetireTag(r.write));
      return IndexInsert(SlotAt(r.write), key, value);
    }
    return DoubleApplyWrite(t, key, r, [&](Index& shard, bool primary) {
      if (primary) return IndexInsert(shard, key, value);
      IndexUpsert(shard, key, value);
      return true;
    });
  }

  bool Update(uint64_t key, uint64_t value) {
    EpochGuard guard;
    const Table* t = table();
    const KeyRoute r = t->Route(key);
    if (!r.DoubleApply()) {
      RetireBucketScope tag(RetireTag(r.write));
      return IndexUpdate(SlotAt(r.write), key, value);
    }
    return DoubleApplyWrite(t, key, r, [&](Index& shard, bool primary) {
      if (primary) return IndexUpdate(shard, key, value);
      IndexUpsert(shard, key, value);
      return true;
    });
  }

  bool Lookup(uint64_t key, uint64_t& out) const {
    EpochGuard guard;
    const KeyRoute r = table()->Route(key);
    RetireBucketScope tag(RetireTag(r.read));
    return IndexLookup(SlotAt(r.read), key, out);
  }

  bool Remove(uint64_t key) {
    EpochGuard guard;
    const Table* t = table();
    const KeyRoute r = t->Route(key);
    if (!r.DoubleApply()) {
      RetireBucketScope tag(RetireTag(r.write));
      return IndexRemove(SlotAt(r.write), key);
    }
    return DoubleApplyWrite(t, key, r, [&](Index& shard, bool primary) {
      (void)primary;
      return IndexRemove(shard, key);
    });
  }

  void Upsert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    const Table* t = table();
    const KeyRoute r = t->Route(key);
    if (!r.DoubleApply()) {
      RetireBucketScope tag(RetireTag(r.write));
      IndexUpsert(SlotAt(r.write), key, value);
      return;
    }
    DoubleApplyWrite(t, key, r, [&](Index& shard, bool primary) {
      (void)primary;
      IndexUpsert(shard, key, value);
      return true;
    });
  }

  // --- Batched ops: partition against the pinned table, dispatch per
  // shard, reassemble ---
  //
  // Each batch is partitioned by the pinned table (caller-order-stable, so
  // duplicate keys resolve exactly as sequential execution would — they
  // always land in the same bucket, in program order), then each shard gets
  // ONE dispatch: a single amortized EpochGuard for the whole batch plus
  // the shard's own interleaved group (IndexLookupBatch falls back to a
  // guarded loop for shards without a native batch path). Keys inside a
  // migration window are carved into an overflow bucket and replayed
  // through the double-applying point path, so batches stay correct across
  // a live split/merge. Results are scattered back to caller positions.

  size_t LookupBatch(const uint64_t* keys, size_t n, uint64_t* values,
                     bool* found) const {
    if (n == 0) return 0;
    EpochGuard guard;
    const Table* t = table();
    if (const Index* solo = SoloShard(t)) {
      return IndexLookupBatch(*solo, keys, n, values, found);
    }
    // Reads never double-apply: partition by the read route (inside a
    // window that already prefers the target below the watermark).
    const size_t buckets = SlotLimit();
    const BatchPlan plan(buckets, keys, n,
                         [&](uint64_t key) { return t->Route(key).read; });
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    const std::unique_ptr<bool[]> shard_found(new bool[n]);
    size_t hits = 0;
    for (size_t s = 0; s < buckets; ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        shard_keys[i] = keys[plan.order[begin + i]];
      }
      RetireBucketScope tag(RetireTag(static_cast<uint32_t>(s)));
      hits += IndexLookupBatch(SlotAt(static_cast<uint32_t>(s)),
                               shard_keys.data(), m, shard_values.data(),
                               shard_found.get());
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        found[at] = shard_found[i];
        if (shard_found[i]) values[at] = shard_values[i];
      }
    }
    return hits;
  }

  size_t InsertBatch(const uint64_t* keys, const uint64_t* values, size_t n,
                     bool* ok) {
    if (n == 0) return 0;
    EpochGuard guard;
    const Table* t = table();
    if (Index* solo = SoloShard(t)) {
      return IndexInsertBatch(*solo, keys, values, n, ok);
    }
    const size_t buckets = SlotLimit();
    const BatchPlan plan(buckets + 1, keys, n, [&](uint64_t key) {
      const KeyRoute r = t->Route(key);
      return r.DoubleApply() ? buckets : static_cast<size_t>(r.write);
    });
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    const std::unique_ptr<bool[]> shard_ok(new bool[n]);
    size_t applied = 0;
    for (size_t s = 0; s < buckets; ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        shard_keys[i] = keys[at];
        shard_values[i] = values[at];
      }
      RetireBucketScope tag(RetireTag(static_cast<uint32_t>(s)));
      applied += IndexInsertBatch(SlotAt(static_cast<uint32_t>(s)),
                                  shard_keys.data(), shard_values.data(), m,
                                  shard_ok.get());
      for (size_t i = 0; i < m; ++i) {
        ok[plan.order[begin + i]] = shard_ok[i];
      }
    }
    // Migrating-span keys go through the gated double-apply path one by
    // one (program order preserved within the bucket).
    for (uint32_t i = plan.offsets[buckets]; i < plan.offsets[buckets + 1];
         ++i) {
      const uint32_t at = plan.order[i];
      ok[at] = Insert(keys[at], values[at]);
      if (ok[at]) ++applied;
    }
    return applied;
  }

  void UpsertBatch(const uint64_t* keys, const uint64_t* values, size_t n) {
    if (n == 0) return;
    EpochGuard guard;
    const Table* t = table();
    if (Index* solo = SoloShard(t)) {
      IndexUpsertBatch(*solo, keys, values, n);
      return;
    }
    const size_t buckets = SlotLimit();
    const BatchPlan plan(buckets + 1, keys, n, [&](uint64_t key) {
      const KeyRoute r = t->Route(key);
      return r.DoubleApply() ? buckets : static_cast<size_t>(r.write);
    });
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    for (size_t s = 0; s < buckets; ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        shard_keys[i] = keys[at];
        shard_values[i] = values[at];
      }
      RetireBucketScope tag(RetireTag(static_cast<uint32_t>(s)));
      IndexUpsertBatch(SlotAt(static_cast<uint32_t>(s)), shard_keys.data(),
                       shard_values.data(), m);
    }
    for (uint32_t i = plan.offsets[buckets]; i < plan.offsets[buckets + 1];
         ++i) {
      const uint32_t at = plan.order[i];
      Upsert(keys[at], values[at]);
    }
  }

  // --- Range scan ---
  //
  // Range routing walks spans in key order and concatenates their
  // segments — a scan contained in one span touches exactly one shard.
  // Inside a migration window the moving span contributes two segments
  // (copied prefix from the target, remainder from the source), still in
  // key order. Hash routing scatter-gathers: every shard contributes its
  // first `limit` pairs >= start and a k-way merge keeps the globally
  // smallest `limit`. Like the underlying tree scans, the result is not an
  // atomic snapshot across shards (each segment is internally consistent).

  size_t Scan(uint64_t start, size_t limit,
              std::vector<std::pair<uint64_t, uint64_t>>& out) const
    requires HasScanOp<Index>
  {
    out.clear();
    if (limit == 0) return 0;
    EpochGuard guard;
    const Table* t = table();
    if constexpr (Table::kOrderedSpans) {
      return ScanOrdered(t, start, limit, out);
    } else {
      return ScanScatterGather(t, start, limit, out);
    }
  }

  // --- Bulk load (sorted, unique pairs into an EMPTY store) ---
  //
  // Not thread-safe, mirroring the per-index contract (and must not
  // overlap a migration). Partitioning a sorted input preserves sort order
  // within each shard, so shards with a native bulk load keep their packed
  // bottom-up build.
  void BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
    EpochGuard guard;
    const Table* t = table();
    const size_t buckets = SlotLimit();
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> parts(buckets);
    for (auto& part : parts) part.reserve(pairs.size() / buckets + 1);
    for (const auto& pair : pairs) {
      parts[t->Route(pair.first).write].push_back(pair);
    }
    for (size_t s = 0; s < buckets; ++s) {
      if (parts[s].empty()) continue;
      Index& shard = SlotAt(static_cast<uint32_t>(s));
      RetireBucketScope tag(RetireTag(static_cast<uint32_t>(s)));
      if constexpr (HasBulkLoadOp<Index>) {
        shard.BulkLoad(parts[s]);
      } else {
        for (const auto& pair : parts[s]) {
          OPTIQL_CHECK(IndexInsert(shard, pair.first, pair.second));
        }
      }
    }
  }

  // --- Online resharding (range router only) ---
  //
  // Both are synchronous: they return once the new steady table is
  // published AND the source's moved range is cleaned, so Size() is exact
  // again on return. Concurrent point ops, batches, and scans keep running
  // throughout (the storm tests hammer exactly this).
  //
  // PRECONDITION: the calling thread must NOT hold an EpochGuard — the
  // internal Synchronize() grace periods would wait on the caller's own
  // guard forever. Calls made under a guard return false instead of
  // aborting. Also note Synchronize() waits for every open guard to close:
  // a long-running transaction (which holds a guard for its lifetime)
  // delays Split/Merge until it finishes — resharding never blocks the
  // workload, but a stalled transaction blocks resharding.

  // Carves [split_key, span_end) out of the span containing split_key into
  // a freshly allocated shard. Returns false if split_key already is a
  // span boundary (nothing to split), the slot table is full, or the
  // caller holds an EpochGuard.
  bool Split(uint64_t split_key)
    requires(kElastic && HasScanOp<Index>)
  {
    if (EpochManager::Instance().GuardDepth() != 0) return false;
    std::lock_guard<std::mutex> admin(admin_mu_);
    std::vector<typename Table::Span> spans;
    uint64_t version = 0;
    size_t span_i = 0;
    uint64_t span_last = 0;
    {
      EpochGuard guard;
      const Table* cur = table();
      span_i = cur->SpanIndexOf(split_key);
      spans = cur->spans();
      version = cur->version();
      span_last = cur->SpanLast(span_i);
    }
    if (spans[span_i].begin == split_key) return false;
    const uint32_t source = spans[span_i].shard;
    const int64_t fresh = AllocateSlot();
    if (fresh < 0) return false;
    const uint32_t target = static_cast<uint32_t>(fresh);
    slots_[target].store(new Index(), std::memory_order_release);

    auto migration = std::make_shared<ShardMigration>(split_key, span_last,
                                                      source, target);
    // Window open (odd version): spans unchanged, writes double-route.
    PublishTable(new Table(spans, version + 1, migration));
    // Grace period: after this, no op routes the span without seeing the
    // window — a pre-window writer racing the copier could otherwise slip
    // a single-routed write under a copied chunk.
    EpochManager::Instance().Synchronize();
    MigrateSpan(*migration);
    // Window closed (even version): the boundary exists, target owns the
    // upper span.
    spans.insert(spans.begin() + static_cast<ptrdiff_t>(span_i) + 1,
                 typename Table::Span{split_key, target});
    PublishTable(new Table(std::move(spans), version + 2));
    // Second grace period: once no straggler can read (or mirror into)
    // the source's moved range, delete it from the source.
    EpochManager::Instance().Synchronize();
    CleanupSourceRange(source, split_key, span_last);
    return true;
  }

  // Dissolves the span that BEGINS at boundary_key into its left
  // neighbor's shard and frees the dissolved shard's slot. Returns false
  // if boundary_key is not an interior span boundary or the caller holds
  // an EpochGuard. Inverse of Split.
  bool Merge(uint64_t boundary_key)
    requires(kElastic && HasScanOp<Index>)
  {
    if (EpochManager::Instance().GuardDepth() != 0) return false;
    std::lock_guard<std::mutex> admin(admin_mu_);
    std::vector<typename Table::Span> spans;
    uint64_t version = 0;
    size_t span_i = 0;
    uint64_t span_last = 0;
    {
      EpochGuard guard;
      const Table* cur = table();
      span_i = cur->SpanIndexOf(boundary_key);
      spans = cur->spans();
      version = cur->version();
      span_last = cur->SpanLast(span_i);
    }
    if (span_i == 0 || spans[span_i].begin != boundary_key) return false;
    const uint32_t source = spans[span_i].shard;      // Dissolving shard.
    const uint32_t target = spans[span_i - 1].shard;  // Absorbs the span.

    auto migration = std::make_shared<ShardMigration>(boundary_key, span_last,
                                                      source, target);
    PublishTable(new Table(spans, version + 1, migration));
    EpochManager::Instance().Synchronize();
    MigrateSpan(*migration);
    spans.erase(spans.begin() + static_cast<ptrdiff_t>(span_i));
    PublishTable(new Table(std::move(spans), version + 2));
    EpochManager::Instance().Synchronize();
    // The dissolved shard's entire content has moved; retire the whole
    // index through the epoch layer (a concurrent Size()/NodeCount() pass
    // may still hold the pointer it loaded under its guard).
    Index* dead = slots_[source].exchange(nullptr, std::memory_order_acq_rel);
    {
      EpochGuard guard;
      RetireBucketScope tag(RetireTag(source));
      EpochManager::Instance().Retire(dead);
    }
    return true;
  }

  // --- Introspection / diagnostics ---

  // Exact in steady state. During a migration window the moving span's
  // copied prefix is counted in both shards (the window trades exact
  // global counts for never stopping the world); Split/Merge return only
  // after the count is exact again.
  size_t Size() const {
    EpochGuard guard;
    size_t total = 0;
    const uint32_t limit = SlotLimit();
    for (uint32_t i = 0; i < limit; ++i) {
      if (const Index* shard = slots_[i].load(std::memory_order_acquire)) {
        total += shard->Size();
      }
    }
    return total;
  }

  size_t ShardCount() const {
    EpochGuard guard;
    return table()->shard_count();
  }

  // Monotone table version; bumped to odd when a migration window opens
  // and back to even when it closes. The txn layer snapshots this and
  // aborts on change (index_ops.h HasRoutingVersionOp).
  uint64_t RoutingVersion() const {
    EpochGuard guard;
    return table()->version();
  }

  // Shard slot an op on `key` would authoritatively write to (tests,
  // affinity diagnostics; for the hash router this is Mix64(key) % shards,
  // matching key-partitioned trace replay).
  size_t ShardIndexOf(uint64_t key) const {
    EpochGuard guard;
    return table()->Route(key).write;
  }

  Index& ShardAt(size_t i) { return SlotAt(static_cast<uint32_t>(i)); }
  const Index& ShardAt(size_t i) const {
    return SlotAt(static_cast<uint32_t>(i));
  }

  // Elastic-only view of the span layout (diagnostics/REPL; sizes are
  // approximate inside a migration window).
  struct SpanInfo {
    uint64_t begin;
    uint64_t last;  // Inclusive.
    uint32_t shard;
    size_t size;
  };
  std::vector<SpanInfo> SpanSnapshot() const
    requires(kElastic)
  {
    EpochGuard guard;
    const Table* t = table();
    std::vector<SpanInfo> result;
    result.reserve(t->spans().size());
    for (size_t i = 0; i < t->spans().size(); ++i) {
      const auto& span = t->spans()[i];
      result.push_back(SpanInfo{span.begin, t->SpanLast(i), span.shard,
                                SlotAt(span.shard).Size()});
    }
    return result;
  }

  size_t NodeCount() const
    requires HasNodeCountOp<Index>
  {
    EpochGuard guard;
    size_t total = 0;
    const uint32_t limit = SlotLimit();
    for (uint32_t i = 0; i < limit; ++i) {
      if (const Index* shard = slots_[i].load(std::memory_order_acquire)) {
        total += shard->NodeCount();
      }
    }
    return total;
  }

  void CheckInvariants() const
    requires HasCheckInvariantsOp<Index>
  {
    EpochGuard guard;
    const uint32_t limit = SlotLimit();
    for (uint32_t i = 0; i < limit; ++i) {
      if (const Index* shard = slots_[i].load(std::memory_order_acquire)) {
        shard->CheckInvariants();
      }
    }
  }

  // --- Transaction-layer hooks: route to the owning shard ---
  //
  // The store is itself a transaction host whenever its shards are; every
  // hook forwards to the key's authoritative shard under the CURRENT
  // table. No extra EpochGuard here — the transaction holds one for its
  // whole lifetime. Transactions do NOT participate in the double-routing
  // window (their writes install through locked records, not the store's
  // op surface); instead they snapshot RoutingVersion() at begin and abort
  // on any change — and on an odd (window-open) version — at commit, so a
  // migration turns overlapping transactions into clean retries.

  // The hook types come in through a defaulted function-level parameter
  // (I = Index) so the signatures only require them on a transaction-
  // hosting shard type, not at every store instantiation.

  template <class I = Index>
    requires TxnVersionedHost<I>
  void TxnRead(uint64_t key, typename I::TxnReadResult& out) const {
    ShardFor(key).TxnRead(key, out);
  }

  template <class HeldContains, class I = Index>
    requires TxnHostIndex<I>
  TxnLockStatus TxnLockForWrite(uint64_t key, int slot,
                                const HeldContains& already_held,
                                typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnLockForWrite(key, slot, already_held, guard);
  }

  template <class HeldContains, class I = Index>
    requires TxnHostIndex<I>
  TxnLockStatus TxnTryLockForWrite(uint64_t key, int slot,
                                   const HeldContains& already_held,
                                   typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnTryLockForWrite(key, slot, already_held, guard);
  }

  template <class HeldContains, class I = Index>
    requires TxnSharedReadHost<I>
  TxnLockStatus TxnTryReadShared(uint64_t key, const HeldContains& held_ex,
                                 bool& found, uint64_t& value,
                                 const typename I::TxnLock*& lock) {
    return ShardFor(key).TxnTryReadShared(key, held_ex, found, value, lock);
  }

  template <class I = Index>
    requires TxnSharedReadHost<I>
  const typename I::TxnLock* TxnLockAddr(uint64_t key) const {
    return ShardFor(key).TxnLockAddr(key);
  }

  template <class I = Index>
    requires TxnSharedReadHost<I>
  TxnLockStatus TxnTryUpgradeForWrite(uint64_t key, int slot,
                                      uint32_t my_holds,
                                      typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnTryUpgradeForWrite(key, slot, my_holds, guard);
  }

  // Ranks order by shard first, then by the shard's own rank, so the
  // cross-shard acquisition order every transaction uses is consistent.
  std::pair<uint64_t, uint64_t> TxnLockRank(uint64_t key) const
    requires TxnHostIndex<Index>
  {
    return {ShardIndexOf(key), ShardFor(key).TxnLockRank(key).first};
  }

 private:
  static size_t SlotCapacity(size_t shards) {
    // Elastic stores leave headroom for splits; hash stores never change.
    return kElastic ? std::max<size_t>(shards * 4, 64) : shards;
  }

  static uint32_t RetireTag(uint32_t slot) { return slot + 1; }

  const Table* table() const {
    return table_.load(std::memory_order_acquire);
  }

  uint32_t SlotLimit() const {
    return slot_limit_.load(std::memory_order_acquire);
  }

  Index& SlotAt(uint32_t slot) const {
    Index* shard = slots_[slot].load(std::memory_order_acquire);
    OPTIQL_CHECK(shard != nullptr);
    return *shard;
  }

  // Single-shard fast path: avoids the partition pass entirely. nullptr
  // when more than one shard is active or a migration window is open.
  Index* SoloShard(const Table* t) const {
    if constexpr (Table::kOrderedSpans) {
      if (t->shard_count() != 1 || t->migration() != nullptr) return nullptr;
      return &SlotAt(t->spans()[0].shard);
    } else {
      if (t->shard_count() != 1) return nullptr;
      return &SlotAt(0);
    }
  }

  // Applies one write inside a migration window: authoritative op on the
  // source first (its return value is the op's result), mirror on the
  // target only when the source accepted it — all under the shared gate,
  // so the pair is atomic against exclusive-gate chunk copies.
  template <class Apply>
  bool DoubleApplyWrite(const Table* t, uint64_t key, const KeyRoute& r,
                        Apply&& apply) {
    (void)key;
    if constexpr (Table::kOrderedSpans) {
      const ShardMigration& m = *t->migration();
      std::shared_lock<std::shared_mutex> gate(m.gate);
      bool ok;
      {
        RetireBucketScope tag(RetireTag(r.write));
        ok = apply(SlotAt(r.write), /*primary=*/true);
      }
      if (ok) {
        const uint32_t mirror = static_cast<uint32_t>(r.co_write);
        RetireBucketScope tag(RetireTag(mirror));
        apply(SlotAt(mirror), /*primary=*/false);
      }
      return ok;
    } else {
      OPTIQL_CHECK(false);  // Hash routes never double-apply.
      return false;
    }
  }

  // Span-ordered scan: concatenate per-span segments in key order; each
  // segment clips to [cur, seg_last] so a shard that (during a window)
  // also holds keys past its segment never leaks them into the result.
  size_t ScanOrdered(const Table* t, uint64_t start, size_t limit,
                     std::vector<std::pair<uint64_t, uint64_t>>& out) const
    requires HasScanOp<Index> && (Table::kOrderedSpans)
  {
    std::vector<std::pair<uint64_t, uint64_t>> buf;
    uint64_t cur = start;
    while (out.size() < limit) {
      const size_t span_i = t->SpanIndexOf(cur);
      const uint64_t span_last = t->SpanLast(span_i);
      uint32_t shard = t->spans()[span_i].shard;
      uint64_t seg_last = span_last;
      const ShardMigration* m = t->migration().get();
      if (m != nullptr && m->Covers(cur)) {
        if (m->Moved(cur)) {
          // Copied prefix: read from the target up to the watermark.
          shard = m->target;
          if (!m->all_moved.load(std::memory_order_acquire)) {
            const uint64_t wm = m->watermark.load(std::memory_order_acquire);
            seg_last = std::min(span_last, wm - 1);
          }
        } else {
          // Uncopied remainder: the source still holds everything.
          shard = m->source;
        }
      }
      buf.clear();
      {
        RetireBucketScope tag(RetireTag(shard));
        SlotAt(shard).Scan(cur, limit - out.size(), buf);
      }
      for (const auto& pair : buf) {
        if (pair.first > seg_last) break;
        out.push_back(pair);
        if (out.size() == limit) break;
      }
      if (out.size() >= limit || seg_last == UINT64_MAX) break;
      cur = seg_last + 1;
    }
    return out.size();
  }

  size_t ScanScatterGather(
      const Table* t, uint64_t start, size_t limit,
      std::vector<std::pair<uint64_t, uint64_t>>& out) const
    requires HasScanOp<Index>
  {
    const size_t shards = t->shard_count();
    if (shards == 1) {
      RetireBucketScope tag(RetireTag(0));
      return SlotAt(0).Scan(start, limit, out);
    }
    // Each shard holds an unknown interleaving of the range, so every
    // shard must contribute its first `limit` pairs >= start; the merge
    // then keeps the globally smallest `limit` of the union.
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> partials(shards);
    for (size_t s = 0; s < shards; ++s) {
      RetireBucketScope tag(RetireTag(static_cast<uint32_t>(s)));
      SlotAt(static_cast<uint32_t>(s)).Scan(start, limit, partials[s]);
    }
    // K-way merge over per-shard cursors via a min-heap on the head key.
    struct Cursor {
      size_t shard;
      size_t pos;
    };
    const auto later = [&partials](const Cursor& a, const Cursor& b) {
      return partials[a.shard][a.pos].first > partials[b.shard][b.pos].first;
    };
    std::vector<Cursor> heap;
    heap.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      if (!partials[s].empty()) heap.push_back(Cursor{s, 0});
    }
    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty() && out.size() < limit) {
      std::pop_heap(heap.begin(), heap.end(), later);
      Cursor cursor = heap.back();
      heap.pop_back();
      out.push_back(partials[cursor.shard][cursor.pos]);
      if (++cursor.pos < partials[cursor.shard].size()) {
        heap.push_back(cursor);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    return out.size();
  }

  // --- Migration internals (range router only) ---

  // Swaps the published table and retires the old snapshot through the
  // epoch layer (readers pinned on it keep it alive until their guard
  // closes).
  void PublishTable(const Table* next) {
    const Table* old = table_.exchange(next, std::memory_order_acq_rel);
    EpochGuard guard;
    EpochManager::Instance().Retire(const_cast<Table*>(old));
  }

  // First free slot, bumping the allocation high-watermark. Caller holds
  // admin_mu_.
  int64_t AllocateSlot() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].load(std::memory_order_acquire) == nullptr) {
        const uint32_t limit = slot_limit_.load(std::memory_order_relaxed);
        if (i >= limit) {
          slot_limit_.store(static_cast<uint32_t>(i) + 1,
                            std::memory_order_release);
        }
        return static_cast<int64_t>(i);
      }
    }
    return -1;
  }

  // Copies the migrating span source -> target, chunk by chunk under the
  // exclusive gate, advancing the watermark as each chunk lands. The scan
  // clips to the span: a source shard legitimately holds keys outside it.
  void MigrateSpan(ShardMigration& m)
    requires(kElastic && HasScanOp<Index>)
  {
    std::vector<std::pair<uint64_t, uint64_t>> buf;
    uint64_t cur = m.begin;
    for (;;) {
      bool done = false;
      uint64_t next = 0;
      {
        std::unique_lock<std::shared_mutex> gate(m.gate);
        EpochGuard guard;
        buf.clear();
        {
          RetireBucketScope tag(RetireTag(m.source));
          SlotAt(m.source).Scan(cur, kMigrateChunk, buf);
        }
        size_t used = 0;
        for (const auto& pair : buf) {
          if (pair.first > m.last) {
            done = true;
            break;
          }
          RetireBucketScope tag(RetireTag(m.target));
          IndexUpsert(SlotAt(m.target), pair.first, pair.second);
          ++used;
        }
        if (buf.size() < kMigrateChunk) done = true;
        if (used > 0 && buf[used - 1].first == m.last) done = true;
        if (done) {
          if (m.last == UINT64_MAX) {
            // watermark = last + 1 would wrap; the flag says "everything".
            m.all_moved.store(true, std::memory_order_release);
          } else {
            m.watermark.store(m.last + 1, std::memory_order_release);
          }
        } else {
          next = buf[used - 1].first + 1;
          m.watermark.store(next, std::memory_order_release);
        }
      }
      if (done) return;
      cur = next;
    }
  }

  // Deletes the moved range [begin, last] from the (ex-)source after the
  // window has closed and a grace period guarantees nobody routes there.
  void CleanupSourceRange(uint32_t slot, uint64_t begin, uint64_t last)
    requires(kElastic && HasScanOp<Index>)
  {
    std::vector<std::pair<uint64_t, uint64_t>> buf;
    for (;;) {
      EpochGuard guard;
      RetireBucketScope tag(RetireTag(slot));
      Index& shard = SlotAt(slot);
      buf.clear();
      shard.Scan(begin, kMigrateChunk, buf);
      size_t removed = 0;
      for (const auto& pair : buf) {
        if (pair.first > last) break;
        IndexRemove(shard, pair.first);
        ++removed;
      }
      if (removed < buf.size() || buf.size() < kMigrateChunk) return;
    }
  }

  // Caller-order-stable partition of a batch into `buckets` groups (bucket
  // b owns order[offsets[b] .. offsets[b+1])), each group preserving
  // program order — a stable counting sort over an arbitrary bucket
  // functor. The functor is evaluated exactly ONCE per key: routes depend
  // on migration atomics (watermark/all_moved) that the copier advances
  // concurrently, and a functor answering differently between a counting
  // and a placement pass would break the counting-sort invariant (scattered
  // results, out-of-bounds cursor writes).
  struct BatchPlan {
    std::vector<uint32_t> order;
    std::vector<uint32_t> offsets;

    template <class BucketOf>
    BatchPlan(size_t buckets, const uint64_t* keys, size_t n,
              BucketOf&& bucket_of)
        : order(n), offsets(buckets + 1, 0) {
      std::vector<uint32_t> bucket(n);
      for (size_t i = 0; i < n; ++i) {
        bucket[i] = static_cast<uint32_t>(bucket_of(keys[i]));
        ++offsets[bucket[i] + 1];
      }
      for (size_t b = 1; b < offsets.size(); ++b) {
        offsets[b] += offsets[b - 1];
      }
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) {
        order[cursor[bucket[i]]++] = static_cast<uint32_t>(i);
      }
    }
  };

  Index& ShardFor(uint64_t key) {
    return SlotAt(static_cast<uint32_t>(table()->Route(key).write));
  }
  const Index& ShardFor(uint64_t key) const {
    return SlotAt(static_cast<uint32_t>(table()->Route(key).write));
  }

  Router router_;
  // Fixed-capacity slot directory: tables reference shards by slot id, and
  // the vector is never resized after construction, so a reader holding a
  // pinned table can always dereference its slots without coordination.
  mutable std::vector<std::atomic<Index*>> slots_;
  std::atomic<uint32_t> slot_limit_{0};  // Allocation high-watermark.
  std::atomic<const Table*> table_{nullptr};
  std::mutex admin_mu_;  // Serializes Split/Merge.
};

}  // namespace optiql

#endif  // OPTIQL_STORE_SHARDED_STORE_H_
