// Sharded composition of index instances: the partitioned regime the
// production north star needs, where per-partition contention (and thus
// lock robustness, §7.3's collapse curves) is decided by key routing.
//
// ShardedStore<Index, Router> owns N independent shards of any IndexLike
// index and routes every point op through the router (default: hash
// partitioning via the shared Mix64 family — adjacent hot keys land on
// different shards, which is exactly what breaks the B+-tree's hot-leaf
// convoys under skew). The router is a pluggable policy so range
// partitioning can slot in later without touching the store.
//
// Scan is scatter-gather: hash routing scatters any key range over every
// shard, so the store over-fetches up to `limit` pairs from each shard and
// keeps the globally smallest `limit` via a k-way merge. Like the
// underlying tree scans, the result is not an atomic snapshot across
// shards (each shard's segment is internally consistent).
//
// Epoch integration: there is ONE epoch domain (the process-wide
// EpochManager) shared by all shards. Every public op opens an EpochGuard
// before touching a shard — Enter/Exit are re-entrant, so the shard's own
// guard nests for free and a scatter-gather scan pays one epoch
// transition instead of N.
//
// Because ShardedStore itself satisfies the IndexOps surface
// (index/index_ops.h), it runs through the entire existing harness, trace
// replay, and bench stack unchanged.
#ifndef OPTIQL_STORE_SHARDED_STORE_H_
#define OPTIQL_STORE_SHARDED_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "index/index_ops.h"
#include "sync/epoch.h"

namespace optiql {

// Default router: full-avalanche hash partitioning. Uses the same Mix64
// family as key-partitioned trace replay so "replay threads == shards"
// gives every replay thread exclusive ownership of its shards.
struct HashShardRouter {
  size_t operator()(uint64_t key, size_t shard_count) const {
    return static_cast<size_t>(Mix64(key) % shard_count);
  }
};

namespace internal {

// Conditionally inherited transaction-host typedefs: only a store over a
// transaction-hosting shard type re-exports the shard's hook types (an
// unconditional member alias would break instantiation for plain shards).
template <class Index, bool = TxnHostIndex<Index>>
struct ShardTxnTypes {};

template <class Index>
struct ShardTxnTypes<Index, true> {
  using TxnLock = typename Index::TxnLock;
  using TxnWriteGuard = typename Index::TxnWriteGuard;
};

template <class Index, bool = TxnVersionedHost<Index>>
struct ShardTxnReadTypes {};

template <class Index>
struct ShardTxnReadTypes<Index, true> {
  using TxnReadResult = typename Index::TxnReadResult;
};

}  // namespace internal

template <class Index, class Router = HashShardRouter>
  requires IndexLike<Index>
class ShardedStore : public internal::ShardTxnTypes<Index>,
                     public internal::ShardTxnReadTypes<Index> {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedStore(size_t shards = kDefaultShards,
                        Router router = Router())
      : router_(std::move(router)) {
    OPTIQL_CHECK(shards >= 1);
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Index>());
    }
  }

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  // --- Uniform point ops (the IndexOps surface) ---

  bool Insert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    return IndexInsert(ShardFor(key), key, value);
  }

  bool Update(uint64_t key, uint64_t value) {
    EpochGuard guard;
    return IndexUpdate(ShardFor(key), key, value);
  }

  bool Lookup(uint64_t key, uint64_t& out) const {
    EpochGuard guard;
    return IndexLookup(ShardFor(key), key, out);
  }

  bool Remove(uint64_t key) {
    EpochGuard guard;
    return IndexRemove(ShardFor(key), key);
  }

  void Upsert(uint64_t key, uint64_t value) {
    EpochGuard guard;
    IndexUpsert(ShardFor(key), key, value);
  }

  // --- Batched ops: partition, dispatch per shard, reassemble ---
  //
  // Each batch is partitioned by the router (caller-order-stable, so
  // duplicate keys resolve exactly as sequential execution would — they
  // always land on the same shard, in program order), then each shard gets
  // ONE dispatch: a single amortized EpochGuard for the whole batch plus
  // the shard's own interleaved group (IndexLookupBatch falls back to a
  // guarded loop for shards without a native batch path). Results are
  // scattered back to caller positions.

  size_t LookupBatch(const uint64_t* keys, size_t n, uint64_t* values,
                     bool* found) const {
    if (n == 0) return 0;
    EpochGuard guard;
    if (shards_.size() == 1) {
      return IndexLookupBatch(*shards_[0], keys, n, values, found);
    }
    const BatchPlan plan(*this, keys, n);
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    const std::unique_ptr<bool[]> shard_found(new bool[n]);
    size_t hits = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        shard_keys[i] = keys[plan.order[begin + i]];
      }
      hits += IndexLookupBatch(*shards_[s], shard_keys.data(), m,
                               shard_values.data(), shard_found.get());
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        found[at] = shard_found[i];
        if (shard_found[i]) values[at] = shard_values[i];
      }
    }
    return hits;
  }

  size_t InsertBatch(const uint64_t* keys, const uint64_t* values, size_t n,
                     bool* ok) {
    if (n == 0) return 0;
    EpochGuard guard;
    if (shards_.size() == 1) {
      return IndexInsertBatch(*shards_[0], keys, values, n, ok);
    }
    const BatchPlan plan(*this, keys, n);
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    const std::unique_ptr<bool[]> shard_ok(new bool[n]);
    size_t applied = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        shard_keys[i] = keys[at];
        shard_values[i] = values[at];
      }
      applied += IndexInsertBatch(*shards_[s], shard_keys.data(),
                                  shard_values.data(), m, shard_ok.get());
      for (size_t i = 0; i < m; ++i) {
        ok[plan.order[begin + i]] = shard_ok[i];
      }
    }
    return applied;
  }

  void UpsertBatch(const uint64_t* keys, const uint64_t* values, size_t n) {
    if (n == 0) return;
    EpochGuard guard;
    if (shards_.size() == 1) {
      IndexUpsertBatch(*shards_[0], keys, values, n);
      return;
    }
    const BatchPlan plan(*this, keys, n);
    std::vector<uint64_t> shard_keys(n);
    std::vector<uint64_t> shard_values(n);
    for (size_t s = 0; s < shards_.size(); ++s) {
      const uint32_t begin = plan.offsets[s];
      const size_t m = plan.offsets[s + 1] - begin;
      if (m == 0) continue;
      for (size_t i = 0; i < m; ++i) {
        const uint32_t at = plan.order[begin + i];
        shard_keys[i] = keys[at];
        shard_values[i] = values[at];
      }
      IndexUpsertBatch(*shards_[s], shard_keys.data(), shard_values.data(),
                       m);
    }
  }

  // --- Range scan: scatter-gather with a k-way merge ---

  size_t Scan(uint64_t start, size_t limit,
              std::vector<std::pair<uint64_t, uint64_t>>& out) const
    requires HasScanOp<Index>
  {
    out.clear();
    if (limit == 0) return 0;
    EpochGuard guard;
    if (shards_.size() == 1) {
      return shards_[0]->Scan(start, limit, out);
    }
    // Each shard holds an unknown interleaving of the range, so every
    // shard must contribute its first `limit` pairs >= start; the merge
    // then keeps the globally smallest `limit` of the union.
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> partials(
        shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->Scan(start, limit, partials[s]);
    }
    // K-way merge over per-shard cursors via a min-heap on the head key.
    struct Cursor {
      size_t shard;
      size_t pos;
    };
    const auto later = [&partials](const Cursor& a, const Cursor& b) {
      return partials[a.shard][a.pos].first > partials[b.shard][b.pos].first;
    };
    std::vector<Cursor> heap;
    heap.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!partials[s].empty()) heap.push_back(Cursor{s, 0});
    }
    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty() && out.size() < limit) {
      std::pop_heap(heap.begin(), heap.end(), later);
      Cursor cursor = heap.back();
      heap.pop_back();
      out.push_back(partials[cursor.shard][cursor.pos]);
      if (++cursor.pos < partials[cursor.shard].size()) {
        heap.push_back(cursor);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    return out.size();
  }

  // --- Bulk load (sorted, unique pairs into an EMPTY store) ---
  //
  // Not thread-safe, mirroring the per-index contract. Partitioning a
  // sorted input preserves sort order within each shard, so shards with a
  // native bulk load keep their packed bottom-up build.
  void BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> parts(
        shards_.size());
    for (auto& part : parts) part.reserve(pairs.size() / shards_.size() + 1);
    for (const auto& pair : pairs) {
      parts[router_(pair.first, shards_.size())].push_back(pair);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if constexpr (HasBulkLoadOp<Index>) {
        shards_[s]->BulkLoad(parts[s]);
      } else {
        EpochGuard guard;
        for (const auto& pair : parts[s]) {
          OPTIQL_CHECK(IndexInsert(*shards_[s], pair.first, pair.second));
        }
      }
    }
  }

  // --- Introspection / diagnostics ---

  size_t Size() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->Size();
    return total;
  }

  size_t ShardCount() const { return shards_.size(); }

  // Shard an op on `key` would be routed to (tests, affinity diagnostics).
  size_t ShardIndexOf(uint64_t key) const {
    return router_(key, shards_.size());
  }

  Index& ShardAt(size_t i) { return *shards_[i]; }
  const Index& ShardAt(size_t i) const { return *shards_[i]; }

  size_t NodeCount() const
    requires HasNodeCountOp<Index>
  {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->NodeCount();
    return total;
  }

  void CheckInvariants() const
    requires HasCheckInvariantsOp<Index>
  {
    for (const auto& shard : shards_) shard->CheckInvariants();
  }

  // --- Transaction-layer hooks: route to the owning shard ---
  //
  // The store is itself a transaction host whenever its shards are; every
  // hook forwards to ShardFor(key). No extra EpochGuard here — the
  // transaction holds one for its whole lifetime.

  // The hook types come in through a defaulted function-level parameter
  // (I = Index) so the signatures only require them on a transaction-
  // hosting shard type, not at every store instantiation.

  template <class I = Index>
    requires TxnVersionedHost<I>
  void TxnRead(uint64_t key, typename I::TxnReadResult& out) const {
    ShardFor(key).TxnRead(key, out);
  }

  template <class HeldContains, class I = Index>
    requires TxnHostIndex<I>
  TxnLockStatus TxnLockForWrite(uint64_t key, int slot,
                                const HeldContains& already_held,
                                typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnLockForWrite(key, slot, already_held, guard);
  }

  template <class HeldContains, class I = Index>
    requires TxnHostIndex<I>
  TxnLockStatus TxnTryLockForWrite(uint64_t key, int slot,
                                   const HeldContains& already_held,
                                   typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnTryLockForWrite(key, slot, already_held, guard);
  }

  template <class HeldContains, class I = Index>
    requires TxnSharedReadHost<I>
  TxnLockStatus TxnTryReadShared(uint64_t key, const HeldContains& held_ex,
                                 bool& found, uint64_t& value,
                                 const typename I::TxnLock*& lock) {
    return ShardFor(key).TxnTryReadShared(key, held_ex, found, value, lock);
  }

  template <class I = Index>
    requires TxnSharedReadHost<I>
  const typename I::TxnLock* TxnLockAddr(uint64_t key) const {
    return ShardFor(key).TxnLockAddr(key);
  }

  template <class I = Index>
    requires TxnSharedReadHost<I>
  TxnLockStatus TxnTryUpgradeForWrite(uint64_t key, int slot,
                                      uint32_t my_holds,
                                      typename I::TxnWriteGuard& guard) {
    return ShardFor(key).TxnTryUpgradeForWrite(key, slot, my_holds, guard);
  }

  // Ranks order by shard first, then by the shard's own rank, so the
  // cross-shard acquisition order every transaction uses is consistent.
  std::pair<uint64_t, uint64_t> TxnLockRank(uint64_t key) const
    requires TxnHostIndex<Index>
  {
    return {ShardIndexOf(key), ShardFor(key).TxnLockRank(key).first};
  }

 private:
  // Caller-order-stable partition of a batch by shard: position indexes
  // grouped by shard (shard s owns order[offsets[s] .. offsets[s+1])),
  // each group preserving program order — a stable counting sort.
  struct BatchPlan {
    std::vector<uint32_t> order;
    std::vector<uint32_t> offsets;

    BatchPlan(const ShardedStore& store, const uint64_t* keys, size_t n)
        : order(n), offsets(store.ShardCount() + 1, 0) {
      for (size_t i = 0; i < n; ++i) {
        ++offsets[store.ShardIndexOf(keys[i]) + 1];
      }
      for (size_t s = 1; s < offsets.size(); ++s) {
        offsets[s] += offsets[s - 1];
      }
      std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (size_t i = 0; i < n; ++i) {
        order[cursor[store.ShardIndexOf(keys[i])]++] =
            static_cast<uint32_t>(i);
      }
    }
  };

  Index& ShardFor(uint64_t key) { return *shards_[ShardIndexOf(key)]; }
  const Index& ShardFor(uint64_t key) const {
    return *shards_[ShardIndexOf(key)];
  }

  std::vector<std::unique_ptr<Index>> shards_;
  Router router_;
};

}  // namespace optiql

#endif  // OPTIQL_STORE_SHARDED_STORE_H_
