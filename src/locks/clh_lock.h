// Classic CLH queue lock (Craig; Landin & Hagersten — paper §2.3/§8).
//
// Like MCS, requesters form an implicit FIFO queue, but each waiter spins
// on its *predecessor's* node instead of its own, and queue nodes migrate:
// a releasing holder abandons its node to the successor and the successor
// adopts it for a later acquisition. The classic formulation seeds the lock
// with a dummy node; this implementation instead allows an empty (null)
// tail and releases with a CAS when no successor has queued, so the lock is
// an 8-byte zero-initializable word like every other lock in the repo.
//
// AcquireEx returns the published node; the caller passes it back to
// ReleaseEx (it identifies this acquisition, not this thread).
#ifndef OPTIQL_LOCKS_CLH_LOCK_H_
#define OPTIQL_LOCKS_CLH_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "qnode/qnode_pool.h"

namespace optiql {

class OPTIQL_CAPABILITY("mutex") ClhLock {
 public:
  ClhLock() = default;
  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  // Blocks until the lock is held; returns the acquisition handle.
  QNode* AcquireEx() OPTIQL_ACQUIRE() {
    QNode* node = ThreadQNodeStack::Pop();
    node->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                        "CLH AcquireEx got a node that is already enqueued "
                        "(thread-local stack corruption?)");
    node->version.store(kLockedFlag, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(node, std::memory_order_acq_rel);
    if (pred != nullptr) {
      SpinWait wait;
      while (pred->version.load(std::memory_order_acquire) == kLockedFlag) {
        wait.Spin();
      }
      // The predecessor abandoned its node to us; adopt it for later.
      ThreadQNodeStack::Push(pred);
    }
    return node;
  }

  void ReleaseEx(QNode* node) OPTIQL_RELEASE() {
    // Ownership of `node` may pass to the spinning successor below; the
    // transition must happen first (the successor adopts an Idle node), and
    // it doubles as the double-release check.
    node->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                        "CLH ReleaseEx with a node that is not enqueued "
                        "(double release?)");
    QNode* expected = node;
    if (tail_.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      // No successor ever observed the node: reuse it ourselves.
      ThreadQNodeStack::Push(node);
      return;
    }
    // A successor spins on `node`; the unlock store is our last access —
    // ownership passes to the successor.
    node->version.store(kUnlockedFlag, std::memory_order_release);
  }

  bool IsLockedEx() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  static constexpr uint64_t kLockedFlag = QNode::kInvalidVersion;
  static constexpr uint64_t kUnlockedFlag = 0;

  ModelAtomic<QNode*> tail_{nullptr};
};

static_assert(sizeof(ClhLock) == 8, "CLH lock must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_CLH_LOCK_H_
