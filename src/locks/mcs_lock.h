// Classic MCS mutual-exclusion lock (Mellor-Crummey & Scott '91; paper §2.3,
// Algorithm 1). Requesters form a FIFO queue; each spins on its own queue
// node, so under contention the shared lock word is touched once per
// acquire/release instead of once per retry. OptiQL extends this algorithm.
//
// This implementation stores the raw tail pointer in the 8-byte word (the
// classic formulation); OptiQL switches to queue-node IDs to make room for a
// version number (paper §4.2).
#ifndef OPTIQL_LOCKS_MCS_LOCK_H_
#define OPTIQL_LOCKS_MCS_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "qnode/qnode_pool.h"

namespace optiql {

class OPTIQL_CAPABILITY("mutex") McsLock {
 public:
  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  // Joins the queue with `qnode` and blocks until granted. `qnode` must stay
  // exclusively owned by this thread until ReleaseEx(qnode) returns.
  void AcquireEx(QNode* qnode) OPTIQL_ACQUIRE() {
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "MCS AcquireEx with a node that is already "
                         "enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->version.store(kWaiting, std::memory_order_relaxed);
    QNode* pred = tail_.exchange(qnode, std::memory_order_acq_rel);
    if (pred == nullptr) return;  // Lock was free.
    pred->next.store(qnode, std::memory_order_release);
    SpinWait wait;
    while (qnode->version.load(std::memory_order_acquire) == kWaiting) {
      wait.Spin();
    }
  }

  bool TryAcquireEx(QNode* qnode) OPTIQL_TRY_ACQUIRE(true) {
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->version.store(kWaiting, std::memory_order_relaxed);
    QNode* expected = nullptr;
    const bool acquired = tail_.compare_exchange_strong(
        expected, qnode, std::memory_order_acq_rel,
        std::memory_order_relaxed);
    if (acquired) {
      qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                           "MCS TryAcquireEx with a node that is already "
                           "enqueued or not owned by this thread");
    }
    return acquired;
  }

  void ReleaseEx(QNode* qnode) OPTIQL_RELEASE() {
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "MCS ReleaseEx with a node that is not enqueued "
                         "(double release?)");
    if (qnode->next.load(std::memory_order_acquire) == nullptr) {
      QNode* expected = qnode;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;  // Indeed no successor.
      }
      // A successor swapped itself in but has not linked yet; wait for it.
    }
    SpinWait wait;
    QNode* next;
    while ((next = qnode->next.load(std::memory_order_acquire)) == nullptr) {
      wait.Spin();
    }
    next->version.store(kGranted, std::memory_order_release);
  }

  bool IsLockedEx() const {
    return tail_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  static constexpr uint64_t kWaiting = QNode::kInvalidVersion;
  static constexpr uint64_t kGranted = 1;

  ModelAtomic<QNode*> tail_{nullptr};
};

static_assert(sizeof(McsLock) == 8, "MCS lock must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_MCS_LOCK_H_
