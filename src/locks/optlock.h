// Centralized optimistic lock ("OptLock", paper Figure 2(b)): a TTS-style
// spinlock whose 8-byte word also carries a version counter so readers can
// proceed optimistically and validate afterwards. This is the baseline used
// by BTreeOLC and ART-OLC and the design OptiQL competes against.
//
// Word layout: [63] locked  [62] obsolete  [0..61] version.
// The obsolete bit is used by structures that replace nodes (ART node
// growth): it permanently fails readers' validation and writers' upgrades on
// the retired node.
#ifndef OPTIQL_LOCKS_OPTLOCK_H_
#define OPTIQL_LOCKS_OPTLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/backoff.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "sync/lock_telemetry.h"

namespace optiql {

// Only the exclusive (writer) side carries TSA annotations: an optimistic
// AcquireSh writes nothing and its reads race by design, which TSA cannot
// model — that side is covered by scripts/lint_optimistic.py and the
// checked-invariant build instead.
template <class BackoffPolicy = NoBackoff>
class OPTIQL_CAPABILITY("mutex") BasicOptLock {
 public:
  static constexpr uint64_t kLockedBit = 1ULL << 63;
  static constexpr uint64_t kObsoleteBit = 1ULL << 62;
  static constexpr uint64_t kVersionMask = kObsoleteBit - 1;

  BasicOptLock() = default;
  BasicOptLock(const BasicOptLock&) = delete;
  BasicOptLock& operator=(const BasicOptLock&) = delete;

  // --- Optimistic reader interface (paper Figure 2(b)) ---

  // "Acquires" the lock in optimistic read mode: snapshots the word into `v`
  // and reports whether the caller may proceed. No shared-memory write.
  bool AcquireSh(uint64_t& v) const {
    v = word_.load(std::memory_order_acquire);
    if ((v & (kLockedBit | kObsoleteBit)) != 0) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  // Validates that the protected data did not change since AcquireSh
  // returned `v`. The acquire fence orders the caller's preceding data reads
  // before the validating load (seqlock validation idiom).
  bool ReleaseSh(uint64_t v) const {
    ModelThreadFence(std::memory_order_acquire);
    if (word_.load(std::memory_order_relaxed) != v) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  // --- Exclusive writer interface ---

  void AcquireEx() OPTIQL_ACQUIRE() {
    BackoffPolicy backoff;
    bool waited = false;
    while (true) {
      uint64_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockedBit) == 0 && TryAcquireExFrom(v)) return;
      if (!waited) {
        // Once per contended acquisition, not per spin iteration.
        waited = true;
        LockTelemetry::Count(LockTelemetry::kExclusiveWait);
      }
      backoff.Pause();
    }
  }

  bool TryAcquireEx() OPTIQL_TRY_ACQUIRE(true) {
    uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & kLockedBit) == 0 && TryAcquireExFrom(v);
  }

  // Upgrades an optimistic read to exclusive ownership iff the word still
  // carries the snapshot `v` from AcquireSh.
  bool TryUpgrade(uint64_t v) OPTIQL_TRY_ACQUIRE(true) {
    // A locked or obsolete snapshot can never have come from a successful
    // AcquireSh. Passing one is not a benign always-fails call: if the word
    // still equals `v` the CAS *succeeds*, ORs the already-set locked bit,
    // and two writers now both believe they hold the lock.
    OPTIQL_INVARIANT((v & (kLockedBit | kObsoleteBit)) == 0,
                     "OptLock TryUpgrade from a locked/obsolete snapshot "
                     "(not a validated AcquireSh result)");
    return word_.compare_exchange_strong(v, v | kLockedBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  // Releases exclusive mode, bumping the version to fail readers that
  // overlapped the critical section.
  void ReleaseEx() OPTIQL_RELEASE() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    OPTIQL_INVARIANT((v & kLockedBit) != 0,
                     "OptLock ReleaseEx on an unlocked word "
                     "(double release?)");
    word_.store((v + 1) & ~kLockedBit, std::memory_order_release);
  }

  // Releases exclusive mode without bumping the version. Only legal when
  // the critical section modified nothing: overlapping optimistic readers
  // (and the releasing writer's own pre-upgrade snapshot) stay valid, which
  // lets a no-op structural pass back out without forcing restarts.
  void ReleaseExNoBump() OPTIQL_RELEASE() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    OPTIQL_INVARIANT((v & kLockedBit) != 0,
                     "OptLock ReleaseExNoBump on an unlocked word "
                     "(double release?)");
    word_.store(v & ~kLockedBit, std::memory_order_release);
  }

  // Releases exclusive mode and retires the protected object: every future
  // AcquireSh/TryUpgrade on this lock fails.
  void ReleaseExObsolete() OPTIQL_RELEASE() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    OPTIQL_INVARIANT((v & kLockedBit) != 0,
                     "OptLock ReleaseExObsolete on an unlocked word: the "
                     "obsolete bit may only be set under the writer lock");
    word_.store(((v + 1) & ~kLockedBit) | kObsoleteBit,
                std::memory_order_release);
  }

  // --- Introspection (tests/diagnostics) ---

  bool IsLockedEx() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }
  bool IsObsolete() const {
    return (word_.load(std::memory_order_acquire) & kObsoleteBit) != 0;
  }
  uint64_t LoadWord() const { return word_.load(std::memory_order_acquire); }

 private:
  bool TryAcquireExFrom(uint64_t v) {
    if ((v & kObsoleteBit) != 0) {
      // Writers must never mutate a retired object; treat like contention so
      // index protocols observe the failed acquisition and restart.
      return false;
    }
    return word_.compare_exchange_strong(v, v | kLockedBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  ModelAtomic<uint64_t> word_{0};
};

using OptLock = BasicOptLock<NoBackoff>;
using OptBackoffLock = BasicOptLock<ExponentialBackoff>;

static_assert(sizeof(OptLock) == 8, "OptLock must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_OPTLOCK_H_
