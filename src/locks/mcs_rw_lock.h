// Fair (FIFO) queue-based reader-writer lock, after Mellor-Crummey & Scott,
// "Scalable Reader-Writer Synchronization for Shared-Memory Multiprocessors"
// (PPoPP '91) — the paper's MCS-RW baseline (§7.1).
//
// The original algorithm needs three lock fields (`tail`, `next_writer`,
// `reader_count`, >16 bytes). Following the paper, we compact all three into
// one 8-byte word using queue-node IDs (§6.3 encoding):
//
//   bits 0..9   tail queue-node ID          (0 = empty queue)
//   bits 10..19 next_writer queue-node ID   (0 = none)
//   bits 20..45 active reader count
//
// Enqueueing becomes a CAS loop on the packed word (the original's XCHG
// would clobber the sibling fields). In exchange, the packed word makes the
// original's trickiest step *simpler*: a single fetch_sub on the word hands
// the departing reader a consistent snapshot of (reader_count, next_writer).
//
// Per-node state lives in QNode::aux:
//   bit 0     blocked
//   bit 1     class (1 = writer)
//   bits 2..3 successor class (0 none, 1 reader, 2 writer)
#ifndef OPTIQL_LOCKS_MCS_RW_LOCK_H_
#define OPTIQL_LOCKS_MCS_RW_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "qnode/qnode_pool.h"

namespace optiql {

class OPTIQL_CAPABILITY("shared_mutex") McsRwLock {
 public:
  McsRwLock() = default;
  McsRwLock(const McsRwLock&) = delete;
  McsRwLock& operator=(const McsRwLock&) = delete;

  void AcquireEx(QNode* qnode) OPTIQL_ACQUIRE() {
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "MCS-RW AcquireEx with a node that is already "
                         "enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->aux.store(kBlockedBit | kClassWriterBit, std::memory_order_relaxed);
    const uint32_t self = Pool().ToId(qnode);
    const uint32_t pred_id = SwapTail(self);
    if (pred_id == kNullId) {
      // Queue was empty, but readers may still be active (they leave the
      // queue before dropping their reader count). Register as the next
      // writer; if no readers are active and we can atomically deregister
      // ourselves, the lock is ours — otherwise the last reader wakes us.
      SetNextWriter(self);
      uint64_t w = word_.load(std::memory_order_acquire);
      while (ReaderCount(w) == 0 && NextWriterId(w) == self) {
        if (word_.compare_exchange_weak(w, ClearNextWriter(w),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          qnode->aux.fetch_and(~kBlockedBit, std::memory_order_acq_rel);
          break;
        }
      }
    } else {
      QNode* pred = Pool().ToPtr(pred_id);
      // Successor class must be published before the link (the predecessor
      // reads it only after observing `next`).
      pred->aux.fetch_or(kSuccWriter << kSuccShift, std::memory_order_acq_rel);
      pred->next.store(qnode, std::memory_order_release);
    }
    SpinUntilGranted(qnode);
  }

  void ReleaseEx(QNode* qnode) OPTIQL_RELEASE() {
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "MCS-RW ReleaseEx with a node that is not enqueued "
                         "(double release, or release without acquire?)");
    QNode* next = WaitForSuccessorOrLeave(qnode);
    if (next == nullptr) return;
    if ((next->aux.load(std::memory_order_acquire) & kClassWriterBit) == 0) {
      // Reader successor: account for it before unblocking it.
      word_.fetch_add(kReaderOne, std::memory_order_acq_rel);
    }
    Unblock(next);
  }

  void AcquireSh(QNode* qnode) OPTIQL_ACQUIRE_SHARED() {
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "MCS-RW AcquireSh with a node that is already "
                         "enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->aux.store(kBlockedBit, std::memory_order_relaxed);
    const uint32_t self = Pool().ToId(qnode);
    const uint32_t pred_id = SwapTail(self);
    if (pred_id == kNullId) {
      const uint64_t old_word =
          word_.fetch_add(kReaderOne, std::memory_order_acq_rel);
      OPTIQL_INVARIANT(ReaderCount(old_word) <
                           (kReaderMask >> kReaderShift),
                       "MCS-RW reader count overflow");
      qnode->aux.fetch_and(~kBlockedBit, std::memory_order_acq_rel);
    } else {
      QNode* pred = Pool().ToPtr(pred_id);
      const uint64_t pred_blocked_reader = kBlockedBit;  // reader, no succ
      uint64_t expected = pred_blocked_reader;
      const bool pred_will_wake_us =
          (pred->aux.load(std::memory_order_acquire) & kClassWriterBit) != 0 ||
          pred->aux.compare_exchange_strong(
              expected, pred_blocked_reader | (kSuccReader << kSuccShift),
              std::memory_order_acq_rel, std::memory_order_acquire);
      if (pred_will_wake_us) {
        pred->next.store(qnode, std::memory_order_release);
        SpinWait wait;
        while ((qnode->aux.load(std::memory_order_acquire) & kBlockedBit) !=
               0) {
          wait.Spin();
        }
      } else {
        // Predecessor is an active reader: join the read group directly.
        // The count must be raised *before* linking so the predecessor's
        // departure cannot observe a zero count and wake a writer early.
        word_.fetch_add(kReaderOne, std::memory_order_acq_rel);
        pred->next.store(qnode, std::memory_order_release);
        qnode->aux.fetch_and(~kBlockedBit, std::memory_order_acq_rel);
      }
    }
    // A reader successor may have registered with us while we were blocked;
    // it is now ours to admit.
    if (SuccClass(qnode->aux.load(std::memory_order_acquire)) == kSuccReader) {
      SpinWait wait;
      QNode* next;
      while ((next = qnode->next.load(std::memory_order_acquire)) == nullptr) {
        wait.Spin();
      }
      word_.fetch_add(kReaderOne, std::memory_order_acq_rel);
      Unblock(next);
    }
  }

  void ReleaseSh(QNode* qnode) OPTIQL_RELEASE_SHARED() {
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "MCS-RW ReleaseSh with a node that is not enqueued "
                         "(double release, or release without acquire? — "
                         "this would otherwise hang waiting for a successor)");
    QNode* next = WaitForSuccessorOrLeave(qnode);
    if (next != nullptr &&
        SuccClass(qnode->aux.load(std::memory_order_acquire)) == kSuccWriter) {
      SetNextWriter(Pool().ToId(next));
    }
    // Drop our reader count; the fetch_sub snapshot atomically pairs the old
    // count with the next_writer field.
    const uint64_t old_word =
        word_.fetch_sub(kReaderOne, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(ReaderCount(old_word) >= 1,
                     "MCS-RW ReleaseSh underflowed the reader count "
                     "(release without a matching shared acquire)");
    const uint32_t waiting_writer = NextWriterId(old_word);
    if (ReaderCount(old_word) == 1 && waiting_writer != kNullId) {
      // We were the last active reader and a writer is registered: try to
      // take responsibility for waking it. The CAS arbitrates against the
      // writer's self-grant in AcquireEx.
      uint64_t w = word_.load(std::memory_order_acquire);
      while (ReaderCount(w) == 0 && NextWriterId(w) == waiting_writer) {
        if (word_.compare_exchange_weak(w, ClearNextWriter(w),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          Unblock(Pool().ToPtr(waiting_writer));
          return;
        }
      }
    }
  }

  // --- No-wait interface (2PL deadlock avoidance, txn layer) ---

  // Non-blocking exclusive acquire: succeeds only when the lock is entirely
  // free (no queue, no registered writer, no active readers), by CAS-ing the
  // whole word from 0 to "tail = self". On success the caller holds the lock
  // exactly as after AcquireEx and must release with ReleaseEx(qnode).
  bool TryAcquireEx(QNode* qnode) OPTIQL_TRY_ACQUIRE(true) {
    uint64_t expected = 0;
    const uint32_t self = Pool().ToId(qnode);
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "MCS-RW TryAcquireEx with a node that is already "
                         "enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->aux.store(kClassWriterBit, std::memory_order_relaxed);
    if (word_.compare_exchange_strong(expected,
                                      uint64_t{self} << kTailShift,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return true;
    }
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "MCS-RW TryAcquireEx backout");
    return false;
  }

  // Non-blocking queue-less shared acquire: joins the active reader group
  // directly (one CAS, no queue node) when no writer is queued or
  // registered. Must be released with ReleaseShNoQueue() — the queued
  // ReleaseSh(qnode) path does not apply, we were never in the queue.
  bool TryAcquireSh() OPTIQL_TRY_ACQUIRE_SHARED(true) {
    uint64_t w = word_.load(std::memory_order_acquire);
    while (TailId(w) == kNullId && NextWriterId(w) == kNullId) {
      if (word_.compare_exchange_weak(w, w + kReaderOne,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  // Pairs with TryAcquireSh: drop the reader count and, as the last active
  // reader, wake a registered writer (same arbitration as ReleaseSh's tail
  // half — the fetch_sub snapshot atomically pairs count and next_writer).
  void ReleaseShNoQueue() OPTIQL_RELEASE_SHARED() {
    const uint64_t old_word =
        word_.fetch_sub(kReaderOne, std::memory_order_acq_rel);
    OPTIQL_INVARIANT(ReaderCount(old_word) >= 1,
                     "MCS-RW ReleaseShNoQueue underflowed the reader count "
                     "(release without a matching TryAcquireSh)");
    const uint32_t waiting_writer = NextWriterId(old_word);
    if (ReaderCount(old_word) == 1 && waiting_writer != kNullId) {
      uint64_t w = word_.load(std::memory_order_acquire);
      while (ReaderCount(w) == 0 && NextWriterId(w) == waiting_writer) {
        if (word_.compare_exchange_weak(w, ClearNextWriter(w),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          Unblock(Pool().ToPtr(waiting_writer));
          return;
        }
      }
    }
  }

  // Atomic shared→exclusive upgrade for queue-less shared holds: succeeds
  // only when the caller's own holds are the lock's entire state — reader
  // count == `my_holds`, empty queue, no registered writer — by CAS-ing
  // the packed word straight to "tail = self as writer". On success the
  // `my_holds` shared holds are consumed (they must NOT be individually
  // released) and the caller holds the lock exactly as after TryAcquireEx,
  // releasing with ReleaseEx(qnode). On failure nothing changes: the
  // shared holds remain. Because the conversion is one CAS there is no
  // release/re-acquire window — anything read under the shared holds stays
  // protected across the upgrade (the 2PL read-then-write guarantee).
  //
  // No TSA annotations: a conditional shared→exclusive conversion is not
  // expressible (the failure branch still holds shared). TSA-checked
  // callers wrap the call site in OPTIQL_NO_THREAD_SAFETY_ANALYSIS.
  bool TryUpgradeShNoQueue(QNode* qnode, uint32_t my_holds) {
    OPTIQL_INVARIANT(my_holds >= 1,
                     "MCS-RW TryUpgradeShNoQueue with no shared holds");
    qnode->DbgTransition(QNode::kDbgIdle, QNode::kDbgQueued,
                         "MCS-RW TryUpgradeShNoQueue with a node that is "
                         "already enqueued or not owned by this thread");
    qnode->next.store(nullptr, std::memory_order_relaxed);
    qnode->aux.store(kClassWriterBit, std::memory_order_relaxed);
    const uint32_t self = Pool().ToId(qnode);
    uint64_t expected = uint64_t{my_holds} << kReaderShift;
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // Seeded bug (model builds only): skip the sole-holder check and
    // upgrade from whatever the current word is, keeping only our own
    // holds' worth of count. Other active readers survive into the
    // exclusive section — the checker's upgrade-atomicity spec must
    // catch the resulting reader/writer overlap.
    if (model::bugs().mcsrw_upgrade_ignores_readers) {
      expected = word_.load(std::memory_order_relaxed);
    }
#endif
    if (word_.compare_exchange_strong(expected, uint64_t{self} << kTailShift,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      return true;
    }
    qnode->DbgTransition(QNode::kDbgQueued, QNode::kDbgIdle,
                         "MCS-RW TryUpgradeShNoQueue backout");
    return false;
  }

  // --- Introspection (tests/diagnostics) ---

  uint32_t ActiveReaders() const {
    return ReaderCount(word_.load(std::memory_order_acquire));
  }
  bool HasQueue() const {
    return TailId(word_.load(std::memory_order_acquire)) != kNullId;
  }

 private:
  static constexpr uint32_t kNullId = QNodePool::kNullId;
  static constexpr uint64_t kIdFieldMask = (1u << QNodePool::kIdBits) - 1;
  static constexpr int kTailShift = 0;
  static constexpr int kNextWriterShift = 10;
  static constexpr int kReaderShift = 20;
  static constexpr uint64_t kReaderOne = 1ULL << kReaderShift;
  static constexpr uint64_t kReaderMask = ((1ULL << 26) - 1) << kReaderShift;

  // QNode::aux bit assignments.
  static constexpr uint64_t kBlockedBit = 1;
  static constexpr uint64_t kClassWriterBit = 2;
  static constexpr int kSuccShift = 2;
  static constexpr uint64_t kSuccNone = 0;
  static constexpr uint64_t kSuccReader = 1;
  static constexpr uint64_t kSuccWriter = 2;

  static QNodePool& Pool() { return QNodePool::Instance(); }

  static uint32_t TailId(uint64_t w) {
    return static_cast<uint32_t>((w >> kTailShift) & kIdFieldMask);
  }
  static uint32_t NextWriterId(uint64_t w) {
    return static_cast<uint32_t>((w >> kNextWriterShift) & kIdFieldMask);
  }
  static uint32_t ReaderCount(uint64_t w) {
    return static_cast<uint32_t>((w & kReaderMask) >> kReaderShift);
  }
  static uint64_t ClearNextWriter(uint64_t w) {
    return w & ~(kIdFieldMask << kNextWriterShift);
  }
  static uint64_t SuccClass(uint64_t aux) { return (aux >> kSuccShift) & 3; }

  // Atomically replaces the tail field, returning the previous tail ID.
  uint32_t SwapTail(uint32_t id) {
    uint64_t w = word_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t desired =
          (w & ~(kIdFieldMask << kTailShift)) | (uint64_t{id} << kTailShift);
      if (word_.compare_exchange_weak(w, desired, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return TailId(w);
      }
    }
  }

  void SetNextWriter(uint32_t id) {
    uint64_t w = word_.load(std::memory_order_relaxed);
    while (true) {
      const uint64_t desired = ClearNextWriter(w) |
                               (uint64_t{id} << kNextWriterShift);
      if (word_.compare_exchange_weak(w, desired, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  static void Unblock(QNode* node) {
    node->aux.fetch_and(~kBlockedBit, std::memory_order_acq_rel);
  }

  void SpinUntilGranted(QNode* qnode) {
    SpinWait wait;
    while ((qnode->aux.load(std::memory_order_acquire) & kBlockedBit) != 0) {
      wait.Spin();
    }
  }

  // Common exit step: if we have (or will have) a successor, wait for it to
  // link and return it; otherwise remove ourselves from the queue tail and
  // return nullptr.
  QNode* WaitForSuccessorOrLeave(QNode* qnode) {
    if (qnode->next.load(std::memory_order_acquire) == nullptr) {
      // Try to swing the tail from us back to "empty".
      const uint32_t self = Pool().ToId(qnode);
      uint64_t w = word_.load(std::memory_order_relaxed);
      while (TailId(w) == self) {
        const uint64_t desired = w & ~(kIdFieldMask << kTailShift);
        if (word_.compare_exchange_weak(w, desired, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
          return nullptr;  // Indeed no successor.
        }
      }
      // A successor swapped itself in; wait for the link below.
    }
    SpinWait wait;
    QNode* next;
    while ((next = qnode->next.load(std::memory_order_acquire)) == nullptr) {
      wait.Spin();
    }
    return next;
  }

  ModelAtomic<uint64_t> word_{0};
};

static_assert(sizeof(McsRwLock) == 8, "MCS-RW lock must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_MCS_RW_LOCK_H_
