// Ticket lock (paper §8): FIFO-fair like queue-based locks, but still
// centralized — all waiters spin on the shared now-serving counter, so it
// remains vulnerable to collapse under contention. Included as the
// fairness-without-queuing reference point.
#ifndef OPTIQL_LOCKS_TICKET_LOCK_H_
#define OPTIQL_LOCKS_TICKET_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"

namespace optiql {

class OPTIQL_CAPABILITY("mutex") TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void AcquireEx() OPTIQL_ACQUIRE() {
    const uint32_t ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    SpinWait wait;
    while (now_serving_.load(std::memory_order_acquire) != ticket) {
      wait.Spin();
    }
  }

  bool TryAcquireEx() OPTIQL_TRY_ACQUIRE(true) {
    uint32_t serving = now_serving_.load(std::memory_order_acquire);
    uint32_t expected = serving;
    // Only succeeds if no one is waiting: next_ticket == now_serving.
    return next_ticket_.compare_exchange_strong(expected, serving + 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
  }

  void ReleaseEx() OPTIQL_RELEASE() {
    OPTIQL_INVARIANT(next_ticket_.load(std::memory_order_relaxed) !=
                         now_serving_.load(std::memory_order_relaxed),
                     "ticket ReleaseEx with no ticket outstanding "
                     "(double release?)");
    now_serving_.store(now_serving_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
  }

  bool IsLockedEx() const {
    return next_ticket_.load(std::memory_order_acquire) !=
           now_serving_.load(std::memory_order_acquire);
  }

 private:
  ModelAtomic<uint32_t> next_ticket_{0};
  ModelAtomic<uint32_t> now_serving_{0};
};

static_assert(sizeof(TicketLock) == 8, "Ticket lock must fit in 8 bytes");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_TICKET_LOCK_H_
