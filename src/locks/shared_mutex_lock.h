// Wrapper over std::shared_mutex presenting the repo's lock interface
// naming. This is the paper's "pthread" baseline (§7.1): on Linux/libstdc++
// it is pthread_rwlock_t underneath, uses a 56-byte lock word, and expands
// into a queue-based structure in the kernel under contention.
#ifndef OPTIQL_LOCKS_SHARED_MUTEX_LOCK_H_
#define OPTIQL_LOCKS_SHARED_MUTEX_LOCK_H_

#include <shared_mutex>

#include "common/annotations.h"

namespace optiql {

class OPTIQL_CAPABILITY("shared_mutex") SharedMutexLock {
 public:
  SharedMutexLock() = default;
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

  void AcquireEx() OPTIQL_ACQUIRE() { mutex_.lock(); }
  bool TryAcquireEx() OPTIQL_TRY_ACQUIRE(true) { return mutex_.try_lock(); }
  void ReleaseEx() OPTIQL_RELEASE() { mutex_.unlock(); }

  void AcquireSh() OPTIQL_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  bool TryAcquireSh() OPTIQL_TRY_ACQUIRE_SHARED(true) {
    return mutex_.try_lock_shared();
  }
  void ReleaseSh() OPTIQL_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

}  // namespace optiql

#endif  // OPTIQL_LOCKS_SHARED_MUTEX_LOCK_H_
