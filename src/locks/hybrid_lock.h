// Hybrid latch after Böttcher et al., "Scalable and Robust Latches for
// Database Systems" (DaMoN'20) — the paper's reference [6] and the §8
// "pessimistic readers combined with optimistic locks" design point.
//
// A centralized 8-byte lock supporting three access modes:
//   * optimistic read  — snapshot + validate, no shared-memory write;
//   * pessimistic read — a shared counter in the word blocks writers, for
//     readers that keep failing validation under write-heavy contention;
//   * exclusive write  — blocks until no shared readers and no writer.
//
// Word layout: [63] exclusive  [48..62] shared count (15 bits)
//              [0..47] version (48 bits).
//
// Optimistic validation masks out the shared-count field: pessimistic
// readers do not invalidate optimistic ones (data is unchanged), only
// writers do. `ReadCriticalHybrid` packages the adaptive policy the DaMoN
// paper advocates: try optimistically a few times, then fall back.
#ifndef OPTIQL_LOCKS_HYBRID_LOCK_H_
#define OPTIQL_LOCKS_HYBRID_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/backoff.h"
#include "common/check.h"
#include "common/platform.h"

namespace optiql {

class HybridLock {
 public:
  static constexpr uint64_t kExclusiveBit = 1ULL << 63;
  static constexpr int kSharedShift = 48;
  static constexpr uint64_t kSharedOne = 1ULL << kSharedShift;
  static constexpr uint64_t kSharedMask = ((1ULL << 15) - 1) << kSharedShift;
  static constexpr uint64_t kVersionMask = (1ULL << kSharedShift) - 1;

  // Optimistic attempts before a reader falls back to pessimistic mode.
  static constexpr int kOptimisticAttempts = 4;

  HybridLock() = default;
  HybridLock(const HybridLock&) = delete;
  HybridLock& operator=(const HybridLock&) = delete;

  // --- Optimistic reader interface ---

  bool AcquireSh(uint64_t& v) const {
    v = word_.load(std::memory_order_acquire);
    return (v & kExclusiveBit) == 0;
  }

  bool ReleaseSh(uint64_t v) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t now = word_.load(std::memory_order_relaxed);
    // Shared-count churn is invisible to optimistic readers: pessimistic
    // readers do not modify the protected data.
    return (now & ~kSharedMask) == (v & ~kSharedMask);
  }

  // --- Pessimistic reader interface ---

  void AcquireShPessimistic() {
    NoBackoff backoff;
    uint64_t v = word_.load(std::memory_order_relaxed);
    while (true) {
      if ((v & kExclusiveBit) != 0) {
        backoff.Pause();
        v = word_.load(std::memory_order_relaxed);
        continue;
      }
      // Mode-transition legality: one more reader must fit in the 15-bit
      // count; overflowing it would carry into the exclusive bit and
      // fabricate a writer.
      OPTIQL_INVARIANT((v & kSharedMask) != kSharedMask,
                       "hybrid shared-count overflow: more than 2^15-1 "
                       "concurrent pessimistic readers");
      if (word_.compare_exchange_weak(v, v + kSharedOne,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void ReleaseShPessimistic() {
    const uint64_t prev =
        word_.fetch_sub(kSharedOne, std::memory_order_release);
    // A release with no reader registered underflows the count into the
    // version field, silently invalidating every optimistic snapshot.
    OPTIQL_INVARIANT((prev & kSharedMask) != 0,
                     "hybrid ReleaseShPessimistic without a pessimistic "
                     "reader registered");
    (void)prev;
  }

  // --- Exclusive writer interface ---

  void AcquireEx() {
    NoBackoff backoff;
    uint64_t v = word_.load(std::memory_order_relaxed);
    while (true) {
      if ((v & (kExclusiveBit | kSharedMask)) != 0) {
        backoff.Pause();
        v = word_.load(std::memory_order_relaxed);
        continue;
      }
      if (word_.compare_exchange_weak(v, v | kExclusiveBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  bool TryAcquireEx() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & (kExclusiveBit | kSharedMask)) == 0 &&
           word_.compare_exchange_strong(v, v | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  bool TryUpgrade(uint64_t v) {
    if ((v & (kExclusiveBit | kSharedMask)) != 0) return false;
    return word_.compare_exchange_strong(v, v | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void ReleaseEx() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    // Mode-transition legality: only the exclusive state may transition
    // back to free, and exclusive excludes shared readers by acquisition
    // order — a nonzero count here means the word was corrupted.
    OPTIQL_INVARIANT((v & kExclusiveBit) != 0,
                     "hybrid ReleaseEx without holding the lock");
    OPTIQL_INVARIANT((v & kSharedMask) == 0,
                     "hybrid ReleaseEx with pessimistic readers registered");
    word_.store(((v & kVersionMask) + 1) & kVersionMask,
                std::memory_order_release);
  }

  // --- Adaptive read (the hybrid policy) ---
  //
  // Runs `f` under optimistic protection, falling back to pessimistic
  // shared mode after kOptimisticAttempts failed validations. Always
  // succeeds; returns true if the fallback was used (diagnostics).
  template <class F>
  bool ReadCriticalHybrid(F&& f) {
    for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
      uint64_t v;
      if (!AcquireSh(v)) continue;
      f();
      if (ReleaseSh(v)) return false;
    }
    AcquireShPessimistic();
    f();
    ReleaseShPessimistic();
    return true;
  }

  // --- Introspection ---

  bool IsLockedEx() const {
    return (word_.load(std::memory_order_acquire) & kExclusiveBit) != 0;
  }
  uint32_t SharedCount() const {
    return static_cast<uint32_t>(
        (word_.load(std::memory_order_acquire) & kSharedMask) >>
        kSharedShift);
  }
  uint64_t LoadWord() const { return word_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> word_{0};
};

static_assert(sizeof(HybridLock) == 8, "Hybrid lock must be 8 bytes");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_HYBRID_LOCK_H_
