// Hybrid latch after Böttcher et al., "Scalable and Robust Latches for
// Database Systems" (DaMoN'20) — the paper's reference [6] and the §8
// "pessimistic readers combined with optimistic locks" design point.
//
// A centralized 8-byte lock supporting three access modes:
//   * optimistic read  — snapshot + validate, no shared-memory write;
//   * pessimistic read — a shared counter in the word blocks writers, for
//     readers that keep failing validation under write-heavy contention;
//   * exclusive write  — blocks until no shared readers and no writer.
//
// Word layout: [63] exclusive  [48..62] shared count (15 bits)
//              [0..47] version (48 bits).
//
// Optimistic validation masks out the shared-count field: pessimistic
// readers do not invalidate optimistic ones (data is unchanged), only
// writers do. `ReadCriticalHybrid` packages the adaptive policy the DaMoN
// paper advocates: try optimistically a few times, then fall back.
#ifndef OPTIQL_LOCKS_HYBRID_LOCK_H_
#define OPTIQL_LOCKS_HYBRID_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/backoff.h"
#include "common/check.h"
#include "common/model_atomic.h"
#include "common/platform.h"
#include "locks/mcs_lock.h"
#include "qnode/qnode_pool.h"
#include "sync/lock_telemetry.h"

namespace optiql {

class HybridLock {
 public:
  static constexpr uint64_t kExclusiveBit = 1ULL << 63;
  static constexpr int kSharedShift = 48;
  static constexpr uint64_t kSharedOne = 1ULL << kSharedShift;
  static constexpr uint64_t kSharedMask = ((1ULL << 15) - 1) << kSharedShift;
  static constexpr uint64_t kVersionMask = (1ULL << kSharedShift) - 1;

  // Optimistic attempts before a reader falls back to pessimistic mode.
  static constexpr int kOptimisticAttempts = 4;

  HybridLock() = default;
  HybridLock(const HybridLock&) = delete;
  HybridLock& operator=(const HybridLock&) = delete;

  // --- Optimistic reader interface ---

  bool AcquireSh(uint64_t& v) const {
    v = word_.load(std::memory_order_acquire);
    if ((v & kExclusiveBit) != 0) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  bool ReleaseSh(uint64_t v) const {
    ModelThreadFence(std::memory_order_acquire);
    const uint64_t now = word_.load(std::memory_order_relaxed);
    // Shared-count churn is invisible to optimistic readers: pessimistic
    // readers do not modify the protected data.
    if ((now & ~kSharedMask) != (v & ~kSharedMask)) {
      LockTelemetry::Count(LockTelemetry::kOptimisticRestart);
      return false;
    }
    return true;
  }

  // --- Pessimistic reader interface ---

  void AcquireShPessimistic() {
    NoBackoff backoff;
    uint64_t v = word_.load(std::memory_order_relaxed);
    while (true) {
      if ((v & kExclusiveBit) != 0) {
        backoff.Pause();
        v = word_.load(std::memory_order_relaxed);
        continue;
      }
      // Mode-transition legality: one more reader must fit in the 15-bit
      // count; overflowing it would carry into the exclusive bit and
      // fabricate a writer.
      OPTIQL_INVARIANT((v & kSharedMask) != kSharedMask,
                       "hybrid shared-count overflow: more than 2^15-1 "
                       "concurrent pessimistic readers");
      if (word_.compare_exchange_weak(v, v + kSharedOne,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void ReleaseShPessimistic() {
    const uint64_t prev =
        word_.fetch_sub(kSharedOne, std::memory_order_release);
    // A release with no reader registered underflows the count into the
    // version field, silently invalidating every optimistic snapshot.
    OPTIQL_INVARIANT((prev & kSharedMask) != 0,
                     "hybrid ReleaseShPessimistic without a pessimistic "
                     "reader registered");
    (void)prev;
  }

  // --- Exclusive writer interface ---

  void AcquireEx() {
    NoBackoff backoff;
    bool waited = false;
    uint64_t v = word_.load(std::memory_order_relaxed);
    while (true) {
      if ((v & (kExclusiveBit | kSharedMask)) != 0) {
        if (!waited) {
          // Once per contended acquisition, not per spin iteration.
          waited = true;
          LockTelemetry::Count(LockTelemetry::kExclusiveWait);
        }
        backoff.Pause();
        v = word_.load(std::memory_order_relaxed);
        continue;
      }
      if (word_.compare_exchange_weak(v, v | kExclusiveBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  bool TryAcquireEx() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & (kExclusiveBit | kSharedMask)) == 0 &&
           word_.compare_exchange_strong(v, v | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  bool TryUpgrade(uint64_t v) {
    if ((v & (kExclusiveBit | kSharedMask)) != 0) return false;
    return word_.compare_exchange_strong(v, v | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void ReleaseEx() {
    const uint64_t v = word_.load(std::memory_order_relaxed);
    // Mode-transition legality: only the exclusive state may transition
    // back to free, and exclusive excludes shared readers by acquisition
    // order — a nonzero count here means the word was corrupted.
    OPTIQL_INVARIANT((v & kExclusiveBit) != 0,
                     "hybrid ReleaseEx without holding the lock");
    OPTIQL_INVARIANT((v & kSharedMask) == 0,
                     "hybrid ReleaseEx with pessimistic readers registered");
    word_.store(((v & kVersionMask) + 1) & kVersionMask,
                std::memory_order_release);
  }

  // --- Adaptive read (the hybrid policy) ---
  //
  // Runs `f` under optimistic protection, falling back to pessimistic
  // shared mode after kOptimisticAttempts failed validations. Always
  // succeeds; returns true if the fallback was used (diagnostics).
  template <class F>
  bool ReadCriticalHybrid(F&& f) {
    for (int attempt = 0; attempt < kOptimisticAttempts; ++attempt) {
      uint64_t v;
      if (!AcquireSh(v)) continue;
      f();
      if (ReleaseSh(v)) return false;
    }
    LockTelemetry::Count(LockTelemetry::kPessimisticFallback);
    AcquireShPessimistic();
    f();
    ReleaseShPessimistic();
    return true;
  }

  // --- Introspection ---

  bool IsLockedEx() const {
    return (word_.load(std::memory_order_acquire) & kExclusiveBit) != 0;
  }
  uint32_t SharedCount() const {
    return static_cast<uint32_t>(
        (word_.load(std::memory_order_acquire) & kSharedMask) >>
        kSharedShift);
  }
  uint64_t LoadWord() const { return word_.load(std::memory_order_acquire); }

 private:
  ModelAtomic<uint64_t> word_{0};
};

static_assert(sizeof(HybridLock) == 8, "Hybrid lock must be 8 bytes");

// Contention-adaptive hybrid lock (ISSUE 6 tentpole (a), after the TXSQL
// observation that hot-row-specific treatment beats any global policy).
//
// HybridLock's fixed policy — always try kOptimisticAttempts optimistic
// reads, then go pessimistic — pays the full restart tax on every read of a
// hot node and the fallback tax on every read of a cold one that happened
// to collide once. AdaptiveHybridLock replaces that per-*read* policy with
// a per-*node* mode driven by observed behavior:
//
//           restarts/waits (score rises)
//   optimistic ──≥16──► pessimistic-read ──≥48──► queued writers
//   optimistic ◄──≤8── pessimistic-read ◄──≤24── queued writers
//           clean operations (score drains)
//
// A saturating contention score (0..kScoreCap) lives in one 32-bit word
// next to the mode. Failed validations add kRestartWeight, contended
// exclusive acquisitions add kWaitWeight, clean operations subtract 1
// (readers sampled 1-in-8 so the optimistic fast path stays write-free).
// The promote/demote thresholds are deliberately offset (16/8 and 48/24):
// a node sitting at the boundary does not flap, it converts once and
// converts back only after the score drains well below the promote point.
//
// Modes:
//  * kOptimistic       — reads snapshot+validate; writers CAS the word.
//  * kPessimisticRead  — reads take the shared count (no restart storms);
//                        writers still CAS. Entered when readers keep
//                        failing validation.
//  * kQueued           — additionally, writers funnel through an MCS gate
//                        (FIFO, local spinning) so the word sees one writer
//                        CAS per handover instead of a thundering herd.
//                        Entered when writers keep colliding.
//
// The mode word is advisory: every interleaving of modes is safe because
// the underlying HybridLock word remains the single source of exclusion
// (the gate only orders writers that chose to use it). Wrong-mode
// operation costs throughput, never correctness.
class AdaptiveHybridLock {
 public:
  enum class Mode : uint32_t {
    kOptimistic = 0,
    kPessimisticRead = 1,
    kQueued = 2,
  };

  // Score weights and hysteresis thresholds. Promote points sit well above
  // demote points so a borderline node converts once per contention episode.
  static constexpr uint32_t kScoreCap = 96;
  static constexpr uint32_t kRestartWeight = 2;
  static constexpr uint32_t kWaitWeight = 4;
  static constexpr uint32_t kPromotePessimistic = 16;
  static constexpr uint32_t kPromoteQueued = 48;
  static constexpr uint32_t kDemoteQueued = 24;
  static constexpr uint32_t kDemoteOptimistic = 8;
  // Optimistic attempts per read while in kOptimistic mode (matches the
  // fixed HybridLock policy so the cold-node fast path is identical).
  static constexpr int kMaxOptimisticAttempts = HybridLock::kOptimisticAttempts;
  // Clean reads credit the score 1-in-kCreditSampleMask+1 so the optimistic
  // fast path writes nothing on most reads.
  static constexpr uint32_t kCreditSampleMask = 7;

  AdaptiveHybridLock() = default;
  AdaptiveHybridLock(const AdaptiveHybridLock&) = delete;
  AdaptiveHybridLock& operator=(const AdaptiveHybridLock&) = delete;

  // --- Adaptive read ---
  //
  // Runs `f` under the mode the node has converged to. Returns true if the
  // read was served pessimistically (diagnostics, mirrors
  // HybridLock::ReadCriticalHybrid).
  template <class F>
  bool ReadCritical(F&& f) {
    if (ModeRelaxed() == Mode::kOptimistic) {
      for (int attempt = 0; attempt < kMaxOptimisticAttempts; ++attempt) {
        uint64_t v;
        if (core_.AcquireSh(v)) {
          f();
          if (core_.ReleaseSh(v)) {
            MaybeCredit();
            return false;
          }
        }
        Penalize(kRestartWeight);
        if (ModeRelaxed() != Mode::kOptimistic) break;
      }
    }
    return ReadPessimistic(f);
  }

  // --- Exclusive writer interface ---
  //
  // Returns true when the acquisition went through the MCS gate; the caller
  // must pass that flag back to ReleaseEx. `qnode` must stay owned by this
  // thread until the matching ReleaseEx returns (it is only touched when
  // the gate is used).
  bool AcquireEx(QNode* qnode) {
    if (ModeRelaxed() != Mode::kQueued) {
      if (core_.TryAcquireEx()) {
        MaybeCredit();
        return false;
      }
      return AcquireExSlow(qnode, /*collided=*/true);
    }
    return AcquireExSlow(qnode, /*collided=*/false);
  }

  void ReleaseEx(QNode* qnode, bool via_gate) {
    if (via_gate) {
      // An empty gate queue at release time means writer pressure drained:
      // credit the score so the node can work its way back down.
      const bool drained =
          qnode->next.load(std::memory_order_acquire) == nullptr;
      core_.ReleaseEx();
      gate_.ReleaseEx(qnode);
      if (drained) Credit();
      return;
    }
    core_.ReleaseEx();
  }

  // Non-blocking probe acquisition (word only, never the gate). A failure
  // is a writer collision and feeds the score like a contended AcquireEx.
  bool TryAcquireEx() {
    if (core_.TryAcquireEx()) return true;
    LockTelemetry::Count(LockTelemetry::kExclusiveWait);
    Penalize(kWaitWeight);
    return false;
  }

  // Pairs with a successful TryAcquireEx (gate never entered).
  void ReleaseEx() { core_.ReleaseEx(); }

  // --- Introspection ---

  Mode CurrentMode() const {
    return static_cast<Mode>(ModeOf(state_.load(std::memory_order_acquire)));
  }
  uint32_t ContentionScore() const {
    return ScoreOf(state_.load(std::memory_order_acquire));
  }
  bool IsLockedEx() const { return core_.IsLockedEx(); }
  uint32_t SharedCount() const { return core_.SharedCount(); }
  uint64_t LoadWord() const { return core_.LoadWord(); }

 private:
  static constexpr uint32_t kScoreMask = 0xffu;
  static constexpr int kModeShift = 8;

  static uint32_t ScoreOf(uint32_t s) { return s & kScoreMask; }
  static uint32_t ModeOf(uint32_t s) { return s >> kModeShift; }
  static uint32_t Pack(uint32_t mode, uint32_t score) {
    return (mode << kModeShift) | score;
  }

  // Hot-path mode probe. Relaxed is enough: the mode is a routing
  // heuristic, and every synchronizing edge comes from the core word (or
  // the gate) — a stale mode read only picks a slightly suboptimal path.
  Mode ModeRelaxed() const {
    return static_cast<Mode>(ModeOf(state_.load(std::memory_order_relaxed)));
  }

  // Pessimistic shared read: also the read path in kQueued mode (only
  // writers queue; readers on the shared count already spin locally enough
  // and must not wait behind unrelated writers). Out of line so the
  // optimistic read loop above stays small enough to inline into callers.
  template <class F>
  [[gnu::noinline]] bool ReadPessimistic(F& f) {
    LockTelemetry::Count(LockTelemetry::kPessimisticFallback);
    core_.AcquireShPessimistic();
    f();
    core_.ReleaseShPessimistic();
    MaybeCredit();
    return true;
  }

  // Contended / queued-mode writer acquisition. `collided` records that the
  // caller's fast probe already failed, which must penalize exactly like
  // the first failed probe of this loop would have.
  [[gnu::noinline]] bool AcquireExSlow(QNode* qnode, bool collided) {
    NoBackoff backoff;
    bool waited = false;
    if (collided) {
      waited = true;
      LockTelemetry::Count(LockTelemetry::kExclusiveWait);
      Penalize(kWaitWeight);
    }
    while (true) {
      if (ModeRelaxed() == Mode::kQueued) {
        gate_.AcquireEx(qnode);
        // The gate serializes writers FIFO; pessimistic readers still hold
        // the word's shared count, so spin for the word after the grant.
        while (!core_.TryAcquireEx()) backoff.Pause();
        return true;
      }
      if (core_.TryAcquireEx()) {
        if (!waited) MaybeCredit();
        return false;
      }
      if (!waited) {
        // Penalize once per contended acquisition, not per spin.
        waited = true;
        LockTelemetry::Count(LockTelemetry::kExclusiveWait);
        Penalize(kWaitWeight);
      }
      backoff.Pause();
    }
  }

  // Raises the score and escalates the mode past any promote threshold the
  // new score crosses. Modes only rise here; only Credit() lowers them.
  [[gnu::cold]] void Penalize(uint32_t weight) {
    uint32_t s = state_.load(std::memory_order_relaxed);
    while (true) {
      const uint32_t score = ScoreOf(s);
      const uint32_t mode = ModeOf(s);
      const uint32_t nscore =
          score + weight > kScoreCap ? kScoreCap : score + weight;
      uint32_t nmode = mode;
      if (nscore >= kPromoteQueued) {
        nmode = static_cast<uint32_t>(Mode::kQueued);
      } else if (nscore >= kPromotePessimistic &&
                 mode == static_cast<uint32_t>(Mode::kOptimistic)) {
        nmode = static_cast<uint32_t>(Mode::kPessimisticRead);
      }
      if (nmode < mode) nmode = mode;
      if (state_.compare_exchange_weak(s, Pack(nmode, nscore),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        if (nmode != mode) {
          LockTelemetry::Count(LockTelemetry::kModeEscalation);
        }
        return;
      }
    }
  }

  // Drains one unit of score and demotes one mode level when the score
  // falls to the (lower) demote threshold. The score==0 fast path is a
  // plain load so converged-cold nodes see no shared-memory write.
  [[gnu::noinline]] void Credit() {
    uint32_t s = state_.load(std::memory_order_relaxed);
    while (true) {
      const uint32_t score = ScoreOf(s);
      const uint32_t mode = ModeOf(s);
      if (score == 0 && mode == static_cast<uint32_t>(Mode::kOptimistic)) {
        return;
      }
      const uint32_t nscore = score > 0 ? score - 1 : 0;
      uint32_t nmode = mode;
      if (mode == static_cast<uint32_t>(Mode::kQueued) &&
          nscore <= kDemoteQueued) {
        nmode = static_cast<uint32_t>(Mode::kPessimisticRead);
      } else if (mode == static_cast<uint32_t>(Mode::kPessimisticRead) &&
                 nscore <= kDemoteOptimistic) {
        nmode = static_cast<uint32_t>(Mode::kOptimistic);
      }
      if (state_.compare_exchange_weak(s, Pack(nmode, nscore),
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        if (nmode != mode) {
          LockTelemetry::Count(LockTelemetry::kModeDeescalation);
        }
        return;
      }
    }
  }

  // Sampled credit: 1 in (kCreditSampleMask+1) clean operations per thread
  // touch the score word, so the optimistic read fast path stays read-only
  // in the common case.
  void MaybeCredit() {
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // The thread_local tick persists across model executions, making the
    // credit sample depend on exploration history. Credit every time: the
    // sampling is a throughput optimization, not protocol.
    Credit();
#else
    thread_local uint32_t tick = 0;
    if ((++tick & kCreditSampleMask) != 0) return;
    Credit();
#endif
  }

 public:
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
  // Model-only: preset the advisory mode/score so scenarios can start in
  // kQueued directly. Organic promotion needs ~a dozen collisions — far
  // deeper than an exhaustive 2–3-thread program can reach.
  void ModelSetState(Mode mode, uint32_t score) {
    state_.store(Pack(static_cast<uint32_t>(mode), score),
                 std::memory_order_relaxed);
  }
#endif

 private:
  HybridLock core_;                  // The word: single source of exclusion.
  McsLock gate_;                     // FIFO writer gate (kQueued mode only).
  ModelAtomic<uint32_t> state_{0};   // [8..9] mode, [0..7] saturating score.
};

}  // namespace optiql

#endif  // OPTIQL_LOCKS_HYBRID_LOCK_H_
