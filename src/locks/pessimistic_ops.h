// Uniform pessimistic-lock facade used by the lock-coupling index variants
// (B+-tree and ART baselines). `slot` selects a thread-local queue node for
// queue-based locks; coupling alternates slots 0/1 by depth (parent+child)
// and uses slot 2 for the sibling during delete-time rebalancing.
#ifndef OPTIQL_LOCKS_PESSIMISTIC_OPS_H_
#define OPTIQL_LOCKS_PESSIMISTIC_OPS_H_

#include "common/annotations.h"
#include "locks/shared_mutex_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {
namespace internal {

// The annotations forward the capability through the facade: TSA sees
// `PessimisticOps<L>::AcquireSh(lock, slot)` acquire `lock` itself, so
// callers are checked exactly as if they had called the lock directly.
// (Both instantiations — McsRwLock and SharedMutexLock — are annotated
// capabilities, so the attributes always name a capability type.)
template <class Lock>
struct PessimisticOps {
  static void AcquireSh(Lock& lock, int slot) OPTIQL_ACQUIRE_SHARED(lock) {
    lock.AcquireSh(ThreadQNodes::Get(slot));
  }
  static void ReleaseSh(Lock& lock, int slot) OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseSh(ThreadQNodes::Get(slot));
  }
  static void AcquireEx(Lock& lock, int slot) OPTIQL_ACQUIRE(lock) {
    lock.AcquireEx(ThreadQNodes::Get(slot));
  }
  static void ReleaseEx(Lock& lock, int slot) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx(ThreadQNodes::Get(slot));
  }
};

template <>
struct PessimisticOps<SharedMutexLock> {
  static void AcquireSh(SharedMutexLock& lock, int)
      OPTIQL_ACQUIRE_SHARED(lock) {
    lock.AcquireSh();
  }
  static void ReleaseSh(SharedMutexLock& lock, int)
      OPTIQL_RELEASE_SHARED(lock) {
    lock.ReleaseSh();
  }
  static void AcquireEx(SharedMutexLock& lock, int) OPTIQL_ACQUIRE(lock) {
    lock.AcquireEx();
  }
  static void ReleaseEx(SharedMutexLock& lock, int) OPTIQL_RELEASE(lock) {
    lock.ReleaseEx();
  }
};

}  // namespace internal
}  // namespace optiql

#endif  // OPTIQL_LOCKS_PESSIMISTIC_OPS_H_
