// Uniform pessimistic-lock facade used by the lock-coupling index variants
// (B+-tree and ART baselines). `slot` selects a thread-local queue node for
// queue-based locks; coupling alternates slots 0/1 by depth (parent+child)
// and uses slot 2 for the sibling during delete-time rebalancing.
#ifndef OPTIQL_LOCKS_PESSIMISTIC_OPS_H_
#define OPTIQL_LOCKS_PESSIMISTIC_OPS_H_

#include "locks/shared_mutex_lock.h"
#include "qnode/qnode_pool.h"

namespace optiql {
namespace internal {

template <class Lock>
struct PessimisticOps {
  static void AcquireSh(Lock& lock, int slot) {
    lock.AcquireSh(ThreadQNodes::Get(slot));
  }
  static void ReleaseSh(Lock& lock, int slot) {
    lock.ReleaseSh(ThreadQNodes::Get(slot));
  }
  static void AcquireEx(Lock& lock, int slot) {
    lock.AcquireEx(ThreadQNodes::Get(slot));
  }
  static void ReleaseEx(Lock& lock, int slot) {
    lock.ReleaseEx(ThreadQNodes::Get(slot));
  }
};

template <>
struct PessimisticOps<SharedMutexLock> {
  static void AcquireSh(SharedMutexLock& lock, int) { lock.AcquireSh(); }
  static void ReleaseSh(SharedMutexLock& lock, int) { lock.ReleaseSh(); }
  static void AcquireEx(SharedMutexLock& lock, int) { lock.AcquireEx(); }
  static void ReleaseEx(SharedMutexLock& lock, int) { lock.ReleaseEx(); }
};

}  // namespace internal
}  // namespace optiql

#endif  // OPTIQL_LOCKS_PESSIMISTIC_OPS_H_
