// Test-and-test-and-set spinlock (paper Figure 2(a)). The ancestor of the
// centralized optimistic lock: writers spin reading the word and attempt a
// CAS only when it looks free. Kept at 8 bytes to match the paper's setup.
#ifndef OPTIQL_LOCKS_TTS_LOCK_H_
#define OPTIQL_LOCKS_TTS_LOCK_H_

#include <atomic>
#include <cstdint>

#include "common/annotations.h"
#include "common/backoff.h"
#include "common/check.h"
#include "common/model_atomic.h"

namespace optiql {

// `BackoffPolicy` is NoBackoff (paper's default TTS) or ExponentialBackoff.
template <class BackoffPolicy = NoBackoff>
class OPTIQL_CAPABILITY("mutex") BasicTtsLock {
 public:
  BasicTtsLock() = default;
  BasicTtsLock(const BasicTtsLock&) = delete;
  BasicTtsLock& operator=(const BasicTtsLock&) = delete;

  void AcquireEx() OPTIQL_ACQUIRE() {
    BackoffPolicy backoff;
    while (true) {
      if (word_.load(std::memory_order_relaxed) == kUnlocked &&
          TryAcquireEx()) {
        return;
      }
      backoff.Pause();
    }
  }

  bool TryAcquireEx() OPTIQL_TRY_ACQUIRE(true) {
    uint64_t expected = kUnlocked;
    return word_.compare_exchange_strong(expected, kLocked,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void ReleaseEx() OPTIQL_RELEASE() {
    OPTIQL_INVARIANT(word_.load(std::memory_order_relaxed) == kLocked,
                     "TTS ReleaseEx on an unlocked word (double release?)");
    word_.store(kUnlocked, std::memory_order_release);
  }

  bool IsLockedEx() const {
    return word_.load(std::memory_order_acquire) == kLocked;
  }

 private:
  static constexpr uint64_t kUnlocked = 0;
  static constexpr uint64_t kLocked = 1;

  ModelAtomic<uint64_t> word_{kUnlocked};
};

using TtsLock = BasicTtsLock<NoBackoff>;
using TtsBackoffLock = BasicTtsLock<ExponentialBackoff>;

static_assert(sizeof(TtsLock) == 8, "TTS lock must be one 8-byte word");

}  // namespace optiql

#endif  // OPTIQL_LOCKS_TTS_LOCK_H_
