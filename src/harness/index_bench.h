// PiBench-style index benchmark framework (§7.1, §7.3): preload an index
// with N records of 8-byte keys/values, then run a fixed-duration mix of
// lookups/updates/inserts/removes with a configurable key distribution
// (uniform or self-similar) over a dense or sparse key space.
//
// Works with anything satisfying IndexLike (see index/index_ops.h): the
// B+-tree, ART, the hash table, and composites like ShardedStore all run
// through the uniform IndexInsert/IndexUpdate/IndexLookup/IndexRemove
// surface.
#ifndef OPTIQL_HARNESS_INDEX_BENCH_H_
#define OPTIQL_HARNESS_INDEX_BENCH_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "harness/bench_runner.h"
#include "index/index_ops.h"
#include "workload/distributions.h"
#include "workload/key_generator.h"

namespace optiql {

struct IndexWorkload {
  uint64_t records = 200000;
  // Operation mix in percent; must sum to 100.
  int lookup_pct = 100;
  int update_pct = 0;
  int insert_pct = 0;
  int remove_pct = 0;

  enum class Distribution { kUniform, kSelfSimilar };
  Distribution distribution = Distribution::kUniform;
  double skew = 0.2;  // Self-similar skew factor (80/20 at 0.2).

  KeySpace key_space = KeySpace::kDense;

  // Fixed-population churn mode: insert and remove arms both target the
  // preloaded key range [0, records) instead of an ever-growing fresh
  // range, so the live population oscillates around the preload. This is
  // the steady-state regime for delete-time merge experiments — without
  // merges the node count grows without bound under such a mix.
  bool fixed_population = false;

  // Batch mode: > 1 groups ops into batches of this size and issues them
  // through the batched surface (IndexLookupBatch & friends) — one epoch
  // guard and, where the index supports it, one interleaved descent group
  // per batch. Each completed key counts as one op. Batched updates go
  // through IndexUpsertBatch (the batched surface has no failing update);
  // removes have no batched form and loop singles.
  int batch = 1;

  int threads = 4;
  int duration_ms = 200;
  uint32_t latency_sampling = 0;  // 0 = no latency collection.
};

// Named op mixes from §7.3.
struct OpMix {
  const char* name;
  int lookup_pct;
  int update_pct;
};

inline constexpr OpMix kPaperOpMixes[] = {
    {"Read-only", 100, 0},   {"Read-heavy", 80, 20}, {"Balanced", 50, 50},
    {"Write-heavy", 20, 80}, {"Update-only", 0, 100},
};

// Loads `records` keys under the configured key space, bulk-loading when
// the index supports it.
template <IndexLike Tree>
void PreloadIndex(Tree& tree, const IndexWorkload& workload) {
  if constexpr (HasBulkLoadOp<Tree>) {
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    pairs.reserve(workload.records);
    for (uint64_t i = 0; i < workload.records; ++i) {
      const uint64_t key = MakeKey(i, workload.key_space);
      pairs.emplace_back(key, key + 1);
    }
    std::sort(pairs.begin(), pairs.end());
    tree.BulkLoad(pairs);
    return;
  }
  for (uint64_t i = 0; i < workload.records; ++i) {
    const uint64_t key = MakeKey(i, workload.key_space);
    OPTIQL_CHECK(IndexInsert(tree, key, key + 1));
  }
}

// Batch-mode worker loop: draws `batch` keys per iteration, rolls the op
// arm once per batch, and issues one batched call. Shares the mix/key
// semantics of the single-op loop (fresh-range inserts, wrap-around
// removes, fixed-population churn).
template <IndexLike Tree>
RunResult RunIndexBenchBatched(Tree& tree, const IndexWorkload& workload) {
  RunOptions options;
  options.threads = workload.threads;
  options.duration_ms = workload.duration_ms;
  options.latency_sampling = workload.latency_sampling;
  const size_t batch = static_cast<size_t>(workload.batch);

  std::atomic<uint64_t> next_fresh{workload.records};
  const UniformDistribution uniform(workload.records);
  const SelfSimilarDistribution selfsim(workload.records,
                                        workload.skew > 0 ? workload.skew
                                                          : 0.2);

  return RunFixedDuration(options, [&](int tid,
                                       const std::atomic<bool>& stop,
                                       WorkerStats& stats) {
    Xoshiro256 rng(0xABCDULL * 31 + static_cast<uint64_t>(tid));
    std::vector<uint64_t> keys(batch);
    std::vector<uint64_t> values(batch);
    const std::unique_ptr<bool[]> found(new bool[batch]);
    const bool sample_latency = workload.latency_sampling > 0;
    uint64_t until_sample = workload.latency_sampling;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t op = rng.NextBounded(100);
      const bool fresh_insert =
          op >= static_cast<uint64_t>(workload.lookup_pct +
                                      workload.update_pct) &&
          op < static_cast<uint64_t>(workload.lookup_pct +
                                     workload.update_pct +
                                     workload.insert_pct) &&
          !workload.fixed_population;
      for (size_t i = 0; i < batch; ++i) {
        if (fresh_insert) {
          keys[i] = MakeKey(next_fresh.fetch_add(1, std::memory_order_relaxed),
                            workload.key_space);
        } else {
          const uint64_t index =
              workload.distribution == IndexWorkload::Distribution::kUniform
                  ? uniform.Next(rng)
                  : selfsim.Next(rng);
          keys[i] = MakeKey(index, workload.key_space);
        }
      }

      std::chrono::steady_clock::time_point start;
      bool timed = false;
      if (sample_latency && --until_sample == 0) {
        until_sample = workload.latency_sampling;
        start = std::chrono::steady_clock::now();
        timed = true;
      }

      if (op < static_cast<uint64_t>(workload.lookup_pct)) {
        IndexLookupBatch(tree, keys.data(), batch, values.data(),
                         found.get());
      } else if (op < static_cast<uint64_t>(workload.lookup_pct +
                                            workload.update_pct)) {
        for (size_t i = 0; i < batch; ++i) values[i] = rng.Next() | 1;
        IndexUpsertBatch(tree, keys.data(), values.data(), batch);
      } else if (op < static_cast<uint64_t>(workload.lookup_pct +
                                            workload.update_pct +
                                            workload.insert_pct)) {
        for (size_t i = 0; i < batch; ++i) values[i] = keys[i] + 1;
        IndexInsertBatch(tree, keys.data(), values.data(), batch,
                         found.get());
      } else {
        // Removes stay single-op (no batched form); fixed-population mode
        // targets the drawn keys, the default mode wraps into the fresh
        // range like the single-op loop.
        for (size_t i = 0; i < batch; ++i) {
          uint64_t target_key = keys[i];
          if (!workload.fixed_population) {
            const uint64_t target =
                workload.records +
                rng.NextBounded(std::max<uint64_t>(
                    1, next_fresh.load(std::memory_order_relaxed) -
                           workload.records));
            target_key = MakeKey(target, workload.key_space);
          }
          IndexRemove(tree, target_key);
        }
      }

      if (timed) {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        stats.latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
      }
      stats.ops += batch;
    }
  });
}

// Runs the configured mix against a preloaded index.
template <IndexLike Tree>
RunResult RunIndexBench(Tree& tree, const IndexWorkload& workload) {
  OPTIQL_CHECK(workload.lookup_pct + workload.update_pct +
                   workload.insert_pct + workload.remove_pct ==
               100);
  OPTIQL_CHECK(workload.batch >= 1);
  if (workload.batch > 1) {
    return RunIndexBenchBatched(tree, workload);
  }
  RunOptions options;
  options.threads = workload.threads;
  options.duration_ms = workload.duration_ms;
  options.latency_sampling = workload.latency_sampling;

  // Inserts target fresh record indexes beyond the preload; removes target
  // previously inserted ones so the tree size stays roughly stable.
  std::atomic<uint64_t> next_fresh{workload.records};

  const UniformDistribution uniform(workload.records);
  const SelfSimilarDistribution selfsim(workload.records,
                                        workload.skew > 0 ? workload.skew
                                                          : 0.2);

  return RunFixedDuration(options, [&](int tid,
                                       const std::atomic<bool>& stop,
                                       WorkerStats& stats) {
    Xoshiro256 rng(0xABCDULL * 31 + static_cast<uint64_t>(tid));
    const bool sample_latency = workload.latency_sampling > 0;
    uint64_t until_sample = workload.latency_sampling;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t index =
          workload.distribution == IndexWorkload::Distribution::kUniform
              ? uniform.Next(rng)
              : selfsim.Next(rng);
      const uint64_t key = MakeKey(index, workload.key_space);
      const uint64_t op = rng.NextBounded(100);

      std::chrono::steady_clock::time_point start;
      bool timed = false;
      if (sample_latency && --until_sample == 0) {
        until_sample = workload.latency_sampling;
        start = std::chrono::steady_clock::now();
        timed = true;
      }

      if (op < static_cast<uint64_t>(workload.lookup_pct)) {
        uint64_t out = 0;
        IndexLookup(tree, key, out);
      } else if (op < static_cast<uint64_t>(workload.lookup_pct +
                                            workload.update_pct)) {
        IndexUpdate(tree, key, rng.Next() | 1);
      } else if (op < static_cast<uint64_t>(workload.lookup_pct +
                                            workload.update_pct +
                                            workload.insert_pct)) {
        if (workload.fixed_population) {
          // Re-insert within the preload range; duplicates fail and count
          // as completed ops, keeping the population near `records`.
          IndexInsert(tree, key, index);
        } else {
          const uint64_t fresh =
              next_fresh.fetch_add(1, std::memory_order_relaxed);
          IndexInsert(tree, MakeKey(fresh, workload.key_space), fresh);
        }
      } else if (workload.fixed_population) {
        // Remove within the preload range; misses are fine.
        IndexRemove(tree, key);
      } else {
        // Remove a key inserted by the insert arm (wraps back into the
        // fresh range); misses are fine and counted as completed ops.
        const uint64_t target =
            workload.records +
            rng.NextBounded(
                std::max<uint64_t>(
                    1, next_fresh.load(std::memory_order_relaxed) -
                           workload.records));
        IndexRemove(tree, MakeKey(target, workload.key_space));
      }

      if (timed) {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        stats.latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
      }
      ++stats.ops;
    }
  });
}

}  // namespace optiql

#endif  // OPTIQL_HARNESS_INDEX_BENCH_H_
