// Fixed-size log-linear latency histogram (HdrHistogram-style): 64 power-of-
// two major buckets, each split into 32 linear minor buckets, giving a
// relative error bound of 1/32 (~3%) across the full uint64 range. Used for
// the paper's tail-latency experiments (Figure 12).
#ifndef OPTIQL_HARNESS_HISTOGRAM_H_
#define OPTIQL_HARNESS_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace optiql {

class Histogram {
 public:
  static constexpr int kMajorBuckets = 64;
  static constexpr int kMinorBits = 5;
  static constexpr int kMinorBuckets = 1 << kMinorBits;

  Histogram() : counts_(kMajorBuckets * kMinorBuckets, 0) {}

  void Record(uint64_t value) {
    ++counts_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  void Merge(const Histogram& other) {
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  // Returns the upper bound of the bucket containing the q-quantile
  // (0 <= q <= 1). Returns 0 for an empty histogram.
  uint64_t ValueAtQuantile(double q) const {
    if (count_ == 0) return 0;
    const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > rank || (q >= 1.0 && seen == count_)) {
        return BucketUpperBound(i);
      }
    }
    return max_;
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  void Reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
  }

 private:
  static size_t BucketIndex(uint64_t value) {
    if (value < kMinorBuckets) return static_cast<size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int major = msb - kMinorBits + 1;
    const uint64_t minor = (value >> (msb - kMinorBits)) & (kMinorBuckets - 1);
    return static_cast<size_t>(major) * kMinorBuckets +
           static_cast<size_t>(minor);
  }

  static uint64_t BucketUpperBound(size_t index) {
    const uint64_t major = index >> kMinorBits;
    const uint64_t minor = index & (kMinorBuckets - 1);
    if (major == 0) return minor;
    // Bucket [major][minor] covers values with MSB at position
    // major + kMinorBits - 1 and the next kMinorBits bits equal to minor.
    const int msb = static_cast<int>(major) + kMinorBits - 1;
    const uint64_t base = (1ULL << msb) | (minor << (msb - kMinorBits));
    return base + (1ULL << (msb - kMinorBits)) - 1;
  }

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace optiql

#endif  // OPTIQL_HARNESS_HISTOGRAM_H_
