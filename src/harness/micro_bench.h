// The paper's lock microbenchmark framework (§7.1): each thread issues
// acquire/release requests against a set of pre-allocated locks chosen
// uniformly at random; the critical section increments a volatile stack
// variable a configurable number of times (default 50). Contention is
// controlled by the number of locks: 1 (extreme), 5 (high), 30000 (medium),
// 1M (low), or one lock per thread ("no contention").
//
// Reads follow the optimistic protocol of the lock under test and retry
// until they validate (§7.2); attempts and successes are recorded
// separately so Table 1's reader success rates can be reproduced.
#ifndef OPTIQL_HARNESS_MICRO_BENCH_H_
#define OPTIQL_HARNESS_MICRO_BENCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/platform.h"
#include "common/random.h"
#include "harness/bench_runner.h"
#include "harness/lock_adapters.h"

namespace optiql {

struct MicroBenchConfig {
  size_t num_locks = 5;
  int read_pct = 0;       // Percentage of operations that are reads.
  int cs_length = 50;     // Volatile increments inside the critical section.
  int threads = 4;
  int duration_ms = 200;
  uint32_t latency_sampling = 0;
};

// Contention levels used throughout §7.2, keyed by the paper's names.
struct ContentionLevel {
  const char* name;
  size_t num_locks;  // 0 = one lock per thread ("no contention").
};

inline constexpr ContentionLevel kContentionLevels[] = {
    {"extreme", 1},
    {"high", 5},
    {"medium", 30000},
    {"low", 1000000},
    {"none", 0},
};

inline void CriticalSectionWork(int cs_length) {
  volatile int work = 0;
  for (int i = 0; i < cs_length; ++i) {
    work = work + 1;
  }
}

template <class Lock>
RunResult RunLockMicroBench(const MicroBenchConfig& config) {
  using Ops = LockOps<Lock>;
  struct OPTIQL_CACHELINE_ALIGNED PaddedLock {
    Lock lock;
  };
  const size_t num_locks = config.num_locks == 0
                               ? static_cast<size_t>(config.threads)
                               : config.num_locks;
  std::vector<PaddedLock> locks(num_locks);

  RunOptions options;
  options.threads = config.threads;
  options.duration_ms = config.duration_ms;
  options.latency_sampling = config.latency_sampling;

  return RunFixedDuration(options, [&](int tid,
                                       const std::atomic<bool>& stop,
                                       WorkerStats& stats) {
    Xoshiro256 rng(0x5eedULL * 7919 + static_cast<uint64_t>(tid));
    typename Ops::Ctx ctx;
    const bool per_thread_lock = config.num_locks == 0;
    while (!stop.load(std::memory_order_acquire)) {
      Lock& lock =
          per_thread_lock
              ? locks[static_cast<size_t>(tid)].lock
              : locks[rng.NextBounded(num_locks)].lock;
      const bool is_read =
          config.read_pct > 0 &&
          rng.NextBounded(100) < static_cast<uint64_t>(config.read_pct);
      if (is_read) {
        if constexpr (Ops::kHasSharedMode) {
          // Retry until the read validates (or the run ends).
          while (true) {
            ++stats.reads_attempted;
            const bool ok = Ops::ReadCritical(
                lock, ctx, [&] { CriticalSectionWork(config.cs_length); });
            if (ok) {
              ++stats.reads_ok;
              ++stats.ops;
              break;
            }
            ++stats.aborts;
            if (stop.load(std::memory_order_acquire)) break;
          }
        }
      } else {
        Ops::AcquireEx(lock, ctx);
        CriticalSectionWork(config.cs_length);
        Ops::ReleaseEx(lock, ctx);
        ++stats.ops;
      }
    }
  });
}

}  // namespace optiql

#endif  // OPTIQL_HARNESS_MICRO_BENCH_H_
