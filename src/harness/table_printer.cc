#include "harness/table_printer.h"

#include <cstdio>
#include <utility>

namespace optiql {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };

  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace optiql
