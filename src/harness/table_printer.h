// Plain-text aligned table output for the benchmark binaries: each bench
// prints the same rows/series the paper's figures and tables report.
#ifndef OPTIQL_HARNESS_TABLE_PRINTER_H_
#define OPTIQL_HARNESS_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace optiql {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Formats a double with `precision` digits after the point.
  static std::string Fmt(double value, int precision = 2);

  // Prints the table to stdout with aligned columns.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace optiql

#endif  // OPTIQL_HARNESS_TABLE_PRINTER_H_
