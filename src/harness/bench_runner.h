// Fixed-duration multithreaded benchmark runner (PiBench-style, §7.1): it
// spawns worker threads, releases them through a barrier, lets them run for
// a fixed wall-clock duration, then gathers per-thread operation counts,
// abort counts and optional latency histograms.
#ifndef OPTIQL_HARNESS_BENCH_RUNNER_H_
#define OPTIQL_HARNESS_BENCH_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "harness/histogram.h"

namespace optiql {

struct RunOptions {
  int threads = 4;
  int duration_ms = 300;
  // Pin worker i to CPU (i % cores). A no-op when pinning fails (e.g., more
  // threads than cores is fine; restricted cpusets are not fatal).
  bool pin_threads = true;
  // Sample one latency measurement every `latency_sampling` operations;
  // 0 disables latency collection.
  uint32_t latency_sampling = 0;
};

// Per-thread benchmark state handed to the worker function.
struct WorkerStats {
  uint64_t ops = 0;       // Completed operations.
  uint64_t aborts = 0;    // Failed optimistic attempts / retries.
  uint64_t reads_ok = 0;  // Successful read operations (for Table 1).
  uint64_t reads_attempted = 0;
  // ThreadRegistry ID of the worker thread (filled in by the runner): the
  // same ID that keys the epoch slot and the qnode cache, so diagnostics
  // can correlate benchmark threads with runtime state.
  uint32_t registry_tid = 0;
  Histogram latency;      // Populated only when latency_sampling > 0.
};

struct RunResult {
  std::vector<WorkerStats> per_thread;
  double seconds = 0;

  uint64_t TotalOps() const;
  uint64_t TotalAborts() const;
  uint64_t TotalReadsOk() const;
  uint64_t TotalReadsAttempted() const;
  double MopsPerSec() const;
  // Jain's fairness index over per-thread op counts: 1.0 = perfectly fair,
  // 1/N = maximally unfair. Used for the backoff-fairness ablation.
  double JainFairness() const;
  // Merged latency histogram across threads.
  Histogram MergedLatency() const;
};

// Worker signature: Worker(thread_id, stop_flag, stats). The worker must
// poll `stop_flag` (acquire) frequently and return promptly once set.
using WorkerFn =
    std::function<void(int, const std::atomic<bool>&, WorkerStats&)>;

RunResult RunFixedDuration(const RunOptions& options, const WorkerFn& worker);

// Repeated-run aggregation (paper §7.1 reports averages of 20 runs with
// 95% confidence intervals).
struct RepeatedResult {
  std::vector<double> mops;  // Per-run throughput.

  double Mean() const;
  double StdDev() const;
  // Half-width of the 95% confidence interval (normal approximation).
  double Ci95() const;
};

// Runs the worker `repeats` times and aggregates throughput. `repeats`
// defaults to OPTIQL_BENCH_REPEATS (or 1).
RepeatedResult RunRepeated(const RunOptions& options, const WorkerFn& worker,
                           int repeats = 0);

// Reads an environment-variable integer, or `fallback` if unset/invalid.
int64_t EnvInt(const char* name, int64_t fallback);

// Default thread sweep for benchmarks: {1, 2, 4, ...} capped at
// 2*hardware_concurrency, overridable with OPTIQL_BENCH_THREADS=a,b,c.
std::vector<int> BenchThreadCounts();

// Benchmark duration per data point in ms (OPTIQL_BENCH_DURATION_MS).
int BenchDurationMs(int fallback = 200);

}  // namespace optiql

#endif  // OPTIQL_HARNESS_BENCH_RUNNER_H_
