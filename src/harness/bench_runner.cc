#include "harness/bench_runner.h"

#include <pthread.h>
#include <sched.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "sync/thread_registry.h"

namespace optiql {

namespace {

void TryPinThread(std::thread& t, int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best effort: failure (restricted cpuset, fewer cores) is ignored.
  pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
}

}  // namespace

uint64_t RunResult::TotalOps() const {
  uint64_t total = 0;
  for (const auto& s : per_thread) total += s.ops;
  return total;
}

uint64_t RunResult::TotalAborts() const {
  uint64_t total = 0;
  for (const auto& s : per_thread) total += s.aborts;
  return total;
}

uint64_t RunResult::TotalReadsOk() const {
  uint64_t total = 0;
  for (const auto& s : per_thread) total += s.reads_ok;
  return total;
}

uint64_t RunResult::TotalReadsAttempted() const {
  uint64_t total = 0;
  for (const auto& s : per_thread) total += s.reads_attempted;
  return total;
}

double RunResult::MopsPerSec() const {
  if (seconds <= 0) return 0;
  return static_cast<double>(TotalOps()) / seconds / 1e6;
}

double RunResult::JainFairness() const {
  if (per_thread.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (const auto& s : per_thread) {
    const double x = static_cast<double>(s.ops);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0) return 1.0;
  const double n = static_cast<double>(per_thread.size());
  return (sum * sum) / (n * sum_sq);
}

Histogram RunResult::MergedLatency() const {
  Histogram merged;
  for (const auto& s : per_thread) merged.Merge(s.latency);
  return merged;
}

RunResult RunFixedDuration(const RunOptions& options, const WorkerFn& worker) {
  RunResult result;
  result.per_thread.resize(static_cast<size_t>(options.threads));

  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.threads));
  for (int i = 0; i < options.threads; ++i) {
    threads.emplace_back([&, i] {
      WorkerStats& stats = result.per_thread[static_cast<size_t>(i)];
      stats.registry_tid = ThreadRegistry::CurrentThreadId();
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      worker(i, stop, stats);
    });
    if (options.pin_threads) {
      TryPinThread(threads.back(), static_cast<int>(i % cores));
    }
  }

  while (ready.load(std::memory_order_acquire) < options.threads) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(options.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  result.seconds = std::chrono::duration<double>(end - start).count();
  return result;
}

double RepeatedResult::Mean() const {
  if (mops.empty()) return 0;
  double sum = 0;
  for (double m : mops) sum += m;
  return sum / static_cast<double>(mops.size());
}

double RepeatedResult::StdDev() const {
  if (mops.size() < 2) return 0;
  const double mean = Mean();
  double sq = 0;
  for (double m : mops) sq += (m - mean) * (m - mean);
  return std::sqrt(sq / static_cast<double>(mops.size() - 1));
}

double RepeatedResult::Ci95() const {
  if (mops.size() < 2) return 0;
  return 1.96 * StdDev() / std::sqrt(static_cast<double>(mops.size()));
}

RepeatedResult RunRepeated(const RunOptions& options, const WorkerFn& worker,
                           int repeats) {
  if (repeats <= 0) {
    repeats = static_cast<int>(EnvInt("OPTIQL_BENCH_REPEATS", 1));
    if (repeats <= 0) repeats = 1;
  }
  RepeatedResult result;
  result.mops.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    result.mops.push_back(RunFixedDuration(options, worker).MopsPerSec());
  }
  return result;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return parsed;
}

std::vector<int> BenchThreadCounts() {
  if (const char* env = std::getenv("OPTIQL_BENCH_THREADS")) {
    std::vector<int> counts;
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const int n = std::atoi(spec.substr(pos, comma - pos).c_str());
      if (n > 0) counts.push_back(n);
      pos = comma + 1;
    }
    if (!counts.empty()) return counts;
  }
  // Sweep to 2x the hardware threads (the paper's x-axis spans both
  // sockets plus hyperthreads), but at least to 8 so queueing behaviour is
  // visible even on very small machines.
  const int cap = static_cast<int>(
      std::max(8u, 2 * std::max(1u, std::thread::hardware_concurrency())));
  std::vector<int> counts;
  for (int n = 1; n <= cap; n *= 2) counts.push_back(n);
  return counts;
}

int BenchDurationMs(int fallback) {
  return static_cast<int>(EnvInt("OPTIQL_BENCH_DURATION_MS", fallback));
}

}  // namespace optiql
