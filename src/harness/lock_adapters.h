// Uniform compile-time adapters over every lock in the repository, so the
// microbenchmark framework (paper §7.1-7.2) and the typed test suites can be
// written once and instantiated per lock.
//
// Adapter surface:
//   kName            display name matching the paper's legend
//   kHasSharedMode   lock supports read critical sections at all
//   kOptimistic      read critical sections may fail and must be retried
//   Ctx              per-thread context (queue node handles where needed)
//   AcquireEx/ReleaseEx(lock, ctx)
//   ReadCritical(lock, ctx, f) -> bool: runs `f()` under the lock's read
//       protection; returns false if an optimistic read failed validation
//       (the caller decides whether to retry).
#ifndef OPTIQL_HARNESS_LOCK_ADAPTERS_H_
#define OPTIQL_HARNESS_LOCK_ADAPTERS_H_

#include <cstdint>

#include "core/opticlh.h"
#include "core/optiql.h"
#include "locks/clh_lock.h"
#include "locks/hybrid_lock.h"
#include "locks/mcs_lock.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/shared_mutex_lock.h"
#include "locks/tts_lock.h"
#include "locks/ticket_lock.h"
#include "qnode/qnode_pool.h"
#include "sync/lock_telemetry.h"

namespace optiql {

// --- Centralized exclusive-only locks ---

template <class Lock>
struct CentralizedExclusiveOps {
  static constexpr bool kHasSharedMode = false;
  static constexpr bool kOptimistic = false;

  struct Ctx {};

  static void AcquireEx(Lock& lock, Ctx&) { lock.AcquireEx(); }
  static void ReleaseEx(Lock& lock, Ctx&) { lock.ReleaseEx(); }
};

template <class Lock>
struct LockOps;

template <>
struct LockOps<TtsLock> : CentralizedExclusiveOps<TtsLock> {
  static constexpr const char* kName = "TTS";
};

template <>
struct LockOps<TtsBackoffLock> : CentralizedExclusiveOps<TtsBackoffLock> {
  static constexpr const char* kName = "TTS-Backoff";
};

template <>
struct LockOps<TicketLock> : CentralizedExclusiveOps<TicketLock> {
  static constexpr const char* kName = "Ticket";
};

// --- Centralized optimistic locks ---

template <class Lock>
struct CentralizedOptimisticOps {
  static constexpr bool kHasSharedMode = true;
  static constexpr bool kOptimistic = true;

  struct Ctx {};

  static void AcquireEx(Lock& lock, Ctx&) { lock.AcquireEx(); }
  static void ReleaseEx(Lock& lock, Ctx&) { lock.ReleaseEx(); }

  template <class F>
  static bool ReadCritical(Lock& lock, Ctx&, F&& f) {
    uint64_t v;
    if (!lock.AcquireSh(v)) return false;
    f();
    return lock.ReleaseSh(v);
  }
};

template <>
struct LockOps<OptLock> : CentralizedOptimisticOps<OptLock> {
  static constexpr const char* kName = "OptLock";
};

template <>
struct LockOps<OptBackoffLock> : CentralizedOptimisticOps<OptBackoffLock> {
  static constexpr const char* kName = "OptLock-Backoff";
};

// --- Queue-based locks ---

template <>
struct LockOps<McsLock> {
  static constexpr const char* kName = "MCS";
  static constexpr bool kHasSharedMode = false;
  static constexpr bool kOptimistic = false;

  struct Ctx {
    QNode* qnode = ThreadQNodes::Get(0);
  };

  static void AcquireEx(McsLock& lock, Ctx& ctx) {
    lock.AcquireEx(ctx.qnode);
  }
  static void ReleaseEx(McsLock& lock, Ctx& ctx) {
    lock.ReleaseEx(ctx.qnode);
  }
};

template <>
struct LockOps<McsRwLock> {
  static constexpr const char* kName = "MCS-RW";
  static constexpr bool kHasSharedMode = true;
  static constexpr bool kOptimistic = false;

  struct Ctx {
    QNode* qnode = ThreadQNodes::Get(0);
  };

  static void AcquireEx(McsRwLock& lock, Ctx& ctx) {
    lock.AcquireEx(ctx.qnode);
  }
  static void ReleaseEx(McsRwLock& lock, Ctx& ctx) {
    lock.ReleaseEx(ctx.qnode);
  }

  template <class F>
  static bool ReadCritical(McsRwLock& lock, Ctx& ctx, F&& f) {
    lock.AcquireSh(ctx.qnode);
    f();
    lock.ReleaseSh(ctx.qnode);
    return true;
  }
};

template <bool kOpRead>
struct OptiQlOps {
  static constexpr bool kHasSharedMode = true;
  static constexpr bool kOptimistic = true;

  using Lock = BasicOptiQL<kOpRead>;

  struct Ctx {
    QNode* qnode = ThreadQNodes::Get(0);
  };

  static void AcquireEx(Lock& lock, Ctx& ctx) { lock.AcquireEx(ctx.qnode); }
  static void ReleaseEx(Lock& lock, Ctx& ctx) { lock.ReleaseEx(ctx.qnode); }

  template <class F>
  static bool ReadCritical(Lock& lock, Ctx&, F&& f) {
    uint64_t v;
    if (!lock.AcquireSh(v)) return false;
    f();
    return lock.ReleaseSh(v);
  }
};

template <>
struct LockOps<OptiQL> : OptiQlOps<true> {
  static constexpr const char* kName = "OptiQL";
};

template <>
struct LockOps<OptiQLNor> : OptiQlOps<false> {
  static constexpr const char* kName = "OptiQL-NOR";
};

template <>
struct LockOps<ClhLock> {
  static constexpr const char* kName = "CLH";
  static constexpr bool kHasSharedMode = false;
  static constexpr bool kOptimistic = false;

  struct Ctx {
    QNode* handle = nullptr;  // Current acquisition handle.
  };

  static void AcquireEx(ClhLock& lock, Ctx& ctx) {
    ctx.handle = lock.AcquireEx();
  }
  static void ReleaseEx(ClhLock& lock, Ctx& ctx) {
    lock.ReleaseEx(ctx.handle);
    ctx.handle = nullptr;
  }
};

template <>
struct LockOps<OptiCLH> {
  static constexpr const char* kName = "OptiCLH";
  static constexpr bool kHasSharedMode = true;
  static constexpr bool kOptimistic = true;

  struct Ctx {
    QNode* handle = nullptr;  // Current acquisition handle.
  };

  static void AcquireEx(OptiCLH& lock, Ctx& ctx) {
    ctx.handle = lock.AcquireEx();
  }
  static void ReleaseEx(OptiCLH& lock, Ctx& ctx) {
    lock.ReleaseEx(ctx.handle);
    ctx.handle = nullptr;
  }

  template <class F>
  static bool ReadCritical(OptiCLH& lock, Ctx&, F&& f) {
    uint64_t v;
    if (!lock.AcquireSh(v)) return false;
    f();
    return lock.ReleaseSh(v);
  }
};

template <>
struct LockOps<HybridLock> {
  static constexpr const char* kName = "Hybrid";
  static constexpr bool kHasSharedMode = true;
  // Reads adaptively fall back to pessimistic mode, so they never fail.
  static constexpr bool kOptimistic = false;

  struct Ctx {};

  static void AcquireEx(HybridLock& lock, Ctx&) { lock.AcquireEx(); }
  static void ReleaseEx(HybridLock& lock, Ctx&) { lock.ReleaseEx(); }

  template <class F>
  static bool ReadCritical(HybridLock& lock, Ctx&, F&& f) {
    lock.ReadCriticalHybrid(static_cast<F&&>(f));
    return true;
  }
};

template <>
struct LockOps<AdaptiveHybridLock> {
  static constexpr const char* kName = "Hybrid-Adaptive";
  static constexpr bool kHasSharedMode = true;
  // Reads converge to whatever mode the node needs; they never fail.
  static constexpr bool kOptimistic = false;

  struct Ctx {
    QNode* qnode = ThreadQNodes::Get(0);
    bool via_gate = false;  // Did the last AcquireEx go through the gate?
  };

  static void AcquireEx(AdaptiveHybridLock& lock, Ctx& ctx) {
    ctx.via_gate = lock.AcquireEx(ctx.qnode);
  }
  static void ReleaseEx(AdaptiveHybridLock& lock, Ctx& ctx) {
    lock.ReleaseEx(ctx.qnode, ctx.via_gate);
    ctx.via_gate = false;
  }

  template <class F>
  static bool ReadCritical(AdaptiveHybridLock& lock, Ctx&, F&& f) {
    lock.ReadCritical(static_cast<F&&>(f));
    return true;
  }
};

// --- OS reader-writer lock ---

template <>
struct LockOps<SharedMutexLock> {
  static constexpr const char* kName = "pthread";
  static constexpr bool kHasSharedMode = true;
  static constexpr bool kOptimistic = false;

  struct Ctx {};

  static void AcquireEx(SharedMutexLock& lock, Ctx&) { lock.AcquireEx(); }
  static void ReleaseEx(SharedMutexLock& lock, Ctx&) { lock.ReleaseEx(); }

  template <class F>
  static bool ReadCritical(SharedMutexLock& lock, Ctx&, F&& f) {
    lock.AcquireSh();
    f();
    lock.ReleaseSh();
    return true;
  }
};

}  // namespace optiql

#endif  // OPTIQL_HARNESS_LOCK_ADAPTERS_H_
