// Portable SIMD search kernels for the index hot paths: branchless
// lower/upper bound over sorted key arrays (B+-tree leaf and inner nodes)
// and byte-equality probes (ART Node4/Node16 FindChild).
//
// Backend selection, in order:
//   * OPTIQL_FORCE_SCALAR   — every kernel uses the scalar fallback
//                             (CMake -DOPTIQL_FORCE_SCALAR=ON; the CI
//                             matrix keeps this leg compiled and tested).
//   * __AVX2__              — 256-bit kernels (4x64 / 8x32 lanes).
//   * __SSE2__ / x86-64     — 128-bit kernels; 64-bit signed compare is
//                             emulated (SSE2 has no pcmpgtq).
//   * __aarch64__ (NEON)    — 128-bit kernels.
//   * otherwise             — scalar fallback.
//
// Concurrency contract (optimistic readers): kernels may be handed key
// arrays that a concurrent writer is tearing, so lane contents are
// untrusted garbage until the caller re-validates the node version — every
// kernel therefore only promises memory safety, not a meaningful result,
// on racy input. Memory safety is unconditional:
//   * LowerBound/UpperBound never read at or past index `n` (vector blocks
//     are count-clamped; the tail is scalar), so a torn-but-clamped count
//     keeps every access inside the node.
//   * FindByte16/FindByte4 require the full fixed-size node array (16/4
//     readable bytes) and clamp `count` to it; ART node key arrays are
//     always materialized at full size.
// Results computed from torn data are discarded when version validation
// fails, exactly as with the scalar code these kernels replace.
#ifndef OPTIQL_COMMON_SIMD_H_
#define OPTIQL_COMMON_SIMD_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/platform.h"

#if defined(OPTIQL_FORCE_SCALAR)
#define OPTIQL_SIMD_BACKEND_NAME "scalar(forced)"
#elif defined(__AVX2__)
#define OPTIQL_SIMD_AVX2 1
#define OPTIQL_SIMD_BACKEND_NAME "avx2"
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define OPTIQL_SIMD_SSE2 1
#define OPTIQL_SIMD_BACKEND_NAME "sse2"
#include <emmintrin.h>
#elif defined(__aarch64__)
#define OPTIQL_SIMD_NEON 1
#define OPTIQL_SIMD_BACKEND_NAME "neon"
#include <arm_neon.h>
#else
#define OPTIQL_SIMD_BACKEND_NAME "scalar"
#endif

namespace optiql {
namespace simd {

// Human-readable name of the compiled-in backend (benchmark banners).
inline constexpr const char* kBackendName = OPTIQL_SIMD_BACKEND_NAME;

// Large nodes binary-search down to a window of this many keys, then scan
// the window in vector-width blocks. Must be a multiple of every lane
// count; 32 keys keeps the scan at <= 8 vector probes.
inline constexpr uint16_t kLinearWindow = 32;

// --- Scalar reference kernels (always compiled; benchmark baselines) ---

// First position in the sorted range keys[0..n) with keys[pos] >= key.
template <class T>
inline uint16_t ScalarLowerBound(const T* keys, uint16_t n, const T& key) {
  unsigned lo = 0, hi = n;
  while (lo < hi) {
    const unsigned mid = (lo + hi) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint16_t>(lo);
}

// First position in the sorted range keys[0..n) with keys[pos] > key.
template <class T>
inline uint16_t ScalarUpperBound(const T* keys, uint16_t n, const T& key) {
  unsigned lo = 0, hi = n;
  while (lo < hi) {
    const unsigned mid = (lo + hi) / 2;
    if (!(key < keys[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint16_t>(lo);
}

// First index i < count with keys[i] == byte, else -1.
inline int ScalarFindByte(const uint8_t* keys, uint16_t count, uint8_t byte) {
  for (uint16_t i = 0; i < count; ++i) {
    if (keys[i] == byte) return i;
  }
  return -1;
}

// --- Lane traits ---
//
// A LaneTraits<T> specialization teaches the generic search loops how to
// probe kLanes keys at once. LtMask/GtMask load kLanes keys from `p` and
// return one bit per lane (bit i = lane i) of keys[i] < key (resp. >).
// Unsigned types are biased to signed bit patterns so one signed compare
// serves both.

template <class T, class Enable = void>
struct LaneTraits {
  static constexpr bool kEnabled = false;
};

#if defined(OPTIQL_SIMD_AVX2)

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 8>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 4;
  static constexpr unsigned kFullMask = 0xF;
  using KeyVec = __m256i;

  static __m256i Bias(__m256i v) {
    if constexpr (std::is_signed_v<T>) {
      return v;
    } else {
      return _mm256_xor_si256(v, _mm256_set1_epi64x(INT64_MIN));
    }
  }
  static KeyVec Broadcast(T key) {
    return Bias(_mm256_set1_epi64x(static_cast<int64_t>(key)));
  }
  static __m256i Load(const T* p) {
    return Bias(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(key, Load(p)))));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpgt_epi64(Load(p), key))));
  }
};

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 4>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 8;
  static constexpr unsigned kFullMask = 0xFF;
  using KeyVec = __m256i;

  static __m256i Bias(__m256i v) {
    if constexpr (std::is_signed_v<T>) {
      return v;
    } else {
      return _mm256_xor_si256(v, _mm256_set1_epi32(INT32_MIN));
    }
  }
  static KeyVec Broadcast(T key) {
    return Bias(_mm256_set1_epi32(static_cast<int32_t>(key)));
  }
  static __m256i Load(const T* p) {
    return Bias(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(key, Load(p)))));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(Load(p), key))));
  }
};

#elif defined(OPTIQL_SIMD_SSE2)

// Signed 64-bit a > b without SSE4.2's pcmpgtq: the high dwords decide,
// except on a tie, where the borrow of the low-dword subtraction (sign of
// (b - a)'s high dword) decides. The final shuffle broadcasts each lane's
// high dword over the full lane.
inline __m128i CmpGtI64Sse2(__m128i a, __m128i b) {
  __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
  return _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
}

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 8>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 2;
  static constexpr unsigned kFullMask = 0x3;
  using KeyVec = __m128i;

  static __m128i Bias(__m128i v) {
    if constexpr (std::is_signed_v<T>) {
      return v;
    } else {
      return _mm_xor_si128(v, _mm_set1_epi64x(INT64_MIN));
    }
  }
  static KeyVec Broadcast(T key) {
    return Bias(_mm_set1_epi64x(static_cast<int64_t>(key)));
  }
  static __m128i Load(const T* p) {
    return Bias(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpGtI64Sse2(key, Load(p)))));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(
        _mm_movemask_pd(_mm_castsi128_pd(CmpGtI64Sse2(Load(p), key))));
  }
};

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 4>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 4;
  static constexpr unsigned kFullMask = 0xF;
  using KeyVec = __m128i;

  static __m128i Bias(__m128i v) {
    if constexpr (std::is_signed_v<T>) {
      return v;
    } else {
      return _mm_xor_si128(v, _mm_set1_epi32(INT32_MIN));
    }
  }
  static KeyVec Broadcast(T key) {
    return Bias(_mm_set1_epi32(static_cast<int32_t>(key)));
  }
  static __m128i Load(const T* p) {
    return Bias(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(key, Load(p)))));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(Load(p), key))));
  }
};

#elif defined(OPTIQL_SIMD_NEON)

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 8>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 2;
  static constexpr unsigned kFullMask = 0x3;
  using KeyVec = int64x2_t;

  static KeyVec Broadcast(T key) {
    int64_t biased = static_cast<int64_t>(key);
    if constexpr (!std::is_signed_v<T>) biased ^= INT64_MIN;
    return vdupq_n_s64(biased);
  }
  static int64x2_t Load(const T* p) {
    int64x2_t v = vreinterpretq_s64_u8(
        vld1q_u8(reinterpret_cast<const uint8_t*>(p)));
    if constexpr (!std::is_signed_v<T>) {
      v = veorq_s64(v, vdupq_n_s64(INT64_MIN));
    }
    return v;
  }
  static unsigned ToMask(uint64x2_t cmp) {
    return static_cast<unsigned>((vgetq_lane_u64(cmp, 0) & 1) |
                                 ((vgetq_lane_u64(cmp, 1) & 1) << 1));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return ToMask(vcgtq_s64(key, Load(p)));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return ToMask(vcgtq_s64(Load(p), key));
  }
};

template <class T>
struct LaneTraits<T, std::enable_if_t<std::is_integral_v<T> &&
                                      sizeof(T) == 4>> {
  static constexpr bool kEnabled = true;
  static constexpr uint16_t kLanes = 4;
  static constexpr unsigned kFullMask = 0xF;
  using KeyVec = int32x4_t;

  static KeyVec Broadcast(T key) {
    int32_t biased = static_cast<int32_t>(key);
    if constexpr (!std::is_signed_v<T>) biased ^= INT32_MIN;
    return vdupq_n_s32(biased);
  }
  static int32x4_t Load(const T* p) {
    int32x4_t v = vreinterpretq_s32_u8(
        vld1q_u8(reinterpret_cast<const uint8_t*>(p)));
    if constexpr (!std::is_signed_v<T>) {
      v = veorq_s32(v, vdupq_n_s32(INT32_MIN));
    }
    return v;
  }
  static unsigned ToMask(uint32x4_t cmp) {
    // One bit per 32-bit lane: narrow each lane to its low bit.
    const uint32x4_t bits = vandq_u32(cmp, {1, 2, 4, 8});
    return static_cast<unsigned>(vaddvq_u32(bits));
  }
  static unsigned LtMask(const T* p, KeyVec key) {
    return ToMask(vcgtq_s32(key, Load(p)));
  }
  static unsigned GtMask(const T* p, KeyVec key) {
    return ToMask(vcgtq_s32(Load(p), key));
  }
};

#endif  // backend

// --- Dispatched sorted-array search ---
//
// Layout: a branchy binary prefix narrows ranges wider than kLinearWindow
// (large nodes — fig11 sweeps to 16 KB), then the remaining window is
// scanned in vector blocks with an early exit on the first qualifying
// lane. Trailing keys that do not fill a block are probed scalar, so no
// read ever touches index >= n.

template <class T>
inline uint16_t LowerBound(const T* keys, uint16_t n, const T& key) {
  if constexpr (!LaneTraits<T>::kEnabled) {
    return ScalarLowerBound(keys, n, key);
  } else {
    using LT = LaneTraits<T>;
    unsigned lo = 0, hi = n;
    while (hi - lo > kLinearWindow) {
      const unsigned mid = (lo + hi) / 2;
      if (keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const typename LT::KeyVec probe = LT::Broadcast(key);
    unsigned i = lo;
    for (; i + LT::kLanes <= hi; i += LT::kLanes) {
      const unsigned ge = ~LT::LtMask(keys + i, probe) & LT::kFullMask;
      if (ge != 0) {
        return static_cast<uint16_t>(i + std::countr_zero(ge));
      }
    }
    for (; i < hi; ++i) {
      if (!(keys[i] < key)) break;
    }
    return static_cast<uint16_t>(i);
  }
}

template <class T>
inline uint16_t UpperBound(const T* keys, uint16_t n, const T& key) {
  if constexpr (!LaneTraits<T>::kEnabled) {
    return ScalarUpperBound(keys, n, key);
  } else {
    using LT = LaneTraits<T>;
    unsigned lo = 0, hi = n;
    while (hi - lo > kLinearWindow) {
      const unsigned mid = (lo + hi) / 2;
      if (!(key < keys[mid])) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const typename LT::KeyVec probe = LT::Broadcast(key);
    unsigned i = lo;
    for (; i + LT::kLanes <= hi; i += LT::kLanes) {
      const unsigned gt = LT::GtMask(keys + i, probe);
      if (gt != 0) {
        return static_cast<uint16_t>(i + std::countr_zero(gt));
      }
    }
    for (; i < hi; ++i) {
      if (key < keys[i]) break;
    }
    return static_cast<uint16_t>(i);
  }
}

// --- Byte-equality probes (ART FindChild) ---

// First index i < count with keys16[i] == byte, else -1. `keys16` must
// point at a full 16-byte array (always true for Node16::keys); `count` is
// clamped to 16 so torn counts stay in bounds.
inline int FindByte16(const uint8_t* keys16, uint16_t count, uint8_t byte) {
  if (count > 16) count = 16;
#if defined(OPTIQL_SIMD_AVX2) || defined(OPTIQL_SIMD_SSE2)
  const __m128i data =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys16));
  const __m128i probe = _mm_set1_epi8(static_cast<char>(byte));
  unsigned mask =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(data, probe)));
  mask &= (1u << count) - 1;  // count <= 16, so the shift is defined.
  return mask != 0 ? std::countr_zero(mask) : -1;
#elif defined(OPTIQL_SIMD_NEON)
  const uint8x16_t data = vld1q_u8(keys16);
  const uint8x16_t cmp = vceqq_u8(data, vdupq_n_u8(byte));
  // Narrow each byte lane to 4 bits: a 64-bit mask, 4 bits per lane.
  const uint64_t mask64 =
      vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(
                        vreinterpretq_u16_u8(cmp), 4)),
                    0) &
      (count == 16 ? ~uint64_t{0} : (uint64_t{1} << (4 * count)) - 1);
  return mask64 != 0 ? std::countr_zero(mask64) / 4 : -1;
#else
  return ScalarFindByte(keys16, count, byte);
#endif
}

// First index i < count with keys4[i] == byte, else -1. `keys4` must point
// at a full 4-byte array (always true for Node4::keys). SWAR over one
// 32-bit word; falls back to the scalar loop on big-endian targets.
inline int FindByte4(const uint8_t* keys4, uint16_t count, uint8_t byte) {
  if (count > 4) count = 4;
#if !defined(OPTIQL_FORCE_SCALAR)
  if constexpr (std::endian::native == std::endian::little) {
    uint32_t word;
    std::memcpy(&word, keys4, 4);
    const uint32_t diff = word ^ (0x01010101u * byte);
    // Classic haszero: high bit of each byte set iff that byte is 0.
    uint32_t match = (diff - 0x01010101u) & ~diff & 0x80808080u;
    if (count < 4) match &= (uint32_t{1} << (8 * count)) - 1;
    return match != 0 ? std::countr_zero(match) / 8 : -1;
  }
#endif
  return ScalarFindByte(keys4, count, byte);
}

}  // namespace simd
}  // namespace optiql

#endif  // OPTIQL_COMMON_SIMD_H_
