// Shared descent-prefetch helpers for the index traversal paths.
//
// Every index in the repo leans on the same idiom: read a child pointer
// optimistically (possibly torn, possibly tagged), issue a prefetch for it
// BEFORE validating the parent's version, and only dereference it after the
// validation succeeds. Prefetch instructions are hints and never fault, so
// this is safe on any pointer value — that property is what lets the
// child's cache miss overlap the validation (and, in the interleaved batch
// paths, the work of all the other in-flight descents).
//
// The B+-tree, ART and the coupling variants each grew a private copy of
// the pattern; this header is the one home for it:
//
//   PrefetchLines<K>(p)     warm the first K cachelines at p
//   PrefetchLinesFor(bytes) the K covering an object of `bytes` bytes
//   PrefetchTagged(p, mask) untag a pointer-with-flag-bits, then warm its
//                           first line (ART's leaf-tagged child slots)
#ifndef OPTIQL_COMMON_PREFETCH_H_
#define OPTIQL_COMMON_PREFETCH_H_

#include <cstddef>
#include <cstdint>

#include "common/platform.h"

namespace optiql {

// Number of whole cachelines covering an object of `bytes` bytes — the
// cacheline-count parameter for PrefetchLines at a given node geometry.
constexpr std::size_t PrefetchLinesFor(std::size_t bytes) {
  return (bytes + kCachelineSize - 1) / kCachelineSize;
}

// Warms the first kLines cachelines starting at `p` (compile-time count so
// the loop unrolls into straight-line prefetch instructions). Safe on
// unvalidated pointers: prefetch never faults.
template <std::size_t kLines>
inline void PrefetchLines(const void* p) {
  static_assert(kLines >= 1, "prefetch at least the first line");
  const char* c = static_cast<const char*>(p);
  for (std::size_t line = 0; line < kLines; ++line) {
    PrefetchRead(c + line * kCachelineSize);
  }
}

// Untags a pointer carrying flag bits in its low bits (ART tags leaf
// records with bit 0) and warms its first cacheline. The pointer may be
// torn — read before the parent's version validated — as well as tagged;
// both are fine for a prefetch hint. Null is ignored.
inline void PrefetchTagged(const void* tagged, uintptr_t tag_mask = 1) {
  if (tagged == nullptr) return;
  PrefetchRead(reinterpret_cast<const void*>(
      reinterpret_cast<uintptr_t>(tagged) & ~tag_mask));
}

}  // namespace optiql

#endif  // OPTIQL_COMMON_PREFETCH_H_
