// Truncated exponential backoff with jitter, used optionally by the
// centralized locks (TTS, OptLock). The paper (§1.1, §2.2) notes that
// backoff eases contention on centralized locks at the cost of fairness;
// the ablation benchmark quantifies exactly that tradeoff.
#ifndef OPTIQL_COMMON_BACKOFF_H_
#define OPTIQL_COMMON_BACKOFF_H_

#include <cstdint>

#include "common/platform.h"
#include "common/random.h"

namespace optiql {

class ExponentialBackoff {
 public:
  static constexpr uint32_t kMinSpins = 4;
  static constexpr uint32_t kMaxSpins = 4096;

  // Spins for a random duration in [0, limit), then doubles the limit.
  void Pause() {
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // Model build: backoff duration is irrelevant (the scheduler, not
    // time, decides who runs next) and the thread-local RNG would make
    // replay nondeterministic. One scheduler yield per pause.
    model::SpinYield();
#else
    thread_local Xoshiro256 rng(0xb0ffDEADBEEFULL ^
                                reinterpret_cast<uintptr_t>(&rng));
    SpinCycles(static_cast<uint32_t>(rng.NextBounded(limit_)));
    // Donate the time slice occasionally so an oversubscribed machine makes
    // progress even when the holder is descheduled.
    if (limit_ == kMaxSpins) CpuYield();
#endif
    limit_ = limit_ < kMaxSpins ? limit_ * 2 : kMaxSpins;
  }

  void Reset() { limit_ = kMinSpins; }

 private:
  uint32_t limit_ = kMinSpins;
};

// Drop-in no-backoff policy: a plain spin-then-yield wait.
class NoBackoff {
 public:
  void Pause() { wait_.Spin(); }
  void Reset() { wait_.Reset(); }

 private:
  SpinWait wait_;
};

}  // namespace optiql

#endif  // OPTIQL_COMMON_BACKOFF_H_
