// The atomic seam for the schedule-exhaustive model checker (DESIGN.md §13).
//
// In a normal build `ModelAtomic<T>` IS `std::atomic<T>` — a transparent
// alias, zero codegen change, verified by the static_asserts below. Under
// `-DOPTIQL_MODEL=ON` it becomes a plain value wrapped in scheduling gates:
// every load/store/RMW first parks the calling thread on the cooperative
// model scheduler (src/analysis/model_runtime.cc), which picks exactly one
// runnable thread per step. That turns "all interleavings the hardware
// might produce" into "all interleavings the DFS explorer enumerates" —
// the lock headers run unmodified, one visible operation at a time.
//
// The model executes under sequential consistency: memory-order arguments
// are accepted (so call sites compile unchanged) and ignored. SC
// exploration is sound for the safety properties we check — every SC
// interleaving is exhaustively enumerated — but deliberately does not
// model weaker-memory reorderings; those stay the job of the fence
// placement reviewed in the headers plus TSan.
#ifndef OPTIQL_COMMON_MODEL_ATOMIC_H_
#define OPTIQL_COMMON_MODEL_ATOMIC_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

#if defined(OPTIQL_MODEL) && OPTIQL_MODEL

namespace optiql {
struct QNode;  // qnode/qnode_pool.h
}

namespace optiql::model {

// Visible-operation kinds, as the explorer's dependency relation sees
// them: two operations conflict iff they touch the same object and at
// least one mutates it. kSpin is a failed spin-wait iteration — modeled
// as a read of the last-loaded object that blocks the thread until some
// other thread writes that object (see SpinYield below).
enum class OpKind : uint8_t { kLoad, kStore, kRmw, kSpin };

// --- Scheduler hooks, implemented in src/analysis/model_runtime.cc ------
//
// All hooks are no-ops (the operation runs directly) when the calling
// thread is not a managed model thread, or while a QuietScope is open.

// Parks the thread until the scheduler picks it to run `kind` on `obj`.
// Throws ModelStop when the execution is being aborted.
void PreOp(const void* obj, OpKind kind);

// Publishes the just-executed operation's operand/old-value/mutation flag
// for the trace and the dependency relation.
void PostOp(uint64_t arg, uint64_t result, bool mutated);

// One failed spin-loop iteration: blocks the thread until another thread
// writes the object it last loaded. This is what keeps exploration finite
// — a spinning thread contributes no schedules while nothing it watches
// can change, and "every runnable thread is spin-blocked" is precisely a
// deadlock/lost-wakeup violation.
void SpinYield();

// Suppresses scheduling for operations that are instrumentation, not
// protocol: OPTIQL_INVARIANT condition probes and QNode::DbgTransition.
// Quiet operations execute as part of the current thread's turn.
class QuietScope {
 public:
  QuietScope();
  ~QuietScope();
  QuietScope(const QuietScope&) = delete;
  QuietScope& operator=(const QuietScope&) = delete;
};

// OPTIQL_INVARIANT sink: on a managed thread, records the violation and
// unwinds the worker (the explorer then prints the schedule); elsewhere it
// keeps the normal print-and-abort behavior, so death tests still pass.
void InvariantFailed(const char* file, int line, const char* cond,
                     const char* msg);

// Deliberately seeded protocol bugs, reachable only in model builds. Each
// flag re-introduces a specific historical/raceable mistake so the test
// suite can prove the checker actually catches it (and pin the minimized
// counterexample schedule as a regression case).
struct SeededBugs {
  // OptiQL ReleaseEx: strip the obsolete marker from the version handed to
  // the queued successor — the exact bug the NextVersion propagation rule
  // exists to prevent (marker must survive queue handover).
  bool optiql_drop_obsolete_on_handover = false;
  // MCS-RW TryUpgradeShNoQueue: grant the upgrade even when other readers
  // are still active (sole-holder check skipped).
  bool mcsrw_upgrade_ignores_readers = false;
  // Elastic reshard handover: the migration copier reads the source and
  // writes the target WITHOUT holding the chunk gate, so a concurrent
  // double-applied remove can interleave between its read and its write
  // and the stale copy resurrects the removed key in the target.
  bool reshard_copy_skips_gate = false;
};
SeededBugs& bugs();

// Deterministic queue-node supply for CLH-style locks whose nodes migrate
// between threads. The thread-local ThreadQNodeStack reuses whatever node
// migration left in the cache, so the node IDENTITY at a given trace
// position would vary across executions — invisible state the scheduler
// cannot replay. Managed threads instead draw from a per-thread node set
// the runtime re-deals identically at the start of every execution.
// ScenarioPopQNode returns nullptr (and ScenarioPushQNode returns false)
// for unmanaged threads, falling through to the normal cache.
QNode* ScenarioPopQNode();
bool ScenarioPushQNode(QNode* node);

// Converts any ModelAtomic-storable value to a trace representation.
template <class T>
inline uint64_t ToRep(T v) {
  if constexpr (std::is_pointer_v<T>) {
    return reinterpret_cast<uint64_t>(v);
  } else {
    return static_cast<uint64_t>(v);
  }
}

}  // namespace optiql::model

namespace optiql {

// Model-build ModelAtomic: a plain value gated by the scheduler. Same size
// as std::atomic<T> (both are sizeof(T) for the lock-word types used
// here), so every sizeof(Lock) == 8 static_assert still holds.
template <class T>
class ModelAtomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "ModelAtomic requires trivially copyable T");

 public:
  constexpr ModelAtomic() noexcept : value_() {}
  constexpr ModelAtomic(T v) noexcept : value_(v) {}  // NOLINT(runtime/explicit)
  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order = std::memory_order_seq_cst) const {
    model::PreOp(this, model::OpKind::kLoad);
    T v = value_;
    model::PostOp(0, model::ToRep(v), /*mutated=*/false);
    return v;
  }

  void store(T v, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kStore);
    T old = value_;
    value_ = v;
    model::PostOp(model::ToRep(v), model::ToRep(old), /*mutated=*/true);
  }

  T exchange(T v, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    value_ = v;
    model::PostOp(model::ToRep(v), model::ToRep(old), /*mutated=*/true);
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order = std::memory_order_seq_cst,
                               std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    const bool ok = (old == expected);
    if (ok) {
      value_ = desired;
    } else {
      expected = old;
    }
    model::PostOp(model::ToRep(desired), model::ToRep(old), ok);
    return ok;
  }

  // The model never fails spuriously: under SC exploration a weak CAS's
  // extra failure schedules are a subset of the contention failures the
  // explorer already enumerates via adversarial interleaving.
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order s = std::memory_order_seq_cst,
                             std::memory_order f = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, s, f);
  }

  T fetch_add(T arg, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    value_ = static_cast<T>(old + arg);
    model::PostOp(model::ToRep(arg), model::ToRep(old), /*mutated=*/true);
    return old;
  }

  T fetch_sub(T arg, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    value_ = static_cast<T>(old - arg);
    model::PostOp(model::ToRep(arg), model::ToRep(old), /*mutated=*/true);
    return old;
  }

  T fetch_or(T arg, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    value_ = static_cast<T>(old | arg);
    model::PostOp(model::ToRep(arg), model::ToRep(old), /*mutated=*/true);
    return old;
  }

  T fetch_and(T arg, std::memory_order = std::memory_order_seq_cst) {
    model::PreOp(this, model::OpKind::kRmw);
    T old = value_;
    value_ = static_cast<T>(old & arg);
    model::PostOp(model::ToRep(arg), model::ToRep(old), /*mutated=*/true);
    return old;
  }

 private:
  T value_;
};

static_assert(sizeof(ModelAtomic<uint64_t>) == sizeof(std::atomic<uint64_t>),
              "model seam must not change the lock-word layout");

// Fences are invisible under the model's sequential consistency (every
// scheduled operation is already SC); call sites keep their fences for the
// real build, the model build compiles them away.
inline void ModelThreadFence(std::memory_order) {}

}  // namespace optiql

#else  // !OPTIQL_MODEL -------------------------------------------------

namespace optiql {

// Normal build: the seam IS std::atomic. Pure type substitution — the
// static_assert pins that there is nothing to pay for.
template <class T>
using ModelAtomic = std::atomic<T>;

static_assert(std::is_same_v<ModelAtomic<uint64_t>, std::atomic<uint64_t>>,
              "normal builds must compile the seam to plain std::atomic");

inline void ModelThreadFence(std::memory_order mo) {
  std::atomic_thread_fence(mo);
}

}  // namespace optiql

#endif  // OPTIQL_MODEL

#endif  // OPTIQL_COMMON_MODEL_ATOMIC_H_
