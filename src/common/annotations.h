// Thread Safety Analysis (TSA) annotation macros.
//
// Maps the repo's lock vocabulary onto Clang's -Wthread-safety attribute
// set (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under any
// compiler (or clang version) without the attributes the macros expand to
// nothing, so GCC builds are unaffected; a dedicated CI job compiles the
// annotated code with clang -Werror=thread-safety.
//
// What is annotated and what deliberately is NOT:
//
//   * The pessimistic locks (MCS, MCS-RW, TTS, ticket, CLH, shared_mutex,
//     and OptLock's exclusive side) are CAPABILITYs with ACQUIRE/RELEASE
//     annotated entry points. Their bodies are implementation detail — TSA
//     treats an annotated primitive's body as trusted and checks *callers*
//     against the contract, which is exactly what we want.
//   * The optimistic read protocols (OptiQL/OptiCLH shared mode, OptLock
//     AcquireSh/ReleaseSh) are NOT expressible in TSA: an optimistic
//     "acquire" writes nothing and the subsequent reads are by-design data
//     races resolved by validation. Those paths are covered by
//     scripts/lint_optimistic.py and the OPTIQL_CHECK_INVARIANTS build
//     instead (see DESIGN.md "Analysis layers").
//   * Hand-over-hand lock coupling (the *Coupling index paths) acquires a
//     child while holding the parent and releases the parent afterwards —
//     a pattern TSA's scoped model cannot express. Those functions carry
//     OPTIQL_NO_THREAD_SAFETY_ANALYSIS with a reason comment.
#ifndef OPTIQL_COMMON_ANNOTATIONS_H_
#define OPTIQL_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OPTIQL_TSA(x) __attribute__((x))
#endif
#endif
#ifndef OPTIQL_TSA
#define OPTIQL_TSA(x)  // Expands to nothing outside clang.
#endif

// Marks a class as a lock-like capability; `name` appears in diagnostics.
#define OPTIQL_CAPABILITY(name) OPTIQL_TSA(capability(name))

// Exclusive acquisition/release. Applied to member functions; the implicit
// `this` is the capability.
#define OPTIQL_ACQUIRE(...) OPTIQL_TSA(acquire_capability(__VA_ARGS__))
#define OPTIQL_TRY_ACQUIRE(...) \
  OPTIQL_TSA(try_acquire_capability(__VA_ARGS__))
#define OPTIQL_RELEASE(...) OPTIQL_TSA(release_capability(__VA_ARGS__))

// Shared (reader) acquisition/release, for reader-writer capabilities.
#define OPTIQL_ACQUIRE_SHARED(...) \
  OPTIQL_TSA(acquire_shared_capability(__VA_ARGS__))
#define OPTIQL_TRY_ACQUIRE_SHARED(...) \
  OPTIQL_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define OPTIQL_RELEASE_SHARED(...) \
  OPTIQL_TSA(release_shared_capability(__VA_ARGS__))
// Releases a capability held in either mode (TSA cannot always tell which).
#define OPTIQL_RELEASE_GENERIC(...) \
  OPTIQL_TSA(release_generic_capability(__VA_ARGS__))

// Caller-side contracts.
#define OPTIQL_REQUIRES(...) OPTIQL_TSA(requires_capability(__VA_ARGS__))
#define OPTIQL_REQUIRES_SHARED(...) \
  OPTIQL_TSA(requires_shared_capability(__VA_ARGS__))
#define OPTIQL_EXCLUDES(...) OPTIQL_TSA(locks_excluded(__VA_ARGS__))
#define OPTIQL_GUARDED_BY(x) OPTIQL_TSA(guarded_by(x))
#define OPTIQL_PT_GUARDED_BY(x) OPTIQL_TSA(pt_guarded_by(x))
#define OPTIQL_RETURN_CAPABILITY(x) OPTIQL_TSA(lock_returned(x))

// Opts a function out of the analysis. Every use must carry a comment
// explaining which inexpressible pattern it covers (lock coupling,
// optimistic validation, queue-node handover).
#define OPTIQL_NO_THREAD_SAFETY_ANALYSIS \
  OPTIQL_TSA(no_thread_safety_analysis)

#endif  // OPTIQL_COMMON_ANNOTATIONS_H_
