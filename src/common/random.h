// Fast, reproducible pseudo-random number generators used by the workload
// generators and benchmark harness. Benchmark loops must not pay libstdc++
// <random> dispatch costs, so we provide small inline generators with
// well-known constants (splitmix64 for seeding, xoshiro256** for streams).
#ifndef OPTIQL_COMMON_RANDOM_H_
#define OPTIQL_COMMON_RANDOM_H_

#include <cstdint>

namespace optiql {

// SplitMix64 (Steele, Lea, Vigna). Primarily used to expand a single seed
// into the larger state of other generators; also a fine standalone PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// SplitMix64 finalizer as a stateless hash: full-avalanche mix of a 64-bit
// key. This is the one hash family shared by everything that partitions by
// key (the sharded store's router, key-partitioned trace replay), so
// "thread count == shard count" lines the two partitions up exactly.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** 1.0 (Blackman, Vigna): the workhorse generator for benchmark
// threads. One instance per thread; never shared.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1): fills the 53-bit mantissa from the top bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound) using Lemire's multiply-shift reduction
  // (biased by at most 2^-64; negligible for benchmarking purposes).
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace optiql

#endif  // OPTIQL_COMMON_RANDOM_H_
