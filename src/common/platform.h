// Platform utilities shared across the OptiQL library: cacheline geometry,
// CPU pause hints, and the spin-wait policy used by every lock in the repo.
#ifndef OPTIQL_COMMON_PLATFORM_H_
#define OPTIQL_COMMON_PLATFORM_H_

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sched.h>
#endif

#include "common/model_atomic.h"

namespace optiql {

// Cache line size assumed throughout; queue nodes and per-thread stats are
// padded to this to avoid false sharing.
inline constexpr std::size_t kCachelineSize = 64;

#define OPTIQL_CACHELINE_ALIGNED alignas(::optiql::kCachelineSize)

// Software prefetch into the read cache hierarchy. Prefetch instructions
// are hints and never fault, so this is safe on ANY pointer value —
// including a child pointer read optimistically from a node whose version
// has not been validated yet (the descent prefetch in the indexes relies
// on exactly that).
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Prefetches the first `bytes` bytes starting at `p`, one request per
// cacheline (e.g. a node header plus the start of its key array).
inline void PrefetchSpan(const void* p, std::size_t bytes) {
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += kCachelineSize) {
    PrefetchRead(c + off);
  }
}

// A CPU relaxation hint for busy-wait loops (PAUSE on x86, YIELD on ARM).
inline void CpuPause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Yields the CPU to the OS scheduler. Local spinning in queue-based locks is
// normally cheap on a large multicore, but on an oversubscribed machine the
// predecessor may not even be running; yielding keeps the algorithms live.
inline void CpuYield() {
#if defined(__unix__) || defined(__APPLE__)
  sched_yield();
#endif
}

// Issues `n` PAUSE hints back to back. The one busy-spin primitive shared
// by SpinWait and ExponentialBackoff, so the model checker has a single
// place where real cycles would burn (and replaces with a scheduler yield).
inline void SpinCycles(uint32_t n) {
  for (uint32_t i = 0; i < n; ++i) CpuPause();
}

// Spin-then-yield policy: issue cheap PAUSE hints for a bounded number of
// iterations, then start donating the time slice. Every spin loop in the
// library funnels through one of these objects so the oversubscription
// behaviour is uniform and testable — and so the model scheduler can
// intercept every wait point through one seam.
class SpinWait {
 public:
  static constexpr uint32_t kSpinsBeforeYield = 128;

  // Called once per failed spin-loop iteration.
  void Spin() {
    ++count_;
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
    // Model build: block on the scheduler until the object this thread
    // last loaded is written. Burning PAUSE cycles would livelock the
    // cooperative exploration — no other thread runs until we yield.
    model::SpinYield();
#else
    if (count_ < kSpinsBeforeYield) {
      CpuPause();
    } else {
      CpuYield();
    }
#endif
  }

  void Reset() { count_ = 0; }

  uint32_t count() const { return count_; }

 private:
  uint32_t count_ = 0;
};

#if defined(__GNUC__) || defined(__clang__)
#define OPTIQL_LIKELY(x) (__builtin_expect(!!(x), 1))
#define OPTIQL_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define OPTIQL_LIKELY(x) (x)
#define OPTIQL_UNLIKELY(x) (x)
#endif

}  // namespace optiql

#endif  // OPTIQL_COMMON_PLATFORM_H_
