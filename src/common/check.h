// Minimal always-on invariant checking. The library does not use exceptions;
// a violated invariant in lock or index internals is a program bug and
// aborts with a location message.
#ifndef OPTIQL_COMMON_CHECK_H_
#define OPTIQL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OPTIQL_CHECK(cond)                                              \
  do {                                                                  \
    if (OPTIQL_UNLIKELY(!(cond))) {                                     \
      std::fprintf(stderr, "OPTIQL_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

// Opt-in lock-word state-machine checking (-DOPTIQL_CHECK_INVARIANTS=ON).
//
// The optimistic protocols are structurally invisible to ASan/TSan: their
// reads race by design and their bugs (spurious upgrade, double release,
// version regression, freed queue node in a live queue) corrupt the lock
// *word*, not the heap. The checked build asserts the word/qnode state
// machine at every transition instead. Costs an extra relaxed load or two
// per transition; compiled out entirely in release builds.
//
// The message prefix is stable ("OPTIQL_INVARIANT") so death tests can
// match on it.
//
// Under the model checker (-DOPTIQL_MODEL=ON) the same predicates become
// part of the explored spec: the condition is evaluated inside a
// QuietScope (its atomic probes are instrumentation, not protocol steps,
// so they must not create scheduling points), and a violation is routed to
// the explorer — which prints the schedule that reached it — instead of
// aborting the process.
#if defined(OPTIQL_MODEL) && OPTIQL_MODEL
#define OPTIQL_INVARIANT(cond, msg)                                     \
  do {                                                                  \
    ::optiql::model::QuietScope optiql_invariant_quiet;                 \
    if (OPTIQL_UNLIKELY(!(cond))) {                                     \
      ::optiql::model::InvariantFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                   \
  } while (0)
#elif defined(OPTIQL_CHECK_INVARIANTS) && OPTIQL_CHECK_INVARIANTS
#define OPTIQL_INVARIANT(cond, msg)                                        \
  do {                                                                     \
    if (OPTIQL_UNLIKELY(!(cond))) {                                        \
      std::fprintf(stderr, "OPTIQL_INVARIANT failed at %s:%d: %s — %s\n",  \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
#else
// The condition still has to compile (and is discarded), so checked-build
// expressions cannot rot and locals used only in invariants stay "used".
#define OPTIQL_INVARIANT(cond, msg) \
  do {                              \
    if (false) {                    \
      (void)(cond);                 \
    }                               \
  } while (0)
#endif

#include "common/platform.h"

#endif  // OPTIQL_COMMON_CHECK_H_
