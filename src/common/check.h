// Minimal always-on invariant checking. The library does not use exceptions;
// a violated invariant in lock or index internals is a program bug and
// aborts with a location message.
#ifndef OPTIQL_COMMON_CHECK_H_
#define OPTIQL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OPTIQL_CHECK(cond)                                              \
  do {                                                                  \
    if (OPTIQL_UNLIKELY(!(cond))) {                                     \
      std::fprintf(stderr, "OPTIQL_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#include "common/platform.h"

#endif  // OPTIQL_COMMON_CHECK_H_
