// Memory-optimized B+-tree in the BTreeOLC style (Leis & Wang; paper §6.1),
// parameterized over the node size and the synchronization policy:
//
//   * BTreeOlcPolicy            — classic optimistic lock coupling with the
//                                 centralized OptLock everywhere (baseline).
//   * BTreeOptiQlPolicy<L,AOR>  — the paper's adapted protocol (Algorithm
//                                 4): inner nodes keep OptLock, leaves use
//                                 OptiQL (or OptiQL-NOR); writers lock the
//                                 leaf *directly* instead of upgrading, then
//                                 validate the parent. With AOR the
//                                 opportunistic-read window inherited during
//                                 handover stays open through the in-leaf
//                                 search (§6.1 last paragraph).
//   * BTreeCouplingPolicy<L>    — traditional pessimistic lock coupling for
//                                 reader-writer locks (MCS-RW, pthread).
//
// Structural decisions (all standard for memory-optimized B+-trees):
//   * Small nodes (default 256 bytes, Figure 11 sweeps 256B..16KB).
//   * Eager top-down splits: a full node is split while descending, so a
//     writer holds at most two locks and SMOs never propagate upwards.
//   * Eager top-down merges, mirroring the split discipline: a remove that
//     passes an underfull node (quarter-full) merges it with a sibling or
//     refills it by rotation while descending, holding at most parent +
//     node + sibling. Unlinked nodes are marked obsolete on their lock and
//     retired through the epoch layer, so optimistic readers still parked
//     on them fail validation instead of touching freed memory; a root
//     that loses its last separator is collapsed onto its single child.
//
// Every public operation runs inside an EpochGuard; node memory retired by
// merges is reclaimed once all concurrent readers have moved on (same
// scheme ART uses for node growth).
//
// Concurrency discipline for optimistic readers: a value read from a node
// (child pointer, key, count) may be torn by a concurrent writer; it is
// therefore *never dereferenced or trusted* until the node's version has
// been re-validated. Counts are additionally clamped to the node capacity
// so even torn reads stay in bounds.
#ifndef OPTIQL_INDEX_BTREE_H_
#define OPTIQL_INDEX_BTREE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "common/platform.h"
#include "common/prefetch.h"
#include "common/simd.h"
#include "core/optiql.h"
#include "locks/mcs_rw_lock.h"
#include "locks/optlock.h"
#include "locks/shared_mutex_lock.h"
#include "qnode/qnode_pool.h"
#include "sync/epoch.h"
#include "sync/lock_telemetry.h"
#include "sync/txn_ops.h"

namespace optiql {

enum class BTreeProtocol { kOlc, kOptiQl, kCoupling };

struct BTreeOlcPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kOlc;
  static constexpr bool kAdjustableOpRead = false;
  static constexpr bool kInPlaceUpdates = false;
  using InnerLock = OptLock;
  using LeafLock = OptLock;
};

template <class QlLock, bool kAor = false>
struct BTreeOptiQlPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kOptiQl;
  static constexpr bool kAdjustableOpRead = kAor;
  static constexpr bool kInPlaceUpdates = false;
  using InnerLock = OptLock;
  using LeafLock = QlLock;
};

template <class RwLock>
struct BTreeCouplingPolicy {
  static constexpr BTreeProtocol kProtocol = BTreeProtocol::kCoupling;
  static constexpr bool kAdjustableOpRead = false;
  static constexpr bool kInPlaceUpdates = false;
  using InnerLock = RwLock;
  using LeafLock = RwLock;
};

// FB+-tree-style latch-free leaf value updates (see PAPERS.md): an Update/
// Upsert of an *existing* key publishes the new value with one atomic store
// instead of an exclusive leaf critical section, so concurrent optimistic
// readers of the leaf never restart. Structural needs (insert, remove,
// split) and validation failures fall back to the locked path unchanged.
// Opt-in per policy: range scans over an in-place tree get per-slot instead
// of per-range atomicity for racing value overwrites (DESIGN.md §10).
struct BTreeOlcInPlacePolicy : BTreeOlcPolicy {
  static constexpr bool kInPlaceUpdates = true;
};

template <class QlLock, bool kAor = false>
struct BTreeOptiQlInPlacePolicy : BTreeOptiQlPolicy<QlLock, kAor> {
  static constexpr bool kInPlaceUpdates = true;
};

template <class Key, class Value, class SyncPolicy = BTreeOlcPolicy,
          size_t kNodeBytes = 256>
class BTree {
 public:
  static constexpr BTreeProtocol kProtocol = SyncPolicy::kProtocol;
  static constexpr bool kAor = SyncPolicy::kAdjustableOpRead;
  static constexpr bool kInPlaceUpdates = SyncPolicy::kInPlaceUpdates;
  using InnerLock = typename SyncPolicy::InnerLock;
  using LeafLock = typename SyncPolicy::LeafLock;
  using InnerOps = TxnOps<InnerLock>;
  using LeafOps = TxnOps<LeafLock>;

  // In-place publication stores the value through std::atomic_ref while
  // readers copy it unsynchronized-then-validate, so the value must be a
  // single machine word; and the coupling protocol has no versioned leaf
  // lock to validate against.
  static_assert(!kInPlaceUpdates || kProtocol != BTreeProtocol::kCoupling,
                "in-place updates require a versioned (optimistic) leaf lock");
  static_assert(!kInPlaceUpdates ||
                    (std::is_trivially_copyable_v<Value> &&
                     sizeof(Value) <= 8 && alignof(Value) >= sizeof(Value)),
                "in-place updates publish the value with one atomic store; "
                "the value type must be one aligned machine word");

  BTree() { root_.store(new Leaf(), std::memory_order_release); }

  ~BTree() {
    FreeSubtree(root_.load(std::memory_order_acquire));
    // Nodes retired by merges may still sit on this thread's epoch list;
    // sweep what is provably safe so long-lived processes don't accumulate.
    EpochManager::Instance().ReclaimIfPossible();
  }

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Inserts (key, value). Returns false (no change) if the key exists.
  bool Insert(const Key& key, const Value& value) {
    return Write(key, &value, WriteKind::kInsert);
  }

  // Updates the value of an existing key; false if the key is absent.
  bool Update(const Key& key, const Value& value) {
    return Write(key, &value, WriteKind::kUpdate);
  }

  // Inserts or updates.
  void Upsert(const Key& key, const Value& value) {
    Write(key, &value, WriteKind::kUpsert);
  }

  // Removes the key; false if absent. Underfull nodes are merged with or
  // refilled from a sibling on the way down; emptied nodes are retired
  // through the epoch layer.
  bool Remove(const Key& key) {
    return Write(key, nullptr, WriteKind::kRemove);
  }

  // Point lookup; copies the value into `out`.
  bool Lookup(const Key& key, Value& out) const {
    EpochGuard guard;
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return LookupCoupling(key, out);
    } else {
      return LookupOptimistic(key, out);
    }
  }

  // Interleave bounds for LookupBatch: the lane ring lives on the stack,
  // and past ~32 in-flight descents the prefetches start evicting each
  // other instead of overlapping.
  static constexpr size_t kMaxBatchLanes = 32;
  static constexpr size_t kDefaultBatchLanes = 8;

  // Batched point lookup: runs up to `interleave` descents at once as a
  // ring of small state machines (AMAC / group-prefetch style), so the
  // per-level cache-miss chains of the in-flight lookups overlap instead
  // of serializing. One EpochGuard covers the whole batch. `found[i]` is
  // written for every i; `values[i]` only where `found[i]` is true.
  // Returns the number of hits. Results are identical to calling Lookup
  // per key in batch order. Not available for the pessimistic coupling
  // protocol (its lock-handover descent cannot be suspended mid-node), so
  // coupling trees fall back to the generic loop in index_ops.h.
  size_t LookupBatch(const Key* keys, size_t n, Value* values, bool* found,
                     size_t interleave = kDefaultBatchLanes) const
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    if (n == 0) return 0;
    EpochGuard guard;
    size_t lane_count = interleave < n ? interleave : n;
    if (lane_count > kMaxBatchLanes) lane_count = kMaxBatchLanes;
    if (lane_count <= 1) {
      // Amortized-guard loop of singles — the baseline the interleaved
      // path is benchmarked against, and the right choice for tiny
      // batches where lane bookkeeping costs more than it hides.
      size_t hits = 0;
      for (size_t i = 0; i < n; ++i) {
        found[i] = LookupOptimistic(keys[i], values[i]);
        if (found[i]) ++hits;
      }
      return hits;
    }
    return LookupInterleaved(keys, n, values, found, lane_count);
  }

  // Ascending range scan starting at `start` (inclusive); copies up to
  // `limit` pairs into `out`. Returns the number copied.
  size_t Scan(const Key& start, size_t limit,
              std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    if (limit == 0) return 0;
    EpochGuard guard;
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return ScanCoupling(start, limit, out);
    } else {
      return ScanOptimistic(start, limit, out);
    }
  }

  // Bottom-up bulk load of sorted, unique (key, value) pairs into an EMPTY
  // tree. Not thread-safe (call before sharing the tree). Leaves are filled
  // to ~90% so the first trickle of inserts does not split everywhere at
  // once. Aborts if the tree is non-empty or the input is not strictly
  // ascending.
  void BulkLoad(const std::vector<std::pair<Key, Value>>& pairs) {
    OPTIQL_CHECK(Size() == 0);
    if (pairs.empty()) return;
    const uint16_t per_leaf =
        std::max<uint16_t>(1, static_cast<uint16_t>(kLeafMax * 9 / 10));

    std::vector<NodeBase*> level_nodes;
    std::vector<Key> level_keys;  // Minimum key of each node after [0].
    Leaf* prev = nullptr;
    for (size_t i = 0; i < pairs.size();) {
      Leaf* leaf = new Leaf();
      live_nodes_.fetch_add(1, std::memory_order_relaxed);
      const size_t take = std::min<size_t>(per_leaf, pairs.size() - i);
      for (size_t j = 0; j < take; ++j) {
        if (i + j > 0) {
          OPTIQL_CHECK(pairs[i + j - 1].first < pairs[i + j].first);
        }
        leaf->keys[j] = pairs[i + j].first;
        leaf->values[j] = pairs[i + j].second;
      }
      leaf->count = static_cast<uint16_t>(take);
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
      if (!level_nodes.empty()) level_keys.push_back(leaf->keys[0]);
      level_nodes.push_back(leaf);
      i += take;
    }
    size_.store(pairs.size(), std::memory_order_release);

    // Build inner levels until a single root remains.
    uint16_t level = 1;
    const uint16_t per_inner =
        std::max<uint16_t>(2, static_cast<uint16_t>(kInnerMax * 9 / 10));
    while (level_nodes.size() > 1) {
      std::vector<NodeBase*> upper_nodes;
      std::vector<Key> upper_keys;
      for (size_t i = 0; i < level_nodes.size();) {
        Inner* inner = new Inner(level);
        live_nodes_.fetch_add(1, std::memory_order_relaxed);
        size_t children =
            std::min<size_t>(per_inner + 1u, level_nodes.size() - i);
        // Never leave a single orphan child for the next inner node.
        if (level_nodes.size() - i - children == 1) --children;
        inner->children[0] = level_nodes[i];
        for (size_t j = 1; j < children; ++j) {
          inner->keys[j - 1] = level_keys[i + j - 1];
          inner->children[j] = level_nodes[i + j];
        }
        inner->count = static_cast<uint16_t>(children - 1);
        if (!upper_nodes.empty()) upper_keys.push_back(level_keys[i - 1]);
        upper_nodes.push_back(inner);
        i += children;
      }
      level_nodes.swap(upper_nodes);
      level_keys.swap(upper_keys);
      ++level;
    }
    NodeBase* old_root = root_.load(std::memory_order_acquire);
    root_.store(level_nodes[0], std::memory_order_release);
    // LINT-ALLOW(raw-delete): BulkLoad is documented single-threaded; the
    // replaced initial tree was never visible to a concurrent reader.
    live_nodes_.fetch_sub(static_cast<int64_t>(FreeSubtree(old_root)),
                          std::memory_order_relaxed);  // The initial leaf.
  }

  // Number of live keys (exact when quiescent).
  size_t Size() const { return size_.load(std::memory_order_acquire); }

  int Height() const {
    return root_.load(std::memory_order_acquire)->level + 1;
  }

  // Number of live (reachable) nodes; retired-but-unreclaimed nodes are not
  // counted. Exact when quiescent — the steady-state metric for churn
  // workloads (a tree without merges grows this without bound).
  size_t NodeCount() const {
    return static_cast<size_t>(live_nodes_.load(std::memory_order_acquire));
  }

  // Single-threaded structural check for tests: sortedness, separator
  // bounds, level consistency and key count. Aborts on violation.
  void CheckInvariants() const {
    size_t keys = 0;
    CheckSubtree(root_.load(std::memory_order_acquire), nullptr, nullptr,
                 &keys);
    OPTIQL_CHECK(keys == Size());
  }

  static constexpr size_t LeafCapacity();
  static constexpr size_t InnerCapacity();

  // Operation statistics (relaxed counters; exact when quiescent). Restarts
  // quantify the optimistic protocols' wasted work under contention — the
  // paper's CAS-retry-storm story in numbers.
  struct Stats {
    uint64_t read_restarts;
    uint64_t write_restarts;
    uint64_t leaf_splits;
    uint64_t inner_splits;
    uint64_t leaf_merges;
    uint64_t inner_merges;
    uint64_t rebalance_borrows;
    uint64_t root_collapses;
    uint64_t nodes_retired;
  };

  Stats GetStats() const {
    return Stats{read_restarts_.load(std::memory_order_relaxed),
                 write_restarts_.load(std::memory_order_relaxed),
                 leaf_splits_.load(std::memory_order_relaxed),
                 inner_splits_.load(std::memory_order_relaxed),
                 leaf_merges_.load(std::memory_order_relaxed),
                 inner_merges_.load(std::memory_order_relaxed),
                 rebalance_borrows_.load(std::memory_order_relaxed),
                 root_collapses_.load(std::memory_order_relaxed),
                 nodes_retired_.load(std::memory_order_relaxed)};
  }

  void ResetStats() {
    read_restarts_.store(0, std::memory_order_relaxed);
    write_restarts_.store(0, std::memory_order_relaxed);
    leaf_splits_.store(0, std::memory_order_relaxed);
    inner_splits_.store(0, std::memory_order_relaxed);
    leaf_merges_.store(0, std::memory_order_relaxed);
    inner_merges_.store(0, std::memory_order_relaxed);
    rebalance_borrows_.store(0, std::memory_order_relaxed);
    root_collapses_.store(0, std::memory_order_relaxed);
    nodes_retired_.store(0, std::memory_order_relaxed);
  }

 private:
  // Test peer for the checked-invariant build: drives PublishSplit with
  // deliberately wrong lock states (tests/invariant_death_test.cc).
  friend struct BTreeTestPeer;

  // Accumulates (attempts - 1) restarts into a stats counter on scope exit.
  class RestartCounter {
   public:
    explicit RestartCounter(std::atomic<uint64_t>& sink) : sink_(sink) {}
    ~RestartCounter() {
      if (attempts_ > 1) {
        sink_.fetch_add(attempts_ - 1, std::memory_order_relaxed);
      }
    }
    void Tick() { ++attempts_; }

   private:
    std::atomic<uint64_t>& sink_;
    uint64_t attempts_ = 0;
  };

  enum class WriteKind { kInsert, kUpdate, kUpsert, kRemove };

  struct NodeBase {
    uint16_t level;  // 0 = leaf.
    uint16_t count;  // Entries; racy reads are clamped by users.
  };

  struct Inner;

  // Nodes are cacheline-aligned so the kNodeBytes budget maps to whole
  // lines: the header + lock always share line 0 (one prefetch covers
  // them) and key arrays start at a predictable line.
  struct alignas(kCachelineSize) Leaf : NodeBase {
    LeafLock lock;
    Leaf* next = nullptr;  // Right sibling (for scans).

    static constexpr size_t kHeader =
        sizeof(NodeBase) + sizeof(LeafLock) + sizeof(Leaf*);
    static constexpr size_t kMax =
        (kNodeBytes > kHeader + sizeof(Key) + sizeof(Value))
            ? (kNodeBytes - kHeader) / (sizeof(Key) + sizeof(Value))
            : 2;

    Key keys[kMax];
    Value values[kMax];

    Leaf() {
      this->level = 0;
      this->count = 0;
    }

    // First position with keys[pos] >= key. `n` must already be clamped
    // (LoadCount) so the kernel never reads outside the array even when
    // the count was torn by a concurrent writer.
    uint16_t LowerBound(const Key& key, uint16_t n) const {
      return simd::LowerBound(keys, n, key);
    }
  };

  struct alignas(kCachelineSize) Inner : NodeBase {
    InnerLock lock;

    static constexpr size_t kHeader = sizeof(NodeBase) + sizeof(InnerLock);
    // `count` keys and `count + 1` children must fit. Floor of 3: splitting
    // an inner with fewer than 3 keys would leave the right sibling with
    // none (mid = count/2 keys stay, one moves up, count - mid - 1 move).
    static constexpr size_t kMaxRaw =
        (kNodeBytes > kHeader + sizeof(Key) + 2 * sizeof(void*))
            ? (kNodeBytes - kHeader - sizeof(void*)) /
                  (sizeof(Key) + sizeof(void*))
            : 3;
    static constexpr size_t kMax = kMaxRaw < 3 ? 3 : kMaxRaw;

    Key keys[kMax];
    NodeBase* children[kMax + 1];

    explicit Inner(uint16_t lvl) {
      this->level = lvl;
      this->count = 0;
    }

    // Child index to follow for `key`: first separator > key. `n` must be
    // clamped by the caller (same torn-count contract as Leaf::LowerBound).
    uint16_t ChildIndex(const Key& key, uint16_t n) const {
      return simd::UpperBound(keys, n, key);
    }

    void InsertAt(uint16_t pos, const Key& separator, NodeBase* right) {
      for (uint16_t i = this->count; i > pos; --i) {
        keys[i] = keys[i - 1];
        children[i + 1] = children[i];
      }
      keys[pos] = separator;
      children[pos + 1] = right;
      ++this->count;
    }
  };

  static constexpr uint16_t kLeafMax = static_cast<uint16_t>(Leaf::kMax);
  static constexpr uint16_t kInnerMax = static_cast<uint16_t>(Inner::kMax);
  static_assert(Leaf::kMax >= 2 && Inner::kMax >= 3,
                "node geometry too small to split safely");

  // Layout assumptions the search/prefetch kernels rely on: the packed
  // header (level + count) is exactly 4 bytes, nodes start on a cacheline
  // (so the header + lock share line 0 and kNodeBytes-sized nodes do not
  // straddle an extra line), and the real node size stays within the
  // nominal budget rounded to whole lines — with at most one line of
  // slack for header padding (reachable only for exotic Key/Value sizes
  // or floor-clamped tiny geometries).
  static constexpr size_t kAlignedNodeBudget =
      ((kNodeBytes + kCachelineSize - 1) / kCachelineSize) * kCachelineSize;
  static_assert(sizeof(NodeBase) == 4, "packed node header grew");
  static_assert(alignof(Leaf) == kCachelineSize &&
                    alignof(Inner) == kCachelineSize,
                "nodes must be cacheline-aligned");
  static_assert(sizeof(Leaf) % kCachelineSize == 0 &&
                    sizeof(Inner) % kCachelineSize == 0,
                "node sizes must be whole cachelines");
  static_assert(sizeof(Leaf) <= kAlignedNodeBudget + kCachelineSize,
                "leaf layout exceeds the node-size budget");
  static_assert(sizeof(Inner) <= kAlignedNodeBudget + kCachelineSize,
                "inner layout exceeds the node-size budget");

  // Whole-node line count for the shared prefetch helpers: a batch lane
  // about to search a leaf warms every line (values included), not just
  // the header.
  static constexpr size_t kLeafLines = PrefetchLinesFor(sizeof(Leaf));

  // Warm the lines a descent touches next: line 0 (header + lock + the
  // leading keys) and, for multi-line nodes, the next line of keys. Safe
  // on unvalidated child pointers — prefetch never faults.
  static void PrefetchNodeHeader(const NodeBase* node) {
    PrefetchLines<(kNodeBytes > kCachelineSize) ? 2 : 1>(node);
  }

  // Underflow thresholds for delete-time rebalancing (quarter-full, the
  // usual lazy bound): a remove descending past a node at or below its
  // minimum merges it with a sibling or refills it by rotation. kInnerMin
  // is at least 1 so a child merge — which costs the parent one separator —
  // only runs under a parent keeping >= 1 key, preserving the non-root
  // inner invariant; rebalances that can make no progress (tiny geometry)
  // back out without touching anything.
  static constexpr uint16_t kLeafMin = kLeafMax / 4;
  static constexpr uint16_t kInnerMin =
      kInnerMax / 4 > 1 ? kInnerMax / 4 : 1;

  static bool IsLeaf(const NodeBase* node) { return node->level == 0; }
  static Leaf* AsLeaf(NodeBase* node) { return static_cast<Leaf*>(node); }
  static Inner* AsInner(NodeBase* node) { return static_cast<Inner*>(node); }

  // Invariant support: exclusive-lock introspection across the leaf/inner
  // lock types. Only instantiated for versioned protocols (the coupling
  // branch of PublishSplit is `if constexpr`-discarded, and McsRwLock has
  // no IsLockedEx).
  static bool NodeIsLockedEx(NodeBase* node) {
    return IsLeaf(node) ? AsLeaf(node)->lock.IsLockedEx()
                        : AsInner(node)->lock.IsLockedEx();
  }
  static const Leaf* AsLeaf(const NodeBase* node) {
    return static_cast<const Leaf*>(node);
  }
  static const Inner* AsInner(const NodeBase* node) {
    return static_cast<const Inner*>(node);
  }

  // Clamped count for racy reads.
  static uint16_t LoadCount(const NodeBase* node, uint16_t max) {
    const uint16_t n = node->count;
    return n > max ? max : n;
  }

  // --- Optimistic read-lock helpers (OLC and OptiQL protocols) ---
  //
  // ReadLockOrRestart spins until the lock admits readers and returns the
  // snapshot, or reports failure once the node is marked obsolete (it was
  // merged away; spinning would never end because a retired lock admits no
  // reader). Validate re-checks the snapshot. All version access goes
  // through the TxnOps<Lock> contract (sync/txn_ops.h), so any versioned
  // lock family works here and the transaction layer validates against the
  // very same words.

  template <class Lock>
  static bool ReadLockOrRestart(const Lock& lock, uint64_t& v) {
    SpinWait wait;
    while (!TxnOps<Lock>::StableVersion(lock, v)) {
      if (TxnOps<Lock>::IsObsolete(lock)) return false;
      wait.Spin();
    }
    return true;
  }

  static bool ReadLockNode(const NodeBase* node, uint64_t& v) {
    return IsLeaf(node) ? ReadLockOrRestart(AsLeaf(node)->lock, v)
                        : ReadLockOrRestart(AsInner(node)->lock, v);
  }

  template <class Lock>
  static bool Validate(const Lock& lock, uint64_t v) {
    return TxnOps<Lock>::ValidateVersion(lock, v);
  }

  // Exclusive-mode wrappers over the same contract for locks whose
  // ExHandle is stateless (OptLock inner nodes and OLC leaves): the empty
  // handle is created and dropped in place. Queue-based leaf locks thread
  // a real handle instead — the static_assert keeps that honest.

  template <class Lock>
  static void LockNodeEx(Lock& lock, int slot) {
    static_assert(std::is_empty_v<typename TxnOps<Lock>::ExHandle>,
                  "stateful exclusive handle dropped");
    (void)TxnOps<Lock>::LockEx(lock, slot);
  }

  template <class Lock>
  static bool TryUpgradeLock(Lock& lock, uint64_t v) {
    static_assert(std::is_empty_v<typename TxnOps<Lock>::ExHandle>,
                  "stateful exclusive handle dropped");
    typename TxnOps<Lock>::ExHandle handle{};
    return TxnOps<Lock>::TryUpgrade(lock, v, /*slot=*/0, handle);
  }

  template <class Lock>
  static void UnlockNodeEx(Lock& lock) {
    static_assert(std::is_empty_v<typename TxnOps<Lock>::ExHandle>,
                  "stateful exclusive handle dropped");
    TxnOps<Lock>::UnlockEx(lock, typename TxnOps<Lock>::ExHandle{});
  }

  template <class Lock>
  static void UnlockNodeExNoBump(Lock& lock) {
    static_assert(std::is_empty_v<typename TxnOps<Lock>::ExHandle>,
                  "stateful exclusive handle dropped");
    TxnOps<Lock>::UnlockExNoBump(lock, typename TxnOps<Lock>::ExHandle{});
  }

  template <class Lock>
  static void UnlockNodeExObsolete(Lock& lock) {
    static_assert(std::is_empty_v<typename TxnOps<Lock>::ExHandle>,
                  "stateful exclusive handle dropped");
    TxnOps<Lock>::UnlockExObsolete(lock, typename TxnOps<Lock>::ExHandle{});
  }

  // --- Optimistic traversal ---

  bool LookupOptimistic(const Key& key, Value& out) const {
    RestartCounter restarts(read_restarts_);
    while (true) {
      restarts.Tick();
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!IsLeaf(node)) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        // Overlap the child's cache miss with the parent validation; the
        // pointer may be torn, but prefetch cannot fault and the value is
        // only dereferenced after the validation below succeeds.
        PrefetchNodeHeader(child);
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        // `child` is now trustworthy; read its version, then re-validate
        // the parent so the two reads are mutually consistent.
        uint64_t cv;
        if (!ReadLockNode(child, cv)) {
          restart = true;
          break;
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
      if (restart) continue;

      const Leaf* leaf = AsLeaf(node);
      const uint16_t n = LoadCount(leaf, kLeafMax);
      const uint16_t pos = leaf->LowerBound(key, n);
      bool found = false;
      Value value{};
      if (pos < n && leaf->keys[pos] == key) {
        found = true;
        value = leaf->values[pos];
      }
      if (!Validate(leaf->lock, v)) continue;
      if (found) out = value;
      return found;
    }
  }

  // --- Interleaved (AMAC-style) batched descent ---
  //
  // Each in-flight lookup is a small state machine (a "lane"). A lane is
  // always in one of two states: it either computes and PREFETCHES the
  // next child under a validated parent snapshot, or it ENTERS a child it
  // prefetched on its previous turn by version-locking it and
  // re-validating the parent — exactly the LookupOptimistic protocol,
  // split at the prefetch point. The scheduler visits the lanes
  // round-robin, so between issuing a lane's prefetch and touching that
  // memory it advances every other lane; that turns one serial cache-miss
  // chain per descent into `lane_count` overlapping ones. A validation
  // failure restarts only the failing lane from the root — the rest of
  // the group never stalls.

  struct BatchLane {
    const NodeBase* node = nullptr;   // Position (validated snapshot).
    const NodeBase* child = nullptr;  // Prefetched, not yet entered.
    uint64_t v = 0;                   // Version snapshot of `node`.
    size_t op = 0;                    // Index into the caller's batch.
    bool entering = false;            // Next step: enter `child`.
    bool active = false;
  };

  // (Re)points a lane at the root with a fresh version snapshot. Named
  // into the read-lock helper family on purpose: the open snapshot it
  // returns with is validated by the lane's next scheduler step.
  void ReadLockRootLane(BatchLane& lane) const {
    while (true) {
      const NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      // The root may have been replaced (split / collapse) between the
      // pointer load and the snapshot; re-check identity like
      // LookupOptimistic does.
      if (node != root_.load(std::memory_order_acquire)) continue;
      lane.node = node;
      lane.v = v;
      lane.entering = false;
      return;
    }
  }

  size_t LookupInterleaved(const Key* keys, size_t n, Value* values,
                           bool* found, size_t lane_count) const {
    RestartCounter restarts(read_restarts_);
    restarts.Tick();  // The whole batch is one attempt...
    BatchLane lanes[kMaxBatchLanes];
    size_t next_op = 0;
    size_t active = 0;
    for (size_t i = 0; i < lane_count; ++i) {
      lanes[i].op = next_op++;
      lanes[i].active = true;
      ReadLockRootLane(lanes[i]);
      ++active;
    }

    size_t hits = 0;
    size_t l = 0;
    while (active > 0) {
      BatchLane& lane = lanes[l];
      l = (l + 1 == lane_count) ? 0 : l + 1;
      if (!lane.active) continue;

      if (lane.entering) {
        // Enter the child prefetched on this lane's previous turn:
        // snapshot its version, then re-validate the parent so the two
        // reads are mutually consistent.
        uint64_t cv;
        const bool child_locked = ReadLockNode(lane.child, cv);
        if (!child_locked || !Validate(AsInner(lane.node)->lock, lane.v)) {
          restarts.Tick();  // ...and each lane restart adds one.
          ReadLockRootLane(lane);
          continue;
        }
        lane.node = lane.child;
        lane.v = cv;
        lane.entering = false;
        continue;
      }

      if (!IsLeaf(lane.node)) {
        const Inner* inner = AsInner(lane.node);
        const uint16_t cnt = LoadCount(inner, kInnerMax);
        const NodeBase* child =
            inner->children[inner->ChildIndex(keys[lane.op], cnt)];
        // Issue the prefetch now; the (possibly torn) pointer is only
        // dereferenced after the validation below succeeds — and only
        // after every other lane has taken a turn, which is the latency
        // the prefetch hides. A level-1 inner's children are leaves:
        // warm the whole leaf so the key/value search hits cache.
        if (inner->level == 1) {
          PrefetchLines<kLeafLines>(child);
        } else {
          PrefetchNodeHeader(child);
        }
        if (!Validate(inner->lock, lane.v)) {
          restarts.Tick();
          ReadLockRootLane(lane);
          continue;
        }
        lane.child = child;
        lane.entering = true;
        continue;
      }

      const Leaf* leaf = AsLeaf(lane.node);
      const uint16_t cnt = LoadCount(leaf, kLeafMax);
      const uint16_t pos = leaf->LowerBound(keys[lane.op], cnt);
      bool hit = false;
      Value value{};
      if (pos < cnt && leaf->keys[pos] == keys[lane.op]) {
        hit = true;
        value = leaf->values[pos];
      }
      if (!Validate(leaf->lock, lane.v)) {
        restarts.Tick();
        ReadLockRootLane(lane);
        continue;
      }
      found[lane.op] = hit;
      if (hit) {
        values[lane.op] = value;
        ++hits;
      }
      if (next_op < n) {
        lane.op = next_op++;
        ReadLockRootLane(lane);
      } else {
        lane.active = false;
        --active;
      }
    }
    return hits;
  }

  size_t ScanOptimistic(const Key& start, size_t limit,
                        std::vector<std::pair<Key, Value>>& out) const {
    RestartCounter restarts(read_restarts_);
    while (true) {
      restarts.Tick();
      out.clear();
      // Descend to the first candidate leaf.
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!IsLeaf(node)) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(start, n)];
        PrefetchNodeHeader(child);  // Same unvalidated-prefetch as Lookup.
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        uint64_t cv;
        if (!ReadLockNode(child, cv)) {
          restart = true;
          break;
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
      if (restart) continue;

      // Walk the leaf chain, copying validated batches.
      const Leaf* leaf = AsLeaf(node);
      bool failed = false;
      while (leaf != nullptr && out.size() < limit) {
        // Read the successor first and start pulling it in while this
        // leaf's batch is copied; the (possibly torn) pointer is only
        // chased after the validation below succeeds.
        const Leaf* next = leaf->next;
        if (next != nullptr) PrefetchNodeHeader(next);
        const uint16_t n = LoadCount(leaf, kLeafMax);
        std::pair<Key, Value> batch[Leaf::kMax];
        uint16_t batch_size = 0;
        for (uint16_t i = leaf->LowerBound(start, n);
             i < n; ++i) {
          batch[batch_size++] = {leaf->keys[i], leaf->values[i]};
        }
        if (!Validate(leaf->lock, v)) {
          failed = true;
          break;
        }
        for (uint16_t i = 0; i < batch_size && out.size() < limit; ++i) {
          out.push_back(batch[i]);
        }
        if (next == nullptr || out.size() >= limit) break;
        uint64_t nv;
        if (!ReadLockOrRestart(next->lock, nv)) {
          failed = true;
          break;
        }
        // Two-step handover, as in the descent: re-validate this leaf
        // after snapshotting `next`. Leaf rotations move keys across this
        // boundary with only version bumps (no obsolete mark), so without
        // the re-check a rotation landing between the batch validation
        // above and the next-leaf snapshot could make the scan miss a key
        // (moved next->current) or return one twice (moved current->next).
        if (!Validate(leaf->lock, v)) {
          failed = true;
          break;
        }
        v = nv;
        leaf = next;
      }
      if (failed) continue;
      return out.size();
    }
  }

  // --- Pessimistic (coupling) traversal ---
  //
  // Hand-over-hand coupling is outside what Clang's thread-safety analysis
  // can express: the set of held locks is data-dependent (each iteration
  // acquires child then releases parent), so every coupling function below
  // opts out with OPTIQL_NO_THREAD_SAFETY_ANALYSIS. These paths are covered
  // by the optimistic-protocol linter's pairing rule and the invariant
  // build instead.

  // Coupling goes through the slot-based shared/exclusive surface of the
  // same TxnOps contract (InnerLock == LeafLock for coupling policies).
  using POps = TxnOps<InnerLock>;

  bool LookupCoupling(const Key& key,
                      Value& out) const OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/true, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/true, slot);
        continue;
      }
      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        NodeBase* child =
            inner->children[inner->ChildIndex(key, inner->count)];
        PrefetchNodeHeader(child);  // Warm the child's lock word.
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/true, child_slot);
        UnlockOf(node, /*shared=*/true, slot);
        node = child;
        slot = child_slot;
      }
      Leaf* leaf = AsLeaf(node);
      const uint16_t pos = leaf->LowerBound(key, leaf->count);
      const bool found = pos < leaf->count && leaf->keys[pos] == key;
      if (found) out = leaf->values[pos];
      UnlockOf(node, /*shared=*/true, slot);
      return found;
    }
  }

  size_t ScanCoupling(const Key& start, size_t limit,
                      std::vector<std::pair<Key, Value>>& out) const
      OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/true, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/true, slot);
        continue;
      }
      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        NodeBase* child =
            inner->children[inner->ChildIndex(start, inner->count)];
        PrefetchNodeHeader(child);  // Warm the child's lock word.
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/true, child_slot);
        UnlockOf(node, /*shared=*/true, slot);
        node = child;
        slot = child_slot;
      }
      Leaf* leaf = AsLeaf(node);
      while (leaf != nullptr && out.size() < limit) {
        for (uint16_t i = leaf->LowerBound(start, leaf->count);
             i < leaf->count && out.size() < limit; ++i) {
          out.push_back({leaf->keys[i], leaf->values[i]});
        }
        Leaf* next = leaf->next;
        if (next == nullptr || out.size() >= limit) break;
        PrefetchNodeHeader(next);
        const int next_slot = 1 - slot;
        POps::LockSh(next->lock, next_slot);
        POps::UnlockSh(leaf->lock, slot);
        leaf = next;
        slot = next_slot;
      }
      POps::UnlockSh(leaf->lock, slot);
      return out.size();
    }
  }

  void LockOf(NodeBase* node, bool shared,
              int slot) const OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    if (IsLeaf(node)) {
      if (shared) {
        POps::LockSh(AsLeaf(node)->lock, slot);
      } else {
        POps::LockEx(AsLeaf(node)->lock, slot);
      }
    } else {
      if (shared) {
        POps::LockSh(AsInner(node)->lock, slot);
      } else {
        POps::LockEx(AsInner(node)->lock, slot);
      }
    }
  }

  void UnlockOf(NodeBase* node, bool shared,
                int slot) const OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    if (IsLeaf(node)) {
      if (shared) {
        POps::UnlockSh(AsLeaf(node)->lock, slot);
      } else {
        POps::UnlockEx(AsLeaf(node)->lock, slot);
      }
    } else {
      if (shared) {
        POps::UnlockSh(AsInner(node)->lock, slot);
      } else {
        POps::UnlockEx(AsInner(node)->lock, slot);
      }
    }
  }

  // --- Write paths ---

  bool Write(const Key& key, const Value* value, WriteKind kind) {
    EpochGuard guard;
    if constexpr (kProtocol == BTreeProtocol::kCoupling) {
      return WriteCoupling(key, value, kind);
    } else {
      return WriteOptimistic(key, value, kind);
    }
  }

  // Shared by OLC and OptiQL protocols: optimistic descent with eager
  // inner-node splits (OptLock-style upgrades on inner nodes), then a
  // protocol-specific leaf step.
  bool WriteOptimistic(const Key& key, const Value* value, WriteKind kind) {
    RestartCounter restarts(write_restarts_);
    while (true) {
      restarts.Tick();
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      if (node != root_.load(std::memory_order_acquire)) continue;

      Inner* parent = nullptr;
      uint64_t pv = 0;
      bool parent_is_root = false;
      bool restart = false;

      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        // Eager split keeps the instability scope at parent+node.
        if (NeedsSplitForWrite(kind) && inner->count == kInnerMax) {
          if (!SplitInnerEagerly(parent, pv, inner, v)) {
            restart = true;
            break;
          }
          restart = true;  // Structure changed; re-traverse.
          break;
        }
        // Eager merge mirrors the eager split: fix an underfull inner node
        // while descending for a remove, so SMOs never propagate upwards.
        if (kind == WriteKind::kRemove && parent != nullptr &&
            inner->count <= kInnerMin) {
          bool screen_restart = false;
          if (RebalanceInnerMightHelp(parent, pv, parent_is_root, inner,
                                      &screen_restart)) {
            if (RebalanceInner(parent, pv, parent_is_root, inner, v)) {
              restart = true;
              break;
            }
          } else if (screen_restart) {
            restart = true;
            break;
          }
          // No profitable rebalance: every lock was released without a
          // version bump (or none was taken at all), so the snapshots stay
          // valid — keep descending.
        }
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        PrefetchNodeHeader(child);  // Same unvalidated-prefetch as Lookup.
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        uint64_t cv;
        if (!ReadLockNode(child, cv)) {
          restart = true;
          break;
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        parent_is_root = parent == nullptr;
        parent = inner;
        pv = v;
        node = child;
        v = cv;
      }
      if (restart) continue;

      bool result = false;
      if constexpr (kInPlaceUpdates) {
        // Latch-free point update: for an existing key, publish the value
        // with one atomic store under a version-preserving micro-window, so
        // overlapping optimistic readers never restart. Falls back to the
        // locked path for misses needing insertion and lost races.
        if (kind == WriteKind::kUpdate || kind == WriteKind::kUpsert) {
          const InPlaceStatus ip =
              LeafUpdateInPlace(AsLeaf(node), v, key, value, kind, &result);
          if (ip == InPlaceStatus::kDone) return result;
          if (ip == InPlaceStatus::kRestart) continue;
          // kFallback: take the locked leaf path below.
        }
      }
      LeafWriteStatus status;
      if constexpr (kProtocol == BTreeProtocol::kOptiQl) {
        status = LeafWriteOptiQl(AsLeaf(node), parent, pv, parent_is_root,
                                 key, value, kind, &result);
      } else {
        status = LeafWriteOlc(AsLeaf(node), v, parent, pv, parent_is_root,
                              key, value, kind, &result);
      }
      if (status == LeafWriteStatus::kRestart) continue;
      return result;
    }
  }

  enum class LeafWriteStatus { kDone, kRestart };

  enum class InPlaceStatus { kDone, kRestart, kFallback };

  // Latch-free leaf value overwrite (FB+-tree style, ISSUE 6 tentpole (b)).
  //
  // Soundness: a pure store-then-validate scheme is unsound here, because a
  // concurrent locked writer can shift slots between our validated search
  // and our store, landing the store in a *different* key's slot (validation
  // would detect but not undo the corruption). Instead the store is
  // published under a version-preserving micro-window:
  //
  //   1. search the leaf optimistically, then Validate(v) — pos is the
  //      key's slot as of version v;
  //   2. TryUpgrade(v): success proves the word never changed since the
  //      snapshot, so no writer intervened and pos is still the slot;
  //   3. one atomic release-store of the 8-byte value;
  //   4. ReleaseExNoBump: the word returns to exactly v.
  //
  // Because the version is preserved, optimistic readers overlapping the
  // update never restart — from the reader side the update is latch-free;
  // they observe either the old or the new value atomically. No key,
  // count, or structure changes, so concurrent writers' validated searches
  // stay correct, and any structural writer bumps the version, which makes
  // our TryUpgrade fail and routes us to the locked path.
  InPlaceStatus LeafUpdateInPlace(Leaf* leaf, uint64_t v, const Key& key,
                                  const Value* value, WriteKind kind,
                                  bool* result) {
    const uint16_t n = LoadCount(leaf, kLeafMax);
    const uint16_t pos = leaf->LowerBound(key, n);
    const bool exists = pos < n && leaf->keys[pos] == key;
    if (!Validate(leaf->lock, v)) return InPlaceStatus::kRestart;
    if (!exists) {
      if (kind == WriteKind::kUpdate) {
        // Validated miss: the key is genuinely absent at version v.
        *result = false;
        return InPlaceStatus::kDone;
      }
      // Upsert of a missing key needs an insertion: structural, locked path.
      return InPlaceStatus::kFallback;
    }
    typename LeafOps::ExHandle handle{};
    if (!LeafOps::TryUpgrade(leaf->lock, v, /*slot=*/0, handle)) {
      // Lost the race (writer queued, or an OPREAD window is open): the
      // locked path will line up in the queue instead of spinning here.
      LockTelemetry::Count(LockTelemetry::kInPlaceFallback);
      return InPlaceStatus::kFallback;
    }
    std::atomic_ref<Value>(leaf->values[pos])
        .store(*value, std::memory_order_release);
    LeafOps::UnlockExNoBump(leaf->lock, handle);
    LockTelemetry::Count(LockTelemetry::kInPlaceUpdate);
    *result = true;
    return InPlaceStatus::kDone;
  }

  static constexpr bool NeedsSplitForWrite(WriteKind kind) {
    return kind == WriteKind::kInsert || kind == WriteKind::kUpsert;
  }

  // Splits a full inner node while descending (OLC): upgrade parent (or
  // verify we own the root), upgrade the node, split, then restart.
  // Returns false if any lock step failed (caller restarts either way).
  bool SplitInnerEagerly(Inner* parent, uint64_t pv, Inner* inner,
                         uint64_t v) {
    if (parent != nullptr) {
      if (!TryUpgradeLock(parent->lock, pv)) return false;
    }
    if (!TryUpgradeLock(inner->lock, v)) {
      if (parent != nullptr) UnlockNodeEx(parent->lock);
      return false;
    }
    if (parent == nullptr &&
        root_.load(std::memory_order_acquire) != inner) {
      UnlockNodeEx(inner->lock);
      return false;
    }
    if (parent != nullptr && parent->count == kInnerMax) {
      // Parent filled up since we passed it; retry from the top (it will be
      // split eagerly on the next descent).
      UnlockNodeEx(parent->lock);
      UnlockNodeEx(inner->lock);
      return false;
    }

    inner_splits_.fetch_add(1, std::memory_order_relaxed);
    // Move the upper half to a new right sibling; middle key moves up.
    const uint16_t mid = inner->count / 2;
    const Key separator = inner->keys[mid];
    Inner* right = new Inner(inner->level);
    live_nodes_.fetch_add(1, std::memory_order_relaxed);
    right->count = static_cast<uint16_t>(inner->count - mid - 1);
    for (uint16_t i = 0; i < right->count; ++i) {
      right->keys[i] = inner->keys[mid + 1 + i];
    }
    for (uint16_t i = 0; i <= right->count; ++i) {
      right->children[i] = inner->children[mid + 1 + i];
    }
    inner->count = mid;

    PublishSplit(parent, inner, right, separator);
    if (parent != nullptr) UnlockNodeEx(parent->lock);
    UnlockNodeEx(inner->lock);
    return true;
  }

  // Inserts (separator, right) into `parent`, or grows a new root when
  // `parent` is null. Caller holds `left` (and `parent` if present)
  // exclusively and has verified root identity when parent is null.
  void PublishSplit(Inner* parent, NodeBase* left, NodeBase* right,
                    const Key& separator) {
    if constexpr (kProtocol != BTreeProtocol::kCoupling) {
      // SMO ordering: a split becomes visible to optimistic readers the
      // moment the separator lands in the parent, so both the parent and
      // the (half-emptied) left node must already be exclusively locked —
      // publishing first and locking after would expose a torn split.
      // (The coupling protocol's reader-writer locks carry no IsLockedEx;
      // its discipline is enforced by thread-safety analysis instead.)
      OPTIQL_INVARIANT(
          parent == nullptr || parent->lock.IsLockedEx(),
          "B+-tree SMO ordering: split published into an unlocked parent");
      OPTIQL_INVARIANT(
          NodeIsLockedEx(left),
          "B+-tree SMO ordering: split published while the left half is "
          "not exclusively locked");
    }
    if (parent != nullptr) {
      parent->InsertAt(parent->ChildIndex(separator, parent->count),
                       separator, right);
      return;
    }
    Inner* new_root = new Inner(static_cast<uint16_t>(left->level + 1));
    live_nodes_.fetch_add(1, std::memory_order_relaxed);
    new_root->count = 1;
    new_root->keys[0] = separator;
    new_root->children[0] = left;
    new_root->children[1] = right;
    root_.store(new_root, std::memory_order_release);
  }

  // OLC leaf step: upgrade from the observed version (CAS); on any failure
  // the operation restarts from the root (paper §6.1's description of the
  // original protocol).
  LeafWriteStatus LeafWriteOlc(Leaf* leaf, uint64_t v, Inner* parent,
                               uint64_t pv, bool parent_is_root,
                               const Key& key, const Value* value,
                               WriteKind kind, bool* result) {
    if (kind == WriteKind::kRemove && parent != nullptr &&
        leaf->count <= kLeafMin) {
      return RebalanceLeafOlc(parent, pv, parent_is_root, leaf, v, key,
                              result);
    }
    if (NeedsSplitForWrite(kind) && leaf->count == kLeafMax) {
      if (parent != nullptr) {
        if (!TryUpgradeLock(parent->lock, pv)) return LeafWriteStatus::kRestart;
      }
      if (!TryUpgradeLock(leaf->lock, v)) {
        if (parent != nullptr) UnlockNodeEx(parent->lock);
        return LeafWriteStatus::kRestart;
      }
      if (parent == nullptr &&
          root_.load(std::memory_order_acquire) != leaf) {
        UnlockNodeEx(leaf->lock);
        return LeafWriteStatus::kRestart;
      }
      if (parent != nullptr && parent->count == kInnerMax) {
        UnlockNodeEx(parent->lock);
        UnlockNodeEx(leaf->lock);
        return LeafWriteStatus::kRestart;
      }
      *result = SplitLeafAndApply(leaf, parent, key, value, kind);
      if (parent != nullptr) UnlockNodeEx(parent->lock);
      UnlockNodeEx(leaf->lock);
      return LeafWriteStatus::kDone;
    }

    if (!TryUpgradeLock(leaf->lock, v)) return LeafWriteStatus::kRestart;
    *result = ApplyToLeaf(leaf, key, value, kind);
    UnlockNodeEx(leaf->lock);
    return LeafWriteStatus::kDone;
  }

  // OptiQL leaf step (paper Algorithm 4): lock the leaf *directly* with the
  // queue-based lock, then validate the parent; no upgrade, no re-search
  // after waiting in the queue.
  LeafWriteStatus LeafWriteOptiQl(Leaf* leaf, Inner* parent, uint64_t pv,
                                  bool parent_is_root, const Key& key,
                                  const Value* value, WriteKind kind,
                                  bool* result) {
    typename LeafOps::ExHandle handle{};
    if constexpr (kAor) {
      // The AOR window (deferred acquisition with opportunistic reads) is
      // OptiQL-specific and outside the TxnOps contract; enter it directly
      // and fold the queue node into the contract handle for the releases.
      handle.node = ThreadQNodes::Get(0);
      leaf->lock.AcquireExDeferred(handle.node);
    } else {
      handle = LeafOps::LockEx(leaf->lock, /*slot=*/0);
    }
    auto abort = [&] {
      if constexpr (kAor) leaf->lock.FinishAcquireEx(handle.node);
      LeafOps::UnlockEx(leaf->lock, handle);
      return LeafWriteStatus::kRestart;
    };
    // The leaf may have been split/emptied while we waited in the queue;
    // the parent's version tells us (step 3 of the adapted protocol).
    if (parent != nullptr) {
      if (!Validate(parent->lock, pv)) return abort();
    } else if (root_.load(std::memory_order_acquire) != leaf) {
      return abort();
    }

    if (kind == WriteKind::kRemove && parent != nullptr &&
        leaf->count <= kLeafMin) {
      // Structural work modifies the leaf; close any inherited window now.
      if constexpr (kAor) leaf->lock.FinishAcquireEx(handle.node);
      return RebalanceLeafOptiQl(parent, pv, parent_is_root, leaf, handle,
                                 key, result);
    }

    if (NeedsSplitForWrite(kind) && leaf->count == kLeafMax) {
      if constexpr (kAor) leaf->lock.FinishAcquireEx(handle.node);
      if (parent != nullptr) {
        if (!TryUpgradeLock(parent->lock, pv)) {
          LeafOps::UnlockEx(leaf->lock, handle);
          return LeafWriteStatus::kRestart;
        }
        if (parent->count == kInnerMax) {
          UnlockNodeEx(parent->lock);
          LeafOps::UnlockEx(leaf->lock, handle);
          return LeafWriteStatus::kRestart;
        }
      }
      *result = SplitLeafAndApply(leaf, parent, key, value, kind);
      if (parent != nullptr) UnlockNodeEx(parent->lock);
      LeafOps::UnlockEx(leaf->lock, handle);
      return LeafWriteStatus::kDone;
    }

    if constexpr (kAor) {
      // AOR: opportunistic readers stay admitted through the (read-only)
      // in-leaf search; close the window only before modifying.
      const uint16_t n = leaf->count;
      const uint16_t pos = leaf->LowerBound(key, n);
      leaf->lock.FinishAcquireEx(handle.node);
      *result = ApplyToLeafAt(leaf, pos, key, value, kind);
    } else {
      *result = ApplyToLeaf(leaf, key, value, kind);
    }
    LeafOps::UnlockEx(leaf->lock, handle);
    return LeafWriteStatus::kDone;
  }

  // Splits an exclusively-locked full leaf (parent exclusively locked or
  // root ownership verified), then applies the pending write to the correct
  // half. Returns the operation result.
  bool SplitLeafAndApply(Leaf* leaf, Inner* parent, const Key& key,
                         const Value* value, WriteKind kind) {
    leaf_splits_.fetch_add(1, std::memory_order_relaxed);
    const uint16_t mid = leaf->count / 2;
    Leaf* right = new Leaf();
    live_nodes_.fetch_add(1, std::memory_order_relaxed);
    right->count = static_cast<uint16_t>(leaf->count - mid);
    for (uint16_t i = 0; i < right->count; ++i) {
      right->keys[i] = leaf->keys[mid + i];
      right->values[i] = leaf->values[mid + i];
    }
    leaf->count = mid;
    right->next = leaf->next;
    leaf->next = right;
    const Key separator = right->keys[0];
    PublishSplit(parent, leaf, right, separator);
    Leaf* target = key < separator ? leaf : right;
    return ApplyToLeaf(target, key, value, kind);
  }

  bool ApplyToLeaf(Leaf* leaf, const Key& key, const Value* value,
                   WriteKind kind) {
    const uint16_t pos = leaf->LowerBound(key, leaf->count);
    return ApplyToLeafAt(leaf, pos, key, value, kind);
  }

  bool ApplyToLeafAt(Leaf* leaf, uint16_t pos, const Key& key,
                     const Value* value, WriteKind kind) {
    const bool exists =
        pos < leaf->count && leaf->keys[pos] == key;
    switch (kind) {
      case WriteKind::kInsert:
        if (exists) return false;
        InsertIntoLeaf(leaf, pos, key, *value);
        return true;
      case WriteKind::kUpdate:
        if (!exists) return false;
        leaf->values[pos] = *value;
        return true;
      case WriteKind::kUpsert:
        if (exists) {
          leaf->values[pos] = *value;
        } else {
          InsertIntoLeaf(leaf, pos, key, *value);
        }
        return true;
      case WriteKind::kRemove:
        if (!exists) return false;
        for (uint16_t i = pos; i + 1 < leaf->count; ++i) {
          leaf->keys[i] = leaf->keys[i + 1];
          leaf->values[i] = leaf->values[i + 1];
        }
        --leaf->count;
        size_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
    }
    return false;
  }

  void InsertIntoLeaf(Leaf* leaf, uint16_t pos, const Key& key,
                      const Value& value) {
    OPTIQL_CHECK(leaf->count < kLeafMax);
    for (uint16_t i = leaf->count; i > pos; --i) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
    size_.fetch_add(1, std::memory_order_acq_rel);
  }

  // --- Delete-time rebalancing (all protocols) ---
  //
  // Lock discipline mirrors the split paths: the parent is always held
  // exclusively before any same-level sibling pair, so at most three locks
  // (parent + node + sibling) are held and SMOs never propagate upwards.
  // Merges prefer absorbing the right node into the left (the leaf chain
  // then just skips the victim); when neither a merge fits nor a rotation
  // puts both nodes strictly above their minimum, the pass backs out
  // without publishing any change.

  static bool IsUnderfull(const NodeBase* node) {
    return IsLeaf(node) ? node->count <= kLeafMin
                        : node->count <= kInnerMin;
  }

  // True iff balancing `l + r` entries across both nodes leaves each
  // strictly above `min` — i.e. the rotation actually cures the underflow.
  // Signed arithmetic: l + r can be 0 and unsigned wraparound would claim
  // progress where none is possible, re-triggering forever.
  static bool RotationHelps(uint16_t l, uint16_t r, uint16_t min) {
    return (static_cast<int>(l) + static_cast<int>(r)) / 2 >
           static_cast<int>(min);
  }

  // `child` is guaranteed present: every caller holds `parent` exclusively
  // and (re)validated the parent-child edge under that lock.
  static uint16_t FindChildIndex(const Inner* parent, const NodeBase* child) {
    for (uint16_t i = 0; i <= parent->count; ++i) {
      if (parent->children[i] == child) return i;
    }
    OPTIQL_CHECK(!"child vanished from an exclusively held parent");
    return 0;
  }

  // Removes separator keys[child_idx - 1] and children[child_idx].
  static void RemoveChildAt(Inner* parent, uint16_t child_idx) {
    OPTIQL_CHECK(child_idx >= 1 && child_idx <= parent->count);
    for (uint16_t i = child_idx; i < parent->count; ++i) {
      parent->keys[i - 1] = parent->keys[i];
      parent->children[i] = parent->children[i + 1];
    }
    --parent->count;
  }

  // Absorbs `right` into `left` (adjacent leaves under `parent`, all held
  // exclusively) and unlinks it from parent and leaf chain. The victim's
  // contents are deliberately left intact: optimistic readers parked on it
  // may still scan it before their validation fails.
  void MergeLeaves(Inner* parent, uint16_t left_idx, Leaf* left,
                   Leaf* right) {
    OPTIQL_CHECK(left->next == right);
    OPTIQL_CHECK(left->count + right->count <= kLeafMax);
    for (uint16_t i = 0; i < right->count; ++i) {
      left->keys[left->count + i] = right->keys[i];
      left->values[left->count + i] = right->values[i];
    }
    left->count = static_cast<uint16_t>(left->count + right->count);
    left->next = right->next;
    RemoveChildAt(parent, static_cast<uint16_t>(left_idx + 1));
    leaf_merges_.fetch_add(1, std::memory_order_relaxed);
  }

  // Same for inner nodes; the separator between them comes down to bridge
  // left's last child and right's first.
  void MergeInners(Inner* parent, uint16_t left_idx, Inner* left,
                   Inner* right) {
    OPTIQL_CHECK(left->count + right->count + 1 <= kInnerMax);
    left->keys[left->count] = parent->keys[left_idx];
    for (uint16_t i = 0; i < right->count; ++i) {
      left->keys[left->count + 1 + i] = right->keys[i];
    }
    for (uint16_t i = 0; i <= right->count; ++i) {
      left->children[left->count + 1 + i] = right->children[i];
    }
    left->count = static_cast<uint16_t>(left->count + right->count + 1);
    RemoveChildAt(parent, static_cast<uint16_t>(left_idx + 1));
    inner_merges_.fetch_add(1, std::memory_order_relaxed);
  }

  // One-entry rotations between exclusively held adjacent siblings.
  // keys[left_idx] is the separator between them.

  static void RotateLeafLeft(Inner* parent, uint16_t left_idx, Leaf* left,
                             Leaf* right) {
    left->keys[left->count] = right->keys[0];
    left->values[left->count] = right->values[0];
    ++left->count;
    for (uint16_t i = 1; i < right->count; ++i) {
      right->keys[i - 1] = right->keys[i];
      right->values[i - 1] = right->values[i];
    }
    --right->count;
    parent->keys[left_idx] = right->keys[0];
  }

  static void RotateLeafRight(Inner* parent, uint16_t left_idx, Leaf* left,
                              Leaf* right) {
    for (uint16_t i = right->count; i > 0; --i) {
      right->keys[i] = right->keys[i - 1];
      right->values[i] = right->values[i - 1];
    }
    right->keys[0] = left->keys[left->count - 1];
    right->values[0] = left->values[left->count - 1];
    ++right->count;
    --left->count;
    parent->keys[left_idx] = right->keys[0];
  }

  static void RotateInnerLeft(Inner* parent, uint16_t left_idx, Inner* left,
                              Inner* right) {
    // Separator descends to left's tail, adopting right's first child;
    // right's first key ascends.
    left->keys[left->count] = parent->keys[left_idx];
    left->children[left->count + 1] = right->children[0];
    ++left->count;
    parent->keys[left_idx] = right->keys[0];
    for (uint16_t i = 1; i < right->count; ++i) {
      right->keys[i - 1] = right->keys[i];
    }
    for (uint16_t i = 1; i <= right->count; ++i) {
      right->children[i - 1] = right->children[i];
    }
    --right->count;
  }

  static void RotateInnerRight(Inner* parent, uint16_t left_idx, Inner* left,
                               Inner* right) {
    for (uint16_t i = right->count; i > 0; --i) {
      right->keys[i] = right->keys[i - 1];
    }
    for (uint16_t i = static_cast<uint16_t>(right->count + 1); i > 0; --i) {
      right->children[i] = right->children[i - 1];
    }
    right->keys[0] = parent->keys[left_idx];
    right->children[0] = left->children[left->count];
    ++right->count;
    parent->keys[left_idx] = left->keys[left->count - 1];
    --left->count;
  }

  // Unlinks are published before this runs, so late readers of the victim
  // fail validation (obsolete lock) and nobody holds a path to it; the
  // epoch layer defers the actual free past every in-flight guard.
  void RetireNode(NodeBase* node) {
    live_nodes_.fetch_sub(1, std::memory_order_relaxed);
    nodes_retired_.fetch_add(1, std::memory_order_relaxed);
    if (IsLeaf(node)) {
      EpochManager::Instance().Retire(AsLeaf(node));
    } else {
      EpochManager::Instance().Retire(AsInner(node));
    }
  }

  // Releases the exclusively held parent after a child merge, collapsing a
  // root left with zero separators onto its lone child. `parent_is_root`
  // stays truthful under the held lock: any operation that moves root_ away
  // from a node bumps that node's version first, which would have failed
  // the caller's upgrade.
  void ReleaseParentAfterMerge(Inner* parent, bool parent_is_root) {
    if (parent_is_root && parent->count == 0) {
      OPTIQL_CHECK(root_.load(std::memory_order_acquire) == parent);
      root_.store(parent->children[0], std::memory_order_release);
      root_collapses_.fetch_add(1, std::memory_order_relaxed);
      UnlockNodeExObsolete(parent->lock);
      RetireNode(parent);
      return;
    }
    UnlockNodeEx(parent->lock);
  }

  // Lock-free pre-screen for RebalanceInner: peeks at the node's neighbour
  // under the parent snapshot and reports whether a merge could fit or a
  // rotation could cure the underflow. Without it every remove descending
  // past a permanently-underfull inner node (tiny geometry, drained
  // siblings) would upgrade two locks and block on the sibling only to
  // back out, serializing hot inner nodes. The counts are unvalidated —
  // they gate a heuristic only; the locked pass re-checks everything. On a
  // dead parent snapshot sets *restart and returns false.
  bool RebalanceInnerMightHelp(const Inner* parent, uint64_t pv,
                               bool parent_is_root, const Inner* inner,
                               bool* restart) const {
    const uint16_t pn = LoadCount(parent, kInnerMax);
    uint16_t idx = 0;
    while (idx <= pn && parent->children[idx] != inner) ++idx;
    if (idx > pn || pn == 0) {
      // Racy miss, or no visible sibling: let the locked pass decide.
      return true;
    }
    const NodeBase* sibling = parent->children[idx < pn ? idx + 1 : idx - 1];
    if (!Validate(parent->lock, pv)) {
      *restart = true;
      return false;
    }
    // `sibling` is now a real child pointer; even if it is merged away
    // concurrently its memory stays valid under our epoch guard.
    const uint16_t n = LoadCount(inner, kInnerMax);
    const uint16_t s = LoadCount(sibling, kInnerMax);
    const bool merge_fits =
        n + s + 1 <= kInnerMax && (pn >= 2 || parent_is_root);
    return merge_fits || RotationHelps(n, s, kInnerMin);
  }

  // Rebalances an underfull inner node during an optimistic descent.
  // Returns true when the structure changed (caller restarts) and false
  // when no profitable move existed — then every lock was released without
  // a version bump and the caller's snapshots are still valid.
  bool RebalanceInner(Inner* parent, uint64_t pv, bool parent_is_root,
                      Inner* inner, uint64_t v) {
    if (!TryUpgradeLock(parent->lock, pv)) return true;
    if (!TryUpgradeLock(inner->lock, v)) {
      UnlockNodeExNoBump(parent->lock);
      return true;
    }
    const uint16_t idx = FindChildIndex(parent, inner);
    Inner* left;
    Inner* right;
    uint16_t left_idx;
    if (idx < parent->count) {
      left = inner;
      right = AsInner(parent->children[idx + 1]);
      left_idx = idx;
    } else {
      left = AsInner(parent->children[idx - 1]);
      right = inner;
      left_idx = static_cast<uint16_t>(idx - 1);
    }
    Inner* sibling = left == inner ? right : left;
    // Blocking acquire is deadlock-free: every writer that locks an inner
    // node holds its parent exclusively first, and we hold the parent.
    LockNodeEx(sibling->lock, /*slot=*/1);

    const uint16_t l = left->count;
    const uint16_t r = right->count;
    if (l + r + 1 <= kInnerMax && (parent->count >= 2 || parent_is_root)) {
      MergeInners(parent, left_idx, left, right);
      UnlockNodeExObsolete(right->lock);
      UnlockNodeEx(left->lock);
      RetireNode(right);
      ReleaseParentAfterMerge(parent, parent_is_root);
      return true;
    }
    if (RotationHelps(l, r, kInnerMin)) {
      while (left->count + 1 < right->count) {
        RotateInnerLeft(parent, left_idx, left, right);
      }
      while (right->count + 1 < left->count) {
        RotateInnerRight(parent, left_idx, left, right);
      }
      rebalance_borrows_.fetch_add(1, std::memory_order_relaxed);
      UnlockNodeEx(sibling->lock);
      UnlockNodeEx(inner->lock);
      UnlockNodeEx(parent->lock);
      return true;
    }
    UnlockNodeExNoBump(sibling->lock);
    UnlockNodeExNoBump(inner->lock);
    UnlockNodeExNoBump(parent->lock);
    return false;
  }

  // Leaf-level rebalance for the OLC protocol: upgrade parent then leaf
  // from their snapshots, lock a sibling, and merge or rotate. When neither
  // helps, the pending remove is applied in place under the held leaf.
  LeafWriteStatus RebalanceLeafOlc(Inner* parent, uint64_t pv,
                                   bool parent_is_root, Leaf* leaf,
                                   uint64_t v, const Key& key,
                                   bool* result) {
    if (!TryUpgradeLock(parent->lock, pv)) return LeafWriteStatus::kRestart;
    if (!TryUpgradeLock(leaf->lock, v)) {
      UnlockNodeExNoBump(parent->lock);
      return LeafWriteStatus::kRestart;
    }
    const uint16_t idx = FindChildIndex(parent, leaf);
    Leaf* left;
    Leaf* right;
    uint16_t left_idx;
    if (idx < parent->count) {
      left = leaf;
      right = AsLeaf(parent->children[idx + 1]);
      left_idx = idx;
    } else {
      left = AsLeaf(parent->children[idx - 1]);
      right = leaf;
      left_idx = static_cast<uint16_t>(idx - 1);
    }
    Leaf* sibling = left == leaf ? right : left;
    LockNodeEx(sibling->lock, /*slot=*/1);

    const uint16_t l = left->count;
    const uint16_t r = right->count;
    if (l + r <= kLeafMax && (parent->count >= 2 || parent_is_root)) {
      MergeLeaves(parent, left_idx, left, right);
      UnlockNodeExObsolete(right->lock);
      UnlockNodeEx(left->lock);
      RetireNode(right);
      ReleaseParentAfterMerge(parent, parent_is_root);
      return LeafWriteStatus::kRestart;
    }
    if (RotationHelps(l, r, kLeafMin)) {
      while (left->count + 1 < right->count) {
        RotateLeafLeft(parent, left_idx, left, right);
      }
      while (right->count + 1 < left->count) {
        RotateLeafRight(parent, left_idx, left, right);
      }
      rebalance_borrows_.fetch_add(1, std::memory_order_relaxed);
      UnlockNodeEx(sibling->lock);
      UnlockNodeEx(leaf->lock);
      UnlockNodeEx(parent->lock);
      return LeafWriteStatus::kRestart;
    }
    // No profitable structural move (tiny geometry, or the siblings are as
    // drained as we are): complete the remove in place.
    UnlockNodeExNoBump(sibling->lock);
    UnlockNodeExNoBump(parent->lock);
    *result = ApplyToLeaf(leaf, key, nullptr, WriteKind::kRemove);
    UnlockNodeEx(leaf->lock);
    return LeafWriteStatus::kDone;
  }

  // Leaf-level rebalance for the OptiQL protocol. The caller already owns
  // the leaf exclusively (queue grant, window closed) and validated the
  // parent edge; we upgrade the parent from its snapshot and lock the
  // sibling through its queue. Queued writers on a merged-away leaf drain
  // normally and fail their parent validation afterwards.
  LeafWriteStatus RebalanceLeafOptiQl(Inner* parent, uint64_t pv,
                                      bool parent_is_root, Leaf* leaf,
                                      typename LeafOps::ExHandle handle,
                                      const Key& key, bool* result) {
    if (!TryUpgradeLock(parent->lock, pv)) {
      LeafOps::UnlockEx(leaf->lock, handle);
      return LeafWriteStatus::kRestart;
    }
    const uint16_t idx = FindChildIndex(parent, leaf);
    Leaf* left;
    Leaf* right;
    uint16_t left_idx;
    if (idx < parent->count) {
      left = leaf;
      right = AsLeaf(parent->children[idx + 1]);
      left_idx = idx;
    } else {
      left = AsLeaf(parent->children[idx - 1]);
      right = leaf;
      left_idx = static_cast<uint16_t>(idx - 1);
    }
    Leaf* sibling = left == leaf ? right : left;
    // Deadlock-free: sibling holders either hold only that leaf (plain leaf
    // writers — they never block on the parent, they validate it) or
    // acquired the parent first (structural passes — excluded, we hold it).
    const typename LeafOps::ExHandle sibling_handle =
        LeafOps::LockEx(sibling->lock, /*slot=*/1);

    const uint16_t l = left->count;
    const uint16_t r = right->count;
    if (l + r <= kLeafMax && (parent->count >= 2 || parent_is_root)) {
      MergeLeaves(parent, left_idx, left, right);
      if (right == leaf) {
        LeafOps::UnlockExObsolete(leaf->lock, handle);
        LeafOps::UnlockEx(sibling->lock, sibling_handle);
      } else {
        LeafOps::UnlockExObsolete(sibling->lock, sibling_handle);
        LeafOps::UnlockEx(leaf->lock, handle);
      }
      RetireNode(right);
      ReleaseParentAfterMerge(parent, parent_is_root);
      return LeafWriteStatus::kRestart;
    }
    if (RotationHelps(l, r, kLeafMin)) {
      while (left->count + 1 < right->count) {
        RotateLeafLeft(parent, left_idx, left, right);
      }
      while (right->count + 1 < left->count) {
        RotateLeafRight(parent, left_idx, left, right);
      }
      rebalance_borrows_.fetch_add(1, std::memory_order_relaxed);
      LeafOps::UnlockEx(sibling->lock, sibling_handle);
      LeafOps::UnlockEx(leaf->lock, handle);
      UnlockNodeEx(parent->lock);
      return LeafWriteStatus::kRestart;
    }
    // No profitable move; release the sibling with a bump anyway — a
    // spurious version bump only costs overlapping readers a restart.
    LeafOps::UnlockEx(sibling->lock, sibling_handle);
    UnlockNodeExNoBump(parent->lock);
    *result = ApplyToLeaf(leaf, key, nullptr, WriteKind::kRemove);
    LeafOps::UnlockEx(leaf->lock, handle);
    return LeafWriteStatus::kDone;
  }

  // --- Pessimistic write path: exclusive top-down coupling with eager
  // splits (at most two exclusive locks held). ---

  bool WriteCoupling(const Key& key, const Value* value,
                     WriteKind kind) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      int slot = 0;
      LockOf(node, /*shared=*/false, slot);
      if (node != root_.load(std::memory_order_acquire)) {
        UnlockOf(node, /*shared=*/false, slot);
        continue;
      }

      // Split a full root first so descending splits always have a parent.
      // The key may now belong to the new right sibling, which is only
      // reachable through the new root, so re-traverse.
      if (NeedsSplitForWrite(kind) && IsFull(node)) {
        SplitChildOfNothing(node);
        UnlockOf(node, /*shared=*/false, slot);
        continue;
      }

      bool at_root = true;
      bool restart = false;
      while (!IsLeaf(node)) {
        Inner* inner = AsInner(node);
        uint16_t idx = inner->ChildIndex(key, inner->count);
        NodeBase* child = inner->children[idx];
        PrefetchNodeHeader(child);  // Warm the child's lock word.
        const int child_slot = 1 - slot;
        LockOf(child, /*shared=*/false, child_slot);
        if (NeedsSplitForWrite(kind) && IsFull(child)) {
          NodeBase* right = SplitChild(inner, child);
          // Re-route: the key may belong to the new right node.
          idx = inner->ChildIndex(key, inner->count);
          NodeBase* target = inner->children[idx];
          if (target != child) {
            UnlockOf(child, /*shared=*/false, child_slot);
            LockOf(target, /*shared=*/false, child_slot);
            child = target;
          }
          (void)right;
        } else if (kind == WriteKind::kRemove && IsUnderfull(child) &&
                   RebalanceChildCoupling(inner, at_root, slot, child,
                                          child_slot)) {
          // Structure changed and every lock was released; separators may
          // have moved, so re-route from the root.
          restart = true;
          break;
        }
        UnlockOf(node, /*shared=*/false, slot);
        node = child;
        slot = child_slot;
        at_root = false;
      }
      if (restart) continue;

      Leaf* leaf = AsLeaf(node);
      const bool result = ApplyToLeaf(leaf, key, value, kind);
      UnlockOf(node, /*shared=*/false, slot);
      return result;
    }
  }

  // Rebalances an underfull child during a pessimistic descent. On entry
  // `parent` and `child` are held exclusively. Returns true when the
  // structure changed — then ALL locks are released and the caller must
  // re-traverse; false leaves parent + child held and unchanged.
  bool RebalanceChildCoupling(Inner* parent, bool at_root, int parent_slot,
                              NodeBase* child,
                              int child_slot) OPTIQL_NO_THREAD_SAFETY_ANALYSIS {
    const uint16_t idx = FindChildIndex(parent, child);
    const bool child_is_left = idx < parent->count;
    const uint16_t left_idx =
        child_is_left ? idx : static_cast<uint16_t>(idx - 1);
    const int sibling_slot = 2;
    NodeBase* left;
    NodeBase* right;
    if (child_is_left) {
      left = child;
      right = parent->children[idx + 1];
      LockOf(right, /*shared=*/false, sibling_slot);
    } else {
      left = parent->children[idx - 1];
      right = child;
      // Same-level locks must be taken left-to-right: scans couple
      // rightwards along the leaf chain, so holding `child` while blocking
      // on its left sibling can deadlock against a scan holding that
      // sibling shared. Drop the child, lock left, relock. Safe: every
      // writer path to `child` goes through `parent`, which we hold, so
      // its state cannot change while unlocked.
      UnlockOf(child, /*shared=*/false, child_slot);
      LockOf(left, /*shared=*/false, sibling_slot);
      LockOf(child, /*shared=*/false, child_slot);
    }

    const bool fits = IsLeaf(left)
                          ? left->count + right->count <= kLeafMax
                          : left->count + right->count + 1 <= kInnerMax;
    const int right_slot = right == child ? child_slot : sibling_slot;
    const int left_slot = left == child ? child_slot : sibling_slot;
    if (fits && (parent->count >= 2 || at_root)) {
      if (IsLeaf(left)) {
        MergeLeaves(parent, left_idx, AsLeaf(left), AsLeaf(right));
      } else {
        MergeInners(parent, left_idx, AsInner(left), AsInner(right));
      }
      // Nobody can be queued on the victim: reaching it requires the
      // parent or the left sibling, and we hold both exclusively.
      UnlockOf(right, /*shared=*/false, right_slot);
      RetireNode(right);
      UnlockOf(left, /*shared=*/false, left_slot);
      if (at_root && parent->count == 0) {
        OPTIQL_CHECK(root_.load(std::memory_order_acquire) == parent);
        root_.store(left, std::memory_order_release);
        root_collapses_.fetch_add(1, std::memory_order_relaxed);
        UnlockOf(parent, /*shared=*/false, parent_slot);
        RetireNode(parent);
      } else {
        UnlockOf(parent, /*shared=*/false, parent_slot);
      }
      return true;
    }
    if (RotationHelps(left->count, right->count,
                      IsLeaf(left) ? kLeafMin : kInnerMin)) {
      if (IsLeaf(left)) {
        Leaf* l = AsLeaf(left);
        Leaf* r = AsLeaf(right);
        while (l->count + 1 < r->count) RotateLeafLeft(parent, left_idx, l, r);
        while (r->count + 1 < l->count) RotateLeafRight(parent, left_idx, l, r);
      } else {
        Inner* l = AsInner(left);
        Inner* r = AsInner(right);
        while (l->count + 1 < r->count) {
          RotateInnerLeft(parent, left_idx, l, r);
        }
        while (r->count + 1 < l->count) {
          RotateInnerRight(parent, left_idx, l, r);
        }
      }
      rebalance_borrows_.fetch_add(1, std::memory_order_relaxed);
      UnlockOf(right, /*shared=*/false, right_slot);
      UnlockOf(left, /*shared=*/false, left_slot);
      UnlockOf(parent, /*shared=*/false, parent_slot);
      return true;
    }
    // No profitable move: release only the sibling and let the descent
    // continue through the still-held parent + child.
    UnlockOf(left == child ? right : left, /*shared=*/false, sibling_slot);
    return false;
  }

  bool IsFull(const NodeBase* node) const {
    return IsLeaf(node) ? node->count == kLeafMax : node->count == kInnerMax;
  }

  // Splits the (exclusively locked) root into a new root. The old root
  // remains locked; the new root is published immediately (safe: concurrent
  // operations re-check root identity after locking).
  void SplitChildOfNothing(NodeBase* old_root) {
    NodeBase* right;
    Key separator;
    SplitNode(old_root, &right, &separator);
    PublishSplit(nullptr, old_root, right, separator);
  }

  // Splits `child` (both `parent` and `child` exclusively locked).
  NodeBase* SplitChild(Inner* parent, NodeBase* child) {
    NodeBase* right;
    Key separator;
    SplitNode(child, &right, &separator);
    PublishSplit(parent, child, right, separator);
    return right;
  }

  void SplitNode(NodeBase* node, NodeBase** right_out, Key* separator) {
    if (IsLeaf(node)) {
      leaf_splits_.fetch_add(1, std::memory_order_relaxed);
      Leaf* leaf = AsLeaf(node);
      const uint16_t mid = leaf->count / 2;
      Leaf* right = new Leaf();
      live_nodes_.fetch_add(1, std::memory_order_relaxed);
      right->count = static_cast<uint16_t>(leaf->count - mid);
      for (uint16_t i = 0; i < right->count; ++i) {
        right->keys[i] = leaf->keys[mid + i];
        right->values[i] = leaf->values[mid + i];
      }
      leaf->count = mid;
      right->next = leaf->next;
      leaf->next = right;
      *separator = right->keys[0];
      *right_out = right;
    } else {
      inner_splits_.fetch_add(1, std::memory_order_relaxed);
      Inner* inner = AsInner(node);
      const uint16_t mid = inner->count / 2;
      Inner* right = new Inner(inner->level);
      live_nodes_.fetch_add(1, std::memory_order_relaxed);
      right->count = static_cast<uint16_t>(inner->count - mid - 1);
      for (uint16_t i = 0; i < right->count; ++i) {
        right->keys[i] = inner->keys[mid + 1 + i];
      }
      for (uint16_t i = 0; i <= right->count; ++i) {
        right->children[i] = inner->children[mid + 1 + i];
      }
      *separator = inner->keys[mid];
      inner->count = mid;
      *right_out = right;
    }
  }

  // --- Maintenance ---

  // Frees the subtree and returns the number of nodes freed.
  size_t FreeSubtree(NodeBase* node) {
    if (node == nullptr) return 0;
    if (IsLeaf(node)) {
      delete AsLeaf(node);
      return 1;
    }
    Inner* inner = AsInner(node);
    size_t freed = 1;
    for (uint16_t i = 0; i <= inner->count; ++i) {
      freed += FreeSubtree(inner->children[i]);
    }
    delete inner;
    return freed;
  }

  void CheckSubtree(const NodeBase* node, const Key* lower, const Key* upper,
                    size_t* keys) const {
    if (IsLeaf(node)) {
      const Leaf* leaf = AsLeaf(node);
      OPTIQL_CHECK(leaf->count <= kLeafMax);
      for (uint16_t i = 0; i < leaf->count; ++i) {
        if (i > 0) OPTIQL_CHECK(leaf->keys[i - 1] < leaf->keys[i]);
        if (lower != nullptr) OPTIQL_CHECK(!(leaf->keys[i] < *lower));
        if (upper != nullptr) OPTIQL_CHECK(leaf->keys[i] < *upper);
      }
      *keys += leaf->count;
      return;
    }
    const Inner* inner = AsInner(node);
    OPTIQL_CHECK(inner->count >= 1);
    OPTIQL_CHECK(inner->count <= kInnerMax);
    for (uint16_t i = 0; i < inner->count; ++i) {
      if (i > 0) OPTIQL_CHECK(inner->keys[i - 1] < inner->keys[i]);
    }
    for (uint16_t i = 0; i <= inner->count; ++i) {
      const NodeBase* child = inner->children[i];
      OPTIQL_CHECK(child->level + 1 == inner->level);
      const Key* lo = i == 0 ? lower : &inner->keys[i - 1];
      const Key* hi = i == inner->count ? upper : &inner->keys[i];
      CheckSubtree(child, lo, hi, keys);
    }
  }

 public:
  // --- Transaction-layer hooks (src/txn/) ---
  //
  // Available for the optimistic protocols (the leaf lock carries the
  // version word OCC validates against — the same word single-key
  // operations use, not a shadow table). The hooks assume the CCBench-style
  // transactional workload model: a fixed key population, with structural
  // modifications (Insert/Remove) quiesced while transactions run. Index
  // writers performing splits/merges block on leaf locks while holding
  // inner locks, which a transaction holding leaves could not safely spin
  // against.
  //
  // The caller (a TxnContext) holds one EpochGuard for the whole
  // transaction, so leaf pointers captured here stay dereferenceable until
  // it commits or aborts.

  using TxnLock = LeafLock;

  struct TxnReadResult {
    bool found = false;
    Value value{};
    const LeafLock* lock = nullptr;  // leaf lock guarding the record
    uint64_t version = 0;            // validated snapshot of that word
  };

  // OCC execution-phase read: a validated snapshot of the record plus the
  // leaf word commit-time validation re-checks. Must not be called while
  // the transaction holds leaf locks (it can spin on a held leaf).
  void TxnRead(const Key& key, TxnReadResult& out) const
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    RestartCounter restarts(read_restarts_);
    while (true) {
      restarts.Tick();
      NodeBase* node = root_.load(std::memory_order_acquire);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!IsLeaf(node)) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        PrefetchNodeHeader(child);
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        uint64_t cv;
        if (!ReadLockNode(child, cv)) {
          restart = true;
          break;
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
      if (restart) continue;

      const Leaf* leaf = AsLeaf(node);
      const uint16_t n = LoadCount(leaf, kLeafMax);
      const uint16_t pos = leaf->LowerBound(key, n);
      bool found = false;
      Value value{};
      if (pos < n && leaf->keys[pos] == key) {
        found = true;
        value = leaf->values[pos];
      }
      if (!Validate(leaf->lock, v)) continue;
      out.found = found;
      out.value = value;
      out.lock = &leaf->lock;
      out.version = v;
      return;
    }
  }

  // Exclusive record hold for the transaction layer. Non-owning guards
  // piggyback on a leaf the transaction already holds (two keys can share
  // a leaf), so only the owning guard releases.
  class TxnWriteGuard {
   public:
    TxnWriteGuard() = default;

    const LeafLock* LockPtr() const { return &leaf_->lock; }
    Value Read() const { return leaf_->values[pos_]; }
    void Install(const Value& value) {
      OPTIQL_INVARIANT(leaf_ != nullptr,
                       "Install on a guard that never locked a record");
      leaf_->values[pos_] = value;
    }
    uint64_t HeldVersion() const {
      return LeafOps::HeldVersion(leaf_->lock, handle_);
    }
    bool owns() const { return owns_; }

    // Releases the leaf. `installed` == false releases without a version
    // bump where the family supports it, so pure-abort unlocks do not
    // invalidate concurrent readers.
    void Unlock(bool installed) {
      if (!owns_) return;
      owns_ = false;
      if constexpr (LeafOps::kHasNoBump) {
        if (!installed) {
          LeafOps::UnlockExNoBump(leaf_->lock, handle_);
          return;
        }
      }
      (void)installed;
      LeafOps::UnlockEx(leaf_->lock, handle_);
    }

   private:
    friend class BTree;
    Leaf* leaf_ = nullptr;
    uint16_t pos_ = 0;
    bool owns_ = false;
    typename LeafOps::ExHandle handle_{};
  };

  // Commit-time record lock, blocking: queue-based leaf locks wait in the
  // leaf queue. After acquiring, a fresh descent confirms the locked leaf
  // still covers `key` — coverage is then frozen for as long as we hold it
  // (every split/merge/rotation of a leaf requires its lock).
  // `already_held` reports leaf locks this transaction already owns.
  template <class HeldContains>
  TxnLockStatus TxnLockForWrite(const Key& key, int slot,
                                const HeldContains& already_held,
                                TxnWriteGuard& guard)
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    while (true) {
      Leaf* leaf = TxnDescendToLeaf(key);
      if (already_held(&leaf->lock)) {
        return BindHeldGuard(leaf, key, guard);
      }
      guard.handle_ = LeafOps::LockEx(leaf->lock, slot);
      guard.leaf_ = leaf;
      guard.owns_ = true;
      if (LeafOps::IsObsolete(leaf->lock) || TxnDescendToLeaf(key) != leaf) {
        guard.Unlock(/*installed=*/false);
        continue;
      }
      const uint16_t n = LoadCount(leaf, kLeafMax);
      const uint16_t pos = leaf->LowerBound(key, n);
      if (pos < n && leaf->keys[pos] == key) {
        guard.pos_ = pos;
        return TxnLockStatus::kAcquired;
      }
      guard.Unlock(/*installed=*/false);
      return TxnLockStatus::kAbsent;
    }
  }

  // No-wait variant (2PL deadlock avoidance): the record is locked by
  // promoting a validated leaf snapshot (TryUpgrade), so a competing
  // holder or a concurrent change both come back kBusy, never a wait.
  template <class HeldContains>
  TxnLockStatus TxnTryLockForWrite(const Key& key, int slot,
                                   const HeldContains& already_held,
                                   TxnWriteGuard& guard)
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    Leaf* leaf = TxnDescendToLeaf(key);
    if (already_held(&leaf->lock)) {
      return BindHeldGuard(leaf, key, guard);
    }
    uint64_t v;
    if (!LeafOps::StableVersion(leaf->lock, v)) return TxnLockStatus::kBusy;
    const uint16_t n = LoadCount(leaf, kLeafMax);
    const uint16_t pos = leaf->LowerBound(key, n);
    const bool found = pos < n && leaf->keys[pos] == key;
    if (!LeafOps::ValidateVersion(leaf->lock, v)) return TxnLockStatus::kBusy;
    if (!found) return TxnLockStatus::kAbsent;
    if (!LeafOps::TryUpgrade(leaf->lock, v, slot, guard.handle_)) {
      return TxnLockStatus::kBusy;
    }
    guard.leaf_ = leaf;
    guard.pos_ = pos;
    guard.owns_ = true;
    return TxnLockStatus::kAcquired;
  }

  // Deadlock-avoidance rank: leaf ranges are ordered by key, so
  // transactions that lock their write sets in ascending key order acquire
  // leaf locks in a consistent global order.
  static std::pair<uint64_t, uint64_t> TxnLockRank(const Key& key)
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    return {static_cast<uint64_t>(key), 0};
  }

 private:
  // Descends to the leaf covering `key` WITHOUT reading the leaf's own
  // version word — the caller may already hold that leaf exclusively, and
  // a version read would spin on our own lock. The returned pointer is
  // parent-validated: the last inner's separators were read under a
  // validated version, so the leaf covered `key` at that instant.
  Leaf* TxnDescendToLeaf(const Key& key) const
    requires(kProtocol != BTreeProtocol::kCoupling)
  {
    while (true) {
      NodeBase* node = root_.load(std::memory_order_acquire);
      // Root-is-leaf short-circuit before any version read (we might hold
      // the root leaf); a stale root is caught by the caller's
      // obsolete/coverage checks.
      if (IsLeaf(node)) return AsLeaf(node);
      uint64_t v;
      if (!ReadLockNode(node, v)) continue;
      if (node != root_.load(std::memory_order_acquire)) continue;

      bool restart = false;
      while (!restart) {
        const Inner* inner = AsInner(node);
        const uint16_t n = LoadCount(inner, kInnerMax);
        NodeBase* child = inner->children[inner->ChildIndex(key, n)];
        PrefetchNodeHeader(child);
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        // `child` is now trustworthy; its level field is immutable.
        if (IsLeaf(child)) return AsLeaf(child);
        uint64_t cv;
        if (!ReadLockNode(child, cv)) {
          restart = true;
          break;
        }
        if (!Validate(inner->lock, v)) {
          restart = true;
          break;
        }
        node = child;
        v = cv;
      }
    }
  }

  // Completes a guard over a leaf this transaction already holds: the leaf
  // is stable under our own exclusive hold, so a plain search suffices.
  TxnLockStatus BindHeldGuard(Leaf* leaf, const Key& key,
                              TxnWriteGuard& guard) {
    guard.leaf_ = leaf;
    guard.owns_ = false;
    const uint16_t n = LoadCount(leaf, kLeafMax);
    const uint16_t pos = leaf->LowerBound(key, n);
    if (pos < n && leaf->keys[pos] == key) {
      guard.pos_ = pos;
      return TxnLockStatus::kAcquired;
    }
    return TxnLockStatus::kAbsent;
  }

  std::atomic<NodeBase*> root_;
  std::atomic<size_t> size_{0};
  mutable std::atomic<uint64_t> read_restarts_{0};
  std::atomic<uint64_t> write_restarts_{0};
  std::atomic<uint64_t> leaf_splits_{0};
  std::atomic<uint64_t> inner_splits_{0};
  std::atomic<uint64_t> leaf_merges_{0};
  std::atomic<uint64_t> inner_merges_{0};
  std::atomic<uint64_t> rebalance_borrows_{0};
  std::atomic<uint64_t> root_collapses_{0};
  std::atomic<uint64_t> nodes_retired_{0};
  // Live (reachable) nodes; starts at 1 for the empty root leaf.
  std::atomic<int64_t> live_nodes_{1};
};

template <class Key, class Value, class SyncPolicy, size_t kNodeBytes>
constexpr size_t BTree<Key, Value, SyncPolicy, kNodeBytes>::LeafCapacity() {
  return Leaf::kMax;
}

template <class Key, class Value, class SyncPolicy, size_t kNodeBytes>
constexpr size_t BTree<Key, Value, SyncPolicy, kNodeBytes>::InnerCapacity() {
  return Inner::kMax;
}

}  // namespace optiql

#endif  // OPTIQL_INDEX_BTREE_H_
